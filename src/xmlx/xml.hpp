// Minimal XML substrate: document model, parser, and serializer.
//
// This is the comparison baseline of the paper's evaluation (§5): messages
// encoded as text XML, parsed into a DOM, transformed with XSLT, and walked
// back into native structs. It implements exactly what those experiments
// need — elements, attributes, text, comments, CDATA, the five predefined
// entities and numeric character references — not a general XML stack.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace morph::xmlx {

struct XmlNode;
using XmlNodePtr = std::unique_ptr<XmlNode>;

struct XmlAttr {
  std::string name;
  std::string value;
};

struct XmlNode {
  enum class Kind : uint8_t { kElement, kText };

  Kind kind = Kind::kElement;
  std::string name;   // element name (kElement)
  std::string text;   // character data (kText)
  std::vector<XmlAttr> attrs;
  std::vector<XmlNodePtr> children;
  XmlNode* parent = nullptr;

  bool is_element() const { return kind == Kind::kElement; }
  bool is_text() const { return kind == Kind::kText; }

  /// First child element with the given name, or nullptr.
  const XmlNode* child(std::string_view child_name) const;

  /// All child elements with the given name.
  std::vector<const XmlNode*> children_named(std::string_view child_name) const;

  /// Attribute value, or nullptr.
  const std::string* attr(std::string_view attr_name) const;

  /// Concatenated text of all descendant text nodes.
  std::string text_content() const;

  /// Append helpers used by builders and the XSLT engine.
  XmlNode& append_element(std::string element_name);
  XmlNode& append_text(std::string value);
  void set_attr(std::string attr_name, std::string value);
};

/// Create a detached element node.
XmlNodePtr make_element(std::string name);

struct XmlParseOptions {
  /// Drop text nodes that are pure whitespace (insignificant between
  /// elements in data-oriented XML). Default on.
  bool strip_whitespace_text = true;
};

/// Parse a document; returns the root element. Throws XmlError.
XmlNodePtr xml_parse(std::string_view input, const XmlParseOptions& options = {});

/// Serialize a tree. `indent` < 0 produces compact output (no added
/// whitespace), which is what the size measurements use.
std::string xml_serialize(const XmlNode& root, int indent = -1);

/// Escape character data / attribute values.
void xml_escape_into(std::string& out, std::string_view text);

}  // namespace morph::xmlx
