// Record <-> XML binding: encode native PBIO records as XML text and walk
// parsed XML back into native records.
//
// This is the XML leg of the paper's evaluation: "the XML string is created
// using sprintf() for data-to-string conversions" (we append to one output
// string, mirroring their optimized strcat) and decoding "parses the
// encoded message and generates a data structure block similar to the one
// from which it was formed".
//
// Mapping: a record is an element named after its format; scalar fields are
// child elements containing the value text; strings likewise; nested
// structs are nested elements; array elements repeat the field's element
// name. Dynamic-array count fields are emitted like any scalar (as the
// paper's hand-rolled XML encoding did), and on decode the actual element
// count wins.
#pragma once

#include <string>

#include "common/arena.hpp"
#include "pbio/format.hpp"
#include "xmlx/xml.hpp"

namespace morph::xmlx {

/// Append the XML encoding of `record` to `out` (cleared first).
void xml_encode_record(const pbio::FormatDescriptor& fmt, const void* record, std::string& out);

/// Decode a parsed element into a fresh native record in `arena`.
void* xml_decode_record(const pbio::FormatDescriptor& fmt, const XmlNode& element,
                        RecordArena& arena);

/// Parse + decode in one step (the full XML receive path of Figure 9).
void* xml_decode_record(const pbio::FormatDescriptor& fmt, std::string_view xml_text,
                        RecordArena& arena);

}  // namespace morph::xmlx
