// XPath-lite: the path and expression subset the XSLT-lite engine needs.
//
// Paths:   a/b/c    ./x    ../y    @attr    a/text()    *    a[b='1']/c
// Steps walk the child axis; '.' and '..' adjust context; '@name' (final
// step) selects an attribute; a predicate [child='value'] or [child]
// filters element steps.
//
// Expressions (for value-of / if-test / attribute templates):
//   path                         -> node-set (string value = first node)
//   'literal'                    -> string
//   count(path)                  -> number
//   not(expr)                    -> boolean
//   expr = expr, expr != expr    -> boolean (string comparison)
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xmlx/xml.hpp"

namespace morph::xmlx {

class Path {
 public:
  static Path parse(std::string_view text);

  /// Nodes selected relative to `ctx`. Attribute steps yield no nodes (use
  /// string_value, which understands them).
  std::vector<const XmlNode*> select(const XmlNode& ctx) const;

  /// XPath string value: the text content of the first selected node, the
  /// attribute value for @attr paths, "" when nothing matches.
  std::string string_value(const XmlNode& ctx) const;

  bool empty() const { return steps_.empty(); }

 private:
  struct Step {
    enum class Kind : uint8_t { kChild, kSelf, kParent, kText, kAttr } kind = Kind::kChild;
    std::string name;        // element or attribute name; "*" wildcard
    std::string pred_child;  // predicate [pred_child ...]; empty = none
    std::string pred_value;  // predicate comparison value
    bool pred_has_value = false;
    bool pred_negated = false;  // [child!='v']
  };
  std::vector<Step> steps_;

  void select_into(const XmlNode& ctx, size_t step_index,
                   std::vector<const XmlNode*>& out) const;
  friend class PathParserAccess;
};

class Expr {
 public:
  static Expr parse(std::string_view text);

  std::string string_value(const XmlNode& ctx) const;
  bool boolean(const XmlNode& ctx) const;
  double number(const XmlNode& ctx) const;

 private:
  enum class Kind : uint8_t { kPath, kLiteral, kNumber, kCount, kNot, kEq, kNe };
  Kind kind_ = Kind::kLiteral;
  Path path_;
  std::string literal_;
  double number_ = 0.0;
  std::shared_ptr<Expr> lhs_;
  std::shared_ptr<Expr> rhs_;
};

}  // namespace morph::xmlx
