// XSLT-lite: the stylesheet subset used by the paper's B2B and decoding
// experiments (§4.2, §5).
//
// Supported instructions (element names are matched literally with the
// conventional "xsl:" prefix):
//   xsl:stylesheet / xsl:transform      root container
//   xsl:template match="pattern"        pattern: "/", "/Name", "Name",
//                                       "a/b", "*"
//   xsl:apply-templates [select=path]
//   xsl:value-of select=expr
//   xsl:for-each select=path
//   xsl:if test=expr
//   xsl:choose > xsl:when test / xsl:otherwise
//   xsl:text
//   xsl:element name= / xsl:attribute name=
// Literal result elements are copied; their attribute values support the
// usual {expr} templates.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xmlx/xml.hpp"
#include "xmlx/xpath.hpp"

namespace morph::xmlx {

class Stylesheet {
 public:
  /// Parse a stylesheet from XML text. Throws XmlError.
  static Stylesheet parse(std::string_view xml_text);

  /// Apply to a source document; returns the result tree's root element.
  /// Throws XmlError when the transformation produces no root element or
  /// more than one.
  XmlNodePtr apply(const XmlNode& source_root) const;

  size_t template_count() const { return templates_.size(); }

 private:
  struct Template {
    std::string match;
    std::vector<std::string> steps;  // parsed pattern steps (last = leaf)
    bool anchored = false;           // pattern started with '/'
    int specificity = 0;
    const XmlNode* body = nullptr;
  };

  const Template* find_template(const XmlNode& node) const;
  static bool pattern_matches(const Template& t, const XmlNode& node);

  void instantiate(const XmlNode& body_node, const XmlNode& ctx, XmlNode& out) const;
  void instantiate_children(const XmlNode& body, const XmlNode& ctx, XmlNode& out) const;
  void apply_templates(const XmlNode& ctx, XmlNode& out) const;

  XmlNodePtr doc_;  // owns the stylesheet tree the templates point into
  std::vector<Template> templates_;
};

}  // namespace morph::xmlx
