#include "xmlx/xml.hpp"

#include <cctype>
#include <cstdlib>

namespace morph::xmlx {

const XmlNode* XmlNode::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->is_element() && c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->is_element() && c->name == child_name) out.push_back(c.get());
  }
  return out;
}

const std::string* XmlNode::attr(std::string_view attr_name) const {
  for (const auto& a : attrs) {
    if (a.name == attr_name) return &a.value;
  }
  return nullptr;
}

std::string XmlNode::text_content() const {
  if (is_text()) return text;
  std::string out;
  for (const auto& c : children) out += c->text_content();
  return out;
}

XmlNode& XmlNode::append_element(std::string element_name) {
  auto node = std::make_unique<XmlNode>();
  node->kind = Kind::kElement;
  node->name = std::move(element_name);
  node->parent = this;
  children.push_back(std::move(node));
  return *children.back();
}

XmlNode& XmlNode::append_text(std::string value) {
  auto node = std::make_unique<XmlNode>();
  node->kind = Kind::kText;
  node->text = std::move(value);
  node->parent = this;
  children.push_back(std::move(node));
  return *children.back();
}

void XmlNode::set_attr(std::string attr_name, std::string value) {
  for (auto& a : attrs) {
    if (a.name == attr_name) {
      a.value = std::move(value);
      return;
    }
  }
  attrs.push_back({std::move(attr_name), std::move(value)});
}

XmlNodePtr make_element(std::string name) {
  auto node = std::make_unique<XmlNode>();
  node->kind = XmlNode::Kind::kElement;
  node->name = std::move(name);
  return node;
}

void xml_escape_into(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view in, const XmlParseOptions& options) : in_(in), opt_(options) {}

  XmlNodePtr run() {
    skip_prolog_and_misc();
    if (pos_ >= in_.size() || in_[pos_] != '<') fail("expected root element");
    XmlNodePtr root = element();
    skip_misc();
    if (pos_ != in_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw XmlError(msg + " at offset " + std::to_string(pos_));
  }

  char peek(size_t ahead = 0) const {
    return pos_ + ahead < in_.size() ? in_[pos_ + ahead] : '\0';
  }
  bool starts_with(std::string_view s) const { return in_.substr(pos_, s.size()) == s; }
  void skip_ws() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }

  void skip_comment_or_pi() {
    if (starts_with("<!--")) {
      size_t end = in_.find("-->", pos_ + 4);
      if (end == std::string_view::npos) fail("unterminated comment");
      pos_ = end + 3;
    } else if (starts_with("<?")) {
      size_t end = in_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) fail("unterminated processing instruction");
      pos_ = end + 2;
    } else if (starts_with("<!DOCTYPE")) {
      // Skip to the matching '>' (no internal-subset support).
      size_t end = in_.find('>', pos_);
      if (end == std::string_view::npos) fail("unterminated DOCTYPE");
      pos_ = end + 1;
    }
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      size_t before = pos_;
      skip_comment_or_pi();
      if (pos_ == before) return;
    }
  }

  void skip_prolog_and_misc() { skip_misc(); }

  std::string name() {
    size_t start = pos_;
    auto is_name_char = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
             c == ':';
    };
    if (pos_ >= in_.size() ||
        !(std::isalpha(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_' ||
          in_[pos_] == ':')) {
      fail("expected name");
    }
    while (pos_ < in_.size() && is_name_char(in_[pos_])) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  void decode_entity(std::string& out) {
    // pos_ is at '&'.
    size_t semi = in_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) fail("bad entity reference");
    std::string_view ent = in_.substr(pos_ + 1, semi - pos_ - 1);
    if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long code = ent[1] == 'x' || ent[1] == 'X'
                      ? std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16)
                      : std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      if (code <= 0 || code > 0x10FFFF) fail("bad character reference");
      // Encode as UTF-8.
      auto c = static_cast<uint32_t>(code);
      if (c < 0x80) {
        out.push_back(static_cast<char>(c));
      } else if (c < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (c >> 6)));
        out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
      } else if (c < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (c >> 12)));
        out.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (c >> 18)));
        out.push_back(static_cast<char>(0x80 | ((c >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
      }
    } else {
      fail("unknown entity '&" + std::string(ent) + ";'");
    }
    pos_ = semi + 1;
  }

  std::string attr_value() {
    char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    ++pos_;
    std::string out;
    while (pos_ < in_.size() && in_[pos_] != quote) {
      if (in_[pos_] == '&') {
        decode_entity(out);
      } else if (in_[pos_] == '<') {
        fail("'<' in attribute value");
      } else {
        out.push_back(in_[pos_++]);
      }
    }
    if (pos_ >= in_.size()) fail("unterminated attribute value");
    ++pos_;
    return out;
  }

  XmlNodePtr element() {
    ++pos_;  // '<'
    XmlNodePtr node = make_element(name());
    for (;;) {
      skip_ws();
      if (peek() == '/') {
        if (peek(1) != '>') fail("malformed empty-element tag");
        pos_ += 2;
        return node;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      std::string attr_name = name();
      skip_ws();
      if (peek() != '=') fail("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      node->set_attr(std::move(attr_name), attr_value());
    }

    // Content until the matching end tag.
    std::string pending_text;
    auto flush_text = [&] {
      if (pending_text.empty()) return;
      bool all_ws = true;
      for (char c : pending_text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_ws = false;
          break;
        }
      }
      if (!(opt_.strip_whitespace_text && all_ws)) node->append_text(std::move(pending_text));
      pending_text.clear();
    };

    for (;;) {
      if (pos_ >= in_.size()) fail("unterminated element <" + node->name + ">");
      char c = in_[pos_];
      if (c == '<') {
        if (starts_with("</")) {
          flush_text();
          pos_ += 2;
          std::string end = name();
          if (end != node->name) {
            fail("mismatched end tag </" + end + "> for <" + node->name + ">");
          }
          skip_ws();
          if (peek() != '>') fail("malformed end tag");
          ++pos_;
          return node;
        }
        if (starts_with("<!--") || starts_with("<?")) {
          skip_comment_or_pi();
          continue;
        }
        if (starts_with("<![CDATA[")) {
          size_t end = in_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) fail("unterminated CDATA");
          pending_text += std::string(in_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        flush_text();
        XmlNodePtr kid = element();
        kid->parent = node.get();
        node->children.push_back(std::move(kid));
        continue;
      }
      if (c == '&') {
        decode_entity(pending_text);
        continue;
      }
      pending_text.push_back(c);
      ++pos_;
    }
  }

  std::string_view in_;
  XmlParseOptions opt_;
  size_t pos_ = 0;
};

void serialize_rec(const XmlNode& node, std::string& out, int indent, int depth) {
  if (node.is_text()) {
    xml_escape_into(out, node.text);
    return;
  }
  if (indent >= 0 && depth > 0) out += "\n" + std::string(static_cast<size_t>(indent * depth), ' ');
  out += "<" + node.name;
  for (const auto& a : node.attrs) {
    out += " " + a.name + "=\"";
    xml_escape_into(out, a.value);
    out += "\"";
  }
  if (node.children.empty()) {
    out += "/>";
    return;
  }
  out += ">";
  bool only_text = true;
  for (const auto& c : node.children) {
    if (!c->is_text()) only_text = false;
  }
  for (const auto& c : node.children) serialize_rec(*c, out, indent, depth + 1);
  if (indent >= 0 && !only_text) out += "\n" + std::string(static_cast<size_t>(indent * depth), ' ');
  out += "</" + node.name + ">";
}

}  // namespace

XmlNodePtr xml_parse(std::string_view input, const XmlParseOptions& options) {
  return Parser(input, options).run();
}

std::string xml_serialize(const XmlNode& root, int indent) {
  std::string out;
  serialize_rec(root, out, indent, 0);
  return out;
}

}  // namespace morph::xmlx
