#include "xmlx/xslt.hpp"

#include <algorithm>

namespace morph::xmlx {

namespace {

/// Evaluate an attribute value template: literal text with {expr} holes.
std::string eval_avt(const std::string& tmpl, const XmlNode& ctx) {
  std::string out;
  size_t pos = 0;
  while (pos < tmpl.size()) {
    size_t open = tmpl.find('{', pos);
    if (open == std::string::npos) {
      out += tmpl.substr(pos);
      break;
    }
    out += tmpl.substr(pos, open - pos);
    size_t close = tmpl.find('}', open);
    if (close == std::string::npos) throw XmlError("unterminated '{' in attribute template");
    out += Expr::parse(tmpl.substr(open + 1, close - open - 1)).string_value(ctx);
    pos = close + 1;
  }
  return out;
}

const std::string& required_attr(const XmlNode& n, const char* name) {
  const std::string* v = n.attr(name);
  if (v == nullptr) {
    throw XmlError("<" + n.name + "> requires a '" + name + "' attribute");
  }
  return *v;
}

}  // namespace

Stylesheet Stylesheet::parse(std::string_view xml_text) {
  Stylesheet sheet;
  sheet.doc_ = xml_parse(xml_text);
  const XmlNode& root = *sheet.doc_;
  if (root.name != "xsl:stylesheet" && root.name != "xsl:transform") {
    throw XmlError("stylesheet root must be xsl:stylesheet, got <" + root.name + ">");
  }
  for (const auto& child : root.children) {
    if (!child->is_element()) continue;
    if (child->name != "xsl:template") {
      throw XmlError("unsupported top-level element <" + child->name + ">");
    }
    Template t;
    t.match = required_attr(*child, "match");
    t.body = child.get();
    std::string_view pat = t.match;
    if (!pat.empty() && pat.front() == '/') {
      t.anchored = true;
      pat.remove_prefix(1);
    }
    // Split remaining steps on '/'.
    size_t pos = 0;
    while (pos < pat.size()) {
      size_t slash = pat.find('/', pos);
      std::string step(slash == std::string_view::npos ? pat.substr(pos)
                                                       : pat.substr(pos, slash - pos));
      if (step.empty()) throw XmlError("bad match pattern '" + t.match + "'");
      t.steps.push_back(std::move(step));
      pos = slash == std::string_view::npos ? pat.size() : slash + 1;
    }
    t.specificity = static_cast<int>(t.steps.size()) * 2 + (t.anchored ? 1 : 0);
    for (const auto& s : t.steps) {
      if (s == "*") t.specificity -= 1;  // wildcards are less specific
    }
    sheet.templates_.push_back(std::move(t));
  }
  if (sheet.templates_.empty()) throw XmlError("stylesheet has no templates");
  return sheet;
}

bool Stylesheet::pattern_matches(const Template& t, const XmlNode& node) {
  // "/" alone (no steps, anchored) matches the document root element.
  if (t.steps.empty()) return t.anchored && node.parent == nullptr;
  // Last step must match the node, previous steps its ancestors.
  const XmlNode* cur = &node;
  for (size_t i = t.steps.size(); i-- > 0;) {
    if (cur == nullptr || !cur->is_element()) return false;
    const std::string& step = t.steps[i];
    if (step != "*" && cur->name != step) return false;
    cur = cur->parent;
  }
  if (t.anchored && cur != nullptr) return false;  // must have consumed to root
  return true;
}

const Stylesheet::Template* Stylesheet::find_template(const XmlNode& node) const {
  const Template* best = nullptr;
  for (const auto& t : templates_) {
    if (!pattern_matches(t, node)) continue;
    if (best == nullptr || t.specificity > best->specificity) best = &t;
  }
  return best;
}

void Stylesheet::apply_templates(const XmlNode& ctx, XmlNode& out) const {
  if (ctx.is_text()) {
    out.append_text(ctx.text);  // built-in rule for text
    return;
  }
  const Template* t = find_template(ctx);
  if (t != nullptr) {
    instantiate_children(*t->body, ctx, out);
    return;
  }
  // Built-in rule for elements: recurse into children.
  for (const auto& child : ctx.children) apply_templates(*child, out);
}

void Stylesheet::instantiate_children(const XmlNode& body, const XmlNode& ctx,
                                      XmlNode& out) const {
  for (const auto& child : body.children) instantiate(*child, ctx, out);
}

void Stylesheet::instantiate(const XmlNode& n, const XmlNode& ctx, XmlNode& out) const {
  if (n.is_text()) {
    out.append_text(n.text);
    return;
  }
  const std::string& name = n.name;
  if (name.rfind("xsl:", 0) != 0) {
    // Literal result element.
    XmlNode& elem = out.append_element(name);
    for (const auto& a : n.attrs) elem.set_attr(a.name, eval_avt(a.value, ctx));
    instantiate_children(n, ctx, elem);
    return;
  }

  if (name == "xsl:value-of") {
    std::string v = Expr::parse(required_attr(n, "select")).string_value(ctx);
    if (!v.empty()) out.append_text(std::move(v));
    return;
  }
  if (name == "xsl:text") {
    out.append_text(n.text_content());
    return;
  }
  if (name == "xsl:for-each") {
    Path p = Path::parse(required_attr(n, "select"));
    for (const XmlNode* node : p.select(ctx)) instantiate_children(n, *node, out);
    return;
  }
  if (name == "xsl:if") {
    if (Expr::parse(required_attr(n, "test")).boolean(ctx)) instantiate_children(n, ctx, out);
    return;
  }
  if (name == "xsl:choose") {
    for (const auto& branch : n.children) {
      if (!branch->is_element()) continue;
      if (branch->name == "xsl:when") {
        if (Expr::parse(required_attr(*branch, "test")).boolean(ctx)) {
          instantiate_children(*branch, ctx, out);
          return;
        }
      } else if (branch->name == "xsl:otherwise") {
        instantiate_children(*branch, ctx, out);
        return;
      } else {
        throw XmlError("unexpected <" + branch->name + "> inside xsl:choose");
      }
    }
    return;
  }
  if (name == "xsl:apply-templates") {
    const std::string* select = n.attr("select");
    if (select != nullptr) {
      Path p = Path::parse(*select);
      for (const XmlNode* node : p.select(ctx)) apply_templates(*node, out);
    } else {
      for (const auto& child : ctx.children) apply_templates(*child, out);
    }
    return;
  }
  if (name == "xsl:element") {
    XmlNode& elem = out.append_element(eval_avt(required_attr(n, "name"), ctx));
    instantiate_children(n, ctx, elem);
    return;
  }
  if (name == "xsl:attribute") {
    // Evaluate the body into a scratch element, take its text.
    XmlNodePtr scratch = make_element("scratch");
    instantiate_children(n, ctx, *scratch);
    out.set_attr(eval_avt(required_attr(n, "name"), ctx), scratch->text_content());
    return;
  }
  throw XmlError("unsupported XSLT instruction <" + name + ">");
}

XmlNodePtr Stylesheet::apply(const XmlNode& source_root) const {
  XmlNodePtr holder = make_element("#result");
  apply_templates(source_root, *holder);
  // The result must be a single element.
  XmlNode* found = nullptr;
  for (auto& c : holder->children) {
    if (c->is_element()) {
      if (found != nullptr) throw XmlError("transformation produced multiple root elements");
      found = c.get();
    } else if (c->is_text()) {
      bool ws_only = c->text.find_first_not_of(" \t\r\n") == std::string::npos;
      if (!ws_only) throw XmlError("transformation produced top-level text");
    }
  }
  if (found == nullptr) throw XmlError("transformation produced no root element");
  for (auto& c : holder->children) {
    if (c.get() == found) {
      XmlNodePtr result = std::move(c);
      result->parent = nullptr;
      return result;
    }
  }
  throw XmlError("internal: result extraction failed");
}

}  // namespace morph::xmlx
