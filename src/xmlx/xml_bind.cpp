#include "xmlx/xml_bind.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pbio/record.hpp"

namespace morph::xmlx {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;

namespace {

void append_i64(std::string& out, int64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out.append(buf, static_cast<size_t>(n));
}

void append_f64(std::string& out, double v) {
  char buf[32];
  int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  out.append(buf, static_cast<size_t>(n));
}

void encode_struct(const FormatDescriptor& fmt, const uint8_t* rec, std::string& out);

void encode_scalar_element(const std::string& name, const FieldDescriptor& fd,
                           const uint8_t* valp, std::string& out) {
  out += '<';
  out += name;
  out += '>';
  FieldDescriptor tmp = fd;
  tmp.offset = 0;
  if (fd.kind == FieldKind::kFloat) {
    append_f64(out, pbio::read_scalar_f64(valp, tmp));
  } else if (fd.kind == FieldKind::kChar) {
    char c = static_cast<char>(pbio::read_scalar_i64(valp, tmp));
    xml_escape_into(out, std::string_view(&c, 1));
  } else {
    append_i64(out, pbio::read_scalar_i64(valp, tmp));
  }
  out += "</";
  out += name;
  out += '>';
}

void encode_string_element(const std::string& name, const char* s, std::string& out) {
  out += '<';
  out += name;
  out += '>';
  if (s != nullptr) xml_escape_into(out, s);
  out += "</";
  out += name;
  out += '>';
}

void encode_element_value(const FieldDescriptor& fd, const uint8_t* elem, std::string& out) {
  if (fd.element_format) {
    out += '<';
    out += fd.name;
    out += '>';
    encode_struct(*fd.element_format, elem, out);
    out += "</";
    out += fd.name;
    out += '>';
    return;
  }
  if (fd.element_kind == FieldKind::kString) {
    const char* s;
    std::memcpy(&s, elem, sizeof(char*));
    encode_string_element(fd.name, s, out);
    return;
  }
  FieldDescriptor tmp;
  tmp.kind = fd.element_kind;
  tmp.size = fd.element_size;
  tmp.offset = 0;
  encode_scalar_element(fd.name, tmp, elem, out);
}

void encode_struct(const FormatDescriptor& fmt, const uint8_t* rec, std::string& out) {
  for (const auto& fd : fmt.fields()) {
    switch (fd.kind) {
      case FieldKind::kString: {
        const char* s;
        std::memcpy(&s, rec + fd.offset, sizeof(char*));
        encode_string_element(fd.name, s, out);
        break;
      }
      case FieldKind::kStruct:
        out += '<';
        out += fd.name;
        out += '>';
        encode_struct(*fd.element_format, rec + fd.offset, out);
        out += "</";
        out += fd.name;
        out += '>';
        break;
      case FieldKind::kStaticArray: {
        uint32_t stride = fd.element_stride();
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          encode_element_value(fd, rec + fd.offset + i * stride, out);
        }
        break;
      }
      case FieldKind::kDynArray: {
        const FieldDescriptor* len = fmt.find_field(fd.length_field);
        int64_t count = len ? pbio::read_scalar_i64(rec, *len) : 0;
        const auto* elems = static_cast<const uint8_t*>(pbio::read_pointer(rec, fd));
        uint32_t stride = fd.element_stride();
        if (elems != nullptr) {
          for (int64_t i = 0; i < count; ++i) {
            encode_element_value(fd, elems + static_cast<size_t>(i) * stride, out);
          }
        }
        break;
      }
      default:
        encode_scalar_element(fd.name, fd, rec + fd.offset, out);
        break;
    }
  }
}

void decode_struct(const FormatDescriptor& fmt, const XmlNode& elem, uint8_t* rec,
                   RecordArena& arena);

void decode_scalar_text(const FieldDescriptor& fd, const std::string& text, uint8_t* valp) {
  FieldDescriptor tmp = fd;
  tmp.offset = 0;
  if (fd.kind == FieldKind::kFloat) {
    pbio::write_scalar_f64(valp, tmp, std::strtod(text.c_str(), nullptr));
  } else if (fd.kind == FieldKind::kChar) {
    pbio::write_scalar_i64(valp, tmp, text.empty() ? 0 : static_cast<unsigned char>(text[0]));
  } else {
    pbio::write_scalar_i64(valp, tmp, std::strtoll(text.c_str(), nullptr, 10));
  }
}

void decode_element_value(const FieldDescriptor& fd, const XmlNode& node, uint8_t* elem,
                          RecordArena& arena) {
  if (fd.element_format) {
    decode_struct(*fd.element_format, node, elem, arena);
    return;
  }
  if (fd.element_kind == FieldKind::kString) {
    char* s = arena.copy_string(node.text_content());
    std::memcpy(elem, &s, sizeof(char*));
    return;
  }
  FieldDescriptor tmp;
  tmp.kind = fd.element_kind;
  tmp.size = fd.element_size;
  tmp.offset = 0;
  decode_scalar_text(tmp, node.text_content(), elem);
}

void decode_struct(const FormatDescriptor& fmt, const XmlNode& elem, uint8_t* rec,
                   RecordArena& arena) {
  for (const auto& fd : fmt.fields()) {
    switch (fd.kind) {
      case FieldKind::kString: {
        const XmlNode* c = elem.child(fd.name);
        if (c != nullptr) {
          pbio::write_string_field(rec, fd, c->text_content(), arena);
        }
        break;
      }
      case FieldKind::kStruct: {
        const XmlNode* c = elem.child(fd.name);
        if (c != nullptr) decode_struct(*fd.element_format, *c, rec + fd.offset, arena);
        break;
      }
      case FieldKind::kStaticArray: {
        auto nodes = elem.children_named(fd.name);
        uint32_t stride = fd.element_stride();
        uint32_t n = std::min<uint32_t>(fd.static_count, static_cast<uint32_t>(nodes.size()));
        for (uint32_t i = 0; i < n; ++i) {
          decode_element_value(fd, *nodes[i], rec + fd.offset + i * stride, arena);
        }
        break;
      }
      case FieldKind::kDynArray: {
        auto nodes = elem.children_named(fd.name);
        uint32_t stride = fd.element_stride();
        if (!nodes.empty()) {
          auto* elems =
              static_cast<uint8_t*>(pbio::alloc_dyn_array(arena, stride, nodes.size()));
          for (size_t i = 0; i < nodes.size(); ++i) {
            decode_element_value(fd, *nodes[i], elems + i * stride, arena);
          }
          pbio::write_pointer(rec, fd, elems);
        }
        // The actual element count wins over any stale count element.
        const FieldDescriptor* len = fmt.find_field(fd.length_field);
        if (len != nullptr) {
          pbio::write_scalar_i64(rec, *len, static_cast<int64_t>(nodes.size()));
        }
        break;
      }
      default: {
        const XmlNode* c = elem.child(fd.name);
        if (c != nullptr) decode_scalar_text(fd, c->text_content(), rec + fd.offset);
        break;
      }
    }
  }
}

}  // namespace

void xml_encode_record(const FormatDescriptor& fmt, const void* record, std::string& out) {
  out.clear();
  out += '<';
  out += fmt.name();
  out += '>';
  encode_struct(fmt, static_cast<const uint8_t*>(record), out);
  out += "</";
  out += fmt.name();
  out += '>';
}

void* xml_decode_record(const FormatDescriptor& fmt, const XmlNode& element, RecordArena& arena) {
  void* rec = pbio::alloc_record(fmt, arena);
  decode_struct(fmt, element, static_cast<uint8_t*>(rec), arena);
  return rec;
}

void* xml_decode_record(const FormatDescriptor& fmt, std::string_view xml_text,
                        RecordArena& arena) {
  XmlNodePtr doc = xml_parse(xml_text);
  return xml_decode_record(fmt, *doc, arena);
}

}  // namespace morph::xmlx
