#include "xmlx/xpath.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace morph::xmlx {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

Path Path::parse(std::string_view text) {
  text = trim(text);
  Path p;
  if (text.empty()) throw XmlError("empty path");
  size_t pos = 0;
  while (pos < text.size()) {
    size_t slash = text.find('/', pos);
    std::string_view part =
        slash == std::string_view::npos ? text.substr(pos) : text.substr(pos, slash - pos);
    pos = slash == std::string_view::npos ? text.size() : slash + 1;
    part = trim(part);
    if (part.empty()) throw XmlError("empty path step in '" + std::string(text) + "'");

    Step step;
    if (part == ".") {
      step.kind = Step::Kind::kSelf;
    } else if (part == "..") {
      step.kind = Step::Kind::kParent;
    } else if (part == "text()") {
      step.kind = Step::Kind::kText;
    } else if (part[0] == '@') {
      step.kind = Step::Kind::kAttr;
      step.name = std::string(part.substr(1));
      if (step.name.empty()) throw XmlError("empty attribute name in path");
    } else {
      step.kind = Step::Kind::kChild;
      size_t bracket = part.find('[');
      if (bracket == std::string_view::npos) {
        step.name = std::string(part);
      } else {
        step.name = std::string(trim(part.substr(0, bracket)));
        if (part.back() != ']') throw XmlError("unterminated predicate in path");
        std::string_view pred = trim(part.substr(bracket + 1, part.size() - bracket - 2));
        // [child], [child='v'], [child!='v']
        size_t eq = pred.find('=');
        if (eq == std::string_view::npos) {
          step.pred_child = std::string(pred);
        } else {
          bool ne = eq > 0 && pred[eq - 1] == '!';
          std::string_view lhs = trim(pred.substr(0, ne ? eq - 1 : eq));
          std::string_view rhs = trim(pred.substr(eq + 1));
          if (rhs.size() < 2 || (rhs.front() != '\'' && rhs.front() != '"') ||
              rhs.back() != rhs.front()) {
            throw XmlError("predicate value must be quoted in '" + std::string(part) + "'");
          }
          step.pred_child = std::string(lhs);
          step.pred_value = std::string(rhs.substr(1, rhs.size() - 2));
          step.pred_has_value = true;
          step.pred_negated = ne;
        }
        if (step.pred_child.empty()) throw XmlError("empty predicate in path");
      }
      if (step.name.empty()) throw XmlError("empty element name in path");
    }
    p.steps_.push_back(std::move(step));
  }
  return p;
}

void Path::select_into(const XmlNode& ctx, size_t step_index,
                       std::vector<const XmlNode*>& out) const {
  if (step_index == steps_.size()) {
    out.push_back(&ctx);
    return;
  }
  const Step& s = steps_[step_index];
  switch (s.kind) {
    case Step::Kind::kSelf:
      select_into(ctx, step_index + 1, out);
      return;
    case Step::Kind::kParent:
      if (ctx.parent != nullptr) select_into(*ctx.parent, step_index + 1, out);
      return;
    case Step::Kind::kText:
      for (const auto& c : ctx.children) {
        if (c->is_text()) out.push_back(c.get());
      }
      return;
    case Step::Kind::kAttr:
      return;  // attributes are not nodes here; string_value handles them
    case Step::Kind::kChild: {
      for (const auto& c : ctx.children) {
        if (!c->is_element()) continue;
        if (s.name != "*" && c->name != s.name) continue;
        if (!s.pred_child.empty()) {
          const XmlNode* pc = c->child(s.pred_child);
          bool holds;
          if (!s.pred_has_value) {
            holds = pc != nullptr;
          } else {
            std::string v = pc == nullptr ? "" : pc->text_content();
            holds = s.pred_negated ? v != s.pred_value : v == s.pred_value;
          }
          if (!holds) continue;
        }
        select_into(*c, step_index + 1, out);
      }
      return;
    }
  }
}

std::vector<const XmlNode*> Path::select(const XmlNode& ctx) const {
  std::vector<const XmlNode*> out;
  select_into(ctx, 0, out);
  return out;
}

std::string Path::string_value(const XmlNode& ctx) const {
  if (!steps_.empty() && steps_.back().kind == Step::Kind::kAttr) {
    // Walk to the parent of the attribute step, then read the attribute.
    Path prefix;
    prefix.steps_.assign(steps_.begin(), steps_.end() - 1);
    std::vector<const XmlNode*> nodes;
    if (prefix.steps_.empty()) {
      nodes.push_back(&ctx);
    } else {
      nodes = prefix.select(ctx);
    }
    for (const XmlNode* n : nodes) {
      const std::string* v = n->attr(steps_.back().name);
      if (v != nullptr) return *v;
    }
    return "";
  }
  auto nodes = select(ctx);
  return nodes.empty() ? std::string() : nodes.front()->text_content();
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

Expr Expr::parse(std::string_view text) {
  text = trim(text);
  if (text.empty()) throw XmlError("empty expression");

  // Comparison at the top level (outside quotes/parens).
  int depth = 0;
  bool in_quote = false;
  char quote = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quote) {
      if (c == quote) in_quote = false;
      continue;
    }
    if (c == '\'' || c == '"') {
      in_quote = true;
      quote = c;
    } else if (c == '(' || c == '[') {
      ++depth;
    } else if (c == ')' || c == ']') {
      --depth;
    } else if (depth == 0 && c == '=' ) {
      bool ne = i > 0 && text[i - 1] == '!';
      Expr e;
      e.kind_ = ne ? Kind::kNe : Kind::kEq;
      e.lhs_ = std::make_shared<Expr>(parse(text.substr(0, ne ? i - 1 : i)));
      e.rhs_ = std::make_shared<Expr>(parse(text.substr(i + 1)));
      return e;
    }
  }

  if (text.front() == '\'' || text.front() == '"') {
    if (text.size() < 2 || text.back() != text.front()) throw XmlError("unterminated literal");
    Expr e;
    e.kind_ = Kind::kLiteral;
    e.literal_ = std::string(text.substr(1, text.size() - 2));
    return e;
  }
  if (std::isdigit(static_cast<unsigned char>(text.front())) ||
      (text.front() == '-' && text.size() > 1)) {
    Expr e;
    e.kind_ = Kind::kNumber;
    e.number_ = std::strtod(std::string(text).c_str(), nullptr);
    return e;
  }
  if (text.substr(0, 6) == "count(" && text.back() == ')') {
    Expr e;
    e.kind_ = Kind::kCount;
    e.path_ = Path::parse(text.substr(6, text.size() - 7));
    return e;
  }
  if (text.substr(0, 4) == "not(" && text.back() == ')') {
    Expr e;
    e.kind_ = Kind::kNot;
    e.lhs_ = std::make_shared<Expr>(parse(text.substr(4, text.size() - 5)));
    return e;
  }
  Expr e;
  e.kind_ = Kind::kPath;
  e.path_ = Path::parse(text);
  return e;
}

std::string Expr::string_value(const XmlNode& ctx) const {
  switch (kind_) {
    case Kind::kPath:
      return path_.string_value(ctx);
    case Kind::kLiteral:
      return literal_;
    case Kind::kNumber:
    case Kind::kCount: {
      double v = number(ctx);
      if (v == static_cast<long long>(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", v);
      return buf;
    }
    case Kind::kNot:
      return boolean(ctx) ? "true" : "false";
    case Kind::kEq:
    case Kind::kNe:
      return boolean(ctx) ? "true" : "false";
  }
  return "";
}

double Expr::number(const XmlNode& ctx) const {
  switch (kind_) {
    case Kind::kNumber:
      return number_;
    case Kind::kCount:
      return static_cast<double>(path_.select(ctx).size());
    default:
      return std::strtod(string_value(ctx).c_str(), nullptr);
  }
}

bool Expr::boolean(const XmlNode& ctx) const {
  switch (kind_) {
    case Kind::kPath:
      return !path_.select(ctx).empty() || !path_.string_value(ctx).empty();
    case Kind::kLiteral:
      return !literal_.empty();
    case Kind::kNumber:
      return number_ != 0.0;
    case Kind::kCount:
      return number(ctx) != 0.0;
    case Kind::kNot:
      return !lhs_->boolean(ctx);
    case Kind::kEq:
      return lhs_->string_value(ctx) == rhs_->string_value(ctx);
    case Kind::kNe:
      return lhs_->string_value(ctx) != rhs_->string_value(ctx);
  }
  return false;
}

}  // namespace morph::xmlx
