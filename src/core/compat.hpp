// Compatibility-space analysis (§3.1).
//
// The paper defines an application's *compatibility space* as the set of
// message formats it can successfully interoperate with, and presents
// morphing as a technique to expand it. This analyzer answers, without
// sending a single message: given the reader's formats, a set of incoming
// formats, and the declared transforms — which incoming formats are
// accepted, through which route, and at what mismatch cost.
#pragma once

#include <string>
#include <vector>

#include "core/match.hpp"
#include "core/transform.hpp"

namespace morph::core {

enum class CompatRoute : uint8_t {
  kExact,        // fingerprint-identical
  kPerfect,      // layout conversion only
  kReconcile,    // direct imperfect match (defaults / drops)
  kMorph,        // transform chain to a perfect match
  kMorphReconcile,  // transform chain to an imperfect match
  kIncompatible,
};

const char* compat_route_name(CompatRoute r);

struct CompatEntry {
  pbio::FormatPtr incoming;
  CompatRoute route = CompatRoute::kIncompatible;
  pbio::FormatPtr via;        // f1: the post-transform format (morph routes)
  pbio::FormatPtr delivered;  // f2: the reader format that handles it
  size_t chain_hops = 0;
  uint32_t diff12 = 0;
  double mismatch = 0.0;
};

/// Evaluate every incoming format against the reader's formats, with and
/// without the transform catalog, mirroring Algorithm 2's decision logic.
std::vector<CompatEntry> analyze_compatibility(const std::vector<pbio::FormatPtr>& incoming,
                                               const std::vector<pbio::FormatPtr>& readers,
                                               const TransformCatalog& transforms,
                                               const MatchThresholds& thresholds = {});

/// Render an analysis as an aligned text table (for examples/tools).
std::string render_compatibility_report(const std::vector<CompatEntry>& entries);

}  // namespace morph::core
