// MaxMatch: the paper's format-comparison machinery (§3.2).
//
//   diff(f1, f2)  — Algorithm 1: the number of basic fields present in f1
//                   but not in f2, recursing through complex fields.
//   Mr(f1, f2)    — Mismatch Ratio: diff(f2, f1) / W_f2.
//   MaxMatch      — best pair across two format sets subject to
//                   DIFF_THRESHOLD and MISMATCH_THRESHOLD, preferring least
//                   Mr, then least diff, deterministic tie-break.
#pragma once

#include <optional>
#include <vector>

#include "pbio/format.hpp"

namespace morph::core {

/// Total number of basic fields a single field contributes (the W_f used by
/// Algorithm 1 when a whole complex field is missing).
uint32_t field_weight(const pbio::FieldDescriptor& fd);

/// Algorithm 1. Counts the basic fields of f1 that f2 lacks. Membership is
/// by name plus type class: fixed scalars (int/uint/float/char/enum) match
/// each other, strings match strings, complex fields match complex fields
/// of the same field name and shape class (struct/array), recursing into
/// element formats.
uint32_t diff(const pbio::FormatDescriptor& f1, const pbio::FormatDescriptor& f2);

/// Mismatch Ratio Mr(f1, f2) = diff(f2, f1) / W_f2.
double mismatch_ratio(const pbio::FormatDescriptor& f1, const pbio::FormatDescriptor& f2);

/// A format pair is perfect iff diff is zero in both directions.
bool perfect_match(const pbio::FormatDescriptor& f1, const pbio::FormatDescriptor& f2);

struct MatchThresholds {
  /// Max tolerated diff(f1, f2). 0 admits only perfect matches (paper §3.2).
  uint32_t diff_threshold = 4;
  /// Max tolerated Mr(f1, f2).
  double mismatch_threshold = 0.5;
  /// Use the importance-weighted variant of diff / Mr (the paper's §6
  /// future-work extension): each missing field costs its declared
  /// FieldDescriptor::importance instead of 1, recursively scaled through
  /// complex fields. With all importances at 1 the result is identical to
  /// the unweighted algorithm.
  bool use_importance = false;
};

/// Importance-weighted W_f of a whole format.
uint32_t weighted_weight(const pbio::FormatDescriptor& fmt);

/// Importance-weighted Algorithm 1.
uint32_t weighted_diff(const pbio::FormatDescriptor& f1, const pbio::FormatDescriptor& f2);

/// Importance-weighted Mismatch Ratio.
double weighted_mismatch_ratio(const pbio::FormatDescriptor& f1,
                               const pbio::FormatDescriptor& f2);

struct MatchResult {
  pbio::FormatPtr f1;  // from the first set (sender side)
  pbio::FormatPtr f2;  // from the second set (receiver side)
  uint32_t diff12 = 0;
  uint32_t diff21 = 0;
  double mr = 0.0;
  bool perfect() const { return diff12 == 0 && diff21 == 0; }
};

/// MaxMatch(F1, F2): the best admissible pair, or nullopt when no pair
/// satisfies the thresholds. Formats are only compared when their names
/// match (Algorithm 2 builds the candidate sets by name already; this check
/// keeps direct calls safe too). Pass `require_same_name = false` to relax
/// that, e.g. for exploratory tooling.
std::optional<MatchResult> max_match(const std::vector<pbio::FormatPtr>& from,
                                     const std::vector<pbio::FormatPtr>& to,
                                     const MatchThresholds& thresholds = {},
                                     bool require_same_name = true);

}  // namespace morph::core
