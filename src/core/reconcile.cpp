#include "core/reconcile.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "pbio/record.hpp"

namespace morph::core {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;

namespace {

bool scalar_pair(const FieldDescriptor& a, const FieldDescriptor& b) {
  return pbio::is_fixed_scalar(a.kind) && pbio::is_fixed_scalar(b.kind);
}

bool compatible(const FieldDescriptor& s, const FieldDescriptor& d) {
  if (pbio::is_fixed_scalar(d.kind)) return scalar_pair(s, d);
  if (d.kind == FieldKind::kString) return s.kind == FieldKind::kString;
  if (d.kind == FieldKind::kStruct) return s.kind == FieldKind::kStruct;
  if (pbio::is_array(d.kind)) {
    if (!pbio::is_array(s.kind)) return false;
    bool s_struct = s.element_format != nullptr;
    bool d_struct = d.element_format != nullptr;
    if (s_struct != d_struct) return false;
    if (s_struct) return true;
    if (s.element_kind == FieldKind::kString || d.element_kind == FieldKind::kString) {
      return s.element_kind == d.element_kind;
    }
    return pbio::is_fixed_scalar(s.element_kind) && pbio::is_fixed_scalar(d.element_kind);
  }
  return false;
}

size_t count_missing(const FormatDescriptor& src, const FormatDescriptor& dst);

size_t count_missing_field(const FormatDescriptor& src, const FieldDescriptor& df) {
  const FieldDescriptor* sf = src.find_field(df.name);
  if (sf == nullptr || !compatible(*sf, df)) return 1;
  if (df.kind == FieldKind::kStruct || (pbio::is_array(df.kind) && df.element_format)) {
    return count_missing(*sf->element_format, *df.element_format);
  }
  return 0;
}

size_t count_missing(const FormatDescriptor& src, const FormatDescriptor& dst) {
  size_t n = 0;
  for (const auto& df : dst.fields()) n += count_missing_field(src, df);
  return n;
}

void copy_struct(const FormatDescriptor& src_fmt, const uint8_t* src, const FormatDescriptor& dst_fmt,
                 uint8_t* dst, RecordArena& arena);

void default_field(const FieldDescriptor& df, uint8_t* dst, RecordArena& arena) {
  if (pbio::is_fixed_scalar(df.kind)) {
    if (df.default_int) pbio::write_scalar_i64(dst, df, *df.default_int);
    if (df.default_float) pbio::write_scalar_f64(dst, df, *df.default_float);
  } else if (df.kind == FieldKind::kString) {
    if (df.default_string) pbio::write_string_field(dst, df, *df.default_string, arena);
  } else if (df.kind == FieldKind::kStruct) {
    for (const auto& sub : df.element_format->fields()) {
      default_field(sub, dst + df.offset, arena);
    }
  }
  // Arrays stay empty.
}

void copy_element(const FieldDescriptor& sf, const uint8_t* se, const FieldDescriptor& df,
                  uint8_t* de, RecordArena& arena) {
  if (df.element_format) {
    copy_struct(*sf.element_format, se, *df.element_format, de, arena);
    return;
  }
  if (df.element_kind == FieldKind::kString) {
    const char* s;
    std::memcpy(&s, se, sizeof(char*));
    char* copy = s == nullptr ? nullptr : arena.copy_string(s);
    std::memcpy(de, &copy, sizeof(char*));
    return;
  }
  FieldDescriptor stmp;
  stmp.kind = sf.element_kind;
  stmp.size = sf.element_size;
  stmp.offset = 0;
  FieldDescriptor dtmp;
  dtmp.kind = df.element_kind;
  dtmp.size = df.element_size;
  dtmp.offset = 0;
  if (dtmp.kind == FieldKind::kFloat || stmp.kind == FieldKind::kFloat) {
    pbio::write_scalar_f64(de, dtmp, pbio::read_scalar_f64(se, stmp));
  } else {
    pbio::write_scalar_i64(de, dtmp, pbio::read_scalar_i64(se, stmp));
  }
}

void copy_array(const FormatDescriptor& src_fmt, const uint8_t* src, const FieldDescriptor& sf,
                const FormatDescriptor& dst_fmt, uint8_t* dst, const FieldDescriptor& df,
                RecordArena& arena) {
  // Source extent.
  int64_t count;
  const uint8_t* se;
  if (sf.kind == FieldKind::kDynArray) {
    const FieldDescriptor* len = src_fmt.find_field(sf.length_field);
    count = len ? pbio::read_scalar_i64(src, *len) : 0;
    se = static_cast<const uint8_t*>(pbio::read_pointer(src, sf));
    if (se == nullptr) count = 0;
  } else {
    count = sf.static_count;
    se = src + sf.offset;
  }
  if (count < 0) count = 0;

  uint32_t s_stride = sf.element_stride();
  uint32_t d_stride = df.element_stride();

  uint8_t* de;
  int64_t copy_count = count;
  if (df.kind == FieldKind::kDynArray) {
    if (count == 0) {
      pbio::write_pointer(dst, df, nullptr);
    } else {
      de = static_cast<uint8_t*>(
          pbio::alloc_dyn_array(arena, d_stride, static_cast<uint64_t>(count)));
      pbio::write_pointer(dst, df, de);
      for (int64_t i = 0; i < count; ++i) {
        copy_element(sf, se + static_cast<size_t>(i) * s_stride, df,
                     de + static_cast<size_t>(i) * d_stride, arena);
      }
    }
    const FieldDescriptor* dlen = dst_fmt.find_field(df.length_field);
    if (dlen != nullptr) pbio::write_scalar_i64(dst, *dlen, count);
    return;
  }
  // Static destination: clip, leave the zeroed tail.
  de = dst + df.offset;
  copy_count = std::min<int64_t>(copy_count, df.static_count);
  for (int64_t i = 0; i < copy_count; ++i) {
    copy_element(sf, se + static_cast<size_t>(i) * s_stride, df,
                 de + static_cast<size_t>(i) * d_stride, arena);
  }
}

void copy_struct(const FormatDescriptor& src_fmt, const uint8_t* src, const FormatDescriptor& dst_fmt,
                 uint8_t* dst, RecordArena& arena) {
  for (const auto& df : dst_fmt.fields()) {
    const FieldDescriptor* sf = src_fmt.find_field(df.name);
    if (sf == nullptr || !compatible(*sf, df)) {
      default_field(df, dst, arena);
      continue;
    }
    switch (df.kind) {
      case FieldKind::kString: {
        std::string_view s = pbio::read_string_field(src, *sf);
        const char* sp = pbio::read_pointer(src, *sf) == nullptr ? nullptr : s.data();
        if (sp == nullptr) {
          pbio::write_pointer(dst, df, nullptr);
        } else {
          pbio::write_string_field(dst, df, s, arena);
        }
        break;
      }
      case FieldKind::kStruct:
        copy_struct(*sf->element_format, src + sf->offset, *df.element_format, dst + df.offset,
                    arena);
        break;
      case FieldKind::kStaticArray:
      case FieldKind::kDynArray:
        copy_array(src_fmt, src, *sf, dst_fmt, dst, df, arena);
        break;
      default: {  // fixed scalars
        if (df.kind == FieldKind::kFloat || sf->kind == FieldKind::kFloat) {
          pbio::write_scalar_f64(dst, df, pbio::read_scalar_f64(src, *sf));
        } else {
          pbio::write_scalar_i64(dst, df, pbio::read_scalar_i64(src, *sf));
        }
        break;
      }
    }
  }
}

}  // namespace

Reconciler::Reconciler(pbio::FormatPtr src_fmt, pbio::FormatPtr dst_fmt)
    : src_(std::move(src_fmt)), dst_(std::move(dst_fmt)) {
  if (!src_ || !dst_) throw FormatError("Reconciler: null formats");
  identity_ = src_->identical_to(*dst_);
  defaulted_ = count_missing(*src_, *dst_);
}

void* Reconciler::apply(const void* src_record, RecordArena& arena) const {
  void* dst = pbio::alloc_record(*dst_, arena);
  copy_struct(*src_, static_cast<const uint8_t*>(src_record), *dst_, static_cast<uint8_t*>(dst),
              arena);
  return dst;
}

}  // namespace morph::core
