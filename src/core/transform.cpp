#include "core/transform.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "ecode/fuse.hpp"
#include "pbio/record.hpp"

namespace morph::core {

using pbio::FormatPtr;

void TransformSpec::serialize(ByteBuffer& out) const {
  if (!src || !dst) throw FormatError("TransformSpec: null formats");
  src->serialize(out);
  dst->serialize(out);
  out.append_string(code);
  out.append_string(dst_param);
  out.append_string(src_param);
}

TransformSpec TransformSpec::deserialize(ByteReader& in) {
  TransformSpec spec;
  spec.src = pbio::FormatDescriptor::deserialize(in);
  spec.dst = pbio::FormatDescriptor::deserialize(in);
  spec.code = in.read_string();
  spec.dst_param = in.read_string();
  spec.src_param = in.read_string();
  if (spec.dst_param.empty() || spec.src_param.empty()) {
    throw DecodeError("TransformSpec: empty parameter names");
  }
  return spec;
}

void TransformCatalog::add(TransformSpec spec) {
  if (!spec.src || !spec.dst) throw FormatError("TransformCatalog: null formats");
  auto owned = std::make_unique<TransformSpec>(std::move(spec));
  by_src_[owned->src->fingerprint()].push_back(owned.get());
  specs_.push_back(std::move(owned));
}

std::vector<FormatPtr> TransformCatalog::closure(const FormatPtr& from) const {
  std::vector<FormatPtr> out;
  std::vector<uint64_t> seen;
  std::deque<FormatPtr> frontier;
  auto visit = [&](const FormatPtr& f) {
    for (uint64_t fp : seen) {
      if (fp == f->fingerprint()) return;
    }
    seen.push_back(f->fingerprint());
    out.push_back(f);
    frontier.push_back(f);
  };
  visit(from);
  while (!frontier.empty()) {
    FormatPtr cur = frontier.front();
    frontier.pop_front();
    auto it = by_src_.find(cur->fingerprint());
    if (it == by_src_.end()) continue;
    for (const TransformSpec* spec : it->second) visit(spec->dst);
  }
  return out;
}

std::optional<std::vector<const TransformSpec*>> TransformCatalog::chain(uint64_t from_fp,
                                                                         uint64_t to_fp) const {
  if (from_fp == to_fp) return std::vector<const TransformSpec*>{};
  // BFS storing the inbound edge per discovered node.
  std::unordered_map<uint64_t, const TransformSpec*> via;
  std::deque<uint64_t> frontier{from_fp};
  via[from_fp] = nullptr;
  while (!frontier.empty()) {
    uint64_t cur = frontier.front();
    frontier.pop_front();
    auto it = by_src_.find(cur);
    if (it == by_src_.end()) continue;
    for (const TransformSpec* spec : it->second) {
      uint64_t next = spec->dst->fingerprint();
      if (via.count(next) != 0) continue;
      via[next] = spec;
      if (next == to_fp) {
        std::vector<const TransformSpec*> path;
        uint64_t walk = to_fp;
        while (walk != from_fp) {
          const TransformSpec* edge = via[walk];
          path.push_back(edge);
          walk = edge->src->fingerprint();
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

MorphChain::MorphChain(const std::vector<const TransformSpec*>& specs, ecode::ExecBackend backend)
    : MorphChain(specs, [&] {
        ecode::CompileOptions o;
        o.backend = backend;
        return o;
      }()) {}

MorphChain::MorphChain(const std::vector<const TransformSpec*>& specs,
                       const ecode::CompileOptions& options, bool fuse) {
  if (specs.empty()) throw Error("MorphChain: empty spec list");
  // Every hop writes its destination record (parameter 0) from its source;
  // the caller's dst_params choice does not apply hop-wise.
  ecode::CompileOptions hop_options = options;
  hop_options.dst_params = {0};
  src_fmt_ = pbio::relayout(*specs.front()->src);
  FormatPtr cur = src_fmt_;
  for (size_t i = 0; i < specs.size(); ++i) {
    const TransformSpec* spec = specs[i];
    if (i > 0 && spec->src->fingerprint() != specs[i - 1]->dst->fingerprint()) {
      throw Error("MorphChain: specs do not chain");
    }
    FormatPtr dst = pbio::relayout(*spec->dst);
    Step step{ecode::Transform::compile(
                  spec->code, {{spec->dst_param, dst}, {spec->src_param, cur}}, hop_options),
              dst};
    steps_.push_back(std::move(step));
    cur = dst;
  }
  dst_fmt_ = cur;
  // Findings are immutable once the hops exist; collect them once so
  // verify_findings() can hand out a reference on the hot inspection paths.
  for (const auto& s : steps_) {
    verify_findings_.insert(verify_findings_.end(), s.transform.verify_findings().begin(),
                            s.transform.verify_findings().end());
  }
  if (fuse) {
    attempt_fusion(specs, hop_options);
  } else {
    fusion_bailout_ = "fusion disabled";
  }
}

void MorphChain::attempt_fusion(const std::vector<const TransformSpec*>& specs,
                                const ecode::CompileOptions& options) {
  if (specs.size() < 2) {
    fusion_bailout_ = "single-hop chain";
    return;
  }
  if (fuel_instrumented()) {
    // A fuel-guarded hop has its own per-hop budget; a fused program would
    // share one budget across all hops and give up at a different point.
    fusion_bailout_ = "fuel-instrumented hop";
    return;
  }
  std::vector<ecode::FuseHop> hops;
  hops.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    hops.push_back(ecode::FuseHop{specs[i]->code, specs[i]->dst_param, specs[i]->src_param,
                                  steps_[i].dst_fmt});
  }
  ecode::FuseResult fused = ecode::fuse_chain(hops);
  if (!fused.ok) {
    fusion_bailout_ = fused.bailout;
    return;
  }
  try {
    ecode::Transform t = ecode::Transform::compile(
        fused.source,
        {{specs.back()->dst_param, dst_fmt_}, {specs.front()->src_param, src_fmt_}}, options);
    if (t.fuel_instrumented()) {
      // The hops all certified but the fused program did not: running it
      // would introduce a fuel cliff the hop-wise path does not have.
      fusion_bailout_ = "fused program required fuel instrumentation";
      return;
    }
    fused_ = std::move(t);
    fused_source_ = std::move(fused.source);
  } catch (const ecode::VerifyError&) {
    fusion_bailout_ = "fused program failed verification";
  } catch (const EcodeError& e) {
    fusion_bailout_ = std::string("fused program failed to compile: ") + e.what();
  }
}

bool MorphChain::fuel_instrumented() const {
  for (const auto& s : steps_) {
    if (s.transform.fuel_instrumented()) return true;
  }
  return false;
}

bool MorphChain::jitted() const {
  for (const auto& s : steps_) {
    if (!s.transform.jitted()) return false;
  }
  return true;
}

void* MorphChain::apply(void* src_record, RecordArena& arena) const {
  if (fused_) {
    void* dst = pbio::alloc_record(*dst_fmt_, arena);
    fused_->run2(dst, src_record, arena);
    return dst;
  }
  return apply_hopwise(src_record, arena);
}

void* MorphChain::apply_hopwise(void* src_record, RecordArena& arena) const {
  void* cur = src_record;
  for (const auto& step : steps_) {
    void* dst = pbio::alloc_record(*step.dst_fmt, arena);
    step.transform.run2(dst, cur, arena);
    cur = dst;
  }
  return cur;
}

}  // namespace morph::core
