// Worker-pool front end for a shared Receiver: fans framed messages out
// across a fixed set of threads, each with its own RecordArena, so a broker
// or subscriber endpoint can decode/morph on every core at once.
//
// The pool adds no per-message synchronization beyond one queue operation;
// the Receiver itself is concurrency-safe (sharded decision cache,
// immutable compiled pipelines — see docs/CONCURRENCY.md). Handlers run on
// worker threads, possibly several at a time, and must be thread-safe.
// Delivery order across messages is unspecified; every submitted message is
// processed exactly once.
//
// Submitted buffers are NOT copied: they must stay alive and unchanged
// until drain() (or process_batch()) returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/receiver.hpp"

namespace morph::core {

/// One length-delimited encoded message, as produced by the transport
/// framing layer (a full wire message including header).
struct FramedMessage {
  const void* data = nullptr;
  size_t size = 0;
};

class ParallelReceiver {
 public:
  /// Spin up `threads` workers against `rx` (0 = hardware concurrency).
  /// The receiver must outlive the pool. Out-of-band resolution
  /// (ReceiverOptions::format_source) needs no special handling here: the
  /// fetch runs inside the cold fingerprint's once-guarded decision build,
  /// so one worker fetches while the others block on that entry only —
  /// other formats keep flowing on the remaining workers.
  explicit ParallelReceiver(Receiver& rx, size_t threads = 0);
  ~ParallelReceiver();

  ParallelReceiver(const ParallelReceiver&) = delete;
  ParallelReceiver& operator=(const ParallelReceiver&) = delete;

  size_t threads() const { return workers_.size(); }

  /// Enqueue one message for asynchronous processing.
  void submit(const void* buf, size_t size);

  /// Block until every submitted message has been fully processed and all
  /// workers are idle.
  void drain();

  /// submit() them all, then drain(): the batch equivalent of calling
  /// Receiver::process() in a loop, spread across the pool.
  void process_batch(const FramedMessage* msgs, size_t count);

  /// Messages fully processed (including rejected/defaulted ones).
  uint64_t processed() const { return processed_.load(std::memory_order_relaxed); }

  /// Messages whose processing threw (hostile frames, etc.). The exception
  /// is swallowed after counting: one bad message must not take down the
  /// pool. Inspect the receiver's own stats/log for details.
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  void worker_loop();

  Receiver& rx_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // queue became non-empty / stopping
  std::condition_variable idle_cv_;   // queue empty and no worker busy
  std::deque<FramedMessage> queue_;
  size_t busy_ = 0;
  bool stop_ = false;
  std::atomic<uint64_t> processed_{0};
  std::atomic<uint64_t> failed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace morph::core
