// Morph-plan linter: data-quality audit of transform specs and chains.
//
// The Ecode verifier (ecode/verify.hpp) proves safety — a transform cannot
// read out of bounds, leak uninitialized bytes, or loop forever. This layer
// answers the softer question an operator evolving a format cares about:
// does the morph *lose information*? It compiles each spec's code, runs the
// same abstract interpretation the verifier uses, and audits the store/read
// summaries for lossy narrowing, float truncation, signedness changes,
// source fields the transform silently drops, and destination fields it
// never assigns. Chains are additionally checked for fingerprint gaps and
// cycles.
//
// Lint findings are advisory by design (a morph that drops a field the new
// revision added is often exactly what the operator wants); only specs the
// safety verifier rejects outright produce error-severity findings.
#pragma once

#include <string>
#include <vector>

#include "core/transform.hpp"

namespace morph::core {

enum class LintSeverity : uint8_t { kNote, kWarning, kError };

enum class LintCheck : uint8_t {
  kVerifyError,      // the safety verifier rejected the program
  kUnassignedField,  // destination field never definitely assigned
  kLossyNarrowing,   // wider source value stored into a narrower field
  kFloatTruncation,  // float-derived value stored into an integer field
  kSignChange,       // signedness differs between source load and dest field
  kDroppedField,     // source field never read by the transform
  kChainGap,         // adjacent specs do not connect by fingerprint
  kChainCycle,       // a chain revisits a format revision
  kEmptyFormat,      // format descriptor declares no fields
  kDuplicateField,   // two sibling fields share a name
  kFieldOverlap,     // two sibling fields' byte ranges intersect
  kMissingDefault,   // field has no default for reconciliation to fill
};

const char* lint_check_name(LintCheck c);
const char* lint_severity_name(LintSeverity s);

struct LintFinding {
  LintCheck check = LintCheck::kVerifyError;
  LintSeverity severity = LintSeverity::kNote;
  std::string message;
  std::string field;  // dotted path when the finding names a field
  int line = 0;       // 1-based Ecode source line, 0 = not tied to a line

  std::string to_string() const;
};

struct LintReport {
  std::vector<LintFinding> findings;

  /// True when nothing at or above `fail_at` was found.
  bool ok(LintSeverity fail_at = LintSeverity::kError) const;
  std::string to_string() const;
};

/// Lint one spec. The code is compiled against host-native relayouts of the
/// spec's formats; a spec whose code does not compile (or fails the safety
/// verifier) yields error findings rather than throwing.
LintReport lint_spec(const TransformSpec& spec);

/// Lint a chain: per-hop spec findings (messages prefixed with the hop) plus
/// fingerprint gap/cycle checks across the sequence.
LintReport lint_chain(const std::vector<const TransformSpec*>& specs);

/// Lint a format descriptor that arrived from outside the process (the
/// format service's REGISTER path and the resolver's FETCH path run this
/// before a foreign descriptor enters a registry). The wire deserializer
/// already proves memory safety; this audits data quality: duplicate or
/// overlapping sibling fields (error/warning — a decoder would silently
/// favor one), empty formats, and fields reconciliation could only
/// zero-fill. Nested struct formats are audited recursively with dotted
/// field paths.
LintReport lint_format(const pbio::FormatDescriptor& fmt);

/// Lint the transforms attached to a fetched format against it.
LintReport lint_resolved(const pbio::FormatDescriptor& fmt,
                         const std::vector<TransformSpec>& transforms);

/// What an ingest point does with lint findings, mirroring the receiver's
/// VerifyPolicy: kOff skips the audit, kWarn logs findings and accepts,
/// kEnforce rejects descriptors with error-severity findings (counted in a
/// lint_rejected stat at each ingest point).
enum class LintPolicy : uint8_t { kOff, kWarn, kEnforce };

const char* lint_policy_name(LintPolicy p);

}  // namespace morph::core
