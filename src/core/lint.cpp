#include "core/lint.hpp"

#include <sstream>

#include "common/error.hpp"
#include "ecode/absint.hpp"
#include "ecode/compiler.hpp"
#include "ecode/parser.hpp"
#include "ecode/verify.hpp"
#include "pbio/format.hpp"

namespace morph::core {

namespace {

using ecode::absint::AbsintResult;
using ecode::absint::FieldSite;
using ecode::absint::Layout;
using ecode::absint::OriginKind;
using ecode::absint::StoreRec;
using ecode::absint::ValKind;
using pbio::FieldKind;

void add(LintReport& rep, LintCheck check, LintSeverity sev, std::string msg,
         std::string field = "", int line = 0) {
  LintFinding f;
  f.check = check;
  f.severity = sev;
  f.message = std::move(msg);
  f.field = std::move(field);
  f.line = line;
  rep.findings.push_back(std::move(f));
}

bool signed_kind(FieldKind k) { return k == FieldKind::kInt || k == FieldKind::kEnum; }
bool unsigned_kind(FieldKind k) { return k == FieldKind::kUInt || k == FieldKind::kChar; }

/// Dotted name of the source field a loaded value originated from.
std::string origin_name(const TransformSpec& spec, const Layout& src_layout,
                        const ecode::absint::Origin& o) {
  if (o.param == 1) {
    const FieldSite* site = src_layout.at(o.offset);
    if (site != nullptr) return spec.src_param + "." + site->path;
  }
  return "a " + std::to_string(o.size) + "-byte field";
}

}  // namespace

const char* lint_check_name(LintCheck c) {
  switch (c) {
    case LintCheck::kVerifyError: return "verify-error";
    case LintCheck::kUnassignedField: return "unassigned-field";
    case LintCheck::kLossyNarrowing: return "lossy-narrowing";
    case LintCheck::kFloatTruncation: return "float-truncation";
    case LintCheck::kSignChange: return "sign-change";
    case LintCheck::kDroppedField: return "dropped-field";
    case LintCheck::kChainGap: return "chain-gap";
    case LintCheck::kChainCycle: return "chain-cycle";
    case LintCheck::kEmptyFormat: return "empty-format";
    case LintCheck::kDuplicateField: return "duplicate-field";
    case LintCheck::kFieldOverlap: return "field-overlap";
    case LintCheck::kMissingDefault: return "missing-default";
  }
  return "?";
}

const char* lint_severity_name(LintSeverity s) {
  switch (s) {
    case LintSeverity::kNote: return "note";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "?";
}

const char* lint_policy_name(LintPolicy p) {
  switch (p) {
    case LintPolicy::kOff: return "off";
    case LintPolicy::kWarn: return "warn";
    case LintPolicy::kEnforce: return "enforce";
  }
  return "?";
}

std::string LintFinding::to_string() const {
  std::ostringstream os;
  os << lint_severity_name(severity) << ": " << lint_check_name(check) << ": " << message;
  if (line > 0) os << " (line " << line << ")";
  return os.str();
}

bool LintReport::ok(LintSeverity fail_at) const {
  for (const auto& f : findings) {
    if (static_cast<int>(f.severity) >= static_cast<int>(fail_at)) return false;
  }
  return true;
}

std::string LintReport::to_string() const {
  std::string out;
  for (const auto& f : findings) {
    out += f.to_string();
    out += '\n';
  }
  return out;
}

LintReport lint_spec(const TransformSpec& spec) {
  LintReport rep;
  if (!spec.src || !spec.dst) {
    add(rep, LintCheck::kVerifyError, LintSeverity::kError, "spec has null formats");
    return rep;
  }

  std::vector<ecode::RecordParam> params = {{spec.dst_param, pbio::relayout(*spec.dst)},
                                            {spec.src_param, pbio::relayout(*spec.src)}};
  ecode::Chunk chunk;
  try {
    auto prog = ecode::parse(spec.code);
    ecode::analyze(*prog, params);
    chunk = ecode::compile(*prog, params);
  } catch (const EcodeError& e) {
    add(rep, LintCheck::kVerifyError, LintSeverity::kError,
        std::string("code does not compile: ") + e.what());
    return rep;
  }

  // Safety first: everything the verifier rejects is a lint error; its
  // definite-assignment warnings become the unassigned-field audit.
  ecode::VerifyOptions vo;
  ecode::VerifyResult vr = ecode::verify(chunk, params, vo);
  for (const auto& f : vr.findings) {
    if (f.severity == ecode::VerifySeverity::kError) {
      add(rep, LintCheck::kVerifyError, LintSeverity::kError,
          std::string(ecode::verify_check_name(f.check)) + ": " + f.message, f.field, f.line);
    } else if (f.check == ecode::VerifyCheck::kUninitField) {
      add(rep, LintCheck::kUnassignedField, LintSeverity::kWarning, f.message, f.field, f.line);
    }
  }
  if (!vr.ok()) return rep;  // data-quality audit needs a safe program

  std::vector<ecode::VerifyFinding> scratch;
  AbsintResult ar = ecode::absint::interpret(chunk, params, vo, scratch);
  Layout src_layout(params[1].format.get());

  // Destination stores: narrowing, truncation, signedness.
  for (const StoreRec& st : ar.stores) {
    if (st.param != 0 || st.width == 0) continue;
    std::string dst_name = spec.dst_param + "." + st.path;
    const auto& v = st.value;
    if ((v.kind == ValKind::kInt || v.kind == ValKind::kFloat) &&
        v.origin.kind == OriginKind::kFieldLoad && v.origin.size > st.width) {
      add(rep, LintCheck::kLossyNarrowing, LintSeverity::kWarning,
          "value of " + std::to_string(v.origin.size) + "-byte '" +
              origin_name(spec, src_layout, v.origin) + "' narrowed into " +
              std::to_string(st.width) + "-byte '" + dst_name + "'",
          dst_name, st.line);
    }
    if (v.kind == ValKind::kInt && v.from_f2i) {
      add(rep, LintCheck::kFloatTruncation, LintSeverity::kNote,
          "float-valued expression truncated into integer field '" + dst_name + "'", dst_name,
          st.line);
    }
    if (st.scalar && v.origin.kind == OriginKind::kFieldLoad &&
        ((signed_kind(v.origin.fkind) && unsigned_kind(st.kind)) ||
         (unsigned_kind(v.origin.fkind) && signed_kind(st.kind)))) {
      add(rep, LintCheck::kSignChange, LintSeverity::kNote,
          "'" + origin_name(spec, src_layout, v.origin) + "' and '" + dst_name +
              "' differ in signedness",
          dst_name, st.line);
    }
  }

  // Source fields the transform never reads: their data does not survive
  // the morph. Weighted by the descriptor's importance, the same knob the
  // matcher uses.
  const auto& src_sum = ar.params[1];
  for (const FieldSite& site : src_layout.sites()) {
    bool read = false;
    for (int64_t b = site.start; b < site.start + static_cast<int64_t>(site.size); ++b) {
      if (b >= 0 && b < static_cast<int64_t>(src_sum.ever_read.size()) &&
          src_sum.ever_read[static_cast<size_t>(b)] != 0) {
        read = true;
        break;
      }
    }
    if (read) continue;
    std::string name = spec.src_param + "." + site.path;
    LintSeverity sev =
        site.fd != nullptr && site.fd->importance > 1 ? LintSeverity::kWarning : LintSeverity::kNote;
    add(rep, LintCheck::kDroppedField, sev,
        "source field '" + name + "' is never read; its data is dropped by the morph", name);
  }

  return rep;
}

LintReport lint_chain(const std::vector<const TransformSpec*>& specs) {
  LintReport rep;
  if (specs.empty()) {
    add(rep, LintCheck::kChainGap, LintSeverity::kError, "chain is empty");
    return rep;
  }
  std::vector<uint64_t> fps{specs.front()->src->fingerprint()};
  for (size_t i = 0; i < specs.size(); ++i) {
    const TransformSpec* s = specs[i];
    if (i > 0 && s->src->fingerprint() != specs[i - 1]->dst->fingerprint()) {
      add(rep, LintCheck::kChainGap, LintSeverity::kError,
          "hop " + std::to_string(i) + " ('" + s->src->name() +
              "') does not consume the format hop " + std::to_string(i - 1) + " produces");
    }
    uint64_t out_fp = s->dst->fingerprint();
    for (uint64_t fp : fps) {
      if (fp == out_fp) {
        add(rep, LintCheck::kChainCycle, LintSeverity::kWarning,
            "hop " + std::to_string(i) + " returns to a format already in the chain ('" +
                s->dst->name() + "')");
        break;
      }
    }
    fps.push_back(out_fp);

    LintReport hop = lint_spec(*s);
    for (LintFinding& f : hop.findings) {
      f.message = "hop " + std::to_string(i) + ": " + f.message;
      rep.findings.push_back(std::move(f));
    }
  }
  return rep;
}

namespace {

void lint_format_rec(LintReport& rep, const pbio::FormatDescriptor& fmt,
                     const std::string& prefix, int depth) {
  if (depth > static_cast<int>(pbio::FormatDescriptor::kMaxNesting)) return;
  const auto& fields = fmt.fields();
  if (fields.empty()) {
    add(rep, LintCheck::kEmptyFormat, LintSeverity::kError,
        "format '" + fmt.name() + "' declares no fields", prefix);
    return;
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    const auto& a = fields[i];
    std::string path = prefix.empty() ? a.name : prefix + "." + a.name;
    for (size_t j = i + 1; j < fields.size(); ++j) {
      const auto& b = fields[j];
      if (a.name == b.name) {
        add(rep, LintCheck::kDuplicateField, LintSeverity::kError,
            "format '" + fmt.name() + "' declares '" + a.name +
                "' twice; by-name conversion would silently pick one",
            path);
      } else if (a.offset < b.offset + b.size && b.offset < a.offset + a.size) {
        add(rep, LintCheck::kFieldOverlap, LintSeverity::kWarning,
            "fields '" + a.name + "' and '" + b.name + "' of '" + fmt.name() +
                "' occupy overlapping bytes",
            path);
      }
    }
    bool has_default = a.default_int || a.default_float || a.default_string;
    if (!has_default && (a.kind == FieldKind::kInt || a.kind == FieldKind::kUInt ||
                         a.kind == FieldKind::kFloat || a.kind == FieldKind::kEnum)) {
      add(rep, LintCheck::kMissingDefault, LintSeverity::kNote,
          "field '" + path + "' of '" + fmt.name() +
              "' has no default; reconciliation can only zero-fill it",
          path);
    }
    if (a.element_format != nullptr) lint_format_rec(rep, *a.element_format, path, depth + 1);
  }
}

}  // namespace

LintReport lint_format(const pbio::FormatDescriptor& fmt) {
  LintReport rep;
  lint_format_rec(rep, fmt, "", 0);
  return rep;
}

LintReport lint_resolved(const pbio::FormatDescriptor& fmt,
                         const std::vector<TransformSpec>& transforms) {
  LintReport rep = lint_format(fmt);
  for (size_t i = 0; i < transforms.size(); ++i) {
    const TransformSpec& s = transforms[i];
    if (!s.src || s.src->fingerprint() != fmt.fingerprint()) {
      add(rep, LintCheck::kChainGap, LintSeverity::kError,
          "attached transform " + std::to_string(i) + " does not consume '" + fmt.name() + "'");
      continue;
    }
    LintReport spec_rep = lint_spec(s);
    for (LintFinding& f : spec_rep.findings) {
      f.message = "transform " + std::to_string(i) + ": " + f.message;
      rep.findings.push_back(std::move(f));
    }
  }
  return rep;
}

}  // namespace morph::core
