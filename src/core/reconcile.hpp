// Reconciliation of imperfect matches (Algorithm 2, lines 26-28): copy a
// native record of one format into a native record of another, matching
// fields by name, filling declared defaults for fields the source lacks,
// and dropping source fields the destination does not know.
//
// This is the native-to-native sibling of pbio::ConversionPlan (which reads
// encoded wire bytes). It runs only on the imperfect-match tail of the
// morph pipeline, so it favors clarity over raw speed.
#pragma once

#include "common/arena.hpp"
#include "pbio/format.hpp"

namespace morph::core {

class Reconciler {
 public:
  Reconciler(pbio::FormatPtr src_fmt, pbio::FormatPtr dst_fmt);

  const pbio::FormatPtr& src_format() const { return src_; }
  const pbio::FormatPtr& dst_format() const { return dst_; }

  /// True when the two formats are layout-identical and reconciliation
  /// would be a pure copy (callers can skip the call and reuse the record).
  bool identity() const { return identity_; }

  /// Number of destination fields that had no usable source.
  size_t defaulted_fields() const { return defaulted_; }

  /// Copy + default + drop into a fresh record allocated from `arena`.
  void* apply(const void* src_record, RecordArena& arena) const;

 private:
  pbio::FormatPtr src_;
  pbio::FormatPtr dst_;
  bool identity_ = false;
  size_t defaulted_ = 0;
};

}  // namespace morph::core
