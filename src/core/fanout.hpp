// Broker-scale fan-out planning: morph once per target format, not once per
// subscriber.
//
// A publisher whose channel has 10k subscribers spread over 3 format
// revisions should pay 3 morphs per event, not 10k. The FanoutPlanner
// compiles and caches one GroupPlan per (source format, target fingerprint)
// pair; a plan bundles the whole per-group pipeline — decode the publisher's
// wire bytes into the chain's input layout, run the (fused) retro-transform
// chain once, encode the morphed record once — so the broker can hand the
// same encoded payload to every subscriber in the group.
//
// The cache follows the Receiver's sharded decision-cache discipline
// (receiver.cpp): shards guarded by shared_mutex for lookup, a once_flag per
// entry so a plan compiles exactly once under stampede, and shared_ptr
// entries so plans handed out survive cache flushes triggered by
// learn_transform or overflow. plan() and GroupPlan::morph()/encode() are
// safe to call from any thread; the planner must outlive the plans it
// returns.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "core/transform.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"

namespace morph::core {

struct FanoutPlannerOptions {
  ecode::ExecBackend backend = ecode::ExecBackend::kAuto;
  /// Transform specs reach the planner from peers, so the same trust
  /// boundary as ReceiverOptions::verify applies. A chain failing
  /// enforcement makes its target unreachable (the caller falls back to
  /// per-subscriber delivery); nothing is ever delivered un-verified.
  VerifyPolicy verify = VerifyPolicy::kOff;
  int64_t verify_fuel_limit = 1 << 20;
  /// Fuse multi-hop chains into one compiled transform (ecode/fuse.hpp).
  bool fuse = true;
  /// Cache bound, same rationale as ReceiverOptions::max_cached_decisions:
  /// plans are recomputable, so overflow flushes the whole cache.
  size_t max_cached_plans = 1024;
};

/// The compiled pipeline for one fan-out group. Immutable after build;
/// morph() and encode() are const and thread-safe (each call materializes
/// into the caller's arena/buffer).
class GroupPlan {
 public:
  /// False when the target fingerprint has no learned format definition or
  /// no transform chain from the source — the caller must fall back to
  /// per-subscriber delivery for that group. Also false when the chain was
  /// rejected by the static verifier under VerifyPolicy::kEnforce.
  bool reachable() const { return reachable_; }

  /// True when target == source: no morph needed, the group can reuse the
  /// publisher's own wire encoding.
  bool identity() const { return chain_ == nullptr; }

  const pbio::FormatPtr& source() const { return source_; }
  /// Format the group's records are encoded in. For morphing plans this is
  /// the host-native relayout of the chain's destination (same fingerprint
  /// as the subscriber's registered format whenever both ends share a
  /// layout; a foreign-layout subscriber reconciles it as a perfect match).
  const pbio::FormatPtr& target() const { return target_; }
  const MorphChain* chain() const { return chain_.get(); }

  /// Decode the publisher's wire bytes (PBIO message, no frame header) and
  /// run the chain once — the receiver pipeline executed once per group
  /// instead of once per subscriber. Returns the morphed native record,
  /// arena-owned. Identity plans just decode.
  void* morph(const void* wire, size_t size, RecordArena& arena) const;

  /// Same as morph() but hop-wise (never fused) — the reference execution
  /// the differential tests compare fused output against.
  void* morph_hopwise(const void* wire, size_t size, RecordArena& arena) const;

  /// Encode a record produced by morph() into `out`; the shared per-group
  /// encode. Returns the encoded size.
  size_t encode(const void* record, ByteBuffer& out) const;

 private:
  friend class FanoutPlanner;

  pbio::FormatPtr source_;
  pbio::FormatPtr target_;
  std::shared_ptr<MorphChain> chain_;  // null for identity plans
  std::unique_ptr<pbio::ConversionPlan> decode_;
  std::unique_ptr<pbio::Encoder> encoder_;
  bool reachable_ = false;
};

/// Point-in-time copy of the planner's counters.
struct FanoutPlannerStats {
  uint64_t plans_requested = 0;
  uint64_t cache_hits = 0;
  uint64_t plans_built = 0;
  uint64_t unreachable = 0;  // builds that produced a non-reachable plan
  uint64_t chains_fused = 0;
  uint64_t fusion_bailouts = 0;
  uint64_t verify_rejected = 0;
  uint64_t cache_flushes = 0;
};

class FanoutPlanner {
 public:
  explicit FanoutPlanner(FanoutPlannerOptions options = {});
  ~FanoutPlanner();

  /// Learn a transform (typically a declared retro-transform). Flushes the
  /// plan cache: cached plans may be stale once new chains exist. The
  /// spec's formats are learned as a side effect.
  void learn_transform(TransformSpec spec);

  /// Learn a format definition (e.g. a subscriber-announced target that no
  /// transform mentions). Idempotent.
  pbio::FormatPtr learn_format(pbio::FormatPtr fmt);

  /// The plan for delivering `source`-format events to subscribers whose
  /// registered format has fingerprint `target_fp`. Never null; check
  /// reachable(). Concurrent callers of the same cold key block on one
  /// build (once_flag), as in the receiver's decision cache.
  std::shared_ptr<const GroupPlan> plan(const pbio::FormatPtr& source, uint64_t target_fp);

  FanoutPlannerStats stats() const;
  size_t cached_plans() const;

 private:
  struct PlanKey {
    uint64_t src = 0;
    uint64_t dst = 0;
    bool operator==(const PlanKey& o) const { return src == o.src && dst == o.dst; }
  };
  struct PlanKeyHash {
    size_t operator()(const PlanKey& k) const {
      uint64_t h = k.src * 0x9e3779b97f4a7c15ull ^ (k.dst + 0x517cc1b727220a95ull);
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct CacheEntry {
    std::once_flag once;
    std::shared_ptr<const GroupPlan> plan;
  };
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<PlanKey, std::shared_ptr<CacheEntry>, PlanKeyHash> entries;
  };

  Shard& shard_for(const PlanKey& key);
  std::shared_ptr<const GroupPlan> build_plan(const pbio::FormatPtr& source, uint64_t target_fp);
  void flush_cache();

  FanoutPlannerOptions options_;
  std::array<Shard, kShards> shards_;
  /// Shared for plan builds, exclusive for learn_transform — same
  /// config-vs-build locking as the receiver.
  mutable std::shared_mutex config_mutex_;
  TransformCatalog transforms_;
  pbio::FormatRegistry formats_;

  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace morph::core
