// Out-of-band format resolution hook: the receiver side of the paper's
// third-party format server.
//
// core must not depend on any concrete transport, so the receiver talks to
// an abstract FormatSource. The networked implementation (fmtsvc's
// FormatResolver, with caching, retries, and single-flight deduplication)
// lives above the transport layer and is plugged in through
// ReceiverOptions::format_source.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/transform.hpp"
#include "pbio/format.hpp"

namespace morph::core {

/// What one fingerprint resolves to: the format itself plus every transform
/// spec the writer registered alongside it (the paper's "the writer may also
/// specify a set of transformations" — they travel with the meta-data).
struct ResolvedFormat {
  pbio::FormatPtr format;
  std::vector<TransformSpec> transforms;
};

/// A source of format meta-data for fingerprints the receiver has never
/// seen. resolve() may block (network fetch with retries); it is called
/// outside every receiver lock, from whichever thread first sees the
/// unknown fingerprint. Implementations must be safe to call concurrently.
class FormatSource {
 public:
  virtual ~FormatSource() = default;

  /// Resolve `fingerprint` to its descriptor (+ transforms), or nullopt if
  /// the source does not know it / cannot be reached within its deadline.
  virtual std::optional<ResolvedFormat> resolve(uint64_t fingerprint) = 0;
};

/// What a receiver does with a data frame whose fingerprint has no learned
/// format definition:
///   kFail           never consult the FormatSource — reject immediately and
///                   cache the rejection (the legacy inline-only behavior);
///   kFetch          ask the FormatSource once per decision build; a failed
///                   fetch caches the rejection like any other decision
///                   (recoverable only by inline meta-data or a transform
///                   registration, both of which invalidate the cache);
///   kFetchOrInline  ask the FormatSource, but treat a failed fetch as
///                   *provisional*: the rejection is not cached, so later
///                   messages retry the fetch (rate-limited by the source's
///                   negative cache) and an inline FormatDef arriving in the
///                   meantime recovers immediately — graceful degradation to
///                   the legacy path when the service is down.
enum class ResolvePolicy : uint8_t { kFail, kFetch, kFetchOrInline };

const char* resolve_policy_name(ResolvePolicy p);

}  // namespace morph::core
