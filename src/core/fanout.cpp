#include "core/fanout.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace morph::core {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

/// Process-wide planner metrics, resolved once (registry pointers are valid
/// forever; metrics are never erased).
struct PlannerMetrics {
  obs::Counter& hits = obs::metrics().counter("morph_fanout_plans_total{result=\"hit\"}");
  obs::Counter& built = obs::metrics().counter("morph_fanout_plans_total{result=\"built\"}");
  obs::Counter& unreachable =
      obs::metrics().counter("morph_fanout_plans_total{result=\"unreachable\"}");
  obs::Counter& fused = obs::metrics().counter("morph_fanout_chain_fusion_total{result=\"fused\"}");
  obs::Counter& bailout =
      obs::metrics().counter("morph_fanout_chain_fusion_total{result=\"bailout\"}");
  obs::Counter& verify_rejected = obs::metrics().counter("morph_fanout_verify_rejected_total");
  obs::Counter& flushes = obs::metrics().counter("morph_fanout_cache_flushes_total");
  obs::Histogram& build_ns = obs::metrics().histogram("morph_span_ns{span=\"fanout.plan_build\"}");
};

PlannerMetrics& pm() {
  static PlannerMetrics* m = new PlannerMetrics();  // leaked: outlives all planners
  return *m;
}
}  // namespace

struct FanoutPlanner::AtomicStats {
  std::atomic<uint64_t> plans_requested{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> plans_built{0};
  std::atomic<uint64_t> unreachable{0};
  std::atomic<uint64_t> chains_fused{0};
  std::atomic<uint64_t> fusion_bailouts{0};
  std::atomic<uint64_t> verify_rejected{0};
  std::atomic<uint64_t> cache_flushes{0};
};

void* GroupPlan::morph(const void* wire, size_t size, RecordArena& arena) const {
  void* rec = decode_->execute(wire, size, arena);
  if (chain_ == nullptr) return rec;
  return chain_->apply(rec, arena);
}

void* GroupPlan::morph_hopwise(const void* wire, size_t size, RecordArena& arena) const {
  void* rec = decode_->execute(wire, size, arena);
  if (chain_ == nullptr) return rec;
  return chain_->apply_hopwise(rec, arena);
}

size_t GroupPlan::encode(const void* record, ByteBuffer& out) const {
  return encoder_->encode(record, out);
}

FanoutPlanner::FanoutPlanner(FanoutPlannerOptions options)
    : options_(options), stats_(std::make_unique<AtomicStats>()) {}

FanoutPlanner::~FanoutPlanner() = default;

FanoutPlanner::Shard& FanoutPlanner::shard_for(const PlanKey& key) {
  size_t h = PlanKeyHash{}(key);
  return shards_[h & (kShards - 1)];
}

void FanoutPlanner::learn_transform(TransformSpec spec) {
  formats_.register_format(spec.src);
  formats_.register_format(spec.dst);
  {
    std::unique_lock lock(config_mutex_);
    transforms_.add(std::move(spec));
  }
  // New chains may supersede cached plans (e.g. a formerly unreachable
  // target becomes reachable). Plans already handed out stay valid — they
  // are shared_ptr-owned — they are just no longer returned.
  flush_cache();
}

pbio::FormatPtr FanoutPlanner::learn_format(pbio::FormatPtr fmt) {
  return formats_.register_format(std::move(fmt));
}

void FanoutPlanner::flush_cache() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard.mutex);
    shard.entries.clear();
  }
  stats_->cache_flushes.fetch_add(1, kRelaxed);
  pm().flushes.inc();
}

std::shared_ptr<const GroupPlan> FanoutPlanner::plan(const pbio::FormatPtr& source,
                                                     uint64_t target_fp) {
  stats_->plans_requested.fetch_add(1, kRelaxed);
  formats_.register_format(source);

  PlanKey key{source->fingerprint(), target_fp};
  Shard& shard = shard_for(key);

  std::shared_ptr<CacheEntry> entry;
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) entry = it->second;
  }
  bool inserted = false;
  if (entry == nullptr) {
    std::unique_lock lock(shard.mutex);
    auto [it, fresh] = shard.entries.try_emplace(key);
    if (fresh) it->second = std::make_shared<CacheEntry>();
    entry = it->second;
    inserted = fresh;
  }

  bool built_here = false;
  std::call_once(entry->once, [&] {
    entry->plan = build_plan(source, target_fp);
    built_here = true;
  });
  if (built_here) {
    stats_->plans_built.fetch_add(1, kRelaxed);
    pm().built.inc();
    if (!entry->plan->reachable()) {
      stats_->unreachable.fetch_add(1, kRelaxed);
      pm().unreachable.inc();
    }
  } else {
    stats_->cache_hits.fetch_add(1, kRelaxed);
    pm().hits.inc();
  }

  // Bound the cache: recomputable, so overflow just flushes (the hostile
  // peer streaming fresh fingerprints costs time, not memory).
  if (inserted && cached_plans() > options_.max_cached_plans) flush_cache();

  return entry->plan;
}

std::shared_ptr<const GroupPlan> FanoutPlanner::build_plan(const pbio::FormatPtr& source,
                                                           uint64_t target_fp) {
  uint64_t t0 = obs::monotonic_ns();
  auto plan = std::make_shared<GroupPlan>();
  plan->source_ = source;

  if (target_fp == source->fingerprint()) {
    // Identity group: subscribers registered the publish format itself.
    // The broker reuses the publisher's wire encoding, but the plan can
    // still decode/encode for callers that want a materialized record.
    plan->target_ = source;
    plan->decode_ = std::make_unique<pbio::ConversionPlan>(source, source);
    plan->encoder_ = std::make_unique<pbio::Encoder>(source);
    plan->reachable_ = true;
    pm().build_ns.record(obs::monotonic_ns() - t0);
    return plan;
  }

  std::shared_lock config_lock(config_mutex_);
  pbio::FormatPtr target = formats_.by_fingerprint(target_fp);
  if (target == nullptr) {
    MORPH_LOG_DEBUG("fanout") << "no format definition for target fingerprint " << target_fp;
    return plan;
  }
  auto specs = transforms_.chain(source->fingerprint(), target_fp);
  if (!specs || specs->empty()) {
    MORPH_LOG_DEBUG("fanout") << "no transform chain " << source->name() << " -> "
                              << target->name() << " (" << target_fp << ")";
    return plan;
  }

  ecode::CompileOptions copts;
  copts.backend = options_.backend;
  copts.verify = options_.verify;
  copts.fuel_limit = options_.verify_fuel_limit;
  try {
    plan->chain_ = std::make_shared<MorphChain>(*specs, copts, options_.fuse);
  } catch (const ecode::VerifyError& e) {
    stats_->verify_rejected.fetch_add(1, kRelaxed);
    pm().verify_rejected.inc();
    std::ostringstream msg;
    msg << "fan-out chain for target fingerprint " << target_fp
        << " rejected by the static verifier:";
    for (const auto& f : e.result().findings) msg << "\n  " << f.to_string();
    MORPH_LOG_WARN("fanout") << msg.str();
    return plan;
  }
  if (plan->chain_->fused()) {
    stats_->chains_fused.fetch_add(1, kRelaxed);
    pm().fused.inc();
  } else if (plan->chain_->hops() > 1) {
    stats_->fusion_bailouts.fetch_add(1, kRelaxed);
    pm().bailout.inc();
  }

  // The chain compiles against host-native relayouts; decode the publisher's
  // wire bytes straight into the chain's input layout (decode-into-morph),
  // and encode from the chain's output layout.
  plan->target_ = plan->chain_->dst_format();
  plan->decode_ = std::make_unique<pbio::ConversionPlan>(source, plan->chain_->src_format());
  plan->encoder_ = std::make_unique<pbio::Encoder>(plan->target_);
  plan->reachable_ = true;
  pm().build_ns.record(obs::monotonic_ns() - t0);
  return plan;
}

FanoutPlannerStats FanoutPlanner::stats() const {
  FanoutPlannerStats s;
  s.plans_requested = stats_->plans_requested.load(kRelaxed);
  s.cache_hits = stats_->cache_hits.load(kRelaxed);
  s.plans_built = stats_->plans_built.load(kRelaxed);
  s.unreachable = stats_->unreachable.load(kRelaxed);
  s.chains_fused = stats_->chains_fused.load(kRelaxed);
  s.fusion_bailouts = stats_->fusion_bailouts.load(kRelaxed);
  s.verify_rejected = stats_->verify_rejected.load(kRelaxed);
  s.cache_flushes = stats_->cache_flushes.load(kRelaxed);
  return s;
}

size_t FanoutPlanner::cached_plans() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace morph::core
