#include "core/match.hpp"

namespace morph::core {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;
using pbio::FormatPtr;

namespace {

bool both_fixed_scalars(FieldKind a, FieldKind b) {
  return pbio::is_fixed_scalar(a) && pbio::is_fixed_scalar(b);
}

/// The element format of a complex field, or nullptr for arrays of basics.
const FormatDescriptor* element_of(const FieldDescriptor& fd) {
  return fd.element_format ? fd.element_format.get() : nullptr;
}

/// Do two basic (or basic-element-array) fields denote the same "type" for
/// membership purposes?
bool basicish_compatible(const FieldDescriptor& a, const FieldDescriptor& b) {
  if (pbio::is_basic(a.kind) && pbio::is_basic(b.kind)) {
    if (a.kind == FieldKind::kString || b.kind == FieldKind::kString) {
      return a.kind == b.kind;
    }
    return both_fixed_scalars(a.kind, b.kind);
  }
  // arrays of basic elements
  if (pbio::is_array(a.kind) && pbio::is_array(b.kind) && !a.element_format &&
      !b.element_format) {
    if (a.element_kind == FieldKind::kString || b.element_kind == FieldKind::kString) {
      return a.element_kind == b.element_kind;
    }
    return both_fixed_scalars(a.element_kind, b.element_kind);
  }
  return false;
}

}  // namespace

uint32_t field_weight(const FieldDescriptor& fd) {
  if (pbio::is_basic(fd.kind)) return 1;
  if (fd.element_format) return fd.element_format->weight();
  return 1;  // array of basic elements
}

namespace {

uint32_t weighted_weight_impl(const FormatDescriptor& fmt);

uint32_t weighted_field_weight(const FieldDescriptor& fd) {
  uint32_t base = 1;
  if (!pbio::is_basic(fd.kind) && fd.element_format) {
    base = weighted_weight_impl(*fd.element_format);
  }
  return fd.importance * base;
}

uint32_t weighted_weight_impl(const FormatDescriptor& fmt) {
  uint32_t w = 0;
  for (const auto& fd : fmt.fields()) w += weighted_field_weight(fd);
  return w;
}

/// Shared Algorithm 1 body; `weighted` switches field costs from 1 to the
/// declared importance (scaled recursively through complex fields).
uint32_t diff_impl(const FormatDescriptor& f1, const FormatDescriptor& f2, bool weighted) {
  uint32_t d12 = 0;
  for (const auto& f : f1.fields()) {
    const FieldDescriptor* other = f2.find_field(f.name);
    bool f_complex = element_of(f) != nullptr;
    uint32_t unit = weighted ? f.importance : 1;
    if (!f_complex) {
      // Basic field (or array of basics): present iff a compatible field of
      // the same name exists in f2.
      if (other == nullptr || !basicish_compatible(f, *other)) d12 += unit;
      continue;
    }
    // Complex field: "let f' be the complex field in f2 with the same field
    // name and type".
    const FormatDescriptor* mine = element_of(f);
    bool same_class = other != nullptr && element_of(*other) != nullptr &&
                      ((f.kind == FieldKind::kStruct) == (other->kind == FieldKind::kStruct));
    if (!same_class) {
      // The whole subtree is missing: increment by its (weighted) W_f.
      d12 += weighted ? weighted_field_weight(f) : mine->weight();
    } else {
      d12 += unit * diff_impl(*mine, *element_of(*other), weighted);
    }
  }
  return d12;
}

}  // namespace

uint32_t diff(const FormatDescriptor& f1, const FormatDescriptor& f2) {
  return diff_impl(f1, f2, /*weighted=*/false);
}

uint32_t weighted_weight(const FormatDescriptor& fmt) { return weighted_weight_impl(fmt); }

uint32_t weighted_diff(const FormatDescriptor& f1, const FormatDescriptor& f2) {
  return diff_impl(f1, f2, /*weighted=*/true);
}

double weighted_mismatch_ratio(const FormatDescriptor& f1, const FormatDescriptor& f2) {
  uint32_t w2 = weighted_weight_impl(f2);
  if (w2 == 0) return 0.0;
  return static_cast<double>(weighted_diff(f2, f1)) / static_cast<double>(w2);
}

double mismatch_ratio(const FormatDescriptor& f1, const FormatDescriptor& f2) {
  uint32_t w2 = f2.weight();
  if (w2 == 0) return 0.0;
  return static_cast<double>(diff(f2, f1)) / static_cast<double>(w2);
}

bool perfect_match(const FormatDescriptor& f1, const FormatDescriptor& f2) {
  return diff(f1, f2) == 0 && diff(f2, f1) == 0;
}

std::optional<MatchResult> max_match(const std::vector<FormatPtr>& from,
                                     const std::vector<FormatPtr>& to,
                                     const MatchThresholds& thresholds, bool require_same_name) {
  std::optional<MatchResult> best;
  for (const auto& f1 : from) {
    for (const auto& f2 : to) {
      if (!f1 || !f2) continue;
      if (require_same_name && f1->name() != f2->name()) continue;
      MatchResult r;
      r.f1 = f1;
      r.f2 = f2;
      bool wt = thresholds.use_importance;
      r.diff12 = wt ? weighted_diff(*f1, *f2) : diff(*f1, *f2);
      if (r.diff12 > thresholds.diff_threshold) continue;
      r.diff21 = wt ? weighted_diff(*f2, *f1) : diff(*f2, *f1);
      uint32_t w2 = wt ? weighted_weight(*f2) : f2->weight();
      r.mr = w2 == 0 ? 0.0 : static_cast<double>(r.diff21) / static_cast<double>(w2);
      if (r.mr > thresholds.mismatch_threshold) continue;
      // Condition (v): least Mr, then least diff(f1, f2); first wins ties.
      if (!best || r.mr < best->mr || (r.mr == best->mr && r.diff12 < best->diff12)) {
        best = std::move(r);
      }
    }
  }
  return best;
}

}  // namespace morph::core
