#include "core/parallel_receiver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace morph::core {

namespace {
// Workers pull up to this many messages per queue lock, so short messages
// don't pay one lock round-trip each.
constexpr size_t kGrabBatch = 32;

struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Counter& processed;
  obs::Counter& failed;
  PoolMetrics()
      : queue_depth(obs::metrics().gauge("morph_rx_pool_queue_depth")),
        processed(obs::metrics().counter("morph_rx_pool_processed_total")),
        failed(obs::metrics().counter("morph_rx_pool_failed_total")) {}
};

PoolMetrics& pool_metrics() {
  static PoolMetrics& m = *new PoolMetrics();  // leaked: outlives static dtors
  return m;
}
}  // namespace

ParallelReceiver::ParallelReceiver(Receiver& rx, size_t threads) : rx_(rx) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelReceiver::~ParallelReceiver() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ParallelReceiver::submit(const void* buf, size_t size) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(FramedMessage{buf, size});
    // Already under the queue lock, so the gauge write is ordered with the
    // push; with several pools in one process the gauge tracks the most
    // recent writer (a scrape-time approximation, documented as such).
    pool_metrics().queue_depth.set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ParallelReceiver::process_batch(const FramedMessage* msgs, size_t count) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < count; ++i) queue_.push_back(msgs[i]);
    pool_metrics().queue_depth.set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_all();
  drain();
}

void ParallelReceiver::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ParallelReceiver::worker_loop() {
  // One arena per worker, reset per message: chunks are retained across
  // resets, so steady-state processing allocates nothing from the OS.
  RecordArena arena;
  std::vector<FramedMessage> local;
  local.reserve(kGrabBatch);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      size_t grab = std::min(queue_.size(), kGrabBatch);
      local.assign(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(grab));
      queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(grab));
      pool_metrics().queue_depth.set(static_cast<double>(queue_.size()));
      ++busy_;
    }
    for (const FramedMessage& msg : local) {
      arena.reset();
      try {
        rx_.process(msg.data, msg.size, arena);
      } catch (...) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        pool_metrics().failed.inc();
      }
      processed_.fetch_add(1, std::memory_order_relaxed);
      pool_metrics().processed.inc();
    }
    local.clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
      if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace morph::core
