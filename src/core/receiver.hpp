// Receiver-side message processing: the paper's Algorithm 2.
//
// A Receiver owns, per reading endpoint:
//   * the registered reader formats and their handlers (what this
//     application understands),
//   * the learned wire formats and transform specs (what peers have
//     declared out-of-band),
//   * a decision cache keyed by incoming format fingerprint — the expensive
//     steps (MaxMatch, transform chain search, dynamic code generation)
//     run only for formats never seen before; afterwards every message of
//     that format replays the compiled pipeline.
//
// Pipeline shapes, by decision:
//   exact     wire == reader format: single conversion plan (layout no-op)
//   perfect   same shape, different layout/order: one conversion plan
//   morphed   decode to native -> compiled Ecode chain -> [reconcile]
//   rejected  no admissible MaxMatch pair: default handler or drop
//
// Thread safety (see docs/CONCURRENCY.md for the full model):
//   * process()/process_in_place() may be called from any number of
//     threads concurrently, each with its own RecordArena. The decision
//     cache is sharded; steady-state lookups take only a per-shard reader
//     lock, and a cold format's expensive pipeline build runs exactly once
//     per fingerprint — concurrent arrivals block on that entry's
//     once-flag, not on the cache.
//   * Compiled pipeline pieces (ConversionPlan, MorphChain/JIT code,
//     Reconciler) are immutable after publish; per-call mutable state lives
//     in the caller's arena and the per-call Ecode runtime.
//   * register_handler / set_default_handler / learn_transform are
//     exclusive writers: rare, safe to call concurrently with processing.
//   * Handlers may be invoked concurrently from many threads and must be
//     thread-safe themselves when the receiver is driven in parallel.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "obs/metrics.hpp"
#include "core/format_source.hpp"
#include "core/match.hpp"
#include "core/reconcile.hpp"
#include "core/transform.hpp"
#include "pbio/decode.hpp"
#include "pbio/registry.hpp"

namespace morph::core {

enum class Outcome : uint8_t {
  kExact,       // fingerprint-identical format
  kPerfect,     // perfect match after layout conversion
  kMorphed,     // Ecode transform chain applied
  kReconciled,  // imperfect match: defaults filled / extras dropped
  kMorphedReconciled,  // chain + reconciliation
  kDefaulted,   // no match; handed to the default handler
  kRejected,    // no match and no default handler
};

const char* outcome_name(Outcome o);

/// What a handler receives: a native record in the handler's registered
/// format. The record lives in the arena passed to process().
struct Delivery {
  void* record = nullptr;
  pbio::FormatPtr format;
  Outcome outcome = Outcome::kExact;
};

using Handler = std::function<void(const Delivery&)>;
using DefaultHandler = std::function<void(const void* buf, size_t size)>;

struct ReceiverOptions {
  MatchThresholds thresholds;
  ecode::ExecBackend backend = ecode::ExecBackend::kAuto;
  /// Static verification of peer-supplied transform code before it is
  /// compiled to native code (the receiver's trust boundary):
  ///   kOff      compile as-is (the historical behavior),
  ///   kWarn     verify and log findings, never reject,
  ///   kEnforce  reject the format (Outcome::kRejected, counted in
  ///             stats().verify_rejected) when any hop fails verification.
  VerifyPolicy verify = VerifyPolicy::kOff;
  /// In enforce mode, loops without a termination certificate are rewritten
  /// to stop after this many iterations instead of being rejected outright;
  /// 0 rejects them.
  int64_t verify_fuel_limit = 1 << 20;
  /// Upper bound on cached per-format decisions. A hostile peer could
  /// otherwise stream endless fresh formats and grow the cache without
  /// limit; on overflow the whole cache is flushed (decisions are
  /// recomputable, so flushing only costs time).
  size_t max_cached_decisions = 1024;
  /// Out-of-band format resolution (the paper's third-party format server).
  /// When a data frame references a fingerprint with no learned definition,
  /// the receiver consults `format_source` (typically a
  /// fmtsvc::FormatResolver) per `resolve` before deciding. The source must
  /// outlive the receiver; it is called during cold decision builds only —
  /// never on the steady-state path — and may block (the resolver bounds
  /// that with its own deadline).
  FormatSource* format_source = nullptr;
  ResolvePolicy resolve = ResolvePolicy::kFail;
  /// Fuse multi-hop morph chains into one compiled transform during the
  /// once-per-format decision build (see ecode/fuse.hpp). Purely an
  /// execution-strategy switch: a chain that cannot fuse falls back to
  /// hop-wise execution transparently, visible in stats().fusion_bailouts
  /// and the morph_rx_chain_fusion_total metrics.
  bool fuse = true;
};

/// A point-in-time copy of the receiver's counters (the live counters are
/// atomics updated with relaxed ordering; the snapshot is plain data).
struct ReceiverStats {
  uint64_t messages = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t exact = 0;
  uint64_t perfect = 0;
  uint64_t morphed = 0;
  uint64_t reconciled = 0;
  uint64_t defaulted = 0;
  uint64_t rejected = 0;
  uint64_t transforms_compiled = 0;
  uint64_t verify_rejected = 0;
  uint64_t zero_copy = 0;
  uint64_t cache_flushes = 0;
  uint64_t resolve_fetched = 0;   // unknown formats fetched out-of-band
  uint64_t resolve_degraded = 0;  // resolve attempts that fell back (failed)
  uint64_t morph_fused = 0;       // messages morphed by a fused chain
  uint64_t morph_hopwise = 0;     // messages morphed hop by hop
  uint64_t morph_inplace = 0;     // morphs fed by an in-place (zero-copy) decode
  uint64_t chains_fused = 0;      // decision builds that installed a fused chain
  uint64_t fusion_bailouts = 0;   // decision builds that fell back to hop-wise

  /// Field-wise `*this - earlier`: what happened between two snapshots.
  /// Counters are monotone, so with snapshots taken in order every delta
  /// field is well-defined (wraps if you subtract a later snapshot).
  ReceiverStats delta(const ReceiverStats& earlier) const;

  /// Messages that reached a terminal outcome. Every processed message
  /// lands in exactly one of these counters.
  uint64_t outcome_sum() const {
    return exact + perfect + morphed + reconciled + defaulted + rejected;
  }

  /// The pipeline's conservation law: every counted message reached exactly
  /// one outcome. Holds whenever no process() call aborted by exception
  /// between the message count and its outcome (hostile frames can throw
  /// mid-decode), and no snapshot raced a message in flight — so quiesce
  /// first, then assert. Used by tests and `morph-stat --check`.
  bool consistent() const { return messages == outcome_sum(); }
};

class Receiver {
 public:
  explicit Receiver(ReceiverOptions options = {});

  /// Register a format this reader understands and the handler to invoke
  /// for it (multiple formats may share a name across protocol revisions).
  void register_handler(pbio::FormatPtr fmt, Handler handler);

  /// Handler for messages that match nothing (Algorithm 2's rejection path
  /// delivers the raw buffer here if set).
  void set_default_handler(DefaultHandler handler);

  /// Out-of-band learning: a peer's format definition, and the transforms
  /// it associated with its formats.
  pbio::FormatPtr learn_format(pbio::FormatPtr fmt);
  void learn_transform(TransformSpec spec);

  /// Process one encoded message. Converted records are allocated from
  /// `arena` and are valid until the caller resets it. Thread-safe: may be
  /// called concurrently as long as every thread passes its own arena.
  Outcome process(const void* buf, size_t size, RecordArena& arena);

  /// Zero-copy variant: when the incoming format is byte-identical to a
  /// registered reader format and byte orders agree, the record is decoded
  /// *in place* — the delivered record aliases (and mutates) `buf`, and the
  /// arena is untouched (PBIO's same-machine fast path). Any other decision
  /// falls back to process(). The buffer must stay alive through delivery
  /// and cannot be processed twice after an in-place decode.
  Outcome process_in_place(void* buf, size_t size, RecordArena& arena);

  /// Native-record entry point for foreign-encoding bridges (pbuf): the
  /// caller has already decoded a frame into a record laid out as `fmt`
  /// (allocated from `arena`), and the receiver runs the same decision —
  /// morph chain, reconciler, delivery — it would for a PBIO frame of that
  /// format. When the decision's pipeline does not start at `fmt` (the plan
  /// converts byte order or layout first), the record is re-encoded as PBIO
  /// and routed through process(); rejections with a default handler also
  /// hand over a PBIO encoding of the record.
  Outcome process_record(const pbio::FormatPtr& fmt, void* record, RecordArena& arena);

  ReceiverStats stats() const;
  const ReceiverOptions& options() const { return options_; }
  size_t cached_decisions() const {
    return cached_count_.load(std::memory_order_relaxed);
  }

  /// All reader formats registered under `name` (the Fr of Algorithm 2).
  std::vector<pbio::FormatPtr> reader_formats(const std::string& name) const;

  /// Exposed for the compatibility-space analyzer: the transform catalog
  /// and learned-format registry. Not synchronized against concurrent
  /// learn_transform — analyze offline or quiesce writers first.
  const TransformCatalog& transforms() const { return transforms_; }
  const pbio::FormatRegistry& learned() const { return learned_; }

 private:
  struct Decision {
    Outcome outcome = Outcome::kRejected;
    std::shared_ptr<Handler> handler;                   // null for reject/default
    std::shared_ptr<DefaultHandler> default_handler;    // captured at build time
    pbio::FormatPtr deliver_fmt;                        // handler's format
    std::unique_ptr<pbio::ConversionPlan> decode_plan;  // wire -> native
    std::unique_ptr<pbio::Decoder> exact_decoder;       // kExact only: in-place path
    /// Morph decisions whose wire layout already equals the chain's source
    /// layout: process_in_place() decodes in the caller's buffer and feeds
    /// the chain directly, skipping the conversion plan entirely.
    std::unique_ptr<pbio::Decoder> morph_decoder;
    std::shared_ptr<MorphChain> chain;                  // optional
    std::unique_ptr<Reconciler> reconciler;             // optional
    /// Format of the decoded record once the conversion plan (and chain,
    /// if any) has run — the layout the reconciler expects. Lets
    /// process_record() tell whether an already-native record can skip
    /// straight to the chain/reconciler or must re-enter via PBIO bytes.
    pbio::FormatPtr native_fmt;
    // Per-format latency series, resolved once at build time so the
    // per-message cost is a clock read + relaxed add (registry metrics are
    // never erased, so the pointers stay valid).
    obs::Histogram* decode_ns = nullptr;                // plan execute time
    obs::Histogram* morph_ns = nullptr;                 // chain + reconcile time
    std::string fmt_name;  // wire format name: span/flight attribution tag
    /// Under ResolvePolicy::kFetchOrInline a rejection caused by an
    /// unreachable format service is provisional: decide() drops the cache
    /// entry right after the build, so the next message retries (the
    /// resolver's negative TTL rate-limits the RPCs) and a late inline
    /// kFormatDef recovers immediately via learn_format's eviction.
    bool provisional = false;
  };

  /// One cache slot. The once-flag guarantees the expensive build runs
  /// exactly once per fingerprint even under concurrent cold arrival;
  /// late threads block here (on this entry only), then read the decision
  /// with the happens-before edge call_once provides. Entries are handed
  /// out as shared_ptrs so an in-flight delivery survives a cache flush.
  struct CacheEntry {
    std::once_flag build_once;
    Decision decision;
  };
  using EntryPtr = std::shared_ptr<CacheEntry>;

  static constexpr size_t kCacheShards = 16;  // power of two
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<uint64_t, EntryPtr> entries;
  };

  /// Live counters. Relaxed atomics: each is an independent monotone
  /// counter, never used to publish other data.
  struct Counters {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> exact{0};
    std::atomic<uint64_t> perfect{0};
    std::atomic<uint64_t> morphed{0};
    std::atomic<uint64_t> reconciled{0};
    std::atomic<uint64_t> defaulted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> transforms_compiled{0};
    std::atomic<uint64_t> verify_rejected{0};
    std::atomic<uint64_t> zero_copy{0};
    std::atomic<uint64_t> cache_flushes{0};
    std::atomic<uint64_t> resolve_fetched{0};
    std::atomic<uint64_t> resolve_degraded{0};
    std::atomic<uint64_t> morph_fused{0};
    std::atomic<uint64_t> morph_hopwise{0};
    std::atomic<uint64_t> morph_inplace{0};
    std::atomic<uint64_t> chains_fused{0};
    std::atomic<uint64_t> fusion_bailouts{0};
  };

  Shard& shard_for(uint64_t fingerprint) {
    // Fingerprints are already well-mixed hashes; fold the high bits in so
    // shard choice never degenerates even if a bit range is biased.
    return shards_[(fingerprint ^ (fingerprint >> 32)) & (kCacheShards - 1)];
  }

  EntryPtr decide(uint64_t fingerprint);
  void build_decision(Decision& d, uint64_t fingerprint);
  void maybe_resolve(uint64_t fingerprint, Decision& d);
  void add_resolved(ResolvedFormat resolved);
  void flush_cache();
  Outcome finish_delivery(const Decision& d, void* record);

  ReceiverOptions options_;

  /// Guards the reader-side configuration (handlers_, default_handler_,
  /// transforms_). Decision builds hold it shared; register_* / learn_*
  /// hold it exclusive. Lock order: never acquire the config lock while
  /// holding a shard lock (builds run with no shard lock held; writers
  /// release the config lock before flush_cache touches the shards).
  mutable std::shared_mutex config_mutex_;
  pbio::FormatRegistry reader_formats_;  // internally thread-safe
  std::unordered_map<uint64_t, std::shared_ptr<Handler>> handlers_;
  std::shared_ptr<DefaultHandler> default_handler_;
  pbio::FormatRegistry learned_;  // internally thread-safe
  TransformCatalog transforms_;

  std::array<Shard, kCacheShards> shards_;
  std::atomic<size_t> cached_count_{0};
  mutable Counters stats_;
};

}  // namespace morph::core
