#include "core/receiver.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "pbio/record.hpp"

namespace morph::core {

using pbio::FormatPtr;

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kExact: return "exact";
    case Outcome::kPerfect: return "perfect";
    case Outcome::kMorphed: return "morphed";
    case Outcome::kReconciled: return "reconciled";
    case Outcome::kMorphedReconciled: return "morphed+reconciled";
    case Outcome::kDefaulted: return "defaulted";
    case Outcome::kRejected: return "rejected";
  }
  return "?";
}

Receiver::Receiver(ReceiverOptions options) : options_(options) {}

void Receiver::register_handler(FormatPtr fmt, Handler handler) {
  fmt = reader_formats_.register_format(std::move(fmt));
  {
    std::unique_lock lock(config_mutex_);
    handlers_[fmt->fingerprint()] = std::make_shared<Handler>(std::move(handler));
  }
  flush_cache();  // registrations invalidate cached decisions
}

void Receiver::set_default_handler(DefaultHandler handler) {
  {
    std::unique_lock lock(config_mutex_);
    default_handler_ = std::make_shared<DefaultHandler>(std::move(handler));
  }
  flush_cache();
}

FormatPtr Receiver::learn_format(FormatPtr fmt) { return learned_.register_format(std::move(fmt)); }

void Receiver::learn_transform(TransformSpec spec) {
  learned_.register_format(spec.src);
  learned_.register_format(spec.dst);
  {
    std::unique_lock lock(config_mutex_);
    transforms_.add(std::move(spec));
  }
  flush_cache();  // new transforms may unlock previously rejected formats
}

std::vector<FormatPtr> Receiver::reader_formats(const std::string& name) const {
  return reader_formats_.by_name(name);
}

ReceiverStats Receiver::stats() const {
  ReceiverStats s;
  s.messages = stats_.messages.load(kRelaxed);
  s.cache_hits = stats_.cache_hits.load(kRelaxed);
  s.cache_misses = stats_.cache_misses.load(kRelaxed);
  s.exact = stats_.exact.load(kRelaxed);
  s.perfect = stats_.perfect.load(kRelaxed);
  s.morphed = stats_.morphed.load(kRelaxed);
  s.reconciled = stats_.reconciled.load(kRelaxed);
  s.defaulted = stats_.defaulted.load(kRelaxed);
  s.rejected = stats_.rejected.load(kRelaxed);
  s.transforms_compiled = stats_.transforms_compiled.load(kRelaxed);
  s.verify_rejected = stats_.verify_rejected.load(kRelaxed);
  s.zero_copy = stats_.zero_copy.load(kRelaxed);
  s.cache_flushes = stats_.cache_flushes.load(kRelaxed);
  return s;
}

void Receiver::flush_cache() {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mutex);
    shard.entries.clear();
  }
  cached_count_.store(0, kRelaxed);
}

Receiver::EntryPtr Receiver::decide(uint64_t fingerprint) {
  Shard& shard = shard_for(fingerprint);
  EntryPtr entry;
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.entries.find(fingerprint);
    if (it != shard.entries.end()) entry = it->second;
  }
  if (entry == nullptr) {
    if (cached_count_.load(kRelaxed) >= options_.max_cached_decisions) {
      // Racy by design: concurrent overflowing threads may each flush, but
      // a flush only costs recomputation, never correctness.
      flush_cache();
      stats_.cache_flushes.fetch_add(1, kRelaxed);
    }
    std::unique_lock lock(shard.mutex);
    auto [it, inserted] = shard.entries.try_emplace(fingerprint);
    if (inserted) {
      it->second = std::make_shared<CacheEntry>();
      cached_count_.fetch_add(1, kRelaxed);
    }
    entry = it->second;
  }
  // The expensive pipeline build runs exactly once per entry; concurrent
  // cold arrivals for the same fingerprint serialize here — on this entry
  // only, never on the shard or the whole cache. No shard lock is held, so
  // other fingerprints keep flowing while this one compiles.
  bool built_here = false;
  std::call_once(entry->build_once, [&] {
    built_here = true;
    stats_.cache_misses.fetch_add(1, kRelaxed);
    std::shared_lock config(config_mutex_);
    build_decision(entry->decision, fingerprint);
  });
  if (!built_here) stats_.cache_hits.fetch_add(1, kRelaxed);
  return entry;
}

void Receiver::build_decision(Decision& d, uint64_t fingerprint) {
  // Capture the default handler into the decision: set_default_handler
  // flushes the cache, so a cached copy can never go stale.
  d.default_handler = default_handler_;

  FormatPtr fm = learned_.by_fingerprint(fingerprint);
  if (fm == nullptr) {
    // Unknown format: no out-of-band definition arrived. Reject.
    MORPH_LOG_INFO("receiver") << "no format definition for fingerprint " << fingerprint;
    d.outcome = Outcome::kRejected;
    return;
  }

  std::vector<FormatPtr> fr = reader_formats_.by_name(fm->name());
  auto handler_for = [&](uint64_t fp) -> std::shared_ptr<Handler> {
    auto it = handlers_.find(fp);
    return it == handlers_.end() ? nullptr : it->second;
  };

  // Lines 11-15: MaxMatch(fm, Fr); a perfect pair needs only a layout
  // conversion (possibly a pure no-op when fingerprints coincide).
  if (auto m = max_match({fm}, fr, options_.thresholds); m && m->perfect()) {
    d.outcome = m->f2->fingerprint() == fm->fingerprint() ? Outcome::kExact : Outcome::kPerfect;
    d.deliver_fmt = m->f2;
    d.handler = handler_for(m->f2->fingerprint());
    d.decode_plan = std::make_unique<pbio::ConversionPlan>(fm, m->f2);
    if (d.outcome == Outcome::kExact) {
      d.exact_decoder = std::make_unique<pbio::Decoder>(m->f2);
    }
    return;
  }

  // Lines 16-19: MaxMatch over the transform closure Ft.
  std::vector<FormatPtr> ft = transforms_.closure(fm);
  auto m = max_match(ft, fr, options_.thresholds);
  if (!m) {
    d.outcome = Outcome::kRejected;
    return;
  }

  d.deliver_fmt = m->f2;
  d.handler = handler_for(m->f2->fingerprint());

  bool morphs = m->f1->fingerprint() != fm->fingerprint();
  FormatPtr native_fmt;  // format of the record after decode (+ chain)
  if (morphs) {
    // Lines 21-24: generate and cache the fm -> f1 transformation code.
    auto specs = transforms_.chain(fm->fingerprint(), m->f1->fingerprint());
    if (!specs || specs->empty()) {
      // Closure said reachable; a missing chain would be a logic error.
      throw Error("receiver: transform chain vanished");
    }
    ecode::CompileOptions copts;
    copts.backend = options_.backend;
    copts.verify = options_.verify;
    copts.fuel_limit = options_.verify_fuel_limit;
    try {
      d.chain = std::make_shared<MorphChain>(*specs, copts);
    } catch (const ecode::VerifyError& e) {
      // Peer-supplied code failed static verification: reject the format
      // before any native code exists. The structured findings name the
      // check, the field, and the source line for the peer's operator.
      stats_.verify_rejected.fetch_add(1, kRelaxed);
      std::ostringstream msg;
      msg << "transform chain for fingerprint " << fingerprint
          << " rejected by the static verifier:";
      for (const auto& f : e.result().findings) msg << "\n  " << f.to_string();
      MORPH_LOG_WARN("receiver") << msg.str();
      d.chain = nullptr;
      d.handler = nullptr;
      d.deliver_fmt = nullptr;
      d.outcome = Outcome::kRejected;
      return;
    }
    for (const auto& f : d.chain->verify_findings()) {
      MORPH_LOG_WARN("receiver") << "transform verifier: " << f.to_string();
    }
    stats_.transforms_compiled.fetch_add(d.chain->hops(), kRelaxed);
    d.decode_plan = std::make_unique<pbio::ConversionPlan>(fm, d.chain->src_format());
    native_fmt = d.chain->dst_format();
  } else {
    native_fmt = pbio::relayout(*fm);
    d.decode_plan = std::make_unique<pbio::ConversionPlan>(fm, native_fmt);
  }

  // Lines 26-28: imperfect pairs get defaults filled and extras dropped.
  bool needs_reconcile = !native_fmt->identical_to(*m->f2);
  if (needs_reconcile) {
    d.reconciler = std::make_unique<Reconciler>(native_fmt, m->f2);
  }
  bool imperfect = !m->perfect();
  if (morphs) {
    d.outcome = imperfect ? Outcome::kMorphedReconciled : Outcome::kMorphed;
  } else {
    d.outcome = Outcome::kReconciled;
  }
}

Outcome Receiver::finish_delivery(const Decision& d, void* record) {
  switch (d.outcome) {
    case Outcome::kExact:
      stats_.exact.fetch_add(1, kRelaxed);
      break;
    case Outcome::kPerfect:
      stats_.perfect.fetch_add(1, kRelaxed);
      break;
    case Outcome::kMorphed:
      stats_.morphed.fetch_add(1, kRelaxed);
      break;
    case Outcome::kReconciled:
    case Outcome::kMorphedReconciled:
      stats_.reconciled.fetch_add(1, kRelaxed);
      break;
    default:
      break;
  }
  // The caller holds the cache entry via shared_ptr, so the decision (and
  // this handler) stay alive even if the handler itself registers formats
  // and flushes the cache mid-delivery.
  if (d.handler != nullptr && *d.handler) {
    Delivery delivery{record, d.deliver_fmt, d.outcome};
    (*d.handler)(delivery);
  }
  return d.outcome;
}

Outcome Receiver::process(const void* buf, size_t size, RecordArena& arena) {
  stats_.messages.fetch_add(1, kRelaxed);
  pbio::WireInfo info = pbio::peek_header(buf, size);
  EntryPtr entry = decide(info.fingerprint);
  const Decision& d = entry->decision;

  switch (d.outcome) {
    case Outcome::kRejected:
    case Outcome::kDefaulted: {
      if (d.default_handler != nullptr && *d.default_handler) {
        (*d.default_handler)(buf, size);
        stats_.defaulted.fetch_add(1, kRelaxed);
        return Outcome::kDefaulted;
      }
      stats_.rejected.fetch_add(1, kRelaxed);
      return Outcome::kRejected;
    }
    default:
      break;
  }

  void* record = d.decode_plan->execute(buf, size, arena);
  if (d.chain) record = d.chain->apply(record, arena);
  if (d.reconciler) record = d.reconciler->apply(record, arena);
  return finish_delivery(d, record);
}

Outcome Receiver::process_in_place(void* buf, size_t size, RecordArena& arena) {
  pbio::WireInfo info = pbio::peek_header(buf, size);
  EntryPtr entry = decide(info.fingerprint);
  const Decision& d = entry->decision;
  if (d.outcome == Outcome::kExact && d.exact_decoder != nullptr) {
    void* record = d.exact_decoder->decode_in_place(buf, size);
    if (record != nullptr) {
      stats_.messages.fetch_add(1, kRelaxed);
      stats_.zero_copy.fetch_add(1, kRelaxed);
      return finish_delivery(d, record);
    }
    // Foreign byte order: fall through to the copying path.
  }
  return process(buf, size, arena);
}

}  // namespace morph::core
