#include "core/receiver.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "pbio/encode.hpp"
#include "pbio/record.hpp"

namespace morph::core {

using pbio::FormatPtr;

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

/// Process-wide mirrors of the per-receiver counters, so one scrape covers
/// every Receiver in the process. The per-instance Counters stay
/// authoritative for stats(); these are bumped alongside them (same relaxed
/// adds, so the mirror costs one extra add per event).
struct RxMetrics {
  obs::Counter& messages;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_flushes;
  obs::Counter& exact;
  obs::Counter& perfect;
  obs::Counter& morphed;
  obs::Counter& reconciled;
  obs::Counter& morphed_reconciled;
  obs::Counter& defaulted;
  obs::Counter& rejected;
  obs::Counter& zero_copy;
  obs::Counter& verify_rejected;
  obs::Counter& transforms_compiled;
  obs::Counter& resolve_fetched;
  obs::Counter& resolve_degraded;
  obs::Counter& morph_fused;
  obs::Counter& morph_hopwise;
  obs::Counter& morph_inplace;
  obs::Counter& morphs;  // morph executions (chain and/or reconcile ran)
  obs::Counter& chain_fused_builds;
  obs::Counter& chain_fusion_bailouts;
  obs::Histogram& chain_hops;
  obs::Histogram& decide_hit_ns;
  obs::Histogram& decide_miss_ns;
  obs::Histogram& build_ns;
  obs::Histogram& match_ns;

  RxMetrics()
      : messages(obs::metrics().counter("morph_rx_messages_total")),
        cache_hits(obs::metrics().counter("morph_rx_cache_events_total{event=\"hit\"}")),
        cache_misses(obs::metrics().counter("morph_rx_cache_events_total{event=\"miss\"}")),
        cache_flushes(obs::metrics().counter("morph_rx_cache_events_total{event=\"flush\"}")),
        exact(obs::metrics().counter("morph_rx_outcome_total{outcome=\"exact\"}")),
        perfect(obs::metrics().counter("morph_rx_outcome_total{outcome=\"perfect\"}")),
        morphed(obs::metrics().counter("morph_rx_outcome_total{outcome=\"morphed\"}")),
        reconciled(obs::metrics().counter("morph_rx_outcome_total{outcome=\"reconciled\"}")),
        morphed_reconciled(
            obs::metrics().counter("morph_rx_outcome_total{outcome=\"morphed+reconciled\"}")),
        defaulted(obs::metrics().counter("morph_rx_outcome_total{outcome=\"defaulted\"}")),
        rejected(obs::metrics().counter("morph_rx_outcome_total{outcome=\"rejected\"}")),
        zero_copy(obs::metrics().counter("morph_rx_zero_copy_total")),
        verify_rejected(obs::metrics().counter("morph_rx_verify_rejected_total")),
        transforms_compiled(obs::metrics().counter("morph_rx_transforms_compiled_total")),
        resolve_fetched(obs::metrics().counter("morph_rx_resolve_total{result=\"fetched\"}")),
        resolve_degraded(obs::metrics().counter("morph_rx_resolve_total{result=\"degraded\"}")),
        morph_fused(obs::metrics().counter("morph_rx_fused_total")),
        morph_hopwise(obs::metrics().counter("morph_rx_hopwise_total")),
        morph_inplace(obs::metrics().counter("morph_rx_morph_inplace_total")),
        morphs(obs::metrics().counter("morph_rx_morphs_total")),
        chain_fused_builds(obs::metrics().counter("morph_rx_chain_fusion_total{result=\"fused\"}")),
        chain_fusion_bailouts(
            obs::metrics().counter("morph_rx_chain_fusion_total{result=\"bailout\"}")),
        chain_hops(obs::metrics().histogram("morph_rx_chain_hops")),
        decide_hit_ns(obs::metrics().histogram("morph_rx_decide_ns{result=\"hit\"}")),
        decide_miss_ns(obs::metrics().histogram("morph_rx_decide_ns{result=\"miss\"}")),
        build_ns(obs::metrics().histogram("morph_rx_decision_build_ns")),
        match_ns(obs::metrics().histogram("morph_rx_match_ns")) {}
};

RxMetrics& rx() {
  static RxMetrics& m = *new RxMetrics();  // leaked: outlives static dtors
  return m;
}

}  // namespace

ReceiverStats ReceiverStats::delta(const ReceiverStats& earlier) const {
  ReceiverStats d;
  d.messages = messages - earlier.messages;
  d.cache_hits = cache_hits - earlier.cache_hits;
  d.cache_misses = cache_misses - earlier.cache_misses;
  d.exact = exact - earlier.exact;
  d.perfect = perfect - earlier.perfect;
  d.morphed = morphed - earlier.morphed;
  d.reconciled = reconciled - earlier.reconciled;
  d.defaulted = defaulted - earlier.defaulted;
  d.rejected = rejected - earlier.rejected;
  d.transforms_compiled = transforms_compiled - earlier.transforms_compiled;
  d.verify_rejected = verify_rejected - earlier.verify_rejected;
  d.zero_copy = zero_copy - earlier.zero_copy;
  d.cache_flushes = cache_flushes - earlier.cache_flushes;
  d.resolve_fetched = resolve_fetched - earlier.resolve_fetched;
  d.resolve_degraded = resolve_degraded - earlier.resolve_degraded;
  d.morph_fused = morph_fused - earlier.morph_fused;
  d.morph_hopwise = morph_hopwise - earlier.morph_hopwise;
  d.morph_inplace = morph_inplace - earlier.morph_inplace;
  d.chains_fused = chains_fused - earlier.chains_fused;
  d.fusion_bailouts = fusion_bailouts - earlier.fusion_bailouts;
  return d;
}

const char* resolve_policy_name(ResolvePolicy p) {
  switch (p) {
    case ResolvePolicy::kFail: return "fail";
    case ResolvePolicy::kFetch: return "fetch";
    case ResolvePolicy::kFetchOrInline: return "fetch-or-inline";
  }
  return "?";
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kExact: return "exact";
    case Outcome::kPerfect: return "perfect";
    case Outcome::kMorphed: return "morphed";
    case Outcome::kReconciled: return "reconciled";
    case Outcome::kMorphedReconciled: return "morphed+reconciled";
    case Outcome::kDefaulted: return "defaulted";
    case Outcome::kRejected: return "rejected";
  }
  return "?";
}

Receiver::Receiver(ReceiverOptions options) : options_(options) {}

void Receiver::register_handler(FormatPtr fmt, Handler handler) {
  fmt = reader_formats_.register_format(std::move(fmt));
  {
    std::unique_lock lock(config_mutex_);
    handlers_[fmt->fingerprint()] = std::make_shared<Handler>(std::move(handler));
  }
  flush_cache();  // registrations invalidate cached decisions
}

void Receiver::set_default_handler(DefaultHandler handler) {
  {
    std::unique_lock lock(config_mutex_);
    default_handler_ = std::make_shared<DefaultHandler>(std::move(handler));
  }
  flush_cache();
}

FormatPtr Receiver::learn_format(FormatPtr fmt) {
  const uint64_t fp = fmt->fingerprint();
  const bool known = learned_.by_fingerprint(fp) != nullptr;
  FormatPtr out = learned_.register_format(std::move(fmt));
  if (!known) {
    // A genuinely new definition can only change this fingerprint's own
    // decision (it was previously rejected as unknown — e.g. built while
    // the format service was unreachable), so evict exactly that entry
    // instead of flushing the whole cache.
    Shard& shard = shard_for(fp);
    std::unique_lock lock(shard.mutex);
    if (shard.entries.erase(fp) != 0) cached_count_.fetch_sub(1, kRelaxed);
  }
  return out;
}

void Receiver::learn_transform(TransformSpec spec) {
  learned_.register_format(spec.src);
  learned_.register_format(spec.dst);
  {
    std::unique_lock lock(config_mutex_);
    transforms_.add(std::move(spec));
  }
  flush_cache();  // new transforms may unlock previously rejected formats
}

std::vector<FormatPtr> Receiver::reader_formats(const std::string& name) const {
  return reader_formats_.by_name(name);
}

ReceiverStats Receiver::stats() const {
  ReceiverStats s;
  s.messages = stats_.messages.load(kRelaxed);
  s.cache_hits = stats_.cache_hits.load(kRelaxed);
  s.cache_misses = stats_.cache_misses.load(kRelaxed);
  s.exact = stats_.exact.load(kRelaxed);
  s.perfect = stats_.perfect.load(kRelaxed);
  s.morphed = stats_.morphed.load(kRelaxed);
  s.reconciled = stats_.reconciled.load(kRelaxed);
  s.defaulted = stats_.defaulted.load(kRelaxed);
  s.rejected = stats_.rejected.load(kRelaxed);
  s.transforms_compiled = stats_.transforms_compiled.load(kRelaxed);
  s.verify_rejected = stats_.verify_rejected.load(kRelaxed);
  s.zero_copy = stats_.zero_copy.load(kRelaxed);
  s.cache_flushes = stats_.cache_flushes.load(kRelaxed);
  s.resolve_fetched = stats_.resolve_fetched.load(kRelaxed);
  s.resolve_degraded = stats_.resolve_degraded.load(kRelaxed);
  s.morph_fused = stats_.morph_fused.load(kRelaxed);
  s.morph_hopwise = stats_.morph_hopwise.load(kRelaxed);
  s.morph_inplace = stats_.morph_inplace.load(kRelaxed);
  s.chains_fused = stats_.chains_fused.load(kRelaxed);
  s.fusion_bailouts = stats_.fusion_bailouts.load(kRelaxed);
  return s;
}

void Receiver::flush_cache() {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mutex);
    shard.entries.clear();
  }
  cached_count_.store(0, kRelaxed);
}

Receiver::EntryPtr Receiver::decide(uint64_t fingerprint) {
  uint64_t t0 = obs::monotonic_ns();
  Shard& shard = shard_for(fingerprint);
  EntryPtr entry;
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.entries.find(fingerprint);
    if (it != shard.entries.end()) entry = it->second;
  }
  if (entry == nullptr) {
    if (cached_count_.load(kRelaxed) >= options_.max_cached_decisions) {
      // Racy by design: concurrent overflowing threads may each flush, but
      // a flush only costs recomputation, never correctness.
      flush_cache();
      stats_.cache_flushes.fetch_add(1, kRelaxed);
      rx().cache_flushes.inc();
    }
    std::unique_lock lock(shard.mutex);
    auto [it, inserted] = shard.entries.try_emplace(fingerprint);
    if (inserted) {
      it->second = std::make_shared<CacheEntry>();
      cached_count_.fetch_add(1, kRelaxed);
    }
    entry = it->second;
  }
  // The expensive pipeline build runs exactly once per entry; concurrent
  // cold arrivals for the same fingerprint serialize here — on this entry
  // only, never on the shard or the whole cache. No shard lock is held, so
  // other fingerprints keep flowing while this one compiles.
  bool built_here = false;
  std::call_once(entry->build_once, [&] {
    built_here = true;
    stats_.cache_misses.fetch_add(1, kRelaxed);
    rx().cache_misses.inc();
    // Out-of-band resolution happens here, before the shared config lock:
    // registering the fetched format and transforms takes the config lock
    // exclusively, which would deadlock from inside the build.
    maybe_resolve(fingerprint, entry->decision);
    uint64_t b0 = obs::monotonic_ns();
    {
      std::shared_lock config(config_mutex_);
      build_decision(entry->decision, fingerprint);
    }
    rx().build_ns.record(obs::monotonic_ns() - b0);
  });
  if (built_here && entry->decision.provisional) {
    // Don't cache a rejection caused by an unreachable format service:
    // drop the entry (unless a flush already did) so the next message of
    // this format retries the fetch. In-flight threads holding `entry`
    // still deliver against the provisional decision safely.
    std::unique_lock lock(shard.mutex);
    auto it = shard.entries.find(fingerprint);
    if (it != shard.entries.end() && it->second == entry) {
      shard.entries.erase(it);
      cached_count_.fetch_sub(1, kRelaxed);
    }
  }
  if (!built_here) {
    stats_.cache_hits.fetch_add(1, kRelaxed);
    rx().cache_hits.inc();
    rx().decide_hit_ns.record(obs::monotonic_ns() - t0);
  } else {
    rx().decide_miss_ns.record(obs::monotonic_ns() - t0);
  }
  return entry;
}

void Receiver::maybe_resolve(uint64_t fingerprint, Decision& d) {
  if (options_.format_source == nullptr || options_.resolve == ResolvePolicy::kFail) return;
  if (learned_.by_fingerprint(fingerprint) != nullptr) return;  // already known
  if (auto resolved = options_.format_source->resolve(fingerprint)) {
    add_resolved(std::move(*resolved));
    stats_.resolve_fetched.fetch_add(1, kRelaxed);
    rx().resolve_fetched.inc();
    return;
  }
  stats_.resolve_degraded.fetch_add(1, kRelaxed);
  rx().resolve_degraded.inc();
  MORPH_LOG_WARN("receiver") << "out-of-band resolve of fingerprint " << fingerprint
                             << " failed (policy "
                             << resolve_policy_name(options_.resolve) << ")";
  if (options_.resolve == ResolvePolicy::kFetchOrInline) d.provisional = true;
}

void Receiver::add_resolved(ResolvedFormat resolved) {
  learned_.register_format(resolved.format);
  for (const TransformSpec& spec : resolved.transforms) {
    learned_.register_format(spec.src);
    learned_.register_format(spec.dst);
  }
  std::unique_lock lock(config_mutex_);
  for (TransformSpec& spec : resolved.transforms) transforms_.add(std::move(spec));
  // No cache flush, unlike learn_transform: this runs inside the resolving
  // fingerprint's own first build, so no decision for it can be cached yet.
  // (Other formats' decisions don't see the fetched transforms until their
  // next build — the same staleness window inline delivery always had.)
}

void Receiver::build_decision(Decision& d, uint64_t fingerprint) {
  // Capture the default handler into the decision: set_default_handler
  // flushes the cache, so a cached copy can never go stale.
  d.default_handler = default_handler_;

  FormatPtr fm = learned_.by_fingerprint(fingerprint);
  if (fm == nullptr) {
    // Unknown format: no out-of-band definition arrived. Reject.
    MORPH_LOG_INFO("receiver") << "no format definition for fingerprint " << fingerprint;
    obs::flight_record(obs::FlightKind::kReject, obs::current_trace().trace_id,
                       "rx: no format definition for fingerprint " +
                           std::to_string(fingerprint));
    d.outcome = Outcome::kRejected;
    return;
  }

  std::vector<FormatPtr> fr = reader_formats_.by_name(fm->name());
  auto handler_for = [&](uint64_t fp) -> std::shared_ptr<Handler> {
    auto it = handlers_.find(fp);
    return it == handlers_.end() ? nullptr : it->second;
  };

  // Per-format latency series, cached on the decision so the steady-state
  // cost per message is one clock read + relaxed add. Labeled by format
  // *name* (bounded by the application's schema count), never fingerprint.
  // The name is baked raw; the exporters escape label values at render
  // time (obs/export.hpp), so escaping here would double up.
  d.fmt_name = fm->name();
  std::string fmt_label = "{fmt=\"" + fm->name() + "\"}";
  d.decode_ns = &obs::metrics().histogram("morph_rx_decode_ns" + fmt_label);
  d.morph_ns = &obs::metrics().histogram("morph_rx_morph_ns" + fmt_label);

  // Lines 11-15: MaxMatch(fm, Fr); a perfect pair needs only a layout
  // conversion (possibly a pure no-op when fingerprints coincide).
  uint64_t m0 = obs::monotonic_ns();
  auto first = max_match({fm}, fr, options_.thresholds);
  rx().match_ns.record(obs::monotonic_ns() - m0);
  if (auto& m = first; m && m->perfect()) {
    d.outcome = m->f2->fingerprint() == fm->fingerprint() ? Outcome::kExact : Outcome::kPerfect;
    d.deliver_fmt = m->f2;
    d.native_fmt = m->f2;
    d.handler = handler_for(m->f2->fingerprint());
    d.decode_plan = std::make_unique<pbio::ConversionPlan>(fm, m->f2);
    if (d.outcome == Outcome::kExact) {
      d.exact_decoder = std::make_unique<pbio::Decoder>(m->f2);
    }
    return;
  }

  // Lines 16-19: MaxMatch over the transform closure Ft.
  std::vector<FormatPtr> ft = transforms_.closure(fm);
  m0 = obs::monotonic_ns();
  auto m = max_match(ft, fr, options_.thresholds);
  rx().match_ns.record(obs::monotonic_ns() - m0);
  if (!m) {
    obs::flight_record(obs::FlightKind::kReject, obs::current_trace().trace_id,
                       "rx: no acceptable match for format '" + fm->name() + "'");
    d.outcome = Outcome::kRejected;
    return;
  }

  d.deliver_fmt = m->f2;
  d.handler = handler_for(m->f2->fingerprint());

  bool morphs = m->f1->fingerprint() != fm->fingerprint();
  FormatPtr native_fmt;  // format of the record after decode (+ chain)
  if (morphs) {
    // Lines 21-24: generate and cache the fm -> f1 transformation code.
    auto specs = transforms_.chain(fm->fingerprint(), m->f1->fingerprint());
    if (!specs || specs->empty()) {
      // Closure said reachable; a missing chain would be a logic error.
      throw Error("receiver: transform chain vanished");
    }
    ecode::CompileOptions copts;
    copts.backend = options_.backend;
    copts.verify = options_.verify;
    copts.fuel_limit = options_.verify_fuel_limit;
    try {
      d.chain = std::make_shared<MorphChain>(*specs, copts, options_.fuse);
    } catch (const ecode::VerifyError& e) {
      // Peer-supplied code failed static verification: reject the format
      // before any native code exists. The structured findings name the
      // check, the field, and the source line for the peer's operator.
      stats_.verify_rejected.fetch_add(1, kRelaxed);
      rx().verify_rejected.inc();
      std::ostringstream msg;
      msg << "transform chain for fingerprint " << fingerprint
          << " rejected by the static verifier:";
      for (const auto& f : e.result().findings) msg << "\n  " << f.to_string();
      MORPH_LOG_WARN("receiver") << msg.str();
      obs::flight_record(obs::FlightKind::kReject, obs::current_trace().trace_id,
                         "rx: verifier rejected transform chain for '" + fm->name() + "'");
      d.chain = nullptr;
      d.handler = nullptr;
      d.deliver_fmt = nullptr;
      d.outcome = Outcome::kRejected;
      return;
    }
    for (const auto& f : d.chain->verify_findings()) {
      MORPH_LOG_WARN("receiver") << "transform verifier: " << f.to_string();
    }
    stats_.transforms_compiled.fetch_add(d.chain->hops(), kRelaxed);
    rx().transforms_compiled.add(d.chain->hops());
    // Fusion happened (or bailed) inside the chain compile above — i.e.
    // once per (wire format, chain) under this entry's once-flag.
    rx().chain_hops.record(static_cast<int64_t>(d.chain->hops()));
    if (d.chain->fused()) {
      stats_.chains_fused.fetch_add(1, kRelaxed);
      rx().chain_fused_builds.inc();
    } else {
      stats_.fusion_bailouts.fetch_add(1, kRelaxed);
      rx().chain_fusion_bailouts.inc();
      MORPH_LOG_INFO("receiver") << "morph chain for fingerprint " << fingerprint
                                 << " runs hop-wise: " << d.chain->fusion_bailout();
    }
    // Decode-into-morph: the conversion plan targets the chain's source
    // layout directly, and when the wire layout already *is* that layout
    // the in-place decoder lets process_in_place skip conversion entirely.
    d.decode_plan = std::make_unique<pbio::ConversionPlan>(fm, d.chain->src_format());
    if (fm->fingerprint() == d.chain->src_format()->fingerprint()) {
      d.morph_decoder = std::make_unique<pbio::Decoder>(d.chain->src_format());
    }
    native_fmt = d.chain->dst_format();
  } else {
    native_fmt = pbio::relayout(*fm);
    d.decode_plan = std::make_unique<pbio::ConversionPlan>(fm, native_fmt);
  }

  d.native_fmt = native_fmt;

  // Lines 26-28: imperfect pairs get defaults filled and extras dropped.
  bool needs_reconcile = !native_fmt->identical_to(*m->f2);
  if (needs_reconcile) {
    d.reconciler = std::make_unique<Reconciler>(native_fmt, m->f2);
  }
  bool imperfect = !m->perfect();
  if (morphs) {
    d.outcome = imperfect ? Outcome::kMorphedReconciled : Outcome::kMorphed;
  } else {
    d.outcome = Outcome::kReconciled;
  }
}

Outcome Receiver::finish_delivery(const Decision& d, void* record) {
  switch (d.outcome) {
    case Outcome::kExact:
      stats_.exact.fetch_add(1, kRelaxed);
      rx().exact.inc();
      break;
    case Outcome::kPerfect:
      stats_.perfect.fetch_add(1, kRelaxed);
      rx().perfect.inc();
      break;
    case Outcome::kMorphed:
      stats_.morphed.fetch_add(1, kRelaxed);
      rx().morphed.inc();
      break;
    case Outcome::kReconciled:
      stats_.reconciled.fetch_add(1, kRelaxed);
      rx().reconciled.inc();
      break;
    case Outcome::kMorphedReconciled:
      stats_.reconciled.fetch_add(1, kRelaxed);
      rx().morphed_reconciled.inc();
      break;
    default:
      break;
  }
  // The caller holds the cache entry via shared_ptr, so the decision (and
  // this handler) stay alive even if the handler itself registers formats
  // and flushes the cache mid-delivery.
  if (d.handler != nullptr && *d.handler) {
    Delivery delivery{record, d.deliver_fmt, d.outcome};
    (*d.handler)(delivery);
  }
  return d.outcome;
}

Outcome Receiver::process(const void* buf, size_t size, RecordArena& arena) {
  stats_.messages.fetch_add(1, kRelaxed);
  rx().messages.inc();
  pbio::WireInfo info = pbio::peek_header(buf, size);
  EntryPtr entry = decide(info.fingerprint);
  const Decision& d = entry->decision;

  switch (d.outcome) {
    case Outcome::kRejected:
    case Outcome::kDefaulted: {
      if (d.default_handler != nullptr && *d.default_handler) {
        (*d.default_handler)(buf, size);
        stats_.defaulted.fetch_add(1, kRelaxed);
        rx().defaulted.inc();
        return Outcome::kDefaulted;
      }
      stats_.rejected.fetch_add(1, kRelaxed);
      rx().rejected.inc();
      return Outcome::kRejected;
    }
    default:
      break;
  }

  uint64_t t0 = obs::monotonic_ns();
  void* record = d.decode_plan->execute(buf, size, arena);
  uint64_t t1 = obs::monotonic_ns();
  if (d.decode_ns != nullptr) d.decode_ns->record(t1 - t0);
  if (d.chain || d.reconciler) {
    if (d.chain) {
      record = d.chain->apply(record, arena);
      if (d.chain->fused()) {
        stats_.morph_fused.fetch_add(1, kRelaxed);
        rx().morph_fused.inc();
      } else {
        stats_.morph_hopwise.fetch_add(1, kRelaxed);
        rx().morph_hopwise.inc();
      }
    }
    if (d.reconciler) record = d.reconciler->apply(record, arena);
    const uint64_t morph_dur = obs::monotonic_ns() - t1;
    if (d.morph_ns != nullptr) d.morph_ns->record(morph_dur);
    rx().morphs.inc();
    obs::record_span("rx.morph", d.fmt_name, t1, morph_dur);
    if (morph_dur >= obs::flight_slow_ns()) {
      obs::flight_record(obs::FlightKind::kSlowMorph, obs::current_trace().trace_id,
                         "rx: morph of '" + d.fmt_name + "' took " +
                             std::to_string(morph_dur) + " ns");
    }
  }
  return finish_delivery(d, record);
}

Outcome Receiver::process_in_place(void* buf, size_t size, RecordArena& arena) {
  pbio::WireInfo info = pbio::peek_header(buf, size);
  EntryPtr entry = decide(info.fingerprint);
  const Decision& d = entry->decision;
  if (d.outcome == Outcome::kExact && d.exact_decoder != nullptr) {
    void* record = d.exact_decoder->decode_in_place(buf, size);
    if (record != nullptr) {
      // Zero-copy fast path: counters only, no clock reads (the in-place
      // decode is tens of ns — a timestamp pair would dominate it).
      stats_.messages.fetch_add(1, kRelaxed);
      stats_.zero_copy.fetch_add(1, kRelaxed);
      rx().messages.inc();
      rx().zero_copy.inc();
      return finish_delivery(d, record);
    }
    // Foreign byte order: fall through to the copying path.
  }
  if (d.chain != nullptr && d.morph_decoder != nullptr) {
    // Decode-into-morph zero-copy path: the wire layout equals the chain's
    // source layout, so rewrite pointers in the caller's buffer and feed
    // the record straight into the (ideally fused) chain — the conversion
    // plan never runs and no source-side record is materialized.
    void* record = d.morph_decoder->decode_in_place(buf, size);
    if (record != nullptr) {
      stats_.messages.fetch_add(1, kRelaxed);
      stats_.morph_inplace.fetch_add(1, kRelaxed);
      rx().messages.inc();
      rx().morph_inplace.inc();
      uint64_t t0 = obs::monotonic_ns();
      record = d.chain->apply(record, arena);
      if (d.chain->fused()) {
        stats_.morph_fused.fetch_add(1, kRelaxed);
        rx().morph_fused.inc();
      } else {
        stats_.morph_hopwise.fetch_add(1, kRelaxed);
        rx().morph_hopwise.inc();
      }
      if (d.reconciler) record = d.reconciler->apply(record, arena);
      const uint64_t morph_dur = obs::monotonic_ns() - t0;
      if (d.morph_ns != nullptr) d.morph_ns->record(morph_dur);
      rx().morphs.inc();
      obs::record_span("rx.morph", d.fmt_name, t0, morph_dur);
      if (morph_dur >= obs::flight_slow_ns()) {
        obs::flight_record(obs::FlightKind::kSlowMorph, obs::current_trace().trace_id,
                           "rx: morph of '" + d.fmt_name + "' took " +
                               std::to_string(morph_dur) + " ns");
      }
      return finish_delivery(d, record);
    }
  }
  return process(buf, size, arena);
}

Outcome Receiver::process_record(const pbio::FormatPtr& fmt, void* record,
                                 RecordArena& arena) {
  EntryPtr entry = decide(fmt->fingerprint());
  const Decision& d = entry->decision;

  if (d.outcome == Outcome::kRejected || d.outcome == Outcome::kDefaulted) {
    stats_.messages.fetch_add(1, kRelaxed);
    rx().messages.inc();
    if (d.default_handler != nullptr && *d.default_handler) {
      // The default handler's contract is raw wire bytes; hand it a PBIO
      // encoding of the record (the bridge's frame bytes are long gone).
      ByteBuffer wire;
      pbio::encode_record(*fmt, record, wire);
      (*d.default_handler)(wire.data(), wire.size());
      stats_.defaulted.fetch_add(1, kRelaxed);
      rx().defaulted.inc();
      return Outcome::kDefaulted;
    }
    stats_.rejected.fetch_add(1, kRelaxed);
    rx().rejected.inc();
    return Outcome::kRejected;
  }

  // Fingerprint equality fixes the shape but not the offsets, so each
  // shortcut below also proves layout equality (pointer check first: the
  // caller usually passes the very format the decision was built from).
  auto same_layout = [&fmt](const pbio::FormatPtr& f) {
    return f != nullptr && (f.get() == fmt.get() || f->identical_to(*fmt));
  };

  if (d.outcome == Outcome::kExact && same_layout(d.deliver_fmt)) {
    stats_.messages.fetch_add(1, kRelaxed);
    rx().messages.inc();
    return finish_delivery(d, record);
  }

  if (d.chain != nullptr && same_layout(d.chain->src_format())) {
    // The record is already in the chain's source layout: feed it straight
    // into the morph pipeline, exactly as a decode-into-morph frame would.
    stats_.messages.fetch_add(1, kRelaxed);
    rx().messages.inc();
    uint64_t t0 = obs::monotonic_ns();
    record = d.chain->apply(record, arena);
    if (d.chain->fused()) {
      stats_.morph_fused.fetch_add(1, kRelaxed);
      rx().morph_fused.inc();
    } else {
      stats_.morph_hopwise.fetch_add(1, kRelaxed);
      rx().morph_hopwise.inc();
    }
    if (d.reconciler) record = d.reconciler->apply(record, arena);
    const uint64_t morph_dur = obs::monotonic_ns() - t0;
    if (d.morph_ns != nullptr) d.morph_ns->record(morph_dur);
    rx().morphs.inc();
    obs::record_span("rx.morph", d.fmt_name, t0, morph_dur);
    if (morph_dur >= obs::flight_slow_ns()) {
      obs::flight_record(obs::FlightKind::kSlowMorph, obs::current_trace().trace_id,
                         "rx: morph of '" + d.fmt_name + "' took " +
                             std::to_string(morph_dur) + " ns");
    }
    return finish_delivery(d, record);
  }

  if (d.chain == nullptr && d.reconciler != nullptr && same_layout(d.native_fmt)) {
    // Already in the reconciler's input layout: fill defaults, drop extras,
    // deliver.
    stats_.messages.fetch_add(1, kRelaxed);
    rx().messages.inc();
    uint64_t t0 = obs::monotonic_ns();
    record = d.reconciler->apply(record, arena);
    const uint64_t morph_dur = obs::monotonic_ns() - t0;
    if (d.morph_ns != nullptr) d.morph_ns->record(morph_dur);
    rx().morphs.inc();
    obs::record_span("rx.morph", d.fmt_name, t0, morph_dur);
    return finish_delivery(d, record);
  }

  // The decision's pipeline starts from wire bytes (its conversion plan
  // changes byte order or layout first), so the record cannot enter
  // mid-pipeline: round-trip through a PBIO encoding. process() does its
  // own message accounting — no pre-increment here.
  ByteBuffer wire;
  pbio::encode_record(*fmt, record, wire);
  return process(wire.data(), wire.size(), arena);
}

}  // namespace morph::core
