// Transform specifications and retro-transformation chains (Figure 1).
//
// A sender associates each new format revision with Ecode that converts a
// record of that revision into the previous one. Transform specs travel
// out-of-band with the format meta-data; the receiver composes chains
// (Rev2 -> Rev1 -> Rev0) and compiles them with dynamic code generation the
// first time a message of a given format arrives (Algorithm 2 line 22).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "ecode/ecode.hpp"
#include "pbio/format.hpp"

namespace morph::core {

/// One retro-transformation: Ecode converting a `src`-format record into a
/// `dst`-format record. Inside the code the destination record is named
/// `dst_param` and the source record `src_param` — "old" and "new" by
/// default, matching the paper's Figure 5.
struct TransformSpec {
  pbio::FormatPtr src;
  pbio::FormatPtr dst;
  std::string code;
  std::string dst_param = "old";
  std::string src_param = "new";

  void serialize(ByteBuffer& out) const;
  static TransformSpec deserialize(ByteReader& in);
};

/// Receiver-side knowledge of available transforms, indexed by source
/// format fingerprint.
class TransformCatalog {
 public:
  void add(TransformSpec spec);
  size_t size() const { return specs_.size(); }

  /// Ft: every format reachable from `from` through transforms, including
  /// `from` itself (Algorithm 2 line 5). Breadth-first, so nearer revisions
  /// come first.
  std::vector<pbio::FormatPtr> closure(const pbio::FormatPtr& from) const;

  /// Shortest transform chain from -> to (by fingerprints). Empty vector
  /// when from == to; nullopt when unreachable.
  std::optional<std::vector<const TransformSpec*>> chain(uint64_t from_fp, uint64_t to_fp) const;

 private:
  std::vector<std::unique_ptr<TransformSpec>> specs_;
  std::unordered_map<uint64_t, std::vector<const TransformSpec*>> by_src_;
};

/// Verification policy for code arriving from peers (see ecode/verify.hpp).
/// Receivers compile transform specs that traveled over the network, so this
/// is the trust boundary the static verifier exists for.
using VerifyPolicy = ecode::VerifyMode;

/// A compiled retro-transformation chain. Each hop is compiled against
/// host-native relayouts of the spec formats (the specs themselves may
/// carry a foreign sender's layouts), so the chain maps a native record of
/// src_format() into a fresh native record of dst_format().
///
/// Chains of two or more hops additionally attempt *fusion* (ecode/fuse.hpp):
/// the hops are rewritten into one Ecode program with the intermediate
/// records replaced by locals, compiled under the same options, and used by
/// apply() so a morph touches no intermediate record at all. Fusion is
/// strictly an optimization — when it bails (fusion_bailout() says why) the
/// hop-wise path runs instead, and apply_hopwise() always remains available
/// as the correctness oracle.
class MorphChain {
 public:
  MorphChain(const std::vector<const TransformSpec*>& specs,
             ecode::ExecBackend backend = ecode::ExecBackend::kAuto);

  /// Compile with full options: each hop is verified per `options.verify`
  /// (the hop's destination record is always verify parameter 0). In
  /// enforce mode a hop that fails verification throws ecode::VerifyError
  /// before any native code for the chain is installed. `fuse` gates the
  /// fused-execution attempt; a fused program that fails to compile or
  /// verify silently falls back to hop-wise execution.
  MorphChain(const std::vector<const TransformSpec*>& specs,
             const ecode::CompileOptions& options, bool fuse = true);

  const pbio::FormatPtr& src_format() const { return src_fmt_; }
  const pbio::FormatPtr& dst_format() const { return dst_fmt_; }
  size_t hops() const { return steps_.size(); }
  bool jitted() const;

  /// Run the chain — single fused pass when available, hop-wise otherwise.
  /// The returned record (and everything it points to) is allocated from
  /// `arena`.
  void* apply(void* src_record, RecordArena& arena) const;

  /// Run the chain hop by hop, materializing every intermediate record.
  /// This is the reference execution fused output is compared against.
  void* apply_hopwise(void* src_record, RecordArena& arena) const;

  /// True when apply() runs the single fused transform.
  bool fused() const { return fused_.has_value(); }

  /// Why fusion was not used (empty when fused() is true).
  const std::string& fusion_bailout() const { return fusion_bailout_; }

  /// The fused Ecode program (empty unless fused()); diagnostics only.
  const std::string& fused_source() const { return fused_source_; }

  /// Verifier findings across all hops, in hop order (empty when compiled
  /// with VerifyPolicy kOff). Collected once at compile time.
  const std::vector<ecode::VerifyFinding>& verify_findings() const { return verify_findings_; }

  /// True when any hop had an uncertifiable loop rewritten with a fuel guard.
  bool fuel_instrumented() const;

 private:
  struct Step {
    ecode::Transform transform;
    pbio::FormatPtr dst_fmt;  // host layout
  };
  void attempt_fusion(const std::vector<const TransformSpec*>& specs,
                      const ecode::CompileOptions& options);

  pbio::FormatPtr src_fmt_;  // host layout
  pbio::FormatPtr dst_fmt_;  // host layout
  std::vector<Step> steps_;
  std::optional<ecode::Transform> fused_;
  std::string fused_source_;
  std::string fusion_bailout_;
  std::vector<ecode::VerifyFinding> verify_findings_;
};

}  // namespace morph::core
