#include "core/compat.hpp"

#include <algorithm>

namespace morph::core {

const char* compat_route_name(CompatRoute r) {
  switch (r) {
    case CompatRoute::kExact: return "exact";
    case CompatRoute::kPerfect: return "perfect";
    case CompatRoute::kReconcile: return "reconcile";
    case CompatRoute::kMorph: return "morph";
    case CompatRoute::kMorphReconcile: return "morph+reconcile";
    case CompatRoute::kIncompatible: return "incompatible";
  }
  return "?";
}

std::vector<CompatEntry> analyze_compatibility(const std::vector<pbio::FormatPtr>& incoming,
                                               const std::vector<pbio::FormatPtr>& readers,
                                               const TransformCatalog& transforms,
                                               const MatchThresholds& thresholds) {
  std::vector<CompatEntry> out;
  for (const auto& fm : incoming) {
    CompatEntry entry;
    entry.incoming = fm;

    std::vector<pbio::FormatPtr> fr;
    for (const auto& r : readers) {
      if (r->name() == fm->name()) fr.push_back(r);
    }

    if (auto direct = max_match({fm}, fr, thresholds); direct && direct->perfect()) {
      entry.delivered = direct->f2;
      entry.route = direct->f2->fingerprint() == fm->fingerprint() ? CompatRoute::kExact
                                                                   : CompatRoute::kPerfect;
      out.push_back(std::move(entry));
      continue;
    }

    auto ft = transforms.closure(fm);
    auto m = max_match(ft, fr, thresholds);
    if (!m) {
      out.push_back(std::move(entry));
      continue;
    }
    entry.delivered = m->f2;
    entry.via = m->f1;
    entry.diff12 = m->diff12;
    entry.mismatch = m->mr;
    bool morphs = m->f1->fingerprint() != fm->fingerprint();
    if (morphs) {
      if (auto chain = transforms.chain(fm->fingerprint(), m->f1->fingerprint())) {
        entry.chain_hops = chain->size();
      }
      entry.route = m->perfect() ? CompatRoute::kMorph : CompatRoute::kMorphReconcile;
    } else {
      entry.route = CompatRoute::kReconcile;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::string render_compatibility_report(const std::vector<CompatEntry>& entries) {
  auto fp_tag = [](const pbio::FormatPtr& f) {
    if (!f) return std::string("-");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s#%04llx", f->name().c_str(),
                  static_cast<unsigned long long>(f->fingerprint() & 0xFFFF));
    return std::string(buf);
  };
  std::string out;
  out += "incoming format        route             via               delivered        "
         "hops  diff  Mr\n";
  out += std::string(96, '-') + "\n";
  for (const auto& e : entries) {
    char line[256];
    std::snprintf(line, sizeof line, "%-22s %-17s %-17s %-16s %4zu  %4u  %.3f\n",
                  fp_tag(e.incoming).c_str(), compat_route_name(e.route), fp_tag(e.via).c_str(),
                  fp_tag(e.delivered).c_str(), e.chain_hops, e.diff12, e.mismatch);
    out += line;
  }
  return out;
}

}  // namespace morph::core
