// Ecode bytecode compiler: annotated AST -> Chunk.
#pragma once

#include <memory>

#include "ecode/ast.hpp"
#include "ecode/bytecode.hpp"
#include "ecode/sema.hpp"

namespace morph::ecode {

/// Compile an analyzed program (see analyze()) into bytecode.
Chunk compile(const Program& prog, const std::vector<RecordParam>& params);

}  // namespace morph::ecode
