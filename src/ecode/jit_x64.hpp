// x86-64 dynamic code generation for Ecode bytecode.
//
// A template JIT: every bytecode instruction becomes a short fixed native
// sequence; the evaluation stack is the hardware stack; runtime helpers are
// reached through absolute calls with dynamic 16-byte re-alignment. Code
// buffers are W^X: mapped writable, filled, then re-protected executable.
#pragma once

#include <cstddef>
#include <memory>

#include "ecode/bytecode.hpp"
#include "ecode/runtime.hpp"

namespace morph::ecode {

class JitCode {
 public:
  /// Translate a chunk. Returns nullptr when the host is unsupported.
  static std::unique_ptr<const JitCode> build(const Chunk& chunk);

  ~JitCode();
  JitCode(const JitCode&) = delete;
  JitCode& operator=(const JitCode&) = delete;

  void run(void* const* params, int64_t* locals, EcodeRuntime& rt) const;

  size_t code_size() const { return code_size_; }

 private:
  JitCode() = default;

  using Fn = void (*)(void* const* params, int64_t* locals, EcodeRuntime* rt,
                      const char* const* strings);

  void* mem_ = nullptr;        // mmap'd region
  size_t mem_size_ = 0;
  size_t code_size_ = 0;
  Fn entry_ = nullptr;
  std::unique_ptr<const char*[]> string_table_;  // stable char* per pooled literal
  std::unique_ptr<std::string[]> string_storage_;
};

}  // namespace morph::ecode
