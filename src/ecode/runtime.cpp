#include "ecode/runtime.hpp"

#include <cstring>

#include "common/error.hpp"
#include "pbio/record.hpp"

using morph::ecode::EcodeRuntime;

extern "C" {

void* morph_ecode_ensure(EcodeRuntime* rt, void* slot, int64_t index, int64_t stride) {
  // A negative index is clamped to 0: the helper is called from JIT-compiled
  // code whose frames cannot unwind a C++ exception, so all inputs must have
  // defined behaviour.
  if (index < 0) index = 0;
  void* elems;
  std::memcpy(&elems, slot, sizeof(void*));
  uint64_t cap = morph::pbio::dyn_array_capacity(elems);
  if (static_cast<uint64_t>(index) >= cap) {
    uint64_t new_cap = cap == 0 ? 8 : cap * 2;
    while (new_cap <= static_cast<uint64_t>(index)) new_cap *= 2;
    void* grown = morph::pbio::alloc_dyn_array(*rt->arena, static_cast<uint32_t>(stride), new_cap);
    if (elems != nullptr && cap > 0) {
      std::memcpy(grown, elems, cap * static_cast<uint64_t>(stride));
    }
    std::memcpy(slot, &grown, sizeof(void*));
    elems = grown;
  }
  return static_cast<uint8_t*>(elems) + static_cast<uint64_t>(index) * static_cast<uint64_t>(stride);
}

void morph_ecode_str_assign(EcodeRuntime* rt, void* slot, const char* src) {
  char* copy = src == nullptr ? nullptr : rt->arena->copy_string(src);
  std::memcpy(slot, &copy, sizeof(char*));
}

int64_t morph_ecode_strlen(const char* s) {
  return s == nullptr ? 0 : static_cast<int64_t>(std::strlen(s));
}

int64_t morph_ecode_streq(const char* a, const char* b) {
  if (a == nullptr) a = "";
  if (b == nullptr) b = "";
  return std::strcmp(a, b) == 0 ? 1 : 0;
}

namespace {

using morph::pbio::FieldDescriptor;
using morph::pbio::FieldKind;
using morph::pbio::FormatDescriptor;

void deep_copy_struct(morph::RecordArena& arena, uint8_t* dst, const uint8_t* src,
                      const FormatDescriptor& fmt);

void deep_fix_element(morph::RecordArena& arena, uint8_t* de, const uint8_t* se,
                      const FieldDescriptor& fd) {
  if (fd.element_format) {
    deep_copy_struct(arena, de, se, *fd.element_format);
    return;
  }
  if (fd.element_kind == FieldKind::kString) {
    const char* s;
    std::memcpy(&s, se, sizeof(char*));
    char* copy = s == nullptr ? nullptr : arena.copy_string(s);
    std::memcpy(de, &copy, sizeof(char*));
  }
  // Basic scalars were covered by the struct memcpy.
}

void deep_copy_struct(morph::RecordArena& arena, uint8_t* dst, const uint8_t* src,
                      const FormatDescriptor& fmt) {
  std::memcpy(dst, src, fmt.struct_size());
  if (!fmt.has_pointers()) return;
  for (const auto& fd : fmt.fields()) {
    switch (fd.kind) {
      case FieldKind::kString: {
        const char* s;
        std::memcpy(&s, src + fd.offset, sizeof(char*));
        char* copy = s == nullptr ? nullptr : arena.copy_string(s);
        std::memcpy(dst + fd.offset, &copy, sizeof(char*));
        break;
      }
      case FieldKind::kStruct:
        if (fd.element_format->has_pointers()) {
          deep_copy_struct(arena, dst + fd.offset, src + fd.offset, *fd.element_format);
        }
        break;
      case FieldKind::kStaticArray: {
        bool needs = (fd.element_format && fd.element_format->has_pointers()) ||
                     (!fd.element_format && fd.element_kind == FieldKind::kString);
        if (!needs) break;
        uint32_t stride = fd.element_stride();
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          deep_fix_element(arena, dst + fd.offset + i * stride, src + fd.offset + i * stride,
                           fd);
        }
        break;
      }
      case FieldKind::kDynArray: {
        const FieldDescriptor* len = fmt.find_field(fd.length_field);
        int64_t count = len ? morph::pbio::read_scalar_i64(src, *len) : 0;
        const auto* elems =
            static_cast<const uint8_t*>(morph::pbio::read_pointer(src, fd));
        if (elems == nullptr || count <= 0) {
          morph::pbio::write_pointer(dst, fd, nullptr);
          break;
        }
        uint32_t stride = fd.element_stride();
        auto* copy = static_cast<uint8_t*>(
            morph::pbio::alloc_dyn_array(arena, stride, static_cast<uint64_t>(count)));
        std::memcpy(copy, elems, static_cast<uint64_t>(count) * stride);
        bool needs = (fd.element_format && fd.element_format->has_pointers()) ||
                     (!fd.element_format && fd.element_kind == FieldKind::kString);
        if (needs) {
          for (int64_t i = 0; i < count; ++i) {
            deep_fix_element(arena, copy + static_cast<size_t>(i) * stride,
                             elems + static_cast<size_t>(i) * stride, fd);
          }
        }
        morph::pbio::write_pointer(dst, fd, copy);
        break;
      }
      default:
        break;  // scalars already copied by the memcpy
    }
  }
}

}  // namespace

void morph_ecode_struct_copy(EcodeRuntime* rt, void* dst, const void* src,
                             const FormatDescriptor* fmt) {
  deep_copy_struct(*rt->arena, static_cast<uint8_t*>(dst), static_cast<const uint8_t*>(src),
                   *fmt);
}

}  // extern "C"
