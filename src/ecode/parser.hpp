// Ecode recursive-descent parser: tokens -> AST. Pure syntax; all name and
// type resolution happens in sema.
#pragma once

#include <memory>
#include <string>

#include "ecode/ast.hpp"

namespace morph::ecode {

/// Parse a transform body (a sequence of statements). Throws EcodeError.
std::unique_ptr<Program> parse(const std::string& source);

}  // namespace morph::ecode
