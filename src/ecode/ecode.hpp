// Ecode: the transformation language of Message Morphing.
//
// Ecode is the C subset the paper uses to express format transforms
// (Figure 5). A transform binds one or more named record parameters — by
// convention the destination first ("old") and the source second ("new") —
// and is compiled at runtime: lexer -> parser -> semantic analysis against
// the PBIO formats -> stack bytecode -> either an x86-64 native function
// (dynamic binary code generation, the paper's headline mechanism) or the
// portable bytecode VM.
//
// Language summary:
//   * types: int / long / short / char / unsigned / float / double
//     (integers are 64-bit at runtime; floats are doubles)
//   * statements: declarations, assignment (= += -= *= /= %=), ++/--,
//     if/else, for, while, blocks, return
//   * expressions: full C operator precedence, ?:, short-circuit && and ||,
//     builtins abs/min/max/strlen/streq, string literals
//   * record access: param.field, nested structs, static and dynamic
//     arrays (param.list[i].member). Writing through a destination
//     dynamic array grows it automatically; its count field is whatever
//     the program stores into it (as in Figure 5).
//   * division by zero yields 0; transforms can never trap.
//
// Thread safety: a compiled Transform is immutable and may be shared;
// each run() call uses its own arena/runtime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "ecode/bytecode.hpp"
#include "ecode/sema.hpp"
#include "ecode/verify.hpp"

namespace morph::ecode {

class JitCode;  // internal (jit_x64.cpp)

enum class ExecBackend {
  kAuto,         // JIT when supported on this host, VM otherwise
  kInterpreter,  // force the bytecode VM
  kJit,          // force native code (throws if unsupported)
};

/// True when the native code generator supports this process (x86-64 and
/// not disabled via MORPH_DISABLE_JIT=1).
bool jit_supported();

/// What to do with the static verifier's findings (see ecode/verify.hpp).
enum class VerifyMode {
  kOff,      // skip verification entirely (the pre-verifier behavior)
  kWarn,     // verify, keep findings for inspection, never reject
  kEnforce,  // throw VerifyError on any error-severity finding
};

struct CompileOptions {
  ExecBackend backend = ExecBackend::kAuto;
  VerifyMode verify = VerifyMode::kOff;
  /// In kEnforce mode, loops without a termination certificate are rewritten
  /// to give up after this many back-edge traversals instead of being
  /// rejected. 0 disables instrumentation (unbounded loops become errors).
  int64_t fuel_limit = 1 << 20;
  /// Escalate never-assigned destination fields from warning to error.
  bool require_full_assignment = false;
  /// Parameters verified as transform destinations; by the paper's
  /// convention the destination is parameter 0 ("old").
  std::vector<int> dst_params = {0};
};

/// A compiled Ecode transform.
class Transform {
 public:
  /// Compile `source` against the given record parameters.
  /// Throws EcodeError on lexical/syntax/type errors.
  static Transform compile(const std::string& source, std::vector<RecordParam> params,
                           ExecBackend backend = ExecBackend::kAuto);

  /// Compile with explicit options. With options.verify != kOff the static
  /// verifier runs between bytecode generation and native code emission;
  /// kEnforce throws VerifyError (carrying structured findings) before any
  /// executable artifact exists for a rejected program.
  static Transform compile(const std::string& source, std::vector<RecordParam> params,
                           const CompileOptions& options);

  ~Transform();
  Transform(Transform&&) noexcept;
  Transform& operator=(Transform&&) noexcept;

  /// Execute against `records` (one base pointer per record parameter, in
  /// declaration order). Memory the transform allocates (strings, grown
  /// arrays) comes from `arena` and must outlive the destination record.
  void run(void* const* records, RecordArena& arena) const;

  /// Convenience for the common two-parameter (dst, src) shape.
  void run2(void* dst, const void* src, RecordArena& arena) const;

  /// True when this transform executes as native code.
  bool jitted() const;

  const Chunk& chunk() const { return chunk_; }
  const std::vector<RecordParam>& params() const { return params_; }

  /// Findings from the last verification run (empty when compiled with
  /// VerifyMode::kOff). In kWarn mode this includes error-severity findings
  /// that kEnforce would have rejected.
  const std::vector<VerifyFinding>& verify_findings() const { return verify_findings_; }

  /// True when the verifier rewrote an uncertifiable loop with a fuel guard.
  bool fuel_instrumented() const { return fuel_instrumented_; }

  /// Bytecode listing (diagnostics).
  std::string disassemble() const { return chunk_.disassemble(); }

  /// Native code size in bytes (0 when interpreted).
  size_t native_code_size() const;

 private:
  Transform() = default;

  Chunk chunk_;
  std::vector<RecordParam> params_;
  std::shared_ptr<const JitCode> jit_;  // null -> VM
  std::vector<VerifyFinding> verify_findings_;
  bool fuel_instrumented_ = false;
};

}  // namespace morph::ecode
