// Ecode: the transformation language of Message Morphing.
//
// Ecode is the C subset the paper uses to express format transforms
// (Figure 5). A transform binds one or more named record parameters — by
// convention the destination first ("old") and the source second ("new") —
// and is compiled at runtime: lexer -> parser -> semantic analysis against
// the PBIO formats -> stack bytecode -> either an x86-64 native function
// (dynamic binary code generation, the paper's headline mechanism) or the
// portable bytecode VM.
//
// Language summary:
//   * types: int / long / short / char / unsigned / float / double
//     (integers are 64-bit at runtime; floats are doubles)
//   * statements: declarations, assignment (= += -= *= /= %=), ++/--,
//     if/else, for, while, blocks, return
//   * expressions: full C operator precedence, ?:, short-circuit && and ||,
//     builtins abs/min/max/strlen/streq, string literals
//   * record access: param.field, nested structs, static and dynamic
//     arrays (param.list[i].member). Writing through a destination
//     dynamic array grows it automatically; its count field is whatever
//     the program stores into it (as in Figure 5).
//   * division by zero yields 0; transforms can never trap.
//
// Thread safety: a compiled Transform is immutable and may be shared;
// each run() call uses its own arena/runtime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "ecode/bytecode.hpp"
#include "ecode/sema.hpp"

namespace morph::ecode {

class JitCode;  // internal (jit_x64.cpp)

enum class ExecBackend {
  kAuto,         // JIT when supported on this host, VM otherwise
  kInterpreter,  // force the bytecode VM
  kJit,          // force native code (throws if unsupported)
};

/// True when the native code generator supports this process (x86-64 and
/// not disabled via MORPH_DISABLE_JIT=1).
bool jit_supported();

/// A compiled Ecode transform.
class Transform {
 public:
  /// Compile `source` against the given record parameters.
  /// Throws EcodeError on lexical/syntax/type errors.
  static Transform compile(const std::string& source, std::vector<RecordParam> params,
                           ExecBackend backend = ExecBackend::kAuto);

  ~Transform();
  Transform(Transform&&) noexcept;
  Transform& operator=(Transform&&) noexcept;

  /// Execute against `records` (one base pointer per record parameter, in
  /// declaration order). Memory the transform allocates (strings, grown
  /// arrays) comes from `arena` and must outlive the destination record.
  void run(void* const* records, RecordArena& arena) const;

  /// Convenience for the common two-parameter (dst, src) shape.
  void run2(void* dst, const void* src, RecordArena& arena) const;

  /// True when this transform executes as native code.
  bool jitted() const;

  const Chunk& chunk() const { return chunk_; }
  const std::vector<RecordParam>& params() const { return params_; }

  /// Bytecode listing (diagnostics).
  std::string disassemble() const { return chunk_.disassemble(); }

  /// Native code size in bytes (0 when interpreted).
  size_t native_code_size() const;

 private:
  Transform() = default;

  Chunk chunk_;
  std::vector<RecordParam> params_;
  std::shared_ptr<const JitCode> jit_;  // null -> VM
};

}  // namespace morph::ecode
