// Ecode bytecode: a stack machine over 8-byte slots.
//
// Both execution backends consume this program form: the portable VM
// interprets it, and the x86-64 JIT translates each instruction into a
// short native sequence. Values on the evaluation stack are 64-bit slots
// holding either an int64, the bit pattern of a double, or a pointer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace morph::ecode {

enum class Op : uint8_t {
  kNop = 0,

  kConstI,      // imm -> push int64
  kConstF,      // imm (double bits) -> push
  kConstStr,    // a = string pool index -> push char*

  kLoadLocal,   // a = slot -> push locals[a]
  kStoreLocal,  // a = slot; pop -> locals[a]

  // integer arithmetic (pop rhs, pop lhs, push result)
  kAddI, kSubI, kMulI, kDivI, kModI,
  kNegI,        // pop, push -x
  kNotL,        // pop, push (x == 0)
  kBitNot, kBitAnd, kBitOr, kBitXor, kShl, kShr,

  // float arithmetic (slots hold double bits)
  kAddF, kSubF, kMulF, kDivF, kNegF,

  // comparisons -> int 0/1
  kEqI, kNeI, kLtI, kLeI, kGtI, kGeI,
  kEqF, kNeF, kLtF, kLeF, kGtF, kGeF,

  kI2F,         // pop int, push double bits
  kF2I,         // pop double bits, push int (truncate)

  // builtins
  kAbsI, kAbsF, kMinI, kMaxI, kMinF, kMaxF,
  kSqrtF, kFloorF, kCeilF,

  // control flow; a = absolute instruction index
  kJmp,
  kJz,          // pop; jump if zero
  kJnz,         // pop; jump if nonzero
  kDup,         // duplicate top (for short-circuit evaluation)
  kPop,

  // record access
  kParamAddr,   // a = parameter index -> push base pointer
  kFieldAddr,   // imm = byte offset; pop base, push base + imm
  kLoadPtr,     // pop addr, push *(void**)addr
  kIndex,       // imm = stride; pop idx, pop base, push base + idx*stride

  // memory loads: pop address, push value
  kLoadI8, kLoadI16, kLoadI32, kLoadI64,
  kLoadU8, kLoadU16, kLoadU32,
  kLoadF32, kLoadF64,

  // memory stores: pop address, pop value, store
  kStoreI8, kStoreI16, kStoreI32, kStoreI64,
  kStoreF32, kStoreF64,

  // runtime helpers
  kEnsure,      // imm = element stride; pop idx, pop slot_addr;
                // push address of element idx (array grown as needed)
  kStrAssign,   // pop src char*, pop dst slot addr; arena-copy the string
  kStrLen,      // pop char*, push length (0 for null)
  kStrEq,       // pop b, pop a, push equality as 0/1 (null == null)
  kStructCopy,  // imm = FormatDescriptor*; pop dst base, pop src base;
                // deep-copy the struct through the runtime arena

  kRet,
};

struct Instr {
  Op op = Op::kNop;
  int32_t a = 0;    // small operand: slot, param index, jump target
  int64_t imm = 0;  // large operand: constants, offsets, strides
  int32_t line = 0; // 1-based source line of the statement/expression that
                    // produced this instruction (0 = synthesized); consumed
                    // by the static verifier's diagnostics, ignored by both
                    // execution backends
};

struct Chunk {
  std::vector<Instr> code;
  std::vector<std::string> string_pool;
  int local_slots = 0;
  int param_count = 0;
  /// Upper bound on evaluation stack depth, computed by the compiler.
  int max_stack = 0;

  std::string disassemble() const;
};

std::string op_name(Op op);

}  // namespace morph::ecode
