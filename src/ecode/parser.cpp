#include "ecode/parser.hpp"

#include "common/error.hpp"
#include "ecode/lexer.hpp"

namespace morph::ecode {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  std::unique_ptr<Program> run() {
    auto prog = std::make_unique<Program>();
    while (!at(Tok::kEnd)) prog->stmts.push_back(statement());
    return prog;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_type_keyword() const {
    switch (cur().kind) {
      case Tok::kKwInt:
      case Tok::kKwLong:
      case Tok::kKwShort:
      case Tok::kKwChar:
      case Tok::kKwUnsigned:
      case Tok::kKwFloat:
      case Tok::kKwDouble:
        return true;
      default:
        return false;
    }
  }
  Token take() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok k, const char* what) {
    if (!at(k)) {
      fail("expected " + std::string(token_name(k)) + " " + what + ", found " +
           std::string(token_name(cur().kind)));
    }
    return take();
  }
  [[noreturn]] void fail(const std::string& msg) const { throw EcodeError(msg, cur().line); }

  // --- statements ---------------------------------------------------------

  StmtPtr statement() {
    if (at(Tok::kLBrace)) return block();
    if (at_type_keyword()) return declaration(true);
    if (at(Tok::kKwIf)) return if_statement();
    if (at(Tok::kKwWhile)) return while_statement();
    if (at(Tok::kKwDo)) return do_while_statement();
    if (at(Tok::kKwFor)) return for_statement();
    if (at(Tok::kKwReturn)) {
      auto s = make_stmt(StmtKind::kReturn);
      take();
      expect(Tok::kSemi, "after 'return'");
      return s;
    }
    if (at(Tok::kKwBreak)) {
      auto s = make_stmt(StmtKind::kBreak);
      take();
      expect(Tok::kSemi, "after 'break'");
      return s;
    }
    if (at(Tok::kKwContinue)) {
      auto s = make_stmt(StmtKind::kContinue);
      take();
      expect(Tok::kSemi, "after 'continue'");
      return s;
    }
    auto s = simple_statement();
    expect(Tok::kSemi, "after statement");
    return s;
  }

  StmtPtr make_stmt(StmtKind k) {
    auto s = std::make_unique<Stmt>();
    s->kind = k;
    s->line = cur().line;
    return s;
  }

  StmtPtr block() {
    auto s = make_stmt(StmtKind::kBlock);
    expect(Tok::kLBrace, "to open block");
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEnd)) fail("unterminated block");
      s->stmts.push_back(statement());
    }
    take();
    return s;
  }

  StmtPtr declaration(bool eat_semi) {
    auto s = make_stmt(StmtKind::kDecl);
    s->decl_type = parse_type();
    for (;;) {
      Declarator d;
      d.name = expect(Tok::kIdent, "in declaration").text;
      if (accept(Tok::kAssign)) d.init = expression();
      s->decls.push_back(std::move(d));
      if (!accept(Tok::kComma)) break;
    }
    if (eat_semi) expect(Tok::kSemi, "after declaration");
    return s;
  }

  TyKind parse_type() {
    switch (take().kind) {
      case Tok::kKwFloat:
      case Tok::kKwDouble:
        return TyKind::kFloat;
      case Tok::kKwUnsigned:
        // 'unsigned', 'unsigned int', 'unsigned long', ...
        if (at(Tok::kKwInt) || at(Tok::kKwLong) || at(Tok::kKwShort) || at(Tok::kKwChar)) take();
        return TyKind::kInt;
      case Tok::kKwLong:
        if (at(Tok::kKwLong)) take();  // long long
        if (at(Tok::kKwInt)) take();
        return TyKind::kInt;
      default:
        return TyKind::kInt;
    }
  }

  StmtPtr if_statement() {
    auto s = make_stmt(StmtKind::kIf);
    take();
    expect(Tok::kLParen, "after 'if'");
    s->expr = expression();
    expect(Tok::kRParen, "after condition");
    s->then_branch = statement();
    if (accept(Tok::kKwElse)) s->else_branch = statement();
    return s;
  }

  StmtPtr while_statement() {
    auto s = make_stmt(StmtKind::kWhile);
    take();
    expect(Tok::kLParen, "after 'while'");
    s->expr = expression();
    expect(Tok::kRParen, "after condition");
    s->body = statement();
    return s;
  }

  StmtPtr do_while_statement() {
    auto s = make_stmt(StmtKind::kDoWhile);
    take();
    s->body = statement();
    expect(Tok::kKwWhile, "after do-body");
    expect(Tok::kLParen, "after 'while'");
    s->expr = expression();
    expect(Tok::kRParen, "after condition");
    expect(Tok::kSemi, "after do/while");
    return s;
  }

  StmtPtr for_statement() {
    auto s = make_stmt(StmtKind::kFor);
    take();
    expect(Tok::kLParen, "after 'for'");
    if (!accept(Tok::kSemi)) {
      s->for_init = at_type_keyword() ? declaration(false) : simple_statement();
      expect(Tok::kSemi, "after for-initializer");
    }
    if (!at(Tok::kSemi)) s->expr = expression();
    expect(Tok::kSemi, "after for-condition");
    if (!at(Tok::kRParen)) s->for_step = simple_statement();
    expect(Tok::kRParen, "after for-step");
    s->body = statement();
    return s;
  }

  /// assignment | inc/dec | bare expression (no trailing ';').
  StmtPtr simple_statement() {
    // Prefix ++/--.
    if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
      auto s = make_stmt(StmtKind::kIncDec);
      s->inc_delta = take().kind == Tok::kPlusPlus ? 1 : -1;
      s->lvalue = postfix_expression();
      return s;
    }
    ExprPtr e = expression();
    switch (cur().kind) {
      case Tok::kAssign:
      case Tok::kPlusAssign:
      case Tok::kMinusAssign:
      case Tok::kStarAssign:
      case Tok::kSlashAssign:
      case Tok::kPercentAssign: {
        auto s = make_stmt(StmtKind::kAssign);
        switch (take().kind) {
          case Tok::kAssign: s->assign_op = AssignOp::kSet; break;
          case Tok::kPlusAssign: s->assign_op = AssignOp::kAdd; break;
          case Tok::kMinusAssign: s->assign_op = AssignOp::kSub; break;
          case Tok::kStarAssign: s->assign_op = AssignOp::kMul; break;
          case Tok::kSlashAssign: s->assign_op = AssignOp::kDiv; break;
          default: s->assign_op = AssignOp::kMod; break;
        }
        s->lvalue = std::move(e);
        s->expr = expression();
        return s;
      }
      case Tok::kPlusPlus:
      case Tok::kMinusMinus: {
        auto s = make_stmt(StmtKind::kIncDec);
        s->inc_delta = take().kind == Tok::kPlusPlus ? 1 : -1;
        s->lvalue = std::move(e);
        return s;
      }
      default: {
        auto s = make_stmt(StmtKind::kExpr);
        s->expr = std::move(e);
        return s;
      }
    }
  }

  // --- expressions (C precedence) ------------------------------------------

  ExprPtr make_expr(ExprKind k) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->line = cur().line;
    return e;
  }

  ExprPtr expression() { return conditional(); }

  ExprPtr conditional() {
    ExprPtr cond = logical_or();
    if (!accept(Tok::kQuestion)) return cond;
    auto e = make_expr(ExprKind::kCond);
    e->a = std::move(cond);
    e->b = expression();
    expect(Tok::kColon, "in conditional expression");
    e->c = conditional();
    return e;
  }

  ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->line = lhs->line;
    e->bin_op = op;
    e->a = std::move(lhs);
    e->b = std::move(rhs);
    return e;
  }

  ExprPtr logical_or() {
    ExprPtr e = logical_and();
    while (accept(Tok::kOrOr)) e = binary(BinOp::kOr, std::move(e), logical_and());
    return e;
  }
  ExprPtr logical_and() {
    ExprPtr e = bit_or();
    while (accept(Tok::kAndAnd)) e = binary(BinOp::kAnd, std::move(e), bit_or());
    return e;
  }
  ExprPtr bit_or() {
    ExprPtr e = bit_xor();
    while (at(Tok::kPipe)) {
      take();
      e = binary(BinOp::kBitOr, std::move(e), bit_xor());
    }
    return e;
  }
  ExprPtr bit_xor() {
    ExprPtr e = bit_and();
    while (at(Tok::kCaret)) {
      take();
      e = binary(BinOp::kBitXor, std::move(e), bit_and());
    }
    return e;
  }
  ExprPtr bit_and() {
    ExprPtr e = equality();
    while (at(Tok::kAmp)) {
      take();
      e = binary(BinOp::kBitAnd, std::move(e), equality());
    }
    return e;
  }
  ExprPtr equality() {
    ExprPtr e = relational();
    for (;;) {
      if (accept(Tok::kEq)) {
        e = binary(BinOp::kEq, std::move(e), relational());
      } else if (accept(Tok::kNe)) {
        e = binary(BinOp::kNe, std::move(e), relational());
      } else {
        return e;
      }
    }
  }
  ExprPtr relational() {
    ExprPtr e = shift();
    for (;;) {
      if (accept(Tok::kLt)) {
        e = binary(BinOp::kLt, std::move(e), shift());
      } else if (accept(Tok::kLe)) {
        e = binary(BinOp::kLe, std::move(e), shift());
      } else if (accept(Tok::kGt)) {
        e = binary(BinOp::kGt, std::move(e), shift());
      } else if (accept(Tok::kGe)) {
        e = binary(BinOp::kGe, std::move(e), shift());
      } else {
        return e;
      }
    }
  }
  ExprPtr shift() {
    ExprPtr e = additive();
    for (;;) {
      if (accept(Tok::kShl)) {
        e = binary(BinOp::kShl, std::move(e), additive());
      } else if (accept(Tok::kShr)) {
        e = binary(BinOp::kShr, std::move(e), additive());
      } else {
        return e;
      }
    }
  }
  ExprPtr additive() {
    ExprPtr e = multiplicative();
    for (;;) {
      if (accept(Tok::kPlus)) {
        e = binary(BinOp::kAdd, std::move(e), multiplicative());
      } else if (accept(Tok::kMinus)) {
        e = binary(BinOp::kSub, std::move(e), multiplicative());
      } else {
        return e;
      }
    }
  }
  ExprPtr multiplicative() {
    ExprPtr e = unary();
    for (;;) {
      if (accept(Tok::kStar)) {
        e = binary(BinOp::kMul, std::move(e), unary());
      } else if (accept(Tok::kSlash)) {
        e = binary(BinOp::kDiv, std::move(e), unary());
      } else if (accept(Tok::kPercent)) {
        e = binary(BinOp::kMod, std::move(e), unary());
      } else {
        return e;
      }
    }
  }
  ExprPtr unary() {
    if (accept(Tok::kMinus)) {
      auto e = make_expr(ExprKind::kUnary);
      e->un_op = UnOp::kNeg;
      e->a = unary();
      return e;
    }
    if (accept(Tok::kBang)) {
      auto e = make_expr(ExprKind::kUnary);
      e->un_op = UnOp::kNot;
      e->a = unary();
      return e;
    }
    if (accept(Tok::kTilde)) {
      auto e = make_expr(ExprKind::kUnary);
      e->un_op = UnOp::kBitNot;
      e->a = unary();
      return e;
    }
    if (accept(Tok::kPlus)) return unary();
    return postfix_expression();
  }

  ExprPtr postfix_expression() {
    ExprPtr e = primary();
    for (;;) {
      if (accept(Tok::kDot)) {
        auto f = make_expr(ExprKind::kFieldAccess);
        f->str_value = expect(Tok::kIdent, "after '.'").text;
        f->a = std::move(e);
        e = std::move(f);
      } else if (accept(Tok::kLBracket)) {
        auto f = make_expr(ExprKind::kIndex);
        f->a = std::move(e);
        f->b = expression();
        expect(Tok::kRBracket, "after index");
        e = std::move(f);
      } else {
        return e;
      }
    }
  }

  ExprPtr primary() {
    switch (cur().kind) {
      case Tok::kIntLit:
      case Tok::kCharLit: {
        auto e = make_expr(ExprKind::kIntLit);
        e->int_value = take().int_value;
        return e;
      }
      case Tok::kFloatLit: {
        auto e = make_expr(ExprKind::kFloatLit);
        e->float_value = take().float_value;
        return e;
      }
      case Tok::kStringLit: {
        auto e = make_expr(ExprKind::kStringLit);
        e->str_value = take().text;
        return e;
      }
      case Tok::kLParen: {
        take();
        ExprPtr e = expression();
        expect(Tok::kRParen, "to close parenthesis");
        return e;
      }
      case Tok::kIdent: {
        // Builtin call or variable reference.
        if (peek().kind == Tok::kLParen) {
          auto e = make_expr(ExprKind::kCall);
          e->str_value = take().text;
          take();  // '('
          if (!at(Tok::kRParen)) {
            e->args.push_back(expression());
            while (accept(Tok::kComma)) e->args.push_back(expression());
          }
          expect(Tok::kRParen, "to close call");
          return e;
        }
        auto e = make_expr(ExprKind::kVarRef);
        e->str_value = take().text;
        return e;
      }
      default:
        fail("expected expression, found " + std::string(token_name(cur().kind)));
    }
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Program> parse(const std::string& source) {
  return Parser(lex(source)).run();
}

}  // namespace morph::ecode
