#include "ecode/verify.hpp"

#include <algorithm>

#include "ecode/absint.hpp"

namespace morph::ecode {

namespace {

bool is_jump(Op op) { return op == Op::kJmp || op == Op::kJz || op == Op::kJnz; }

// ---------------------------------------------------------------------------
// Structural pass: the invariants the JIT assumes without checking. Any
// violation makes the abstract interpreter's job meaningless, so verify()
// stops after this pass if it fails.

void structural_pass(const Chunk& chunk, const std::vector<RecordParam>& params,
                     std::vector<VerifyFinding>& out) {
  auto err = [&](int pc, std::string msg) {
    VerifyFinding f;
    f.check = VerifyCheck::kStructure;
    f.severity = VerifySeverity::kError;
    f.message = std::move(msg);
    f.pc = pc;
    f.line = pc >= 0 && pc < static_cast<int>(chunk.code.size())
                 ? chunk.code[static_cast<size_t>(pc)].line
                 : 0;
    out.push_back(std::move(f));
  };

  const int n = static_cast<int>(chunk.code.size());
  if (n == 0) {
    err(-1, "chunk has no code");
    return;
  }
  if (chunk.code.back().op != Op::kRet) {
    err(n - 1, "last instruction is not ret: control can fall off the end of the chunk");
  }
  if (chunk.param_count != static_cast<int>(params.size())) {
    err(-1, "chunk was compiled for " + std::to_string(chunk.param_count) +
                " parameter(s) but " + std::to_string(params.size()) + " were supplied");
  }
  if (chunk.local_slots < 0 || chunk.max_stack <= 0) {
    err(-1, "negative local count or non-positive max_stack");
  }
  for (const auto& p : params) {
    if (p.format == nullptr) {
      err(-1, "record parameter '" + p.name + "' has no format descriptor");
      return;
    }
  }

  for (int pc = 0; pc < n; ++pc) {
    const Instr& in = chunk.code[static_cast<size_t>(pc)];
    switch (in.op) {
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz:
        if (in.a < 0 || in.a >= n) {
          err(pc, "jump target " + std::to_string(in.a) + " is outside the chunk");
        }
        break;
      case Op::kConstStr:
        if (in.a < 0 || in.a >= static_cast<int>(chunk.string_pool.size())) {
          err(pc, "string pool index " + std::to_string(in.a) + " is out of range");
        }
        break;
      case Op::kLoadLocal:
      case Op::kStoreLocal:
        if (in.a < 0 || in.a >= chunk.local_slots) {
          err(pc, "local slot " + std::to_string(in.a) + " is out of range (chunk declares " +
                      std::to_string(chunk.local_slots) + ")");
        }
        break;
      case Op::kParamAddr:
        if (in.a < 0 || in.a >= chunk.param_count) {
          err(pc, "parameter index " + std::to_string(in.a) + " is out of range");
        }
        break;
      case Op::kIndex:
      case Op::kEnsure:
        if (in.imm <= 0) {
          err(pc, "array stride " + std::to_string(in.imm) + " must be positive");
        }
        break;
      case Op::kStructCopy:
        if (in.imm == 0) {
          err(pc, "struct copy carries a null format descriptor");
        }
        break;
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Loop-termination pass. A back-edge is any jump whose target does not lie
// after it; every cycle in the CFG traverses at least one back-edge, so
// certifying each back-edge independently bounds the whole program.

/// Matches the count-up fuel guard emitted by instrument_fuel() ending with
/// the back-edge at S:
///   [LoadLocal F, ConstI 1, AddI, StoreLocal F, LoadLocal F, ConstI lim,
///    GeI, Jnz exit(>S), Jmp H]
/// and requires every other store to F in the chunk to sit inside such a
/// window, so the counter is monotone and the loop provably exits.
bool fuel_certified(const Chunk& chunk, int S) {
  const auto& code = chunk.code;
  if (S < 8 || code[static_cast<size_t>(S)].op != Op::kJmp) return false;
  auto window_at = [&](int w) -> int {  // returns F, or -1 if no match
    if (w < 0 || w + 8 >= static_cast<int>(code.size())) return -1;
    const Instr* c = &code[static_cast<size_t>(w)];
    if (c[0].op != Op::kLoadLocal || c[1].op != Op::kConstI || c[1].imm != 1 ||
        c[2].op != Op::kAddI || c[3].op != Op::kStoreLocal || c[4].op != Op::kLoadLocal ||
        c[5].op != Op::kConstI || c[5].imm <= 0 || c[6].op != Op::kGeI || c[7].op != Op::kJnz ||
        c[8].op != Op::kJmp) {
      return -1;
    }
    int f = c[0].a;
    if (c[3].a != f || c[4].a != f) return -1;
    if (c[7].a <= w + 8) return -1;  // exit must leave the loop
    return f;
  };
  int fuel = window_at(S - 8);
  if (fuel < 0) return false;
  // The counter must be monotone: no store to it outside guard windows.
  for (int pc = 0; pc < static_cast<int>(code.size()); ++pc) {
    if (code[static_cast<size_t>(pc)].op == Op::kStoreLocal &&
        code[static_cast<size_t>(pc)].a == fuel) {
      if (window_at(pc - 3) != fuel) return false;
    }
  }
  return true;
}

/// Attempts a termination certificate for the back-edge at S targeting H:
/// a unit-step induction local tested against a loop-invariant bound by the
/// loop's exit test. Returns true on success; on failure `why` explains.
bool induction_certified(const Chunk& chunk, const absint::AbsintResult& ai, int H, int S,
                         std::string* why) {
  using absint::OriginKind;
  const auto& code = chunk.code;
  const Op edge_op = code[static_cast<size_t>(S)].op;

  // 1. Locate the exit test and whether the loop continues on "true".
  int cond_pc = -1;
  bool continue_on_true = true;
  if (edge_op == Op::kJz || edge_op == Op::kJnz) {
    cond_pc = S;  // tail test (do-while): the back-edge is the test
    continue_on_true = edge_op == Op::kJnz;
  } else {
    for (int pc = H; pc < S; ++pc) {
      const Instr& in = code[static_cast<size_t>(pc)];
      if ((in.op == Op::kJz || in.op == Op::kJnz) && in.a > S) {
        cond_pc = pc;
        continue_on_true = in.op == Op::kJz;
        break;
      }
    }
    if (cond_pc < 0) {
      *why = "no conditional exit from the loop";
      return false;
    }
    // The test must run on every iteration: nothing may jump past it into
    // the head region.
    for (int pc = 0; pc < static_cast<int>(code.size()); ++pc) {
      const Instr& in = code[static_cast<size_t>(pc)];
      if (is_jump(in.op) && in.a > H && in.a <= cond_pc) {
        *why = "a jump bypasses the loop's exit test";
        return false;
      }
    }
  }

  // 2. The test must consume a fresh integer comparison.
  if (cond_pc == 0) {
    *why = "exit test has no comparison";
    return false;
  }
  const Op cmp_op = code[static_cast<size_t>(cond_pc - 1)].op;
  absint::Rel rel;
  switch (cmp_op) {
    case Op::kLtI:
      rel = absint::Rel::kLt;
      break;
    case Op::kLeI:
      rel = absint::Rel::kLe;
      break;
    case Op::kGtI:
      rel = absint::Rel::kGt;
      break;
    case Op::kGeI:
      rel = absint::Rel::kGe;
      break;
    default:
      *why = "exit test is not a <, <=, >, or >= integer comparison";
      return false;
  }
  auto cmp_it = ai.cmps.find(cond_pc - 1);
  if (cmp_it == ai.cmps.end()) {
    *why = "loop condition operands could not be analyzed";
    return false;
  }
  if (!continue_on_true) rel = absint::rel_negate(rel);

  // 3. Identify the induction local and the bound operand.
  const absint::AbsVal* bound = nullptr;
  int ind = -1;
  if (cmp_it->second.lhs.origin.kind == OriginKind::kLocal) {
    ind = cmp_it->second.lhs.origin.local;
    bound = &cmp_it->second.rhs;
  } else if (cmp_it->second.rhs.origin.kind == OriginKind::kLocal) {
    ind = cmp_it->second.rhs.origin.local;
    bound = &cmp_it->second.lhs;
    rel = absint::rel_swap(rel);
  } else {
    *why = "neither side of the loop condition is a local variable";
    return false;
  }

  // 4. The bound must be loop-invariant.
  switch (bound->origin.kind) {
    case OriginKind::kConst:
      break;
    case OriginKind::kLocal:
      for (int pc = H; pc <= S; ++pc) {
        if (code[static_cast<size_t>(pc)].op == Op::kStoreLocal &&
            code[static_cast<size_t>(pc)].a == bound->origin.local) {
          *why = "loop bound local is modified inside the loop";
          return false;
        }
      }
      break;
    case OriginKind::kFieldLoad: {
      for (const absint::StoreRec& srec : ai.stores) {
        if (srec.pc < H || srec.pc > S || !srec.root) continue;
        if (srec.param == bound->origin.param && srec.lo < bound->origin.offset +
            static_cast<int64_t>(bound->origin.size) &&
            srec.hi > bound->origin.offset) {
          *why = "loop bound field is modified inside the loop";
          return false;
        }
      }
      break;
    }
    default:
      *why = "loop bound is not a constant, local, or record field";
      return false;
  }

  // 5. Exactly one store to the induction local, matching the contiguous
  //    unit-step pattern [LoadLocal i, ConstI +-1, AddI/SubI, StoreLocal i].
  int store_pc = -1;
  for (int pc = H; pc <= S; ++pc) {
    if (code[static_cast<size_t>(pc)].op == Op::kStoreLocal &&
        code[static_cast<size_t>(pc)].a == ind) {
      if (store_pc >= 0) {
        *why = "induction variable is stored more than once in the loop";
        return false;
      }
      store_pc = pc;
    }
  }
  if (store_pc < H + 3) {
    *why = "induction variable is never advanced inside the loop";
    return false;
  }
  const Instr* w = &code[static_cast<size_t>(store_pc - 3)];
  int64_t step = 0;
  if (w[0].op == Op::kLoadLocal && w[0].a == ind && w[1].op == Op::kConstI &&
      (w[2].op == Op::kAddI || w[2].op == Op::kSubI)) {
    step = w[2].op == Op::kAddI ? w[1].imm : -w[1].imm;
  }
  if (step != 1 && step != -1) {
    *why = "induction step is not a unit increment or decrement";
    return false;
  }
  // Nothing may jump into the middle of the step sequence or between the
  // step and the back-edge (the step must execute on every traversal).
  for (int pc = 0; pc < static_cast<int>(code.size()); ++pc) {
    const Instr& in = code[static_cast<size_t>(pc)];
    if (is_jump(in.op) && in.a > store_pc - 3 && in.a <= S) {
      *why = "a jump bypasses the induction step";
      return false;
    }
  }

  // 6. Step direction must drive the condition false, without wrap-around.
  switch (rel) {
    case absint::Rel::kLt:
      if (step != 1) {
        *why = "loop counts down but continues while below its bound";
        return false;
      }
      break;
    case absint::Rel::kLe:
      if (step != 1 || bound->iv.hi == INT64_MAX) {
        *why = step != 1 ? "loop counts down but continues while below its bound"
                         : "inclusive upper bound may be INT64_MAX: increment can wrap";
        return false;
      }
      break;
    case absint::Rel::kGt:
      if (step != -1) {
        *why = "loop counts up but continues while above its bound";
        return false;
      }
      break;
    case absint::Rel::kGe:
      if (step != -1 || bound->iv.lo == INT64_MIN) {
        *why = step != -1 ? "loop counts up but continues while above its bound"
                          : "inclusive lower bound may be INT64_MIN: decrement can wrap";
        return false;
      }
      break;
    default:
      *why = "loop condition is an equality test, not an ordering";
      return false;
  }
  return true;
}

void loop_pass(const Chunk& chunk, const absint::AbsintResult& ai, VerifyResult& result) {
  const int n = static_cast<int>(chunk.code.size());
  for (int S = 0; S < n; ++S) {
    const Instr& in = chunk.code[static_cast<size_t>(S)];
    if (!is_jump(in.op) || in.a > S) continue;
    if (static_cast<size_t>(S) < ai.depth_at.size() && ai.depth_at[static_cast<size_t>(S)] < 0) {
      continue;  // unreachable back-edge: dead code, nothing to certify
    }
    std::string why;
    if (fuel_certified(chunk, S)) continue;
    if (induction_certified(chunk, ai, in.a, S, &why)) continue;
    VerifyFinding f;
    f.check = VerifyCheck::kUnboundedLoop;
    f.severity = VerifySeverity::kError;
    f.message = "loop has no termination certificate: " + why;
    f.pc = S;
    f.line = chunk.code[static_cast<size_t>(S)].line;
    result.findings.push_back(std::move(f));
    // Only edges that run at statement depth can host a fuel trampoline.
    int depth = static_cast<size_t>(S) < ai.depth_at.size()
                    ? ai.depth_at[static_cast<size_t>(S)]
                    : -1;
    if (depth - (in.op == Op::kJmp ? 0 : 1) == 0) {
      result.unbounded_backedges.push_back(S);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

const char* verify_check_name(VerifyCheck c) {
  switch (c) {
    case VerifyCheck::kStructure:
      return "structure";
    case VerifyCheck::kStackShape:
      return "stack-shape";
    case VerifyCheck::kTypeConfusion:
      return "type-confusion";
    case VerifyCheck::kOobAccess:
      return "oob-access";
    case VerifyCheck::kWidthMismatch:
      return "width-mismatch";
    case VerifyCheck::kReadBeforeAssign:
      return "read-before-assign";
    case VerifyCheck::kUninitField:
      return "uninit-field";
    case VerifyCheck::kUnboundedLoop:
      return "unbounded-loop";
  }
  return "?";
}

std::string VerifyFinding::to_string() const {
  std::string s = severity == VerifySeverity::kError ? "error: " : "warning: ";
  s += verify_check_name(check);
  s += ": ";
  s += message;
  std::string loc;
  if (pc >= 0) loc += "pc " + std::to_string(pc);
  if (line > 0) loc += (loc.empty() ? "" : ", ") + std::string("line ") + std::to_string(line);
  if (!loc.empty()) {
    s += " (" + loc + ")";
  }
  return s;
}

std::string VerifyResult::to_string() const {
  std::string s;
  for (const auto& f : findings) {
    s += f.to_string();
    s += '\n';
  }
  return s;
}

VerifyResult verify(const Chunk& chunk, const std::vector<RecordParam>& params,
                    const VerifyOptions& options) {
  VerifyResult result;
  structural_pass(chunk, params, result.findings);
  if (!result.ok()) return result;  // absint would chase invalid indices
  absint::AbsintResult ai = absint::interpret(chunk, params, options, result.findings);
  loop_pass(chunk, ai, result);
  return result;
}

Chunk instrument_fuel(const Chunk& chunk, int64_t fuel_limit, const std::vector<int>& backedges) {
  Chunk out = chunk;
  if (backedges.empty()) return out;
  if (fuel_limit < 1) fuel_limit = 1;
  const int32_t fuel = out.local_slots;  // fresh local, zero-initialized by both backends
  out.local_slots += 1;
  out.max_stack = std::max(out.max_stack, 4);

  // One count-up guard trampoline per back-edge, appended after the original
  // code so no existing jump target shifts; the shared exit ret goes last.
  const int fuel_exit =
      static_cast<int>(chunk.code.size()) + 9 * static_cast<int>(backedges.size());
  for (int edge : backedges) {
    if (edge < 0 || edge >= static_cast<int>(chunk.code.size())) continue;
    Instr& jump = out.code[static_cast<size_t>(edge)];
    if (!is_jump(jump.op)) continue;
    const int32_t target = jump.a;
    const int32_t tramp = static_cast<int32_t>(out.code.size());
    jump.a = tramp;
    out.code.push_back({Op::kLoadLocal, fuel, 0, 0});
    out.code.push_back({Op::kConstI, 0, 1, 0});
    out.code.push_back({Op::kAddI, 0, 0, 0});
    out.code.push_back({Op::kStoreLocal, fuel, 0, 0});
    out.code.push_back({Op::kLoadLocal, fuel, 0, 0});
    out.code.push_back({Op::kConstI, 0, fuel_limit, 0});
    out.code.push_back({Op::kGeI, 0, 0, 0});
    out.code.push_back({Op::kJnz, fuel_exit, 0, 0});
    out.code.push_back({Op::kJmp, target, 0, 0});
  }
  out.code.push_back({Op::kRet, 0, 0, 0});
  return out;
}

}  // namespace morph::ecode
