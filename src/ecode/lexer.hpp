// Ecode lexer: source text -> token stream.
//
// Supports C-style `/* */` and `//` comments, decimal/hex integer literals,
// float literals, character literals, and double-quoted string literals
// with the usual escapes.
#pragma once

#include <string>
#include <vector>

#include "ecode/token.hpp"

namespace morph::ecode {

/// Tokenize `source`. Throws EcodeError on lexical errors. The returned
/// vector always ends with a kEnd token.
std::vector<Token> lex(const std::string& source);

}  // namespace morph::ecode
