// Ecode safety verifier: a static analysis pass over compiled bytecode that
// runs between the bytecode compiler and the JIT.
//
// A receiver executes dynamically generated transformation code in its own
// address space on messages it has never seen; sema proves the program is
// well-typed against the format descriptors, but nothing else. This pass
// proves, per Chunk, machine-checked safety properties:
//
//   (a) memory safety — every field, static-array, and dynamic-array access
//       stays inside the region the source format's descriptor declares
//       (dynamic-array reads must be dominated by a guard against the
//       array's declared length field);
//   (b) definite assignment — destination fields are assigned before the
//       transform returns, and never read before they are assigned (no
//       zeroed garbage leaks into morphed messages);
//   (c) bounded execution — every loop carries a termination certificate
//       (a unit-step induction variable tested against a loop-invariant
//       bound), or the verifier inserts a fuel counter that cuts it off;
//   (d) backend agreement — the structural invariants the x86-64 JIT
//       assumes but never checks (consistent stack depth at every pc, jump
//       targets on instruction boundaries, local/param/string indices in
//       range, load/store widths and signedness matching the descriptor)
//       hold by construction, closing the VM/JIT differential gap.
//
// The verifier is conservative: it may reject a safe program (report it as
// unprovable), never the reverse. Aliasing between record parameters is
// assumed absent — the morph core always passes distinct records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ecode/bytecode.hpp"
#include "ecode/sema.hpp"

namespace morph::ecode {

enum class VerifySeverity : uint8_t { kWarning, kError };

/// Which property a finding violates.
enum class VerifyCheck : uint8_t {
  kStructure,        // malformed chunk: bad jump target / index out of range
  kStackShape,       // inconsistent or overflowing evaluation stack
  kTypeConfusion,    // int/float/pointer/string operand kind mismatch
  kOobAccess,        // access not provably inside the descriptor's region
  kWidthMismatch,    // load/store width or signedness differs from the field
  kReadBeforeAssign, // destination field read before it is assigned
  kUninitField,      // destination field never definitely assigned
  kUnboundedLoop,    // no termination certificate for a loop
};

const char* verify_check_name(VerifyCheck c);

struct VerifyFinding {
  VerifyCheck check = VerifyCheck::kStructure;
  VerifySeverity severity = VerifySeverity::kError;
  std::string message;
  int pc = -1;        // bytecode index, -1 when not tied to an instruction
  int line = 0;       // 1-based Ecode source line (0 = unknown/synthesized)
  std::string field;  // dotted field path ("old.member_count") when known

  std::string to_string() const;
};

struct VerifyOptions {
  /// Parameters treated as transform destinations for checks (b); by the
  /// paper's convention the destination is parameter 0 ("old").
  std::vector<int> dst_params = {0};
  /// Escalate kUninitField findings from warning to error.
  bool require_full_assignment = false;
};

struct VerifyResult {
  std::vector<VerifyFinding> findings;
  /// Bytecode indices of back-edges with no termination certificate; these
  /// are the jumps instrument_fuel() needs to guard.
  std::vector<int> unbounded_backedges;

  bool ok() const {
    for (const auto& f : findings) {
      if (f.severity == VerifySeverity::kError) return false;
    }
    return true;
  }
  size_t error_count() const {
    size_t n = 0;
    for (const auto& f : findings) {
      if (f.severity == VerifySeverity::kError) ++n;
    }
    return n;
  }
  /// One finding per line, "check: message (line N, field F)".
  std::string to_string() const;
};

/// Run the verifier over a compiled chunk. `params` must be the same record
/// parameters the chunk was compiled against.
VerifyResult verify(const Chunk& chunk, const std::vector<RecordParam>& params,
                    const VerifyOptions& options = {});

/// Rewrite `chunk` so every back-edge listed in `backedges` is redirected
/// through an appended guard trampoline that bumps a fresh fuel local and
/// exits the transform once it reaches `fuel_limit`. No original instruction
/// moves, so jump targets stay valid. The instrumented program is
/// observationally identical until `fuel_limit` total guarded back-edge
/// traversals, after which it returns early — turning a potential infinite
/// loop into a truncated (but delivered) morph. Each listed back-edge must
/// run at statement depth (empty evaluation stack after its own pop); true
/// for all compiler-emitted loops and enforced by verify(), which only lists
/// such edges in VerifyResult::unbounded_backedges.
Chunk instrument_fuel(const Chunk& chunk, int64_t fuel_limit, const std::vector<int>& backedges);

/// Thrown by enforcing callers (Transform::compile with VerifyMode::
/// kEnforce) when verification fails; carries the structured findings.
class VerifyError : public EcodeError {
 public:
  explicit VerifyError(VerifyResult result)
      : EcodeError("transform rejected by verifier:\n" + result.to_string(), first_line(result)),
        result_(std::move(result)) {}
  const VerifyResult& result() const { return result_; }

 private:
  static int first_line(const VerifyResult& r) {
    for (const auto& f : r.findings) {
      if (f.severity == VerifySeverity::kError && f.line > 0) return f.line;
    }
    return 0;
  }
  VerifyResult result_;
};

}  // namespace morph::ecode
