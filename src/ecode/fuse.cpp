#include "ecode/fuse.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "ecode/ast.hpp"
#include "ecode/parser.hpp"
#include "pbio/field_type.hpp"

namespace morph::ecode {
namespace {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;

/// Internal control flow: thrown wherever the rewriter meets a construct
/// it cannot prove equivalent, caught once in fuse_chain.
struct Bail {
  std::string reason;
};

/// One intermediate record replaced by locals.
struct Inter {
  int index = 0;
  const FormatDescriptor* fmt = nullptr;
};

/// Name-resolution context while printing one hop.
struct HopCtx {
  int hop = 0;
  bool final_hop = false;
  const std::string* dst_param = nullptr;
  const std::string* src_param = nullptr;
  const Inter* dst_inter = nullptr;  // null when the hop writes the real dst
  const Inter* src_inter = nullptr;  // null when the hop reads the real src
};

bool valid_ident(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

std::string inter_local(const Inter& in, const std::string& field) {
  return "__m" + std::to_string(in.index) + "_" + field;
}

const FieldDescriptor* find_field(const FormatDescriptor& fmt, const std::string& name) {
  for (const auto& fd : fmt.fields()) {
    if (fd.name == name) return &fd;
  }
  return nullptr;
}

/// Statement that reproduces the store-then-load semantics of `fd` on an
/// i64 local: stores to narrow record fields truncate and integer reads
/// sign- or zero-extend (pbio/record.cpp), so the local must be folded to
/// the same value after every write. Empty when the 8-byte store is exact.
std::string trunc_fixup(const FieldDescriptor& fd, const std::string& local) {
  uint32_t width = fd.size;
  bool sign = false;
  switch (fd.kind) {
    case FieldKind::kInt:
      sign = true;
      break;
    case FieldKind::kEnum:
      sign = true;
      width = 4;
      break;
    case FieldKind::kUInt:
      break;
    case FieldKind::kChar:
      width = 1;  // stored as char, read back as unsigned char
      break;
    default:
      return "";  // f64 round-trips exactly
  }
  if (width >= 8) return "";
  uint64_t mask = (uint64_t{1} << (8 * width)) - 1;
  if (!sign) return local + " = " + local + " & " + std::to_string(mask) + ";";
  uint64_t bit = uint64_t{1} << (8 * width - 1);
  return local + " = ((" + local + " & " + std::to_string(mask) + ") ^ " + std::to_string(bit) +
         ") - " + std::to_string(bit) + ";";
}

/// Pretty-printer for one hop's AST with intermediate records replaced by
/// locals and hop locals renamed into a per-hop namespace.
class HopPrinter {
 public:
  HopPrinter(const HopCtx& ctx, std::string& out) : c_(ctx), out_(out) {}

  void stmt(const Stmt& s, int depth) {
    switch (s.kind) {
      case StmtKind::kDecl:
        line(depth, decl_text(s) + ";");
        return;
      case StmtKind::kAssign: {
        auto [text, fixup] = assign_text(s);
        line(depth, text + ";");
        if (!fixup.empty()) line(depth, fixup);
        return;
      }
      case StmtKind::kIncDec: {
        auto [text, fixup] = incdec_text(s);
        line(depth, text + ";");
        if (!fixup.empty()) line(depth, fixup);
        return;
      }
      case StmtKind::kExpr:
        line(depth, expr(*s.expr) + ";");
        return;
      case StmtKind::kIf:
        line(depth, "if (" + expr(*s.expr) + ")");
        branch(*s.then_branch, depth);
        if (s.else_branch) {
          line(depth, "else");
          branch(*s.else_branch, depth);
        }
        return;
      case StmtKind::kWhile:
        line(depth, "while (" + expr(*s.expr) + ")");
        branch(*s.body, depth);
        return;
      case StmtKind::kDoWhile:
        line(depth, "do");
        branch(*s.body, depth);
        line(depth, "while (" + expr(*s.expr) + ");");
        return;
      case StmtKind::kFor:
        print_for(s, depth);
        return;
      case StmtKind::kBlock:
        line(depth, "{");
        for (const auto& inner : s.stmts) stmt(*inner, depth + 1);
        line(depth, "}");
        return;
      case StmtKind::kReturn:
        if (!c_.final_hop) throw Bail{"'return' in a non-final hop"};
        line(depth, "return;");
        return;
      case StmtKind::kBreak:
        line(depth, "break;");
        return;
      case StmtKind::kContinue:
        line(depth, "continue;");
        return;
    }
    throw Bail{"unsupported statement kind"};
  }

 private:
  void line(int depth, const std::string& text) {
    out_.append(static_cast<size_t>(depth) * 2, ' ');
    out_ += text;
    out_ += '\n';
  }

  /// Print an if/loop branch as a braced block regardless of the original
  /// shape — braces never change Ecode semantics and keep fixup statements
  /// attached to their assignment.
  void branch(const Stmt& s, int depth) {
    if (s.kind == StmtKind::kBlock) {
      stmt(s, depth);
      return;
    }
    line(depth, "{");
    stmt(s, depth + 1);
    line(depth, "}");
  }

  void print_for(const Stmt& s, int depth) {
    std::string init;
    if (s.for_init) {
      switch (s.for_init->kind) {
        case StmtKind::kDecl:
          init = decl_text(*s.for_init);
          break;
        case StmtKind::kAssign: {
          auto [text, fixup] = assign_text(*s.for_init);
          if (fixup.empty()) {
            init = text;
          } else {
            // The init clause runs exactly once before the loop; hoisting
            // it keeps the fixup adjacent to the truncating write.
            line(depth, text + ";");
            line(depth, fixup);
          }
          break;
        }
        case StmtKind::kExpr:
          init = expr(*s.for_init->expr);
          break;
        default:
          throw Bail{"unsupported for-init clause"};
      }
    }
    std::string step;
    if (s.for_step) {
      switch (s.for_step->kind) {
        case StmtKind::kAssign: {
          auto [text, fixup] = assign_text(*s.for_step);
          if (!fixup.empty()) throw Bail{"for-step writes a truncating intermediate field"};
          step = text;
          break;
        }
        case StmtKind::kIncDec: {
          auto [text, fixup] = incdec_text(*s.for_step);
          if (!fixup.empty()) throw Bail{"for-step writes a truncating intermediate field"};
          step = text;
          break;
        }
        case StmtKind::kExpr:
          step = expr(*s.for_step->expr);
          break;
        default:
          throw Bail{"unsupported for-step clause"};
      }
    }
    std::string cond = s.expr ? expr(*s.expr) : std::string();
    line(depth, "for (" + init + "; " + cond + "; " + step + ")");
    branch(*s.body, depth);
  }

  std::string decl_text(const Stmt& s) {
    std::string out;
    switch (s.decl_type) {
      case TyKind::kInt:
        out = "long ";
        break;
      case TyKind::kFloat:
        out = "double ";
        break;
      default:
        throw Bail{"unsupported declaration type"};
    }
    for (size_t i = 0; i < s.decls.size(); ++i) {
      if (i > 0) out += ", ";
      out += local_name(s.decls[i].name);
      if (s.decls[i].init) out += " = " + expr(*s.decls[i].init);
    }
    return out;
  }

  /// (statement text, fixup statement or empty).
  std::pair<std::string, std::string> assign_text(const Stmt& s) {
    static const char* kOps[] = {"=", "+=", "-=", "*=", "/=", "%="};
    const char* op = kOps[static_cast<int>(s.assign_op)];
    auto [fd, local] = inter_target(*s.lvalue);
    std::string lhs = fd ? local : expr(*s.lvalue);
    std::string text = lhs + " " + op + " " + expr(*s.expr);
    return {text, fd ? trunc_fixup(*fd, local) : std::string()};
  }

  std::pair<std::string, std::string> incdec_text(const Stmt& s) {
    auto [fd, local] = inter_target(*s.lvalue);
    std::string lhs = fd ? local : expr(*s.lvalue);
    std::string text = lhs + (s.inc_delta > 0 ? "++" : "--");
    return {text, fd ? trunc_fixup(*fd, local) : std::string()};
  }

  /// When `lv` is a field of an intermediate record, its descriptor and the
  /// replacement local; {nullptr, ""} otherwise.
  std::pair<const FieldDescriptor*, std::string> inter_target(const Expr& lv) {
    if (lv.kind == ExprKind::kFieldAccess && lv.a && lv.a->kind == ExprKind::kVarRef) {
      const Inter* in = nullptr;
      if (lv.a->str_value == *c_.dst_param) {
        in = c_.dst_inter;
      } else if (lv.a->str_value == *c_.src_param) {
        in = c_.src_inter;
      }
      if (in) {
        const FieldDescriptor* fd = find_field(*in->fmt, lv.str_value);
        if (!fd) throw Bail{"unknown intermediate field '" + lv.str_value + "'"};
        return {fd, inter_local(*in, lv.str_value)};
      }
    }
    return {nullptr, std::string()};
  }

  std::string local_name(const std::string& name) {
    return "__h" + std::to_string(c_.hop) + "_" + name;
  }

  std::string expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return int_literal(e.int_value);
      case ExprKind::kFloatLit:
        return float_literal(e.float_value);
      case ExprKind::kStringLit:
        return quote(e.str_value);
      case ExprKind::kVarRef:
        if (e.str_value == *c_.dst_param) {
          if (c_.dst_inter) throw Bail{"whole-record use of an intermediate record"};
          return e.str_value;
        }
        if (e.str_value == *c_.src_param) {
          if (c_.src_inter) throw Bail{"whole-record use of an intermediate record"};
          return e.str_value;
        }
        return local_name(e.str_value);
      case ExprKind::kFieldAccess: {
        auto [fd, local] = inter_target(e);
        if (fd) return local;
        return expr(*e.a) + "." + e.str_value;
      }
      case ExprKind::kIndex:
        return expr(*e.a) + "[" + expr(*e.b) + "]";
      case ExprKind::kUnary: {
        const char* op = e.un_op == UnOp::kNeg ? "-" : e.un_op == UnOp::kNot ? "!" : "~";
        return std::string("(") + op + "(" + expr(*e.a) + "))";
      }
      case ExprKind::kBinary: {
        static const char* kOps[] = {"+",  "-",  "*",  "/", "%", "==", "!=", "<", "<=",
                                     ">",  ">=", "&&", "||", "&", "|",  "^",  "<<", ">>"};
        return "(" + expr(*e.a) + " " + kOps[static_cast<int>(e.bin_op)] + " " + expr(*e.b) + ")";
      }
      case ExprKind::kCond:
        return "(" + expr(*e.a) + " ? " + expr(*e.b) + " : " + expr(*e.c) + ")";
      case ExprKind::kCall: {
        std::string out = e.str_value + "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) out += ", ";
          out += expr(*e.args[i]);
        }
        return out + ")";
      }
    }
    throw Bail{"unsupported expression kind"};
  }

  static std::string int_literal(int64_t v) {
    if (v == INT64_MIN) return "(-9223372036854775807 - 1)";
    return std::to_string(v);
  }

  static std::string float_literal(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    std::string t = buf;
    if (t.find_first_of(".eE") == std::string::npos) t += ".0";
    return t;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      switch (ch) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\0': out += "\\0"; break;
        default: out += ch;
      }
    }
    return out + "\"";
  }

  const HopCtx& c_;
  std::string& out_;
};

}  // namespace

FuseResult fuse_chain(const std::vector<FuseHop>& hops) {
  FuseResult result;
  try {
    if (hops.size() < 2) throw Bail{"chain has fewer than two hops"};
    const std::string& dst_name = hops.back().dst_param;
    const std::string& src_name = hops.front().src_param;
    if (dst_name == src_name) throw Bail{"final destination and original source share a name"};
    for (const auto& h : hops) {
      if (h.dst_param == h.src_param) throw Bail{"hop parameters share a name"};
      if (!h.dst_fmt) throw Bail{"hop without a destination format"};
    }

    // Every intermediate field must be a fixed scalar an i64/f64 local can
    // represent exactly (f32 stores round, so only f64 floats qualify).
    std::vector<Inter> inters;
    inters.reserve(hops.size() - 1);
    for (size_t k = 0; k + 1 < hops.size(); ++k) {
      const FormatDescriptor& fmt = *hops[k].dst_fmt;
      for (const auto& fd : fmt.fields()) {
        const std::string where = "'" + fmt.name() + "." + fd.name + "'";
        if (!pbio::is_fixed_scalar(fd.kind)) {
          throw Bail{"intermediate field " + where + " is not a fixed-size scalar"};
        }
        if (fd.kind == FieldKind::kFloat && fd.size != 8) {
          throw Bail{"intermediate float field " + where + " is narrower than f64"};
        }
        if (!valid_ident(fd.name)) {
          throw Bail{"intermediate field " + where + " is not a printable identifier"};
        }
      }
      inters.push_back(Inter{static_cast<int>(k), hops[k].dst_fmt.get()});
    }

    std::vector<std::unique_ptr<Program>> progs;
    progs.reserve(hops.size());
    for (const auto& h : hops) progs.push_back(parse(h.code));

    std::string out = "/* fused " + std::to_string(hops.size()) + "-hop chain: " + src_name +
                      " -> " + dst_name + " */\n";
    for (const auto& in : inters) {
      for (const auto& fd : in.fmt->fields()) {
        bool f = fd.kind == FieldKind::kFloat;
        out += std::string(f ? "double " : "long ") + inter_local(in, fd.name) +
               (f ? " = 0.0;\n" : " = 0;\n");
      }
    }
    for (size_t k = 0; k < hops.size(); ++k) {
      HopCtx ctx;
      ctx.hop = static_cast<int>(k);
      ctx.final_hop = k + 1 == hops.size();
      ctx.dst_param = &hops[k].dst_param;
      ctx.src_param = &hops[k].src_param;
      ctx.dst_inter = ctx.final_hop ? nullptr : &inters[k];
      ctx.src_inter = k == 0 ? nullptr : &inters[k - 1];
      out += "{\n";
      HopPrinter printer(ctx, out);
      for (const auto& st : progs[k]->stmts) printer.stmt(*st, 1);
      out += "}\n";
    }
    result.ok = true;
    result.source = std::move(out);
  } catch (const Bail& b) {
    result.bailout = b.reason;
  } catch (const EcodeError& e) {
    result.bailout = std::string("hop failed to parse: ") + e.what();
  }
  return result;
}

}  // namespace morph::ecode
