// Ecode semantic analysis: binds names (locals and record parameters),
// resolves field accesses against PBIO format descriptors, checks types,
// and annotates the AST for the bytecode compiler.
#pragma once

#include <string>
#include <vector>

#include "ecode/ast.hpp"
#include "pbio/format.hpp"

namespace morph::ecode {

/// A record parameter of a transform: its name inside the program (e.g.
/// "old", "new" in the paper's Figure 5) and its format. The formats must
/// outlive any compiled artifact.
struct RecordParam {
  std::string name;
  pbio::FormatPtr format;
};

/// Builtin functions available in expressions.
enum class Builtin : int {
  kAbs = 0,   // abs(x)        numeric -> same kind
  kMin,       // min(a, b)     numeric, unified kind
  kMax,       // max(a, b)
  kStrLen,    // strlen(s)     string -> int
  kStrEq,     // streq(a, b)   strings -> int (1 equal / 0 not)
  kSqrt,      // sqrt(x)       numeric -> float
  kFloor,     // floor(x)      float -> float
  kCeil,      // ceil(x)       float -> float
};

/// Run sema on a parsed program. Throws EcodeError on any violation.
/// On success, every Expr carries a resolved `type`, VarRefs carry slots or
/// parameter indices, field accesses carry FieldDescriptor pointers, string
/// literals are interned into prog.string_pool, and prog.local_slot_count
/// is set.
void analyze(Program& prog, const std::vector<RecordParam>& params);

}  // namespace morph::ecode
