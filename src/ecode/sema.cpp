#include "ecode/sema.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace morph::ecode {

namespace {

using pbio::FieldKind;

struct LocalVar {
  int slot;
  TyKind type;  // kInt or kFloat
};

class Sema {
 public:
  Sema(Program& prog, const std::vector<RecordParam>& params) : prog_(prog), params_(params) {
    for (size_t i = 0; i < params.size(); ++i) {
      if (!params[i].format) throw EcodeError("record parameter '" + params[i].name + "' has no format", 0);
      for (size_t j = 0; j < i; ++j) {
        if (params[j].name == params[i].name) {
          throw EcodeError("duplicate record parameter name '" + params[i].name + "'", 0);
        }
      }
    }
  }

  void run() {
    scopes_.emplace_back();
    for (auto& s : prog_.stmts) stmt(*s);
    scopes_.pop_back();
    prog_.local_slot_count = next_slot_;
  }

 private:
  [[noreturn]] void fail(const std::string& msg, int line) { throw EcodeError(msg, line); }

  int find_param(const std::string& name) const {
    for (size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  const LocalVar* find_local(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  LocalVar& declare_local(const std::string& name, TyKind type, int line) {
    if (find_param(name) >= 0) {
      fail("variable '" + name + "' shadows a record parameter", line);
    }
    auto& scope = scopes_.back();
    if (scope.count(name) != 0) fail("redeclaration of '" + name + "'", line);
    return scope.emplace(name, LocalVar{next_slot_++, type}).first->second;
  }

  // --- statements ---------------------------------------------------------

  void stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (auto& child : s.stmts) stmt(*child);
        scopes_.pop_back();
        break;
      }
      case StmtKind::kDecl: {
        for (auto& d : s.decls) {
          if (d.init) {
            Ty t = expr(*d.init);
            if (!t.is_numeric()) {
              fail("initializer for '" + d.name + "' must be numeric", s.line);
            }
          }
          d.local_slot = declare_local(d.name, s.decl_type, s.line).slot;
        }
        break;
      }
      case StmtKind::kAssign: {
        Ty lhs = expr(*s.lvalue);
        Ty rhs = expr(*s.expr);
        if (lhs.kind == TyKind::kRecord) {
          // Whole-struct assignment: deep copy between identical formats.
          if (s.assign_op != AssignOp::kSet) {
            fail("compound assignment is not defined for structs", s.line);
          }
          if (rhs.kind != TyKind::kRecord) fail("assigning non-struct to struct field", s.line);
          if (!lhs.record->identical_to(*rhs.record)) {
            fail("struct assignment requires identical formats ('" + lhs.record->name() +
                     "' differs); copy field-wise or supply a transform",
                 s.line);
          }
          break;
        }
        check_lvalue(*s.lvalue, s.line);
        if (lhs.kind == TyKind::kString) {
          if (s.assign_op != AssignOp::kSet) {
            fail("compound assignment is not defined for strings", s.line);
          }
          if (rhs.kind != TyKind::kString) fail("assigning non-string to string field", s.line);
        } else if (lhs.is_numeric()) {
          if (!rhs.is_numeric()) fail("assigning non-numeric value to numeric target", s.line);
          if (s.assign_op == AssignOp::kMod &&
              (lhs.kind == TyKind::kFloat || rhs.kind == TyKind::kFloat)) {
            fail("'%=' requires integer operands", s.line);
          }
        } else {
          fail("assignment target must be a scalar or string field", s.line);
        }
        break;
      }
      case StmtKind::kIncDec: {
        Ty t = expr(*s.lvalue);
        check_lvalue(*s.lvalue, s.line);
        if (t.kind != TyKind::kInt) fail("'++'/'--' requires an integer target", s.line);
        break;
      }
      case StmtKind::kExpr:
        expr(*s.expr);
        break;
      case StmtKind::kIf: {
        condition(*s.expr, s.line);
        stmt(*s.then_branch);
        if (s.else_branch) stmt(*s.else_branch);
        break;
      }
      case StmtKind::kWhile: {
        condition(*s.expr, s.line);
        ++loop_depth_;
        stmt(*s.body);
        --loop_depth_;
        break;
      }
      case StmtKind::kDoWhile: {
        ++loop_depth_;
        stmt(*s.body);
        --loop_depth_;
        condition(*s.expr, s.line);
        break;
      }
      case StmtKind::kFor: {
        scopes_.emplace_back();
        if (s.for_init) stmt(*s.for_init);
        if (s.expr) condition(*s.expr, s.line);
        if (s.for_step) stmt(*s.for_step);
        ++loop_depth_;
        stmt(*s.body);
        --loop_depth_;
        scopes_.pop_back();
        break;
      }
      case StmtKind::kBreak:
        if (loop_depth_ == 0) fail("'break' outside of a loop", s.line);
        break;
      case StmtKind::kContinue:
        if (loop_depth_ == 0) fail("'continue' outside of a loop", s.line);
        break;
      case StmtKind::kReturn:
        break;
    }
  }

  void condition(Expr& e, int line) {
    Ty t = expr(e);
    if (t.kind != TyKind::kInt) {
      fail("condition must be an integer expression (use comparisons for floats/strings)", line);
    }
  }

  /// An assignable expression: a local variable, or a field chain rooted at
  /// a record parameter ending in a scalar/string field.
  void check_lvalue(const Expr& e, int line) {
    switch (e.kind) {
      case ExprKind::kVarRef:
        if (e.param_index >= 0) fail("cannot assign to a whole record parameter", line);
        return;
      case ExprKind::kFieldAccess:
      case ExprKind::kIndex:
        return;  // resolution in expr() already validated the chain
      default:
        fail("expression is not assignable", line);
    }
  }

  // --- expressions ----------------------------------------------------------

  Ty expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.type = Ty::Int();
      case ExprKind::kFloatLit:
        return e.type = Ty::Float();
      case ExprKind::kStringLit: {
        // Intern into the program pool; the compiler references it by index.
        e.int_value = static_cast<int64_t>(prog_.string_pool.size());
        prog_.string_pool.push_back(e.str_value);
        return e.type = Ty::String();
      }
      case ExprKind::kVarRef: {
        int p = find_param(e.str_value);
        if (p >= 0) {
          e.param_index = p;
          return e.type = Ty::Record(params_[static_cast<size_t>(p)].format.get());
        }
        const LocalVar* local = find_local(e.str_value);
        if (local == nullptr) fail("unknown identifier '" + e.str_value + "'", e.line);
        e.local_slot = local->slot;
        return e.type = (local->type == TyKind::kFloat ? Ty::Float() : Ty::Int());
      }
      case ExprKind::kFieldAccess: {
        Ty base = expr(*e.a);
        if (base.kind != TyKind::kRecord) {
          fail("'." + e.str_value + "': left side is not a record", e.line);
        }
        const pbio::FieldDescriptor* fd = base.record->find_field(e.str_value);
        if (fd == nullptr) {
          fail("format '" + base.record->name() + "' has no field '" + e.str_value + "'",
               e.line);
        }
        e.field = fd;
        return e.type = field_type(*fd);
      }
      case ExprKind::kIndex: {
        Ty base = expr(*e.a);
        if (base.kind != TyKind::kArray) fail("indexed expression is not an array", e.line);
        Ty idx = expr(*e.b);
        if (idx.kind != TyKind::kInt) fail("array index must be an integer", e.line);
        const pbio::FieldDescriptor* fd = base.array_field;
        e.field = fd;
        if (fd->element_format) return e.type = Ty::Record(fd->element_format.get());
        switch (fd->element_kind) {
          case FieldKind::kString:
            return e.type = Ty::String();
          case FieldKind::kFloat:
            return e.type = Ty::Float();
          default:
            return e.type = Ty::Int();
        }
      }
      case ExprKind::kUnary: {
        Ty t = expr(*e.a);
        switch (e.un_op) {
          case UnOp::kNeg:
            if (!t.is_numeric()) fail("unary '-' requires a numeric operand", e.line);
            return e.type = t;
          case UnOp::kNot:
          case UnOp::kBitNot:
            if (t.kind != TyKind::kInt) fail("'!' and '~' require integer operands", e.line);
            return e.type = Ty::Int();
        }
        return e.type = Ty::Int();
      }
      case ExprKind::kBinary:
        return binary(e);
      case ExprKind::kCond: {
        Ty c = expr(*e.a);
        if (c.kind != TyKind::kInt) fail("'?:' condition must be an integer", e.line);
        Ty t1 = expr(*e.b);
        Ty t2 = expr(*e.c);
        if (t1.kind == TyKind::kString && t2.kind == TyKind::kString) {
          return e.type = Ty::String();
        }
        if (t1.is_numeric() && t2.is_numeric()) {
          return e.type = (t1.kind == TyKind::kFloat || t2.kind == TyKind::kFloat) ? Ty::Float()
                                                                                   : Ty::Int();
        }
        fail("'?:' branches must both be numeric or both be strings", e.line);
      }
      case ExprKind::kCall:
        return call(e);
    }
    return Ty::Void();
  }

  Ty field_type(const pbio::FieldDescriptor& fd) {
    switch (fd.kind) {
      case FieldKind::kFloat:
        return Ty::Float();
      case FieldKind::kString:
        return Ty::String();
      case FieldKind::kStruct:
        return Ty::Record(fd.element_format.get());
      case FieldKind::kStaticArray:
      case FieldKind::kDynArray:
        return Ty::Array(&fd);
      default:
        return Ty::Int();
    }
  }

  Ty binary(Expr& e) {
    Ty l = expr(*e.a);
    Ty r = expr(*e.b);
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
        if (!l.is_numeric() || !r.is_numeric()) fail("arithmetic requires numeric operands", e.line);
        return e.type =
                   (l.kind == TyKind::kFloat || r.kind == TyKind::kFloat) ? Ty::Float() : Ty::Int();
      case BinOp::kMod:
      case BinOp::kBitAnd:
      case BinOp::kBitOr:
      case BinOp::kBitXor:
      case BinOp::kShl:
      case BinOp::kShr:
        if (l.kind != TyKind::kInt || r.kind != TyKind::kInt) {
          fail("integer operation requires integer operands", e.line);
        }
        return e.type = Ty::Int();
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        if (!l.is_numeric() || !r.is_numeric()) {
          fail("comparison requires numeric operands (use streq for strings)", e.line);
        }
        return e.type = Ty::Int();
      case BinOp::kAnd:
      case BinOp::kOr:
        if (l.kind != TyKind::kInt || r.kind != TyKind::kInt) {
          fail("'&&'/'||' require integer operands", e.line);
        }
        return e.type = Ty::Int();
    }
    return Ty::Int();
  }

  Ty call(Expr& e) {
    const std::string& name = e.str_value;
    auto arg = [&](size_t i) -> Expr& { return *e.args[i]; };
    auto expect_argc = [&](size_t n) {
      if (e.args.size() != n) {
        fail(name + "() expects " + std::to_string(n) + " argument(s)", e.line);
      }
    };
    if (name == "abs") {
      expect_argc(1);
      Ty t = expr(arg(0));
      if (!t.is_numeric()) fail("abs() requires a numeric argument", e.line);
      e.builtin = static_cast<int>(Builtin::kAbs);
      return e.type = t;
    }
    if (name == "min" || name == "max") {
      expect_argc(2);
      Ty a = expr(arg(0));
      Ty b = expr(arg(1));
      if (!a.is_numeric() || !b.is_numeric()) fail(name + "() requires numeric arguments", e.line);
      e.builtin = static_cast<int>(name == "min" ? Builtin::kMin : Builtin::kMax);
      return e.type =
                 (a.kind == TyKind::kFloat || b.kind == TyKind::kFloat) ? Ty::Float() : Ty::Int();
    }
    if (name == "strlen") {
      expect_argc(1);
      if (expr(arg(0)).kind != TyKind::kString) fail("strlen() requires a string", e.line);
      e.builtin = static_cast<int>(Builtin::kStrLen);
      return e.type = Ty::Int();
    }
    if (name == "sqrt" || name == "floor" || name == "ceil") {
      expect_argc(1);
      Ty t = expr(arg(0));
      if (!t.is_numeric()) fail(name + "() requires a numeric argument", e.line);
      e.builtin = static_cast<int>(name == "sqrt" ? Builtin::kSqrt
                                   : name == "floor" ? Builtin::kFloor
                                                     : Builtin::kCeil);
      return e.type = Ty::Float();
    }
    if (name == "streq") {
      expect_argc(2);
      if (expr(arg(0)).kind != TyKind::kString || expr(arg(1)).kind != TyKind::kString) {
        fail("streq() requires two strings", e.line);
      }
      e.builtin = static_cast<int>(Builtin::kStrEq);
      return e.type = Ty::Int();
    }
    fail("unknown function '" + name + "'", e.line);
  }

  Program& prog_;
  const std::vector<RecordParam>& params_;
  std::vector<std::unordered_map<std::string, LocalVar>> scopes_;
  int next_slot_ = 0;
  int loop_depth_ = 0;
};

}  // namespace

void analyze(Program& prog, const std::vector<RecordParam>& params) {
  Sema(prog, params).run();
}

}  // namespace morph::ecode
