#include "ecode/vm.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace morph::ecode {

namespace {

inline double as_f(int64_t bits) { return std::bit_cast<double>(bits); }
inline int64_t as_i(double v) { return std::bit_cast<int64_t>(v); }

}  // namespace

void vm_run(const Chunk& chunk, void* const* params, EcodeRuntime& rt) {
  std::vector<int64_t> locals(static_cast<size_t>(chunk.local_slots), 0);
  std::vector<int64_t> stack(static_cast<size_t>(chunk.max_stack) + 16, 0);
  int64_t* sp = stack.data();  // points at the next free slot

  auto push = [&](int64_t v) { *sp++ = v; };
  auto pop = [&]() -> int64_t { return *--sp; };

  size_t pc = 0;
  const Instr* code = chunk.code.data();
  const size_t n = chunk.code.size();

  while (pc < n) {
    const Instr& in = code[pc++];
    switch (in.op) {
      case Op::kNop:
        break;
      case Op::kConstI:
        push(in.imm);
        break;
      case Op::kConstF:
        push(in.imm);
        break;
      case Op::kConstStr:
        push(reinterpret_cast<int64_t>(chunk.string_pool[static_cast<size_t>(in.a)].c_str()));
        break;
      case Op::kLoadLocal:
        push(locals[static_cast<size_t>(in.a)]);
        break;
      case Op::kStoreLocal:
        locals[static_cast<size_t>(in.a)] = pop();
        break;

      // Integer arithmetic wraps (two's complement), matching the JIT's
      // hardware semantics; computed in unsigned space to avoid UB.
      case Op::kAddI: {
        auto r = static_cast<uint64_t>(pop());
        push(static_cast<int64_t>(static_cast<uint64_t>(pop()) + r));
        break;
      }
      case Op::kSubI: {
        auto r = static_cast<uint64_t>(pop());
        push(static_cast<int64_t>(static_cast<uint64_t>(pop()) - r));
        break;
      }
      case Op::kMulI: {
        auto r = static_cast<uint64_t>(pop());
        push(static_cast<int64_t>(static_cast<uint64_t>(pop()) * r));
        break;
      }
      case Op::kDivI: {
        // Division by zero is defined as 0 and INT64_MIN / -1 wraps (both
        // backends agree; a trapping transform must never take down a
        // middleware receiver).
        int64_t r = pop();
        int64_t l = pop();
        if (r == 0) {
          push(0);
        } else if (r == -1) {
          push(static_cast<int64_t>(0 - static_cast<uint64_t>(l)));
        } else {
          push(l / r);
        }
        break;
      }
      case Op::kModI: {
        int64_t r = pop();
        int64_t l = pop();
        push((r == 0 || r == -1) ? 0 : l % r);
        break;
      }
      case Op::kNegI:
        push(static_cast<int64_t>(0 - static_cast<uint64_t>(pop())));
        break;
      case Op::kNotL:
        push(pop() == 0 ? 1 : 0);
        break;
      case Op::kBitNot:
        push(~pop());
        break;
      case Op::kBitAnd: {
        int64_t r = pop();
        push(pop() & r);
        break;
      }
      case Op::kBitOr: {
        int64_t r = pop();
        push(pop() | r);
        break;
      }
      case Op::kBitXor: {
        int64_t r = pop();
        push(pop() ^ r);
        break;
      }
      case Op::kShl: {
        int64_t r = pop() & 63;
        push(static_cast<int64_t>(static_cast<uint64_t>(pop()) << r));
        break;
      }
      case Op::kShr: {
        int64_t r = pop() & 63;
        push(pop() >> r);
        break;
      }

      case Op::kAddF: {
        double r = as_f(pop());
        push(as_i(as_f(pop()) + r));
        break;
      }
      case Op::kSubF: {
        double r = as_f(pop());
        push(as_i(as_f(pop()) - r));
        break;
      }
      case Op::kMulF: {
        double r = as_f(pop());
        push(as_i(as_f(pop()) * r));
        break;
      }
      case Op::kDivF: {
        double r = as_f(pop());
        push(as_i(as_f(pop()) / r));
        break;
      }
      case Op::kNegF:
        push(as_i(-as_f(pop())));
        break;

      case Op::kEqI: {
        int64_t r = pop();
        push(pop() == r ? 1 : 0);
        break;
      }
      case Op::kNeI: {
        int64_t r = pop();
        push(pop() != r ? 1 : 0);
        break;
      }
      case Op::kLtI: {
        int64_t r = pop();
        push(pop() < r ? 1 : 0);
        break;
      }
      case Op::kLeI: {
        int64_t r = pop();
        push(pop() <= r ? 1 : 0);
        break;
      }
      case Op::kGtI: {
        int64_t r = pop();
        push(pop() > r ? 1 : 0);
        break;
      }
      case Op::kGeI: {
        int64_t r = pop();
        push(pop() >= r ? 1 : 0);
        break;
      }
      case Op::kEqF: {
        double r = as_f(pop());
        push(as_f(pop()) == r ? 1 : 0);
        break;
      }
      case Op::kNeF: {
        double r = as_f(pop());
        push(as_f(pop()) != r ? 1 : 0);
        break;
      }
      case Op::kLtF: {
        double r = as_f(pop());
        push(as_f(pop()) < r ? 1 : 0);
        break;
      }
      case Op::kLeF: {
        double r = as_f(pop());
        push(as_f(pop()) <= r ? 1 : 0);
        break;
      }
      case Op::kGtF: {
        double r = as_f(pop());
        push(as_f(pop()) > r ? 1 : 0);
        break;
      }
      case Op::kGeF: {
        double r = as_f(pop());
        push(as_f(pop()) >= r ? 1 : 0);
        break;
      }

      case Op::kI2F:
        push(as_i(static_cast<double>(pop())));
        break;
      case Op::kF2I: {
        // Match cvttsd2si: NaN and out-of-range inputs produce INT64_MIN
        // (the "integer indefinite" value), so the VM stays bit-identical
        // with the JIT and the cast is never UB. 2^63 is exactly
        // representable as a double; values truncating into [-2^63, 2^63)
        // are safe to cast directly.
        double f = as_f(pop());
        push(f >= -9223372036854775808.0 && f < 9223372036854775808.0
                 ? static_cast<int64_t>(f)
                 : INT64_MIN);
        break;
      }

      case Op::kAbsI: {
        int64_t v = pop();
        push(v < 0 ? static_cast<int64_t>(0 - static_cast<uint64_t>(v)) : v);
        break;
      }
      case Op::kAbsF:
        push(as_i(std::fabs(as_f(pop()))));
        break;
      case Op::kMinI: {
        int64_t r = pop();
        int64_t l = pop();
        push(l < r ? l : r);
        break;
      }
      case Op::kMaxI: {
        int64_t r = pop();
        int64_t l = pop();
        push(l > r ? l : r);
        break;
      }
      case Op::kMinF: {
        double r = as_f(pop());
        double l = as_f(pop());
        push(as_i(l < r ? l : r));
        break;
      }
      case Op::kMaxF: {
        double r = as_f(pop());
        double l = as_f(pop());
        push(as_i(l > r ? l : r));
        break;
      }
      case Op::kSqrtF:
        push(as_i(std::sqrt(as_f(pop()))));
        break;
      case Op::kFloorF:
        push(as_i(std::floor(as_f(pop()))));
        break;
      case Op::kCeilF:
        push(as_i(std::ceil(as_f(pop()))));
        break;

      case Op::kJmp:
        pc = static_cast<size_t>(in.a);
        break;
      case Op::kJz:
        if (pop() == 0) pc = static_cast<size_t>(in.a);
        break;
      case Op::kJnz:
        if (pop() != 0) pc = static_cast<size_t>(in.a);
        break;
      case Op::kDup: {
        int64_t v = pop();
        push(v);
        push(v);
        break;
      }
      case Op::kPop:
        (void)pop();
        break;

      case Op::kParamAddr:
        push(reinterpret_cast<int64_t>(params[in.a]));
        break;
      case Op::kFieldAddr:
        push(pop() + in.imm);
        break;
      case Op::kLoadPtr: {
        void* p;
        std::memcpy(&p, reinterpret_cast<void*>(pop()), sizeof(void*));
        push(reinterpret_cast<int64_t>(p));
        break;
      }
      case Op::kIndex: {
        int64_t idx = pop();
        push(pop() + idx * in.imm);
        break;
      }

      case Op::kLoadI8: {
        int8_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 1);
        push(v);
        break;
      }
      case Op::kLoadI16: {
        int16_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 2);
        push(v);
        break;
      }
      case Op::kLoadI32: {
        int32_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 4);
        push(v);
        break;
      }
      case Op::kLoadI64: {
        int64_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 8);
        push(v);
        break;
      }
      case Op::kLoadU8: {
        uint8_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 1);
        push(v);
        break;
      }
      case Op::kLoadU16: {
        uint16_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 2);
        push(v);
        break;
      }
      case Op::kLoadU32: {
        uint32_t v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 4);
        push(v);
        break;
      }
      case Op::kLoadF32: {
        float v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 4);
        push(as_i(static_cast<double>(v)));
        break;
      }
      case Op::kLoadF64: {
        double v;
        std::memcpy(&v, reinterpret_cast<void*>(pop()), 8);
        push(as_i(v));
        break;
      }

      case Op::kStoreI8: {
        void* addr = reinterpret_cast<void*>(pop());
        auto v = static_cast<int8_t>(pop());
        std::memcpy(addr, &v, 1);
        break;
      }
      case Op::kStoreI16: {
        void* addr = reinterpret_cast<void*>(pop());
        auto v = static_cast<int16_t>(pop());
        std::memcpy(addr, &v, 2);
        break;
      }
      case Op::kStoreI32: {
        void* addr = reinterpret_cast<void*>(pop());
        auto v = static_cast<int32_t>(pop());
        std::memcpy(addr, &v, 4);
        break;
      }
      case Op::kStoreI64: {
        void* addr = reinterpret_cast<void*>(pop());
        int64_t v = pop();
        std::memcpy(addr, &v, 8);
        break;
      }
      case Op::kStoreF32: {
        void* addr = reinterpret_cast<void*>(pop());
        auto v = static_cast<float>(as_f(pop()));
        std::memcpy(addr, &v, 4);
        break;
      }
      case Op::kStoreF64: {
        void* addr = reinterpret_cast<void*>(pop());
        double v = as_f(pop());
        std::memcpy(addr, &v, 8);
        break;
      }

      case Op::kEnsure: {
        int64_t idx = pop();
        void* slot = reinterpret_cast<void*>(pop());
        push(reinterpret_cast<int64_t>(morph_ecode_ensure(&rt, slot, idx, in.imm)));
        break;
      }
      case Op::kStrAssign: {
        void* slot = reinterpret_cast<void*>(pop());
        const char* src = reinterpret_cast<const char*>(pop());
        morph_ecode_str_assign(&rt, slot, src);
        break;
      }
      case Op::kStrLen:
        push(morph_ecode_strlen(reinterpret_cast<const char*>(pop())));
        break;
      case Op::kStrEq: {
        const char* b = reinterpret_cast<const char*>(pop());
        const char* a = reinterpret_cast<const char*>(pop());
        push(morph_ecode_streq(a, b));
        break;
      }
      case Op::kStructCopy: {
        void* dst = reinterpret_cast<void*>(pop());
        const void* src = reinterpret_cast<const void*>(pop());
        morph_ecode_struct_copy(
            &rt, dst, src,
            reinterpret_cast<const pbio::FormatDescriptor*>(static_cast<intptr_t>(in.imm)));
        break;
      }

      case Op::kRet:
        return;
    }
  }
}

}  // namespace morph::ecode
