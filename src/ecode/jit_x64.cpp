#include "ecode/jit_x64.hpp"

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

#if defined(__x86_64__) && defined(__unix__)
#include <sys/mman.h>
#include <unistd.h>
#define MORPH_JIT_X64 1
#else
#define MORPH_JIT_X64 0
#endif

namespace morph::ecode {

#if MORPH_JIT_X64

namespace {

/// Raw x86-64 instruction emitter. Register conventions inside generated
/// code:
///   r12 = record parameter array, r13 = locals array, r14 = runtime ctx,
///   r15 = string table; rax/rcx/rdx/rsi/rdi = scratch; rbx = saved rsp
///   around aligned calls. The evaluation stack is the hardware stack.
class Emitter {
 public:
  std::vector<uint8_t> buf;

  void u8(uint8_t b) { buf.push_back(b); }
  void bytes(std::initializer_list<uint8_t> bs) {
    for (uint8_t b : bs) buf.push_back(b);
  }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
  size_t pos() const { return buf.size(); }
  void patch32(size_t at, uint32_t v) {
    for (int i = 0; i < 4; ++i) buf[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (i * 8));
  }

  // -- common sequences --
  void push_rax() { u8(0x50); }
  void push_rcx() { u8(0x51); }
  void push_rdx() { u8(0x52); }
  void pop_rax() { u8(0x58); }
  void pop_rcx() { u8(0x59); }
  void pop_rdx() { u8(0x5A); }
  void pop_rsi() { u8(0x5E); }
  void pop_rdi() { u8(0x5F); }

  void mov_rax_imm64(uint64_t v) {
    bytes({0x48, 0xB8});
    u64(v);
  }
  void mov_rcx_imm64(uint64_t v) {
    bytes({0x48, 0xB9});
    u64(v);
  }

  /// mov rax, [base + disp] for base in {r12(params), r13(locals),
  /// r15(strings)}.
  void load_rax_r12(int32_t disp) { mem_op_rax({0x49, 0x8B}, 0x04, true, disp); }
  void load_rax_r13(int32_t disp) { mem_op_rax({0x49, 0x8B}, 0x05, false, disp); }
  void store_rax_r13(int32_t disp) { mem_op_rax({0x49, 0x89}, 0x05, false, disp); }
  void load_rax_r15(int32_t disp) { mem_op_rax({0x49, 0x8B}, 0x07, false, disp); }

  /// Aligned absolute call; clobbers rax and rbx.
  void call_abs(const void* fn) {
    mov_rax_imm64(reinterpret_cast<uint64_t>(fn));
    bytes({0x48, 0x89, 0xE3});        // mov rbx, rsp
    bytes({0x48, 0x83, 0xE4, 0xF0});  // and rsp, -16
    bytes({0xFF, 0xD0});              // call rax
    bytes({0x48, 0x89, 0xDC});        // mov rsp, rbx
  }

  // float helpers: lhs at [rsp+8], rhs at [rsp]
  void load_xmm01_pair() {
    bytes({0xF2, 0x0F, 0x10, 0x44, 0x24, 0x08});  // movsd xmm0, [rsp+8]
    bytes({0xF2, 0x0F, 0x10, 0x0C, 0x24});        // movsd xmm1, [rsp]
    bytes({0x48, 0x83, 0xC4, 0x10});              // add rsp, 16
  }
  void load_xmm01_pair_swapped() {
    bytes({0xF2, 0x0F, 0x10, 0x04, 0x24});        // movsd xmm0, [rsp]   (rhs)
    bytes({0xF2, 0x0F, 0x10, 0x4C, 0x24, 0x08});  // movsd xmm1, [rsp+8] (lhs)
    bytes({0x48, 0x83, 0xC4, 0x10});              // add rsp, 16
  }
  void push_xmm0() {
    bytes({0x48, 0x83, 0xEC, 0x08});              // sub rsp, 8
    bytes({0xF2, 0x0F, 0x11, 0x04, 0x24});        // movsd [rsp], xmm0
  }
  void cmp_result_from_xmm0() {
    bytes({0x66, 0x48, 0x0F, 0x7E, 0xC0});  // movq rax, xmm0
    bytes({0x83, 0xE0, 0x01});              // and eax, 1
    push_rax();
  }
  void int_compare(uint8_t setcc) {
    pop_rcx();
    pop_rax();
    bytes({0x48, 0x39, 0xC8});        // cmp rax, rcx
    bytes({0x0F, setcc, 0xC0});       // setcc al
    bytes({0x0F, 0xB6, 0xC0});        // movzx eax, al
    push_rax();
  }

 private:
  void mem_op_rax(std::initializer_list<uint8_t> prefix, uint8_t rm, bool needs_sib,
                  int32_t disp) {
    for (uint8_t b : prefix) u8(b);
    bool small = disp >= -128 && disp <= 127;
    u8(static_cast<uint8_t>((small ? 0x40 : 0x80) | rm));
    if (needs_sib) u8(0x24);
    if (small) {
      u8(static_cast<uint8_t>(disp));
    } else {
      u32(static_cast<uint32_t>(disp));
    }
  }
};

constexpr uint8_t kSete = 0x94, kSetne = 0x95, kSetl = 0x9C, kSetle = 0x9E, kSetg = 0x9F,
                  kSetge = 0x9D;

}  // namespace

std::unique_ptr<const JitCode> JitCode::build(const Chunk& chunk) {
  Emitter e;
  std::vector<size_t> bc_to_native(chunk.code.size() + 1, 0);
  struct Fixup {
    size_t at;       // position of the rel32 field
    int32_t target;  // bytecode index
  };
  std::vector<Fixup> fixups;

  // Stable string table (addresses baked into nothing; passed via r15).
  auto storage = std::make_unique<std::string[]>(chunk.string_pool.size());
  auto table = std::make_unique<const char*[]>(chunk.string_pool.size());
  for (size_t i = 0; i < chunk.string_pool.size(); ++i) {
    storage[i] = chunk.string_pool[i];
    table[i] = storage[i].c_str();
  }

  // Prologue.
  e.bytes({0x55});                    // push rbp
  e.bytes({0x48, 0x89, 0xE5});        // mov rbp, rsp
  e.bytes({0x53});                    // push rbx
  e.bytes({0x41, 0x54});              // push r12
  e.bytes({0x41, 0x55});              // push r13
  e.bytes({0x41, 0x56});              // push r14
  e.bytes({0x41, 0x57});              // push r15
  e.bytes({0x49, 0x89, 0xFC});        // mov r12, rdi  (params)
  e.bytes({0x49, 0x89, 0xF5});        // mov r13, rsi  (locals)
  e.bytes({0x49, 0x89, 0xD6});        // mov r14, rdx  (rt)
  e.bytes({0x49, 0x89, 0xCF});        // mov r15, rcx  (strings)

  auto emit_epilogue = [&] {
    e.bytes({0x48, 0x8D, 0x65, 0xD8});  // lea rsp, [rbp-40] (pop point)
    e.bytes({0x41, 0x5F});              // pop r15
    e.bytes({0x41, 0x5E});              // pop r14
    e.bytes({0x41, 0x5D});              // pop r13
    e.bytes({0x41, 0x5C});              // pop r12
    e.bytes({0x5B});                    // pop rbx
    e.bytes({0x5D});                    // pop rbp
    e.bytes({0xC3});                    // ret
  };

  auto int_binop = [&](std::initializer_list<uint8_t> op) {
    e.pop_rcx();
    e.pop_rax();
    e.bytes(op);
    e.push_rax();
  };

  auto float_binop = [&](uint8_t op_byte) {
    e.load_xmm01_pair();
    e.bytes({0xF2, 0x0F, op_byte, 0xC1});  // opsd xmm0, xmm1
    e.push_xmm0();
  };

  auto float_compare = [&](bool swapped, uint8_t predicate) {
    if (swapped) {
      e.load_xmm01_pair_swapped();
    } else {
      e.load_xmm01_pair();
    }
    e.bytes({0xF2, 0x0F, 0xC2, 0xC1, predicate});  // cmpsd xmm0, xmm1, pred
    e.cmp_result_from_xmm0();
  };

  for (size_t i = 0; i < chunk.code.size(); ++i) {
    bc_to_native[i] = e.pos();
    const Instr& in = chunk.code[i];
    switch (in.op) {
      case Op::kNop:
        break;
      case Op::kConstI:
      case Op::kConstF:
        e.mov_rax_imm64(static_cast<uint64_t>(in.imm));
        e.push_rax();
        break;
      case Op::kConstStr:
        e.load_rax_r15(in.a * 8);
        e.push_rax();
        break;
      case Op::kLoadLocal:
        e.load_rax_r13(in.a * 8);
        e.push_rax();
        break;
      case Op::kStoreLocal:
        e.pop_rax();
        e.store_rax_r13(in.a * 8);
        break;

      case Op::kAddI:
        int_binop({0x48, 0x01, 0xC8});
        break;
      case Op::kSubI:
        int_binop({0x48, 0x29, 0xC8});
        break;
      case Op::kMulI:
        int_binop({0x48, 0x0F, 0xAF, 0xC1});
        break;
      case Op::kDivI:
        e.pop_rcx();
        e.pop_rax();
        e.bytes({0x48, 0x85, 0xC9});        // test rcx, rcx
        e.bytes({0x75, 0x04});              // jne +4
        e.bytes({0x31, 0xC0});              // xor eax, eax
        e.bytes({0xEB, 0x10});              // jmp done (+16)
        e.bytes({0x48, 0x83, 0xF9, 0xFF});  // cmp rcx, -1
        e.bytes({0x75, 0x05});              // jne +5
        e.bytes({0x48, 0xF7, 0xD8});        // neg rax
        e.bytes({0xEB, 0x05});              // jmp done (+5)
        e.bytes({0x48, 0x99});              // cqo
        e.bytes({0x48, 0xF7, 0xF9});        // idiv rcx
        e.push_rax();                       // done:
        break;
      case Op::kModI:
        e.pop_rcx();
        e.pop_rax();
        e.bytes({0x48, 0x85, 0xC9});        // test rcx, rcx
        e.bytes({0x74, 0x06});              // je zero
        e.bytes({0x48, 0x83, 0xF9, 0xFF});  // cmp rcx, -1
        e.bytes({0x75, 0x04});              // jne div
        e.bytes({0x31, 0xD2});              // zero: xor edx, edx
        e.bytes({0xEB, 0x05});              // jmp done (+5)
        e.bytes({0x48, 0x99});              // div: cqo
        e.bytes({0x48, 0xF7, 0xF9});        // idiv rcx
        e.push_rdx();                       // done:
        break;
      case Op::kNegI:
        e.pop_rax();
        e.bytes({0x48, 0xF7, 0xD8});
        e.push_rax();
        break;
      case Op::kNotL:
        e.pop_rax();
        e.bytes({0x48, 0x85, 0xC0});   // test rax, rax
        e.bytes({0x0F, kSete, 0xC0});  // sete al
        e.bytes({0x0F, 0xB6, 0xC0});   // movzx eax, al
        e.push_rax();
        break;
      case Op::kBitNot:
        e.pop_rax();
        e.bytes({0x48, 0xF7, 0xD0});
        e.push_rax();
        break;
      case Op::kBitAnd:
        int_binop({0x48, 0x21, 0xC8});
        break;
      case Op::kBitOr:
        int_binop({0x48, 0x09, 0xC8});
        break;
      case Op::kBitXor:
        int_binop({0x48, 0x31, 0xC8});
        break;
      case Op::kShl:
        int_binop({0x48, 0xD3, 0xE0});  // shl rax, cl
        break;
      case Op::kShr:
        int_binop({0x48, 0xD3, 0xF8});  // sar rax, cl
        break;

      case Op::kAddF:
        float_binop(0x58);
        break;
      case Op::kSubF:
        float_binop(0x5C);
        break;
      case Op::kMulF:
        float_binop(0x59);
        break;
      case Op::kDivF:
        float_binop(0x5E);
        break;
      case Op::kNegF:
        e.pop_rax();
        e.mov_rcx_imm64(0x8000000000000000ull);
        e.bytes({0x48, 0x31, 0xC8});  // xor rax, rcx
        e.push_rax();
        break;

      case Op::kEqI:
        e.int_compare(kSete);
        break;
      case Op::kNeI:
        e.int_compare(kSetne);
        break;
      case Op::kLtI:
        e.int_compare(kSetl);
        break;
      case Op::kLeI:
        e.int_compare(kSetle);
        break;
      case Op::kGtI:
        e.int_compare(kSetg);
        break;
      case Op::kGeI:
        e.int_compare(kSetge);
        break;

      case Op::kEqF:
        float_compare(false, 0);
        break;
      case Op::kNeF:
        float_compare(false, 4);
        break;
      case Op::kLtF:
        float_compare(false, 1);
        break;
      case Op::kLeF:
        float_compare(false, 2);
        break;
      case Op::kGtF:
        float_compare(true, 1);  // rhs < lhs
        break;
      case Op::kGeF:
        float_compare(true, 2);  // rhs <= lhs
        break;

      case Op::kI2F:
        e.pop_rax();
        e.bytes({0xF2, 0x48, 0x0F, 0x2A, 0xC0});  // cvtsi2sd xmm0, rax
        e.push_xmm0();
        break;
      case Op::kF2I:
        e.bytes({0xF2, 0x0F, 0x10, 0x04, 0x24});  // movsd xmm0, [rsp]
        e.bytes({0xF2, 0x48, 0x0F, 0x2C, 0xC0});  // cvttsd2si rax, xmm0
        e.bytes({0x48, 0x89, 0x04, 0x24});        // mov [rsp], rax
        break;

      case Op::kAbsI:
        e.pop_rax();
        e.bytes({0x48, 0x89, 0xC1});        // mov rcx, rax
        e.bytes({0x48, 0xC1, 0xF9, 0x3F});  // sar rcx, 63
        e.bytes({0x48, 0x31, 0xC8});        // xor rax, rcx
        e.bytes({0x48, 0x29, 0xC8});        // sub rax, rcx
        e.push_rax();
        break;
      case Op::kAbsF:
        e.pop_rax();
        e.bytes({0x48, 0x0F, 0xBA, 0xF0, 0x3F});  // btr rax, 63
        e.push_rax();
        break;
      case Op::kMinI:
        e.pop_rcx();
        e.pop_rax();
        e.bytes({0x48, 0x39, 0xC8});        // cmp rax, rcx
        e.bytes({0x48, 0x0F, 0x4D, 0xC1});  // cmovge rax, rcx
        e.push_rax();
        break;
      case Op::kMaxI:
        e.pop_rcx();
        e.pop_rax();
        e.bytes({0x48, 0x39, 0xC8});        // cmp rax, rcx
        e.bytes({0x48, 0x0F, 0x4E, 0xC1});  // cmovle rax, rcx
        e.push_rax();
        break;
      case Op::kMinF:
        e.load_xmm01_pair();
        e.bytes({0xF2, 0x0F, 0x5D, 0xC1});  // minsd xmm0, xmm1
        e.push_xmm0();
        break;
      case Op::kMaxF:
        e.load_xmm01_pair();
        e.bytes({0xF2, 0x0F, 0x5F, 0xC1});  // maxsd xmm0, xmm1
        e.push_xmm0();
        break;
      case Op::kSqrtF:
        e.bytes({0xF2, 0x0F, 0x10, 0x04, 0x24});        // movsd xmm0, [rsp]
        e.bytes({0xF2, 0x0F, 0x51, 0xC0});              // sqrtsd xmm0, xmm0
        e.bytes({0xF2, 0x0F, 0x11, 0x04, 0x24});        // movsd [rsp], xmm0
        break;
      case Op::kFloorF:
        e.bytes({0xF2, 0x0F, 0x10, 0x04, 0x24});        // movsd xmm0, [rsp]
        e.bytes({0x66, 0x0F, 0x3A, 0x0B, 0xC0, 0x01});  // roundsd xmm0, xmm0, 1
        e.bytes({0xF2, 0x0F, 0x11, 0x04, 0x24});        // movsd [rsp], xmm0
        break;
      case Op::kCeilF:
        e.bytes({0xF2, 0x0F, 0x10, 0x04, 0x24});        // movsd xmm0, [rsp]
        e.bytes({0x66, 0x0F, 0x3A, 0x0B, 0xC0, 0x02});  // roundsd xmm0, xmm0, 2
        e.bytes({0xF2, 0x0F, 0x11, 0x04, 0x24});        // movsd [rsp], xmm0
        break;

      case Op::kJmp:
        e.u8(0xE9);
        fixups.push_back({e.pos(), in.a});
        e.u32(0);
        break;
      case Op::kJz:
        e.pop_rax();
        e.bytes({0x48, 0x85, 0xC0});  // test rax, rax
        e.bytes({0x0F, 0x84});        // jz rel32
        fixups.push_back({e.pos(), in.a});
        e.u32(0);
        break;
      case Op::kJnz:
        e.pop_rax();
        e.bytes({0x48, 0x85, 0xC0});
        e.bytes({0x0F, 0x85});  // jnz rel32
        fixups.push_back({e.pos(), in.a});
        e.u32(0);
        break;
      case Op::kDup:
        e.bytes({0x48, 0x8B, 0x04, 0x24});  // mov rax, [rsp]
        e.push_rax();
        break;
      case Op::kPop:
        e.bytes({0x48, 0x83, 0xC4, 0x08});  // add rsp, 8
        break;

      case Op::kParamAddr:
        e.load_rax_r12(in.a * 8);
        e.push_rax();
        break;
      case Op::kFieldAddr:
        e.pop_rax();
        e.bytes({0x48, 0x05});  // add rax, imm32
        e.u32(static_cast<uint32_t>(in.imm));
        e.push_rax();
        break;
      case Op::kLoadPtr:
        e.pop_rax();
        e.bytes({0x48, 0x8B, 0x00});  // mov rax, [rax]
        e.push_rax();
        break;
      case Op::kIndex:
        e.pop_rcx();
        e.bytes({0x48, 0x69, 0xC9});  // imul rcx, rcx, imm32
        e.u32(static_cast<uint32_t>(in.imm));
        e.pop_rax();
        e.bytes({0x48, 0x01, 0xC8});  // add rax, rcx
        e.push_rax();
        break;

      case Op::kLoadI8:
        e.pop_rax();
        e.bytes({0x48, 0x0F, 0xBE, 0x00});  // movsx rax, byte [rax]
        e.push_rax();
        break;
      case Op::kLoadI16:
        e.pop_rax();
        e.bytes({0x48, 0x0F, 0xBF, 0x00});
        e.push_rax();
        break;
      case Op::kLoadI32:
        e.pop_rax();
        e.bytes({0x48, 0x63, 0x00});  // movsxd rax, dword [rax]
        e.push_rax();
        break;
      case Op::kLoadI64:
        e.pop_rax();
        e.bytes({0x48, 0x8B, 0x00});
        e.push_rax();
        break;
      case Op::kLoadU8:
        e.pop_rax();
        e.bytes({0x0F, 0xB6, 0x00});  // movzx eax, byte [rax]
        e.push_rax();
        break;
      case Op::kLoadU16:
        e.pop_rax();
        e.bytes({0x0F, 0xB7, 0x00});
        e.push_rax();
        break;
      case Op::kLoadU32:
        e.pop_rax();
        e.bytes({0x8B, 0x00});  // mov eax, [rax]
        e.push_rax();
        break;
      case Op::kLoadF32:
        e.pop_rax();
        e.bytes({0xF3, 0x0F, 0x10, 0x00});  // movss xmm0, [rax]
        e.bytes({0xF3, 0x0F, 0x5A, 0xC0});  // cvtss2sd xmm0, xmm0
        e.push_xmm0();
        break;
      case Op::kLoadF64:
        e.pop_rax();
        e.bytes({0x48, 0x8B, 0x00});
        e.push_rax();
        break;

      case Op::kStoreI8:
        e.pop_rax();
        e.pop_rcx();
        e.bytes({0x88, 0x08});  // mov [rax], cl
        break;
      case Op::kStoreI16:
        e.pop_rax();
        e.pop_rcx();
        e.bytes({0x66, 0x89, 0x08});
        break;
      case Op::kStoreI32:
        e.pop_rax();
        e.pop_rcx();
        e.bytes({0x89, 0x08});
        break;
      case Op::kStoreI64:
        e.pop_rax();
        e.pop_rcx();
        e.bytes({0x48, 0x89, 0x08});
        break;
      case Op::kStoreF32:
        e.pop_rax();
        e.pop_rcx();
        e.bytes({0x66, 0x48, 0x0F, 0x6E, 0xC1});  // movq xmm0, rcx
        e.bytes({0xF2, 0x0F, 0x5A, 0xC0});        // cvtsd2ss xmm0, xmm0
        e.bytes({0xF3, 0x0F, 0x11, 0x00});        // movss [rax], xmm0
        break;
      case Op::kStoreF64:
        e.pop_rax();
        e.pop_rcx();
        e.bytes({0x48, 0x89, 0x08});
        break;

      case Op::kEnsure:
        e.pop_rdx();                  // index
        e.pop_rsi();                  // slot
        e.bytes({0x4C, 0x89, 0xF7});  // mov rdi, r14
        e.bytes({0x48, 0xC7, 0xC1});  // mov rcx, imm32
        e.u32(static_cast<uint32_t>(in.imm));
        e.call_abs(reinterpret_cast<const void*>(&morph_ecode_ensure));
        e.push_rax();
        break;
      case Op::kStrAssign:
        e.pop_rsi();                  // slot
        e.pop_rdx();                  // src string
        e.bytes({0x4C, 0x89, 0xF7});  // mov rdi, r14
        e.call_abs(reinterpret_cast<const void*>(&morph_ecode_str_assign));
        break;
      case Op::kStrLen:
        e.pop_rdi();
        e.call_abs(reinterpret_cast<const void*>(&morph_ecode_strlen));
        e.push_rax();
        break;
      case Op::kStrEq:
        e.pop_rsi();
        e.pop_rdi();
        e.call_abs(reinterpret_cast<const void*>(&morph_ecode_streq));
        e.push_rax();
        break;
      case Op::kStructCopy:
        e.pop_rsi();                  // dst
        e.pop_rdx();                  // src
        e.bytes({0x4C, 0x89, 0xF7});  // mov rdi, r14 (runtime)
        e.mov_rcx_imm64(static_cast<uint64_t>(in.imm));  // format descriptor
        e.call_abs(reinterpret_cast<const void*>(&morph_ecode_struct_copy));
        break;

      case Op::kRet:
        emit_epilogue();
        break;
    }
  }
  bc_to_native[chunk.code.size()] = e.pos();
  emit_epilogue();  // safety net if the chunk lacks a trailing kRet

  for (const auto& f : fixups) {
    size_t target = bc_to_native[static_cast<size_t>(f.target)];
    auto rel = static_cast<int64_t>(target) - static_cast<int64_t>(f.at + 4);
    e.patch32(f.at, static_cast<uint32_t>(rel));
  }

  // Map W, copy, then flip to RX (W^X).
  size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  size_t size = (e.buf.size() + page - 1) & ~(page - 1);
  void* mem = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw Error("ecode jit: mmap failed");
  std::memcpy(mem, e.buf.data(), e.buf.size());
  if (mprotect(mem, size, PROT_READ | PROT_EXEC) != 0) {
    munmap(mem, size);
    throw Error("ecode jit: mprotect failed");
  }

  auto code = std::unique_ptr<JitCode>(new JitCode());
  code->mem_ = mem;
  code->mem_size_ = size;
  code->code_size_ = e.buf.size();
  code->entry_ = reinterpret_cast<Fn>(mem);
  code->string_table_ = std::move(table);
  code->string_storage_ = std::move(storage);
  return code;
}

JitCode::~JitCode() {
  if (mem_ != nullptr) munmap(mem_, mem_size_);
}

void JitCode::run(void* const* params, int64_t* locals, EcodeRuntime& rt) const {
  entry_(params, locals, &rt, string_table_.get());
}

#else  // !MORPH_JIT_X64

std::unique_ptr<const JitCode> JitCode::build(const Chunk&) { return nullptr; }
JitCode::~JitCode() = default;
void JitCode::run(void* const*, int64_t*, EcodeRuntime&) const {
  throw Error("ecode jit: unsupported platform");
}

#endif

}  // namespace morph::ecode
