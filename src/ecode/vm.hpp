// Portable bytecode interpreter: the fallback execution backend (and the
// differential-testing oracle for the JIT).
#pragma once

#include "ecode/bytecode.hpp"
#include "ecode/runtime.hpp"

namespace morph::ecode {

/// Execute `chunk` against `params` (array of chunk.param_count record base
/// pointers). Allocation goes through rt.arena.
void vm_run(const Chunk& chunk, void* const* params, EcodeRuntime& rt);

}  // namespace morph::ecode
