// Ecode abstract syntax tree.
//
// Nodes carry slots for the annotations the semantic pass fills in
// (value types, resolved locals, resolved field descriptors), so the
// compiler can run as a simple annotated-tree walk.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pbio/format.hpp"

namespace morph::ecode {

/// Value categories during checking and compilation.
enum class TyKind : uint8_t {
  kInt,      // any integer-ish value (i64 at runtime)
  kFloat,    // f64 at runtime
  kString,   // char* at runtime
  kRecord,   // intermediate: a struct (base of a field chain)
  kArray,    // intermediate: an array field awaiting indexing
  kVoid,
};

struct Ty {
  TyKind kind = TyKind::kVoid;
  const pbio::FormatDescriptor* record = nullptr;   // kRecord
  const pbio::FieldDescriptor* array_field = nullptr;  // kArray

  static Ty Int() { return {TyKind::kInt, nullptr, nullptr}; }
  static Ty Float() { return {TyKind::kFloat, nullptr, nullptr}; }
  static Ty String() { return {TyKind::kString, nullptr, nullptr}; }
  static Ty Record(const pbio::FormatDescriptor* f) { return {TyKind::kRecord, f, nullptr}; }
  static Ty Array(const pbio::FieldDescriptor* fd) { return {TyKind::kArray, nullptr, fd}; }
  static Ty Void() { return {TyKind::kVoid, nullptr, nullptr}; }

  bool is_numeric() const { return kind == TyKind::kInt || kind == TyKind::kFloat; }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kIntLit,
  kFloatLit,
  kStringLit,
  kVarRef,       // local variable or record parameter
  kFieldAccess,  // base.field
  kIndex,        // base[expr]
  kUnary,
  kBinary,
  kCond,         // a ? b : c
  kCall,         // builtin call
};

enum class UnOp : uint8_t { kNeg, kNot, kBitNot };

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,             // short-circuit logical
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // literals
  int64_t int_value = 0;
  double float_value = 0.0;
  std::string str_value;  // kStringLit text; kVarRef/kFieldAccess/kCall name

  // children
  std::unique_ptr<Expr> a;  // base / lhs / operand / condition
  std::unique_ptr<Expr> b;  // index / rhs / then
  std::unique_ptr<Expr> c;  // else
  std::vector<std::unique_ptr<Expr>> args;  // kCall

  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;

  // --- sema annotations ---
  Ty type;
  int local_slot = -1;                                 // kVarRef -> local
  int param_index = -1;                                // kVarRef -> record param
  const pbio::FieldDescriptor* field = nullptr;        // kFieldAccess / kIndex element
  int builtin = -1;                                    // kCall
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kDecl,
  kAssign,     // lvalue op= expr  (op may be plain =)
  kIncDec,     // lvalue++ / lvalue--
  kExpr,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kBlock,
  kReturn,
  kBreak,
  kContinue,
};

enum class AssignOp : uint8_t { kSet, kAdd, kSub, kMul, kDiv, kMod };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Declarator {
  std::string name;
  ExprPtr init;   // may be null
  int local_slot = -1;  // sema
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kDecl
  TyKind decl_type = TyKind::kInt;
  std::vector<Declarator> decls;

  // kAssign / kIncDec
  ExprPtr lvalue;
  AssignOp assign_op = AssignOp::kSet;
  int inc_delta = 1;  // +1 or -1

  // kExpr / kAssign rhs / kReturn value (unused) / kIf & loops condition
  ExprPtr expr;

  // kIf
  StmtPtr then_branch;
  StmtPtr else_branch;

  // kWhile / kFor body
  StmtPtr body;

  // kFor
  StmtPtr for_init;  // decl / assign / expr statement, may be null
  StmtPtr for_step;  // assign / expr statement, may be null

  // kBlock
  std::vector<StmtPtr> stmts;
};

/// A whole transform: statements plus the record parameters it binds.
struct Program {
  std::vector<StmtPtr> stmts;
  // sema results
  int local_slot_count = 0;
  std::vector<std::string> string_pool;  // literal storage referenced by index
};

}  // namespace morph::ecode
