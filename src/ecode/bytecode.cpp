#include "ecode/bytecode.hpp"

namespace morph::ecode {

std::string op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kConstI: return "const.i";
    case Op::kConstF: return "const.f";
    case Op::kConstStr: return "const.str";
    case Op::kLoadLocal: return "load.local";
    case Op::kStoreLocal: return "store.local";
    case Op::kAddI: return "add.i";
    case Op::kSubI: return "sub.i";
    case Op::kMulI: return "mul.i";
    case Op::kDivI: return "div.i";
    case Op::kModI: return "mod.i";
    case Op::kNegI: return "neg.i";
    case Op::kNotL: return "not";
    case Op::kBitNot: return "bitnot";
    case Op::kBitAnd: return "and";
    case Op::kBitOr: return "or";
    case Op::kBitXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kAddF: return "add.f";
    case Op::kSubF: return "sub.f";
    case Op::kMulF: return "mul.f";
    case Op::kDivF: return "div.f";
    case Op::kNegF: return "neg.f";
    case Op::kEqI: return "eq.i";
    case Op::kNeI: return "ne.i";
    case Op::kLtI: return "lt.i";
    case Op::kLeI: return "le.i";
    case Op::kGtI: return "gt.i";
    case Op::kGeI: return "ge.i";
    case Op::kEqF: return "eq.f";
    case Op::kNeF: return "ne.f";
    case Op::kLtF: return "lt.f";
    case Op::kLeF: return "le.f";
    case Op::kGtF: return "gt.f";
    case Op::kGeF: return "ge.f";
    case Op::kI2F: return "i2f";
    case Op::kF2I: return "f2i";
    case Op::kAbsI: return "abs.i";
    case Op::kAbsF: return "abs.f";
    case Op::kMinI: return "min.i";
    case Op::kMaxI: return "max.i";
    case Op::kMinF: return "min.f";
    case Op::kMaxF: return "max.f";
    case Op::kSqrtF: return "sqrt.f";
    case Op::kFloorF: return "floor.f";
    case Op::kCeilF: return "ceil.f";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kDup: return "dup";
    case Op::kPop: return "pop";
    case Op::kParamAddr: return "param.addr";
    case Op::kFieldAddr: return "field.addr";
    case Op::kLoadPtr: return "load.ptr";
    case Op::kIndex: return "index";
    case Op::kLoadI8: return "load.i8";
    case Op::kLoadI16: return "load.i16";
    case Op::kLoadI32: return "load.i32";
    case Op::kLoadI64: return "load.i64";
    case Op::kLoadU8: return "load.u8";
    case Op::kLoadU16: return "load.u16";
    case Op::kLoadU32: return "load.u32";
    case Op::kLoadF32: return "load.f32";
    case Op::kLoadF64: return "load.f64";
    case Op::kStoreI8: return "store.i8";
    case Op::kStoreI16: return "store.i16";
    case Op::kStoreI32: return "store.i32";
    case Op::kStoreI64: return "store.i64";
    case Op::kStoreF32: return "store.f32";
    case Op::kStoreF64: return "store.f64";
    case Op::kEnsure: return "ensure";
    case Op::kStrAssign: return "str.assign";
    case Op::kStrLen: return "strlen";
    case Op::kStrEq: return "streq";
    case Op::kStructCopy: return "struct.copy";
    case Op::kRet: return "ret";
  }
  return "?";
}

std::string Chunk::disassemble() const {
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    out += std::to_string(i) + ": " + op_name(in.op);
    switch (in.op) {
      case Op::kConstI:
      case Op::kConstF:
      case Op::kFieldAddr:
      case Op::kIndex:
      case Op::kEnsure:
        out += " " + std::to_string(in.imm);
        break;
      case Op::kConstStr:
        out += " \"" + string_pool[static_cast<size_t>(in.a)] + "\"";
        break;
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kParamAddr:
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz:
        out += " " + std::to_string(in.a);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace morph::ecode
