// Abstract interpretation engine behind the Ecode verifier (see verify.hpp).
//
// The engine runs a joining/widening fixpoint over the bytecode CFG with an
// abstract value per stack slot and local:
//
//   * kind lattice     — int / float-bits / string / pointer / any, catching
//                        operand confusion the JIT would silently execute;
//   * interval domain  — int values carry a [lo, hi] range seeded by load
//                        widths (an i32 field load is born in [-2^31, 2^31));
//   * symbolic bounds  — comparisons against a record's scalar fields tag
//                        the refined value "< field(param, offset)", which is
//                        exactly the certificate a dynamic-array read needs
//                        against the array's declared length field;
//   * pointer domain   — provenance (parameter, format descriptor, offset
//                        interval) so every dereference is checked against
//                        the descriptor's layout;
//   * init domain      — a byte-precise must-initialized map per destination
//                        parameter, intersected at joins, for definite-
//                        assignment and read-before-assign checks.
//
// This header is internal to the ecode library: verify.cpp orchestrates it
// and core/lint.cpp consumes its store/read summaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ecode/bytecode.hpp"
#include "ecode/sema.hpp"
#include "ecode/verify.hpp"
#include "pbio/format.hpp"

namespace morph::ecode::absint {

struct Interval {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;

  static Interval exact(int64_t v) { return {v, v}; }
  static Interval full() { return {}; }
  bool singleton() const { return lo == hi; }
  bool operator==(const Interval&) const = default;
};

/// Where an integer/float value came from, for branch refinement, loop
/// invariance, and the lint layer's narrowing diagnostics.
enum class OriginKind : uint8_t { kNone, kConst, kLocal, kFieldLoad };

struct Origin {
  OriginKind kind = OriginKind::kNone;
  int local = -1;                                  // kLocal
  int param = -1;                                  // kFieldLoad
  int64_t offset = 0;                              // kFieldLoad: root offset
  uint32_t size = 0;                               // kFieldLoad width
  pbio::FieldKind fkind = pbio::FieldKind::kInt;   // kFieldLoad
  bool operator==(const Origin&) const = default;
};

/// "value < (or <=) the runtime value of the scalar field at (param, off)".
struct SymBound {
  int param = -1;
  int64_t off = -1;
  uint32_t size = 0;
  bool strict = true;
  bool valid() const { return param >= 0; }
  bool operator==(const SymBound&) const = default;
};

/// How a leaf of a flattened format layout is used.
enum class SiteUse : uint8_t { kScalar, kStringSlot, kDynSlot, kStaticArray };

/// One leaf of a format's flattened layout: scalars of nested structs are
/// inlined at absolute offsets; static arrays and dynamic-array slots stay
/// opaque regions resolved on indexing.
struct FieldSite {
  const pbio::FieldDescriptor* fd = nullptr;
  SiteUse use = SiteUse::kScalar;
  int64_t start = 0;
  uint32_t size = 0;       // bytes covered in the struct
  std::string path;        // dotted path from the struct root
  int top_field = -1;      // index of the top-level field this leaf is in
  // kScalar
  pbio::FieldKind kind = pbio::FieldKind::kInt;
  // kDynSlot: offset of the governing length field within the same struct
  int64_t len_off = -1;
  uint32_t len_size = 0;
};

/// Flattened layout of one FormatDescriptor (cached per verify run).
class Layout {
 public:
  explicit Layout(const pbio::FormatDescriptor* fmt);

  const pbio::FormatDescriptor* fmt() const { return fmt_; }
  /// The site covering byte `off`, or null.
  const FieldSite* at(int64_t off) const;
  const std::vector<FieldSite>& sites() const { return sites_; }

 private:
  void flatten(const pbio::FormatDescriptor& f, int64_t base, const std::string& prefix,
               int top_field);
  const pbio::FormatDescriptor* fmt_;
  std::vector<FieldSite> sites_;  // sorted by start
};

enum class ValKind : uint8_t { kBottom, kInt, kFloat, kStr, kPtr, kAny };
enum class PtrKind : uint8_t { kNone, kStruct, kScalarSlot, kDynElems };

/// Pointer provenance.
struct PtrVal {
  PtrKind kind = PtrKind::kNone;
  int param = -1;
  // kStruct: offset interval within `fmt`'s layout.
  const pbio::FormatDescriptor* fmt = nullptr;
  Interval off = Interval::exact(0);
  // kScalarSlot: points directly at one scalar (array element).
  pbio::FieldKind skind = pbio::FieldKind::kInt;
  uint32_t ssize = 0;
  // kDynElems: the element area of a dynamic array.
  const pbio::FieldDescriptor* dyn = nullptr;
  SymBound len;  // governing length field, when root-resolvable
  // Root tracking: absolute byte offset within the parameter's struct while
  // the pointer still targets the inline region (enables init/read maps).
  bool root_inline = false;
  Interval root_off = Interval::exact(0);
};

/// Predicate attached to a comparison result for branch refinement.
struct Pred {
  Op cmp = Op::kNop;  // kLtI..kGeI / kEqI / kNeI; kNop = none
  bool negated = false;
  Origin l, r;
  Interval liv, riv;
};

struct AbsVal {
  ValKind kind = ValKind::kAny;
  Interval iv;          // kInt
  SymBound ub;          // kInt symbolic upper bound
  Origin origin;        // kInt / kFloat
  bool from_f2i = false;  // value passed through kF2I (precision-loss lint)
  Pred pred;            // kInt 0/1 comparison results
  PtrVal ptr;           // kPtr

  static AbsVal any() { return {}; }
  static AbsVal integer(Interval iv) {
    AbsVal v;
    v.kind = ValKind::kInt;
    v.iv = iv;
    return v;
  }
  static AbsVal floating() {
    AbsVal v;
    v.kind = ValKind::kFloat;
    v.iv = Interval::full();
    return v;
  }
};

/// A store summarized for the loop pass and the lint layer. Self-contained
/// by value: it must stay meaningful after the interpreter (and its cached
/// layouts) are gone.
struct StoreRec {
  int pc = -1;
  int line = 0;
  int param = -1;
  bool root = false;      // true: [lo, hi) are absolute root-struct bytes
  int64_t lo = 0, hi = 0; // clobbered byte range when root
  bool scalar = false;    // destination resolved to a single scalar
  pbio::FieldKind kind = pbio::FieldKind::kInt;  // destination kind, when scalar
  std::string path;       // dotted destination path ("lines.qty", "<element>")
  uint32_t width = 0;
  AbsVal value;           // abstract stored value (origin drives lint)
};

/// Record of the two integer operands of a comparison, for the loop pass.
struct CmpRec {
  AbsVal lhs, rhs;
};

/// Canonical integer relations shared by branch refinement and the loop pass.
enum class Rel { kLt, kLe, kGt, kGe, kEq, kNe, kNone };

constexpr Rel rel_negate(Rel r) {
  switch (r) {
    case Rel::kLt:
      return Rel::kGe;
    case Rel::kLe:
      return Rel::kGt;
    case Rel::kGt:
      return Rel::kLe;
    case Rel::kGe:
      return Rel::kLt;
    case Rel::kEq:
      return Rel::kNe;
    case Rel::kNe:
      return Rel::kEq;
    default:
      return Rel::kNone;
  }
}

/// l REL r  <=>  r rel_swap(REL) l.
constexpr Rel rel_swap(Rel r) {
  switch (r) {
    case Rel::kLt:
      return Rel::kGt;
    case Rel::kLe:
      return Rel::kGe;
    case Rel::kGt:
      return Rel::kLt;
    case Rel::kGe:
      return Rel::kLe;
    default:
      return r;  // eq/ne are symmetric
  }
}

struct ParamSummary {
  std::vector<uint8_t> must_init;   // at-return intersection (dst params)
  std::vector<uint8_t> ever_read;   // union over all loads
  std::vector<uint8_t> ever_stored; // union over all stores
  bool any_ret = false;             // some kRet/exit reached with state
};

struct AbsintResult {
  /// Per-pc evaluation stack depth on entry (-1 = unreachable). Verified
  /// consistent across all paths — the invariant the JIT's hardware-stack
  /// mapping relies on.
  std::vector<int> depth_at;
  std::map<int, CmpRec> cmps;       // pc of integer comparison -> operands
  std::vector<StoreRec> stores;
  std::vector<ParamSummary> params; // one per record parameter
  bool converged = true;
};

/// Run the fixpoint. Appends findings to `out` (deduplicated by pc/check).
AbsintResult interpret(const Chunk& chunk, const std::vector<RecordParam>& params,
                       const VerifyOptions& options, std::vector<VerifyFinding>& out);

}  // namespace morph::ecode::absint
