// Ecode runtime context and the helpers both execution backends call for
// operations that need allocation: growing destination dynamic arrays and
// copying strings. The helpers are exported with C linkage so the JIT can
// call them through plain absolute addresses.
#pragma once

#include <cstdint>

#include "common/arena.hpp"

namespace morph::pbio {
class FormatDescriptor;
}

namespace morph::ecode {

/// Per-invocation execution context. Not thread-safe; create one per call
/// (it is a single pointer + arena reference, construction is free).
struct EcodeRuntime {
  RecordArena* arena = nullptr;
};

}  // namespace morph::ecode

extern "C" {

/// Ensure the dynamic array whose pointer lives at `slot` can hold element
/// `index` (elements of `stride` bytes), growing through the runtime arena
/// if needed. Returns the address of element `index`.
void* morph_ecode_ensure(morph::ecode::EcodeRuntime* rt, void* slot, int64_t index,
                         int64_t stride);

/// Copy the NUL-terminated string `src` (may be null) into the runtime
/// arena and store the copy's address at `slot`.
void morph_ecode_str_assign(morph::ecode::EcodeRuntime* rt, void* slot, const char* src);

/// strlen that tolerates null (returns 0).
int64_t morph_ecode_strlen(const char* s);

/// String equality that tolerates nulls (null equals null and "").
int64_t morph_ecode_streq(const char* a, const char* b);

/// Deep-copy a struct of format `fmt` from `src` to `dst` (same format on
/// both sides; enforced by sema). Strings and dynamic arrays are duplicated
/// through the runtime arena so the destination owns its own data.
void morph_ecode_struct_copy(morph::ecode::EcodeRuntime* rt, void* dst, const void* src,
                             const morph::pbio::FormatDescriptor* fmt);

}  // extern "C"
