#include "ecode/compiler.hpp"

#include <bit>

#include "common/error.hpp"

namespace morph::ecode {

namespace {

using pbio::FieldDescriptor;
using pbio::FieldKind;

class Compiler {
 public:
  Compiler(const Program& prog, const std::vector<RecordParam>& params)
      : prog_(prog), params_(params) {}

  Chunk run() {
    chunk_.string_pool = prog_.string_pool;
    chunk_.local_slots = prog_.local_slot_count;
    chunk_.param_count = static_cast<int>(params_.size());
    for (const auto& s : prog_.stmts) stmt(*s);
    emit(Op::kRet);
    chunk_.max_stack = max_depth_ + 8;  // slack for the interpreter
    return std::move(chunk_);
  }

 private:
  // --- emission helpers -----------------------------------------------------

  int emit(Op op, int32_t a = 0, int64_t imm = 0) {
    chunk_.code.push_back({op, a, imm, cur_line_});
    depth_ += stack_delta(op);
    if (depth_ > max_depth_) max_depth_ = depth_;
    return static_cast<int>(chunk_.code.size()) - 1;
  }

  static int stack_delta(Op op) {
    switch (op) {
      case Op::kConstI:
      case Op::kConstF:
      case Op::kConstStr:
      case Op::kLoadLocal:
      case Op::kParamAddr:
      case Op::kDup:
        return +1;
      case Op::kStoreLocal:
      case Op::kJz:
      case Op::kJnz:
      case Op::kPop:
      case Op::kAddI:
      case Op::kSubI:
      case Op::kMulI:
      case Op::kDivI:
      case Op::kModI:
      case Op::kBitAnd:
      case Op::kBitOr:
      case Op::kBitXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kAddF:
      case Op::kSubF:
      case Op::kMulF:
      case Op::kDivF:
      case Op::kEqI:
      case Op::kNeI:
      case Op::kLtI:
      case Op::kLeI:
      case Op::kGtI:
      case Op::kGeI:
      case Op::kEqF:
      case Op::kNeF:
      case Op::kLtF:
      case Op::kLeF:
      case Op::kGtF:
      case Op::kGeF:
      case Op::kMinI:
      case Op::kMaxI:
      case Op::kMinF:
      case Op::kMaxF:
      case Op::kIndex:
      case Op::kEnsure:
      case Op::kStrEq:
        return -1;
      case Op::kStructCopy:
        return -2;
      case Op::kStoreI8:
      case Op::kStoreI16:
      case Op::kStoreI32:
      case Op::kStoreI64:
      case Op::kStoreF32:
      case Op::kStoreF64:
      case Op::kStrAssign:
        return -2;
      default:
        return 0;  // unary ops, loads, conversions, jumps, ret
    }
  }

  int here() const { return static_cast<int>(chunk_.code.size()); }
  void patch_jump(int at) { chunk_.code[static_cast<size_t>(at)].a = here(); }

  [[noreturn]] void fail(const std::string& msg, int line) const { throw EcodeError(msg, line); }

  // --- statements -------------------------------------------------------------

  void stmt(const Stmt& s) {
    if (s.line > 0) cur_line_ = s.line;
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : s.stmts) stmt(*child);
        break;
      case StmtKind::kDecl:
        for (const auto& d : s.decls) {
          if (d.init) {
            rvalue(*d.init);
            coerce(d.init->type.kind, s.decl_type);
          } else {
            if (s.decl_type == TyKind::kFloat) {
              emit(Op::kConstF, 0, std::bit_cast<int64_t>(0.0));
            } else {
              emit(Op::kConstI, 0, 0);
            }
          }
          emit(Op::kStoreLocal, d.local_slot);
        }
        break;
      case StmtKind::kAssign:
        assignment(s);
        break;
      case StmtKind::kIncDec: {
        rvalue(*s.lvalue);
        emit(Op::kConstI, 0, s.inc_delta);
        emit(Op::kAddI);
        store_into(*s.lvalue);
        break;
      }
      case StmtKind::kExpr:
        rvalue(*s.expr);
        emit(Op::kPop);
        break;
      case StmtKind::kIf: {
        rvalue(*s.expr);
        int jz = emit(Op::kJz);
        stmt(*s.then_branch);
        if (s.else_branch) {
          int jend = emit(Op::kJmp);
          patch_jump(jz);
          stmt(*s.else_branch);
          patch_jump(jend);
        } else {
          patch_jump(jz);
        }
        break;
      }
      case StmtKind::kWhile: {
        int top = here();
        rvalue(*s.expr);
        int jexit = emit(Op::kJz);
        loops_.push_back({});
        stmt(*s.body);
        // continue -> re-test the condition; break -> past the loop.
        for (int at : loops_.back().continues) chunk_.code[static_cast<size_t>(at)].a = top;
        emit(Op::kJmp, top);
        patch_jump(jexit);
        for (int at : loops_.back().breaks) patch_jump(at);
        loops_.pop_back();
        break;
      }
      case StmtKind::kDoWhile: {
        int top = here();
        loops_.push_back({});
        stmt(*s.body);
        int cond_at = here();  // continue -> re-test the condition
        rvalue(*s.expr);
        emit(Op::kJnz, top);
        for (int at : loops_.back().continues) {
          chunk_.code[static_cast<size_t>(at)].a = cond_at;
        }
        for (int at : loops_.back().breaks) patch_jump(at);
        loops_.pop_back();
        break;
      }
      case StmtKind::kFor: {
        if (s.for_init) stmt(*s.for_init);
        int top = here();
        int jexit = -1;
        if (s.expr) {
          rvalue(*s.expr);
          jexit = emit(Op::kJz);
        }
        loops_.push_back({});
        stmt(*s.body);
        int step_at = here();  // continue -> the step expression
        if (s.for_step) stmt(*s.for_step);
        emit(Op::kJmp, top);
        if (jexit >= 0) patch_jump(jexit);
        for (int at : loops_.back().continues) {
          chunk_.code[static_cast<size_t>(at)].a = step_at;
        }
        for (int at : loops_.back().breaks) patch_jump(at);
        loops_.pop_back();
        break;
      }
      case StmtKind::kBreak:
        loops_.back().breaks.push_back(emit(Op::kJmp));
        break;
      case StmtKind::kContinue:
        loops_.back().continues.push_back(emit(Op::kJmp));
        break;
      case StmtKind::kReturn:
        emit(Op::kRet);
        break;
    }
  }

  void assignment(const Stmt& s) {
    const Expr& lhs = *s.lvalue;
    if (lhs.type.kind == TyKind::kRecord) {
      // src base (value), then dst base (address), then the runtime copy.
      record_base(*s.expr, /*for_write=*/false);
      record_base(lhs, /*for_write=*/true);
      emit(Op::kStructCopy, 0,
           static_cast<int64_t>(reinterpret_cast<intptr_t>(lhs.type.record)));
      return;
    }
    if (lhs.type.kind == TyKind::kString) {
      // value (char*) then slot address, then the runtime copy.
      rvalue(*s.expr);
      address_of(lhs, /*for_write=*/true);
      emit(Op::kStrAssign);
      return;
    }
    if (s.assign_op == AssignOp::kSet) {
      rvalue(*s.expr);
      coerce(s.expr->type.kind, lhs.type.kind);
    } else {
      bool f = lhs.type.kind == TyKind::kFloat || s.expr->type.kind == TyKind::kFloat;
      if (s.assign_op == AssignOp::kMod) f = false;
      rvalue(lhs);
      if (f && lhs.type.kind != TyKind::kFloat) emit(Op::kI2F);
      rvalue(*s.expr);
      if (f && s.expr->type.kind != TyKind::kFloat) emit(Op::kI2F);
      switch (s.assign_op) {
        case AssignOp::kAdd:
          emit(f ? Op::kAddF : Op::kAddI);
          break;
        case AssignOp::kSub:
          emit(f ? Op::kSubF : Op::kSubI);
          break;
        case AssignOp::kMul:
          emit(f ? Op::kMulF : Op::kMulI);
          break;
        case AssignOp::kDiv:
          emit(f ? Op::kDivF : Op::kDivI);
          break;
        case AssignOp::kMod:
          emit(Op::kModI);
          break;
        case AssignOp::kSet:
          break;
      }
      coerce(f ? TyKind::kFloat : TyKind::kInt, lhs.type.kind);
    }
    store_into(lhs);
  }

  /// Store the value on top of the stack into an lvalue.
  void store_into(const Expr& lhs) {
    if (lhs.kind == ExprKind::kVarRef) {
      emit(Op::kStoreLocal, lhs.local_slot);
      return;
    }
    address_of(lhs, /*for_write=*/true);
    const FieldDescriptor* fd = lhs.field;
    if (lhs.kind == ExprKind::kIndex && !fd->element_format) {
      emit(store_op(fd->element_kind, fd->element_size));
    } else {
      emit(store_op(fd->kind, fd->size));
    }
  }

  static Op store_op(FieldKind kind, uint32_t size) {
    if (kind == FieldKind::kFloat) return size == 4 ? Op::kStoreF32 : Op::kStoreF64;
    switch (size) {
      case 1:
        return Op::kStoreI8;
      case 2:
        return Op::kStoreI16;
      case 4:
        return Op::kStoreI32;
      default:
        return Op::kStoreI64;
    }
  }

  static Op load_op(FieldKind kind, uint32_t size) {
    switch (kind) {
      case FieldKind::kFloat:
        return size == 4 ? Op::kLoadF32 : Op::kLoadF64;
      case FieldKind::kUInt:
      case FieldKind::kChar:
        switch (size) {
          case 1:
            return Op::kLoadU8;
          case 2:
            return Op::kLoadU16;
          case 4:
            return Op::kLoadU32;
          default:
            return Op::kLoadI64;
        }
      default:  // signed ints, enums
        switch (size) {
          case 1:
            return Op::kLoadI8;
          case 2:
            return Op::kLoadI16;
          case 4:
            return Op::kLoadI32;
          default:
            return Op::kLoadI64;
        }
    }
  }

  // --- expression compilation ---------------------------------------------------

  void coerce(TyKind from, TyKind to) {
    if (from == to) return;
    if (from == TyKind::kInt && to == TyKind::kFloat) {
      emit(Op::kI2F);
    } else if (from == TyKind::kFloat && to == TyKind::kInt) {
      emit(Op::kF2I);
    }
  }

  /// Push the base pointer of a record-typed expression.
  void record_base(const Expr& e, bool for_write) {
    switch (e.kind) {
      case ExprKind::kVarRef:
        emit(Op::kParamAddr, e.param_index);
        return;
      case ExprKind::kFieldAccess:  // nested struct
        record_base(*e.a, for_write);
        if (e.field->offset != 0) emit(Op::kFieldAddr, 0, e.field->offset);
        return;
      case ExprKind::kIndex:  // struct array element
        element_addr(e, for_write);
        return;
      default:
        fail("internal: expression is not a record base", e.line);
    }
  }

  /// Push the address of array element e = base_array[idx].
  void element_addr(const Expr& e, bool for_write) {
    const Expr& arr = *e.a;  // FieldAccess resolving to an array field
    const FieldDescriptor* fd = e.field;
    record_base(*arr.a, for_write);
    uint32_t stride = fd->element_stride();
    if (fd->kind == FieldKind::kStaticArray) {
      if (fd->offset != 0) emit(Op::kFieldAddr, 0, fd->offset);
      rvalue(*e.b);
      emit(Op::kIndex, 0, stride);
    } else if (for_write) {
      // Destination dynamic arrays grow on demand through the runtime.
      if (fd->offset != 0) emit(Op::kFieldAddr, 0, fd->offset);
      rvalue(*e.b);
      emit(Op::kEnsure, 0, stride);
    } else {
      if (fd->offset != 0) emit(Op::kFieldAddr, 0, fd->offset);
      emit(Op::kLoadPtr);
      rvalue(*e.b);
      emit(Op::kIndex, 0, stride);
    }
  }

  /// Push the address of a scalar/string lvalue.
  void address_of(const Expr& e, bool for_write) {
    switch (e.kind) {
      case ExprKind::kFieldAccess:
        record_base(*e.a, for_write);
        if (e.field->offset != 0) emit(Op::kFieldAddr, 0, e.field->offset);
        return;
      case ExprKind::kIndex:
        element_addr(e, for_write);
        return;
      default:
        fail("internal: not an addressable expression", e.line);
    }
  }

  /// Compile an expression, leaving its value on the stack.
  void rvalue(const Expr& e) {
    if (e.line > 0) cur_line_ = e.line;
    switch (e.kind) {
      case ExprKind::kIntLit:
        emit(Op::kConstI, 0, e.int_value);
        return;
      case ExprKind::kFloatLit:
        emit(Op::kConstF, 0, std::bit_cast<int64_t>(e.float_value));
        return;
      case ExprKind::kStringLit:
        emit(Op::kConstStr, static_cast<int32_t>(e.int_value));
        return;
      case ExprKind::kVarRef:
        if (e.param_index >= 0) fail("record parameter used as a value", e.line);
        emit(Op::kLoadLocal, e.local_slot);
        return;
      case ExprKind::kFieldAccess: {
        address_of(e, /*for_write=*/false);
        if (e.type.kind == TyKind::kString) {
          emit(Op::kLoadPtr);
        } else {
          emit(load_op(e.field->kind, e.field->size));
        }
        return;
      }
      case ExprKind::kIndex: {
        address_of(e, /*for_write=*/false);
        const FieldDescriptor* fd = e.field;
        if (e.type.kind == TyKind::kString) {
          emit(Op::kLoadPtr);
        } else {
          emit(load_op(fd->element_kind, fd->element_size));
        }
        return;
      }
      case ExprKind::kUnary: {
        rvalue(*e.a);
        switch (e.un_op) {
          case UnOp::kNeg:
            emit(e.type.kind == TyKind::kFloat ? Op::kNegF : Op::kNegI);
            return;
          case UnOp::kNot:
            emit(Op::kNotL);
            return;
          case UnOp::kBitNot:
            emit(Op::kBitNot);
            return;
        }
        return;
      }
      case ExprKind::kBinary:
        binary(e);
        return;
      case ExprKind::kCond: {
        rvalue(*e.a);
        int jz = emit(Op::kJz);
        int saved = depth_;
        rvalue(*e.b);
        coerce(e.b->type.kind, e.type.kind);
        int jend = emit(Op::kJmp);
        depth_ = saved;
        patch_jump(jz);
        rvalue(*e.c);
        coerce(e.c->type.kind, e.type.kind);
        patch_jump(jend);
        return;
      }
      case ExprKind::kCall:
        call(e);
        return;
    }
  }

  void binary(const Expr& e) {
    BinOp op = e.bin_op;
    if (op == BinOp::kAnd || op == BinOp::kOr) {
      // Short-circuit to a materialized 0/1.
      rvalue(*e.a);
      int saved = depth_;
      if (op == BinOp::kAnd) {
        int j1 = emit(Op::kJz);
        depth_ = saved - 1;
        rvalue(*e.b);
        int j2 = emit(Op::kJz);
        emit(Op::kConstI, 0, 1);
        int jend = emit(Op::kJmp);
        patch_jump(j1);
        patch_jump(j2);
        depth_ = saved - 1;
        emit(Op::kConstI, 0, 0);
        patch_jump(jend);
      } else {
        int j1 = emit(Op::kJnz);
        depth_ = saved - 1;
        rvalue(*e.b);
        int j2 = emit(Op::kJnz);
        emit(Op::kConstI, 0, 0);
        int jend = emit(Op::kJmp);
        patch_jump(j1);
        patch_jump(j2);
        depth_ = saved - 1;
        emit(Op::kConstI, 0, 1);
        patch_jump(jend);
      }
      return;
    }

    bool float_op = e.a->type.kind == TyKind::kFloat || e.b->type.kind == TyKind::kFloat;
    bool is_compare = op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt ||
                      op == BinOp::kLe || op == BinOp::kGt || op == BinOp::kGe;
    bool is_int_only = op == BinOp::kMod || op == BinOp::kBitAnd || op == BinOp::kBitOr ||
                       op == BinOp::kBitXor || op == BinOp::kShl || op == BinOp::kShr;
    if (is_int_only) float_op = false;

    rvalue(*e.a);
    if (float_op && e.a->type.kind != TyKind::kFloat) emit(Op::kI2F);
    rvalue(*e.b);
    if (float_op && e.b->type.kind != TyKind::kFloat) emit(Op::kI2F);

    switch (op) {
      case BinOp::kAdd: emit(float_op ? Op::kAddF : Op::kAddI); break;
      case BinOp::kSub: emit(float_op ? Op::kSubF : Op::kSubI); break;
      case BinOp::kMul: emit(float_op ? Op::kMulF : Op::kMulI); break;
      case BinOp::kDiv: emit(float_op ? Op::kDivF : Op::kDivI); break;
      case BinOp::kMod: emit(Op::kModI); break;
      case BinOp::kBitAnd: emit(Op::kBitAnd); break;
      case BinOp::kBitOr: emit(Op::kBitOr); break;
      case BinOp::kBitXor: emit(Op::kBitXor); break;
      case BinOp::kShl: emit(Op::kShl); break;
      case BinOp::kShr: emit(Op::kShr); break;
      case BinOp::kEq: emit(float_op ? Op::kEqF : Op::kEqI); break;
      case BinOp::kNe: emit(float_op ? Op::kNeF : Op::kNeI); break;
      case BinOp::kLt: emit(float_op ? Op::kLtF : Op::kLtI); break;
      case BinOp::kLe: emit(float_op ? Op::kLeF : Op::kLeI); break;
      case BinOp::kGt: emit(float_op ? Op::kGtF : Op::kGtI); break;
      case BinOp::kGe: emit(float_op ? Op::kGeF : Op::kGeI); break;
      case BinOp::kAnd:
      case BinOp::kOr:
        break;  // handled above
    }
    (void)is_compare;
  }

  void call(const Expr& e) {
    switch (static_cast<Builtin>(e.builtin)) {
      case Builtin::kAbs:
        rvalue(*e.args[0]);
        emit(e.type.kind == TyKind::kFloat ? Op::kAbsF : Op::kAbsI);
        return;
      case Builtin::kMin:
      case Builtin::kMax: {
        bool f = e.type.kind == TyKind::kFloat;
        rvalue(*e.args[0]);
        if (f) coerce(e.args[0]->type.kind, TyKind::kFloat);
        rvalue(*e.args[1]);
        if (f) coerce(e.args[1]->type.kind, TyKind::kFloat);
        bool is_min = static_cast<Builtin>(e.builtin) == Builtin::kMin;
        emit(f ? (is_min ? Op::kMinF : Op::kMaxF) : (is_min ? Op::kMinI : Op::kMaxI));
        return;
      }
      case Builtin::kSqrt:
      case Builtin::kFloor:
      case Builtin::kCeil: {
        rvalue(*e.args[0]);
        coerce(e.args[0]->type.kind, TyKind::kFloat);
        Builtin b = static_cast<Builtin>(e.builtin);
        emit(b == Builtin::kSqrt ? Op::kSqrtF : b == Builtin::kFloor ? Op::kFloorF : Op::kCeilF);
        return;
      }
      case Builtin::kStrLen:
        rvalue(*e.args[0]);
        emit(Op::kStrLen);
        return;
      case Builtin::kStrEq:
        rvalue(*e.args[0]);
        rvalue(*e.args[1]);
        emit(Op::kStrEq);
        return;
    }
    fail("internal: unknown builtin", e.line);
  }

  struct LoopCtx {
    std::vector<int> breaks;     // kJmp instructions to patch to loop end
    std::vector<int> continues;  // kJmp instructions to patch to cond/step
  };

  const Program& prog_;
  const std::vector<RecordParam>& params_;
  Chunk chunk_;
  std::vector<LoopCtx> loops_;
  int depth_ = 0;
  int max_depth_ = 0;
  int32_t cur_line_ = 0;
};

}  // namespace

Chunk compile(const Program& prog, const std::vector<RecordParam>& params) {
  return Compiler(prog, params).run();
}

}  // namespace morph::ecode
