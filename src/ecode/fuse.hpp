// Chain fusion: compose an N-hop transform chain into one Ecode program.
//
// A MorphChain normally materializes one intermediate record per hop. When
// every intermediate field is a plain fixed-size scalar, the chain can be
// rewritten source-to-source into a single program whose intermediate
// "records" are i64/f64 locals: hop k's writes land in locals that hop k+1
// reads, and only the final hop touches a real destination record. The
// rewriter reproduces record store semantics exactly — a store to an int4
// field truncates to 32 bits and a later read sign-extends, so every
// assignment to a narrow intermediate local is followed by an arithmetic
// truncation fixup that makes the local bit-identical to what a real field
// round-trip would have produced.
//
// Fusion is best-effort: any construct whose single-pass semantics cannot
// be proven identical to the hop-wise execution (string/array/struct/
// float4 intermediate fields, `return` in a non-final hop, whole-record
// value uses, truncating writes in a `for` step clause) makes fuse_chain
// bail with a reason, and the caller keeps the hop-wise path.
#pragma once

#include <string>
#include <vector>

#include "pbio/format.hpp"

namespace morph::ecode {

/// One hop of the chain, in execution order. `dst_fmt` must be the
/// host-native relayout the hop was (or will be) compiled against; for
/// every hop but the last it is the intermediate format that fusion
/// replaces with locals.
struct FuseHop {
  std::string code;
  std::string dst_param;
  std::string src_param;
  pbio::FormatPtr dst_fmt;
};

struct FuseResult {
  bool ok = false;
  std::string source;   // fused Ecode program (valid only when ok)
  std::string bailout;  // reason fusion was abandoned (valid only when !ok)
};

/// Fuse `hops` into a single two-parameter program: parameter 0 is the
/// final hop's destination (named hops.back().dst_param) and parameter 1
/// the first hop's source (named hops.front().src_param). Requires at
/// least two hops. Never throws; failures are reported via the result.
FuseResult fuse_chain(const std::vector<FuseHop>& hops);

}  // namespace morph::ecode
