// Token taxonomy for the Ecode language (the C subset of the paper's
// transformation snippets, per Figure 5 and GIT-CC-02-42).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace morph::ecode {

enum class Tok : uint8_t {
  kEnd,
  kIdent,
  kIntLit,
  kFloatLit,
  kStringLit,
  kCharLit,

  // keywords
  kKwInt,
  kKwLong,
  kKwShort,
  kKwChar,
  kKwUnsigned,
  kKwFloat,
  kKwDouble,
  kKwIf,
  kKwElse,
  kKwFor,
  kKwWhile,
  kKwDo,
  kKwReturn,
  kKwBreak,
  kKwContinue,

  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kDot,

  kAssign,       // =
  kPlusAssign,   // +=
  kMinusAssign,  // -=
  kStarAssign,   // *=
  kSlashAssign,  // /=
  kPercentAssign,  // %=
  kPlusPlus,     // ++
  kMinusMinus,   // --

  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kShl,
  kShr,
  kBang,
  kAndAnd,
  kOrOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kQuestion,
  kColon,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;    // identifier / literal spelling
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 1;
};

std::string_view token_name(Tok t);

}  // namespace morph::ecode
