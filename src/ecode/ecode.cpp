#include "ecode/ecode.hpp"

#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "ecode/compiler.hpp"
#include "ecode/jit_x64.hpp"
#include "ecode/parser.hpp"
#include "ecode/vm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace morph::ecode {

namespace {
struct EcodeMetrics {
  obs::Histogram& compile_ns;  // parse + analyze + bytecode compile
  obs::Histogram& verify_ns;   // static verification (incl. fuel repair)
  obs::Histogram& jit_ns;      // native code emission
  obs::Counter& jit_dispatch;
  obs::Counter& vm_dispatch;
  obs::Gauge& code_bytes;      // native bytes emitted, cumulative
  EcodeMetrics()
      : compile_ns(obs::metrics().histogram("morph_ecode_compile_ns")),
        verify_ns(obs::metrics().histogram("morph_ecode_verify_ns")),
        jit_ns(obs::metrics().histogram("morph_ecode_jit_ns")),
        jit_dispatch(obs::metrics().counter("morph_ecode_dispatch_total{backend=\"jit\"}")),
        vm_dispatch(obs::metrics().counter("morph_ecode_dispatch_total{backend=\"vm\"}")),
        code_bytes(obs::metrics().gauge("morph_ecode_native_code_bytes")) {}
};

EcodeMetrics& em() {
  static EcodeMetrics& m = *new EcodeMetrics();  // leaked: outlives static dtors
  return m;
}
}  // namespace

bool jit_supported() {
#if defined(__x86_64__) && defined(__unix__)
  // Probed once at first use: getenv is racy only against a concurrent
  // setenv, which this process never performs after startup.
  static const bool enabled = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* disabled = std::getenv("MORPH_DISABLE_JIT");
    return disabled == nullptr || disabled[0] == '\0' || disabled[0] == '0';
  }();
  return enabled;
#else
  return false;
#endif
}

Transform Transform::compile(const std::string& source, std::vector<RecordParam> params,
                             ExecBackend backend) {
  CompileOptions options;
  options.backend = backend;
  return compile(source, std::move(params), options);
}

Transform Transform::compile(const std::string& source, std::vector<RecordParam> params,
                             const CompileOptions& options) {
  uint64_t t0 = obs::monotonic_ns();
  auto prog = parse(source);
  analyze(*prog, params);

  Transform t;
  t.chunk_ = ecode::compile(*prog, params);
  t.params_ = std::move(params);
  em().compile_ns.record(obs::monotonic_ns() - t0);

  if (options.verify != VerifyMode::kOff) {
    obs::TraceSpan verify_span("ecode.verify", &em().verify_ns);
    VerifyOptions vo;
    vo.dst_params = options.dst_params;
    vo.require_full_assignment = options.require_full_assignment;
    VerifyResult result = verify(t.chunk_, t.params_, vo);

    // In enforce mode an uncertifiable loop is repaired, not rejected: the
    // offending back-edges are routed through fuel guards and the chunk is
    // re-verified, which must discharge exactly those findings.
    if (options.verify == VerifyMode::kEnforce && !result.ok() && options.fuel_limit > 0 &&
        !result.unbounded_backedges.empty()) {
      bool only_loops = true;
      for (const auto& f : result.findings) {
        if (f.severity == VerifySeverity::kError && f.check != VerifyCheck::kUnboundedLoop) {
          only_loops = false;
          break;
        }
      }
      if (only_loops) {
        size_t loop_errors = 0;
        for (const auto& f : result.findings) {
          if (f.severity == VerifySeverity::kError) ++loop_errors;
        }
        if (loop_errors == result.unbounded_backedges.size()) {
          Chunk guarded =
              instrument_fuel(t.chunk_, options.fuel_limit, result.unbounded_backedges);
          VerifyResult reverified = verify(guarded, t.params_, vo);
          if (reverified.ok()) {
            t.chunk_ = std::move(guarded);
            t.fuel_instrumented_ = true;
            result = std::move(reverified);
          }
        }
      }
    }

    if (options.verify == VerifyMode::kEnforce && !result.ok()) {
      throw VerifyError(std::move(result));
    }
    t.verify_findings_ = std::move(result.findings);
  }

  ExecBackend backend = options.backend;
  bool want_jit = backend == ExecBackend::kJit || (backend == ExecBackend::kAuto && jit_supported());
  if (want_jit) {
    uint64_t j0 = obs::monotonic_ns();
    auto jit = JitCode::build(t.chunk_);
    em().jit_ns.record(obs::monotonic_ns() - j0);
    if (jit == nullptr && backend == ExecBackend::kJit) {
      throw Error("ecode: JIT requested but not supported on this platform");
    }
    if (jit != nullptr) em().code_bytes.add(static_cast<double>(jit->code_size()));
    t.jit_ = std::move(jit);
  }
  return t;
}

Transform::~Transform() = default;
Transform::Transform(Transform&&) noexcept = default;
Transform& Transform::operator=(Transform&&) noexcept = default;

bool Transform::jitted() const { return jit_ != nullptr; }

size_t Transform::native_code_size() const { return jit_ ? jit_->code_size() : 0; }

void Transform::run(void* const* records, RecordArena& arena) const {
  EcodeRuntime rt;
  rt.arena = &arena;
  // Dispatch counters only — run() sits inside the per-message morph path,
  // whose latency the receiver already times per format.
  (jit_ ? em().jit_dispatch : em().vm_dispatch).inc();
  if (jit_) {
    // Locals live on the caller's stack frame; 64 covers almost every
    // transform without touching the heap.
    if (chunk_.local_slots <= 64) {
      int64_t locals[64] = {0};
      jit_->run(records, locals, rt);
    } else {
      std::vector<int64_t> locals(static_cast<size_t>(chunk_.local_slots), 0);
      jit_->run(records, locals.data(), rt);
    }
    return;
  }
  vm_run(chunk_, records, rt);
}

void Transform::run2(void* dst, const void* src, RecordArena& arena) const {
  if (params_.size() != 2) {
    throw Error("Transform::run2 requires a two-parameter transform");
  }
  void* records[2] = {dst, const_cast<void*>(src)};
  run(records, arena);
}

}  // namespace morph::ecode
