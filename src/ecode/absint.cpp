#include "ecode/absint.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

namespace morph::ecode::absint {

namespace {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;

// Joins at a pc beyond this count switch to widening (intervals jump to
// +-infinity instead of creeping), guaranteeing convergence.
constexpr int kWidenAfter = 3;

// ---------------------------------------------------------------------------
// Interval arithmetic. Any operation that could leave int64 range returns the
// full interval: both backends wrap, and a wrapped value is unbounded for
// safety purposes.

Interval iv_add(Interval a, Interval b) {
  int64_t lo, hi;
  if (__builtin_add_overflow(a.lo, b.lo, &lo) || __builtin_add_overflow(a.hi, b.hi, &hi)) {
    return Interval::full();
  }
  return {lo, hi};
}

Interval iv_sub(Interval a, Interval b) {
  int64_t lo, hi;
  if (__builtin_sub_overflow(a.lo, b.hi, &lo) || __builtin_sub_overflow(a.hi, b.lo, &hi)) {
    return Interval::full();
  }
  return {lo, hi};
}

Interval iv_mul(Interval a, Interval b) {
  __int128 c[4] = {static_cast<__int128>(a.lo) * b.lo, static_cast<__int128>(a.lo) * b.hi,
                   static_cast<__int128>(a.hi) * b.lo, static_cast<__int128>(a.hi) * b.hi};
  __int128 lo = c[0], hi = c[0];
  for (__int128 v : c) {
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  if (lo < INT64_MIN || hi > INT64_MAX) return Interval::full();
  return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

Interval iv_neg(Interval a) { return iv_sub(Interval::exact(0), a); }

Interval iv_div(Interval a, Interval b) {
  if (!b.singleton() || b.lo == 0 || b.lo == -1) return Interval::full();
  int64_t d = b.lo;
  if (d > 0) return {a.lo / d, a.hi / d};
  return {a.hi / d, a.lo / d};
}

Interval iv_mod(Interval a, Interval b) {
  if (!b.singleton()) return Interval::full();
  int64_t d = b.lo;
  if (d == 0 || d == -1) return Interval::exact(0);
  int64_t m = d < 0 ? -(d + 1) : d - 1;  // |d| - 1 without overflow
  if (a.lo >= 0) return {0, m};
  return {-m, m};
}

Interval iv_shr(Interval a, Interval b) {
  if (!b.singleton()) return Interval::full();
  int64_t s = b.lo & 63;
  return {a.lo >> s, a.hi >> s};
}

Interval iv_and(Interval a, Interval b) {
  if (b.singleton() && b.lo >= 0) return {0, b.lo};
  if (a.singleton() && a.lo >= 0) return {0, a.lo};
  return Interval::full();
}

Interval iv_abs(Interval a) {
  if (a.lo == INT64_MIN) return Interval::full();
  if (a.lo >= 0) return a;
  if (a.hi <= 0) return {-a.hi, -a.lo};
  return {0, std::max(-a.lo, a.hi)};
}

/// Union (with optional widening); returns true if `a` grew.
bool iv_join(Interval& a, Interval b, bool widen) {
  Interval n = {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  if (widen) {
    if (n.lo < a.lo) n.lo = INT64_MIN;
    if (n.hi > a.hi) n.hi = INT64_MAX;
  }
  bool changed = !(n == a);
  a = n;
  return changed;
}

/// Same comparison over the same operands (intervals may differ and are
/// joined separately: a loop's induction variable widens between visits and
/// must not strip the predicate).
bool pred_same_shape(const Pred& a, const Pred& b) {
  return a.cmp == b.cmp && a.negated == b.negated && a.l == b.l && a.r == b.r;
}

bool ptr_eq_base(const PtrVal& a, const PtrVal& b) {
  return a.kind == b.kind && a.param == b.param && a.fmt == b.fmt && a.skind == b.skind &&
         a.ssize == b.ssize && a.dyn == b.dyn;
}

/// Lattice join of two abstract values; returns true if `a` changed.
bool val_join(AbsVal& a, const AbsVal& b, bool widen) {
  if (b.kind == ValKind::kBottom) return false;
  if (a.kind == ValKind::kBottom) {
    a = b;
    return true;
  }
  if (a.kind != b.kind) {
    bool changed = a.kind != ValKind::kAny;
    a = AbsVal::any();
    return changed;
  }
  bool changed = false;
  if (a.kind == ValKind::kInt || a.kind == ValKind::kFloat) {
    changed |= iv_join(a.iv, b.iv, widen);
    if (!(a.ub == b.ub)) {
      changed |= a.ub.valid();
      a.ub = SymBound{};
    }
    if (!(a.origin == b.origin)) {
      changed |= a.origin.kind != OriginKind::kNone;
      a.origin = Origin{};
    }
    if (!pred_same_shape(a.pred, b.pred)) {
      changed |= a.pred.cmp != Op::kNop;
      a.pred = Pred{};
    } else if (a.pred.cmp != Op::kNop) {
      changed |= iv_join(a.pred.liv, b.pred.liv, widen);
      changed |= iv_join(a.pred.riv, b.pred.riv, widen);
    }
    if (b.from_f2i && !a.from_f2i) {
      a.from_f2i = true;
      changed = true;
    }
  } else if (a.kind == ValKind::kPtr) {
    if (!ptr_eq_base(a.ptr, b.ptr)) {
      changed = a.ptr.kind != PtrKind::kNone;
      PtrVal p;  // unknown pointer: any dereference becomes unprovable
      a.ptr = p;
      return changed || true;
    }
    changed |= iv_join(a.ptr.off, b.ptr.off, widen);
    changed |= iv_join(a.ptr.root_off, b.ptr.root_off, widen);
    if (a.ptr.root_inline && !b.ptr.root_inline) {
      a.ptr.root_inline = false;
      changed = true;
    }
    if (!(a.ptr.len == b.ptr.len)) {
      changed |= a.ptr.len.valid();
      a.ptr.len = SymBound{};
    }
  }
  return changed;
}

// ---------------------------------------------------------------------------

struct State {
  bool reachable = false;
  std::vector<AbsVal> stack;
  std::vector<AbsVal> locals;
  // Byte-precise must-initialized maps; empty vector for non-destination
  // parameters (not tracked).
  std::vector<std::vector<uint8_t>> init;
};

Rel rel_of(Op cmp) {
  switch (cmp) {
    case Op::kLtI:
      return Rel::kLt;
    case Op::kLeI:
      return Rel::kLe;
    case Op::kGtI:
      return Rel::kGt;
    case Op::kGeI:
      return Rel::kGe;
    case Op::kEqI:
      return Rel::kEq;
    case Op::kNeI:
      return Rel::kNe;
    default:
      return Rel::kNone;
  }
}

class Interp {
 public:
  Interp(const Chunk& chunk, const std::vector<RecordParam>& params, const VerifyOptions& options,
         std::vector<VerifyFinding>& out)
      : chunk_(chunk), params_(params), options_(options), out_(out) {}

  AbsintResult run();

 private:
  const Layout& layout(const FormatDescriptor* fmt) {
    auto it = layouts_.find(fmt);
    if (it == layouts_.end()) it = layouts_.emplace(fmt, Layout(fmt)).first;
    return it->second;
  }

  bool is_dst(int param) const {
    for (int d : options_.dst_params) {
      if (d == param) return true;
    }
    return false;
  }

  VerifySeverity severity_of(VerifyCheck c) const {
    if (c == VerifyCheck::kUninitField && !options_.require_full_assignment) {
      return VerifySeverity::kWarning;
    }
    return VerifySeverity::kError;
  }

  void finding(VerifyCheck c, int pc, std::string msg, std::string field = "") {
    if (!dedup_.insert({pc, static_cast<int>(c)}).second) return;
    VerifyFinding f;
    f.check = c;
    f.severity = severity_of(c);
    f.message = std::move(msg);
    f.pc = pc;
    f.line = pc >= 0 && pc < static_cast<int>(chunk_.code.size())
                 ? chunk_.code[static_cast<size_t>(pc)].line
                 : 0;
    f.field = std::move(field);
    out_.push_back(std::move(f));
  }

  std::string field_name(int param, const std::string& path) const {
    return params_[static_cast<size_t>(param)].name + "." + path;
  }

  // --- state plumbing -------------------------------------------------------

  AbsVal pop(State& st, int pc) {
    if (st.stack.empty()) {
      finding(VerifyCheck::kStackShape, pc, "pop from an empty evaluation stack");
      return AbsVal::any();
    }
    AbsVal v = std::move(st.stack.back());
    st.stack.pop_back();
    return v;
  }

  AbsVal pop_int(State& st, int pc, const char* what) {
    AbsVal v = pop(st, pc);
    if (v.kind != ValKind::kInt && v.kind != ValKind::kAny) {
      finding(VerifyCheck::kTypeConfusion, pc,
              std::string(what) + " expects an integer operand, got " + kind_name(v.kind));
      return AbsVal::integer(Interval::full());
    }
    if (v.kind == ValKind::kAny) return AbsVal::integer(Interval::full());
    return v;
  }

  AbsVal pop_float(State& st, int pc, const char* what) {
    AbsVal v = pop(st, pc);
    if (v.kind != ValKind::kFloat && v.kind != ValKind::kAny) {
      finding(VerifyCheck::kTypeConfusion, pc,
              std::string(what) + " expects a float operand, got " + kind_name(v.kind));
    }
    return AbsVal::floating();
  }

  AbsVal pop_str(State& st, int pc, const char* what) {
    AbsVal v = pop(st, pc);
    if (v.kind != ValKind::kStr && v.kind != ValKind::kAny) {
      finding(VerifyCheck::kTypeConfusion, pc,
              std::string(what) + " expects a string operand, got " + kind_name(v.kind));
    }
    AbsVal s;
    s.kind = ValKind::kStr;
    return s;
  }

  void push(State& st, int pc, AbsVal v) {
    if (static_cast<int>(st.stack.size()) >= chunk_.max_stack) {
      finding(VerifyCheck::kStackShape, pc, "evaluation stack exceeds the chunk's max_stack");
      return;
    }
    st.stack.push_back(std::move(v));
  }

  static const char* kind_name(ValKind k) {
    switch (k) {
      case ValKind::kBottom:
        return "bottom";
      case ValKind::kInt:
        return "int";
      case ValKind::kFloat:
        return "float";
      case ValKind::kStr:
        return "string";
      case ValKind::kPtr:
        return "pointer";
      case ValKind::kAny:
        return "unknown";
    }
    return "?";
  }

  // A store to bytes [lo, hi) of `param`'s root struct invalidates symbolic
  // bounds and comparison predicates that snapshot overlapping fields.
  void kill_field_refs(State& st, int param, int64_t lo, int64_t hi) {
    auto overlaps = [&](int p, int64_t off, uint32_t size) {
      return p == param && off < hi && off + static_cast<int64_t>(size) > lo;
    };
    auto scrub = [&](AbsVal& v) {
      if (v.ub.valid() && overlaps(v.ub.param, v.ub.off, v.ub.size)) v.ub = SymBound{};
      if (v.pred.cmp != Op::kNop) {
        const Origin& a = v.pred.l;
        const Origin& b = v.pred.r;
        if ((a.kind == OriginKind::kFieldLoad && overlaps(a.param, a.offset, a.size)) ||
            (b.kind == OriginKind::kFieldLoad && overlaps(b.param, b.offset, b.size))) {
          v.pred = Pred{};
        }
      }
      if (v.kind == ValKind::kPtr && v.ptr.len.valid() &&
          overlaps(v.ptr.len.param, v.ptr.len.off, v.ptr.len.size)) {
        v.ptr.len = SymBound{};
      }
    };
    for (auto& v : st.stack) scrub(v);
    for (auto& v : st.locals) scrub(v);
  }

  // A store to local L invalidates predicates that snapshot L's value.
  void kill_local_refs(State& st, int slot) {
    for (auto& v : st.stack) {
      if (v.pred.cmp != Op::kNop &&
          ((v.pred.l.kind == OriginKind::kLocal && v.pred.l.local == slot) ||
           (v.pred.r.kind == OriginKind::kLocal && v.pred.r.local == slot))) {
        v.pred = Pred{};
      }
    }
  }

  // --- memory marking -------------------------------------------------------

  void mark_read(State& st, int pc, int param, Interval root, uint32_t width,
                 const std::string& what) {
    if (param < 0) return;
    auto& summary = summaries_[static_cast<size_t>(param)];
    int64_t sz = static_cast<int64_t>(summary.ever_read.size());
    int64_t lo = std::clamp<int64_t>(root.lo, 0, sz);
    int64_t hi = std::clamp<int64_t>(root.hi + width, 0, sz);
    for (int64_t i = lo; i < hi; ++i) summary.ever_read[static_cast<size_t>(i)] = 1;
    // Definite-assignment: reading a destination byte that is not provably
    // assigned on this path leaks the arena's zero fill into the output.
    if (is_dst(param) && root.singleton()) {
      const auto& init = st.init[static_cast<size_t>(param)];
      for (int64_t i = lo; i < std::min<int64_t>(root.lo + width, sz); ++i) {
        if (!init[static_cast<size_t>(i)]) {
          finding(VerifyCheck::kReadBeforeAssign, pc,
                  "destination field '" + what + "' is read before it is assigned", what);
          break;
        }
      }
    }
  }

  void mark_store(State& st, int /*pc*/, int param, Interval root, uint32_t width) {
    if (param < 0) return;
    auto& summary = summaries_[static_cast<size_t>(param)];
    int64_t sz = static_cast<int64_t>(summary.ever_stored.size());
    int64_t lo = std::clamp<int64_t>(root.lo, 0, sz);
    int64_t hi = std::clamp<int64_t>(root.hi + width, 0, sz);
    for (int64_t i = lo; i < hi; ++i) summary.ever_stored[static_cast<size_t>(i)] = 1;
    if (is_dst(param) && root.singleton()) {
      auto& init = st.init[static_cast<size_t>(param)];
      for (int64_t i = lo; i < std::min<int64_t>(root.lo + width, sz); ++i) {
        init[static_cast<size_t>(i)] = 1;
      }
    }
    kill_field_refs(st, param, root.lo, root.hi + width);
  }

  void record_store(int pc, int param, const PtrVal& p, bool scalar, FieldKind kind,
                    uint32_t width, const AbsVal& value, const std::string& path) {
    StoreRec rec;
    rec.pc = pc;
    rec.line = chunk_.code[static_cast<size_t>(pc)].line;
    rec.param = param;
    rec.root = p.root_inline;
    if (p.root_inline) {
      rec.lo = p.root_off.lo;
      rec.hi = p.root_off.hi + width;
    }
    rec.scalar = scalar;
    rec.kind = kind;
    rec.path = path;
    rec.width = width;
    rec.value = value;
    auto it = store_recs_.find(pc);
    if (it == store_recs_.end()) {
      store_recs_.emplace(pc, std::move(rec));
    } else {
      // Re-visited store: keep the widest byte range and join the value.
      it->second.root = it->second.root && rec.root;
      it->second.lo = std::min(it->second.lo, rec.lo);
      it->second.hi = std::max(it->second.hi, rec.hi);
      val_join(it->second.value, rec.value, /*widen=*/false);
    }
  }

  // --- address resolution ---------------------------------------------------

  /// Resolve a struct pointer to the single field site it targets, or null
  /// (reporting). The offset must be exact: a variable struct offset means
  /// the compiler's addressing invariants were broken.
  const FieldSite* resolve_site(const PtrVal& p, int pc, const char* what) {
    if (p.fmt == nullptr) {
      finding(VerifyCheck::kOobAccess, pc,
              std::string(what) + ": address is not statically resolvable");
      return nullptr;
    }
    if (!p.off.singleton()) {
      finding(VerifyCheck::kOobAccess, pc,
              std::string(what) + ": struct offset is not a single statically-known value");
      return nullptr;
    }
    const FieldSite* site = layout(p.fmt).at(p.off.lo);
    if (site == nullptr) {
      finding(VerifyCheck::kOobAccess, pc,
              std::string(what) + ": offset " + std::to_string(p.off.lo) +
                  " does not name a field of format '" + p.fmt->name() + "'");
    }
    return site;
  }

  // --- transfer function ----------------------------------------------------

  void step(int pc, State st);
  void flow_to(int target, State&& st);
  void apply_rel(State& st, const Pred& p, bool truth, bool& feasible);
  void refine_local(State& st, int slot, Rel rel, Interval bound, const Origin& bound_origin,
                    bool& feasible);
  void do_load(State& st, int pc, Op op);
  void do_store(State& st, int pc, Op op);
  void do_index(State& st, int pc, const Instr& in);

  static uint32_t load_width(Op op) {
    switch (op) {
      case Op::kLoadI8:
      case Op::kLoadU8:
      case Op::kStoreI8:
        return 1;
      case Op::kLoadI16:
      case Op::kLoadU16:
      case Op::kStoreI16:
        return 2;
      case Op::kLoadI32:
      case Op::kLoadU32:
      case Op::kLoadF32:
      case Op::kStoreI32:
      case Op::kStoreF32:
        return 4;
      default:
        return 8;
    }
  }

  static Interval load_range(Op op) {
    switch (op) {
      case Op::kLoadI8:
        return {INT8_MIN, INT8_MAX};
      case Op::kLoadI16:
        return {INT16_MIN, INT16_MAX};
      case Op::kLoadI32:
        return {INT32_MIN, INT32_MAX};
      case Op::kLoadU8:
        return {0, UINT8_MAX};
      case Op::kLoadU16:
        return {0, UINT16_MAX};
      case Op::kLoadU32:
        return {0, UINT32_MAX};
      default:
        return Interval::full();
    }
  }

  /// True when `op` is the correct load for a scalar of (kind, size) — the
  /// width/signedness contract between descriptor and backends.
  static bool load_matches(Op op, FieldKind kind, uint32_t size) {
    if (kind == FieldKind::kFloat) {
      return (op == Op::kLoadF32 && size == 4) || (op == Op::kLoadF64 && size == 8);
    }
    if (load_width(op) != size) return false;
    bool want_unsigned = kind == FieldKind::kUInt || kind == FieldKind::kChar;
    switch (op) {
      case Op::kLoadU8:
      case Op::kLoadU16:
      case Op::kLoadU32:
        return want_unsigned;
      case Op::kLoadI8:
      case Op::kLoadI16:
      case Op::kLoadI32:
        return !want_unsigned;
      case Op::kLoadI64:
        return true;  // full-width reload is sign-agnostic
      default:
        return false;
    }
  }

  static bool store_matches(Op op, FieldKind kind, uint32_t size) {
    if (kind == FieldKind::kFloat) {
      return (op == Op::kStoreF32 && size == 4) || (op == Op::kStoreF64 && size == 8);
    }
    if (op == Op::kStoreF32 || op == Op::kStoreF64) return false;
    return load_width(op) == size && pbio::is_fixed_scalar(kind);
  }

  const Chunk& chunk_;
  const std::vector<RecordParam>& params_;
  const VerifyOptions& options_;
  std::vector<VerifyFinding>& out_;

  std::map<const FormatDescriptor*, Layout> layouts_;
  std::set<std::pair<int, int>> dedup_;
  std::vector<State> states_;       // entry state per pc
  std::vector<int> join_counts_;    // joins per pc, drives widening
  std::vector<uint8_t> loop_heads_; // back-edge targets: the only widening points
  std::vector<uint8_t> on_work_;    // membership flag for the worklist
  std::deque<int> worklist_;
  std::vector<ParamSummary> summaries_;
  std::vector<std::vector<uint8_t>> ret_init_;  // at-return intersection
  bool any_ret_ = false;
  std::map<int, StoreRec> store_recs_;
  std::map<int, CmpRec> cmp_recs_;
  AbsintResult result_;
};

// ---------------------------------------------------------------------------

void Interp::flow_to(int target, State&& st) {
  if (target < 0 || target >= static_cast<int>(states_.size())) return;  // structural pass caught
  State& dst = states_[static_cast<size_t>(target)];
  bool changed = false;
  if (!dst.reachable) {
    dst = std::move(st);
    dst.reachable = true;
    changed = true;
  } else {
    if (dst.stack.size() != st.stack.size()) {
      finding(VerifyCheck::kStackShape, target,
              "inconsistent evaluation-stack depth at join (" +
                  std::to_string(dst.stack.size()) + " vs " + std::to_string(st.stack.size()) +
                  "): the JIT requires one depth per pc");
      return;
    }
    // Widen only at loop heads. Every CFG cycle crosses a back-edge target,
    // so widening there is enough for convergence; widening at straight-line
    // merge points would destroy guard refinements mid-body (e.g. blow a
    // bounded induction variable to +inf between its guard and its use).
    bool widen = loop_heads_[static_cast<size_t>(target)] &&
                 join_counts_[static_cast<size_t>(target)] >= kWidenAfter;
    for (size_t i = 0; i < dst.stack.size(); ++i) {
      changed |= val_join(dst.stack[i], st.stack[i], widen);
    }
    for (size_t i = 0; i < dst.locals.size(); ++i) {
      changed |= val_join(dst.locals[i], st.locals[i], widen);
    }
    for (size_t p = 0; p < dst.init.size(); ++p) {
      auto& a = dst.init[p];
      const auto& b = st.init[p];
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] && !b[i]) {
          a[i] = 0;
          changed = true;
        }
      }
    }
  }
  if (changed) {
    ++join_counts_[static_cast<size_t>(target)];
    if (!on_work_[static_cast<size_t>(target)]) {
      on_work_[static_cast<size_t>(target)] = 1;
      worklist_.push_back(target);
    }
  }
}

void Interp::refine_local(State& st, int slot, Rel rel, Interval bound, const Origin& bound_origin,
                          bool& feasible) {
  if (slot < 0 || slot >= static_cast<int>(st.locals.size())) return;
  AbsVal& v = st.locals[static_cast<size_t>(slot)];
  if (v.kind != ValKind::kInt) return;
  switch (rel) {
    case Rel::kLt:
      if (bound.hi == INT64_MIN) {
        feasible = false;
        return;
      }
      v.iv.hi = std::min(v.iv.hi, bound.hi - 1);
      break;
    case Rel::kLe:
      v.iv.hi = std::min(v.iv.hi, bound.hi);
      break;
    case Rel::kGt:
      if (bound.lo == INT64_MAX) {
        feasible = false;
        return;
      }
      v.iv.lo = std::max(v.iv.lo, bound.lo + 1);
      break;
    case Rel::kGe:
      v.iv.lo = std::max(v.iv.lo, bound.lo);
      break;
    case Rel::kEq:
      v.iv.lo = std::max(v.iv.lo, bound.lo);
      v.iv.hi = std::min(v.iv.hi, bound.hi);
      break;
    case Rel::kNe:
    case Rel::kNone:
      return;
  }
  if (v.iv.lo > v.iv.hi) {
    feasible = false;
    return;
  }
  // "local < length_field" is the certificate a dynamic-array read needs;
  // record it symbolically when the bound is a scalar integer field.
  if ((rel == Rel::kLt || rel == Rel::kLe) && bound_origin.kind == OriginKind::kFieldLoad &&
      bound_origin.fkind != FieldKind::kFloat) {
    v.ub = SymBound{bound_origin.param, bound_origin.offset, bound_origin.size, rel == Rel::kLt};
  }
}

void Interp::apply_rel(State& st, const Pred& p, bool truth, bool& feasible) {
  Rel rel = rel_of(p.cmp);
  if (rel == Rel::kNone) return;
  if (!truth) rel = rel_negate(rel);
  if (p.l.kind == OriginKind::kLocal) {
    // Only refine if the local still holds the compared value.
    const AbsVal& cur = st.locals[static_cast<size_t>(p.l.local)];
    if (cur.kind == ValKind::kInt && cur.iv == p.liv) {
      refine_local(st, p.l.local, rel, p.riv, p.r, feasible);
    }
  }
  if (p.r.kind == OriginKind::kLocal) {
    const AbsVal& cur = st.locals[static_cast<size_t>(p.r.local)];
    if (cur.kind == ValKind::kInt && cur.iv == p.riv) {
      refine_local(st, p.r.local, rel_swap(rel), p.liv, p.l, feasible);
    }
  }
}

void Interp::do_load(State& st, int pc, Op op) {
  AbsVal addr = pop(st, pc);
  if (addr.kind != ValKind::kPtr) {
    if (addr.kind == ValKind::kAny) {
      finding(VerifyCheck::kOobAccess, pc, "load from a statically unresolvable address");
    } else {
      finding(VerifyCheck::kTypeConfusion, pc,
              std::string("load expects an address, got ") + kind_name(addr.kind));
    }
    push(st, pc, AbsVal::any());
    return;
  }
  const PtrVal& p = addr.ptr;
  uint32_t width = load_width(op);
  bool is_float = op == Op::kLoadF32 || op == Op::kLoadF64;
  FieldKind kind = FieldKind::kInt;
  uint32_t size = 0;
  std::string path;
  if (p.kind == PtrKind::kStruct) {
    const FieldSite* site = resolve_site(p, pc, "load");
    if (site == nullptr) {
      push(st, pc, AbsVal::any());
      return;
    }
    path = site->path;
    if (site->use != SiteUse::kScalar) {
      finding(VerifyCheck::kTypeConfusion, pc,
              "scalar load from non-scalar field '" + field_name(p.param, path) + "'",
              field_name(p.param, path));
      push(st, pc, AbsVal::any());
      return;
    }
    if (p.off.lo != site->start || width > site->size) {
      finding(VerifyCheck::kOobAccess, pc,
              "load at offset " + std::to_string(p.off.lo) + " straddles field '" +
                  field_name(p.param, path) + "'",
              field_name(p.param, path));
      push(st, pc, AbsVal::any());
      return;
    }
    kind = site->kind;
    size = site->size;
  } else if (p.kind == PtrKind::kScalarSlot) {
    kind = p.skind;
    size = p.ssize;
    path = "<element>";
  } else {
    finding(VerifyCheck::kTypeConfusion, pc, "scalar load from a non-scalar address");
    push(st, pc, AbsVal::any());
    return;
  }
  if (!load_matches(op, kind, size)) {
    finding(VerifyCheck::kWidthMismatch, pc,
            op_name(op) + " does not match " + std::string(pbio::field_kind_name(kind)) +
                " field of size " + std::to_string(size) +
                (path != "<element>" ? " ('" + field_name(p.param, path) + "')" : ""),
            path != "<element>" ? field_name(p.param, path) : "");
  }
  if (p.root_inline) {
    mark_read(st, pc, p.param, p.root_off, width, field_name(p.param, path));
  }
  AbsVal v;
  if (is_float) {
    v = AbsVal::floating();
  } else {
    v = AbsVal::integer(load_range(op));
  }
  if (p.root_inline && p.root_off.singleton()) {
    v.origin = Origin{OriginKind::kFieldLoad, -1, p.param, p.root_off.lo, size, kind};
  }
  push(st, pc, std::move(v));
}

void Interp::do_store(State& st, int pc, Op op) {
  AbsVal addr = pop(st, pc);
  bool is_float = op == Op::kStoreF32 || op == Op::kStoreF64;
  AbsVal value = is_float ? pop_float(st, pc, op_name(op).c_str())
                          : pop_int(st, pc, op_name(op).c_str());
  if (addr.kind != ValKind::kPtr) {
    if (addr.kind == ValKind::kAny) {
      finding(VerifyCheck::kOobAccess, pc, "store to a statically unresolvable address");
    } else {
      finding(VerifyCheck::kTypeConfusion, pc,
              std::string("store expects an address, got ") + kind_name(addr.kind));
    }
    return;
  }
  const PtrVal& p = addr.ptr;
  uint32_t width = load_width(op);
  const FieldSite* site = nullptr;
  FieldKind kind = FieldKind::kInt;
  uint32_t size = 0;
  std::string path = "<element>";
  if (p.kind == PtrKind::kStruct) {
    site = resolve_site(p, pc, "store");
    if (site == nullptr) return;
    path = site->path;
    if (site->use != SiteUse::kScalar) {
      finding(VerifyCheck::kTypeConfusion, pc,
              "scalar store to non-scalar field '" + field_name(p.param, path) + "'",
              field_name(p.param, path));
      return;
    }
    if (p.off.lo != site->start || width > site->size) {
      finding(VerifyCheck::kOobAccess, pc,
              "store at offset " + std::to_string(p.off.lo) + " straddles field '" +
                  field_name(p.param, path) + "'",
              field_name(p.param, path));
      return;
    }
    kind = site->kind;
    size = site->size;
  } else if (p.kind == PtrKind::kScalarSlot) {
    kind = p.skind;
    size = p.ssize;
  } else {
    finding(VerifyCheck::kTypeConfusion, pc, "scalar store to a non-scalar address");
    return;
  }
  if (!store_matches(op, kind, size)) {
    finding(VerifyCheck::kWidthMismatch, pc,
            op_name(op) + " does not match " + std::string(pbio::field_kind_name(kind)) +
                " field of size " + std::to_string(size) +
                (site != nullptr ? " ('" + field_name(p.param, path) + "')" : ""),
            site != nullptr ? field_name(p.param, path) : "");
  }
  if (p.root_inline) mark_store(st, pc, p.param, p.root_off, width);
  record_store(pc, p.param, p, /*scalar=*/true, kind, width, value, path);
}

void Interp::do_index(State& st, int pc, const Instr& in) {
  AbsVal idx = pop_int(st, pc, "index");
  AbsVal base = pop(st, pc);
  if (base.kind != ValKind::kPtr) {
    if (base.kind == ValKind::kAny) {
      finding(VerifyCheck::kOobAccess, pc, "indexing a statically unresolvable address");
    } else {
      finding(VerifyCheck::kTypeConfusion, pc,
              std::string("index expects an array address, got ") + kind_name(base.kind));
    }
    push(st, pc, AbsVal::any());
    return;
  }
  const PtrVal& p = base.ptr;
  AbsVal out;
  out.kind = ValKind::kPtr;
  if (p.kind == PtrKind::kStruct) {
    const FieldSite* site = resolve_site(p, pc, "index");
    if (site == nullptr) {
      push(st, pc, AbsVal::any());
      return;
    }
    std::string fname = field_name(p.param, site->path);
    if (site->use != SiteUse::kStaticArray) {
      finding(VerifyCheck::kTypeConfusion, pc,
              "indexing non-static-array field '" + fname + "' without loading its pointer",
              fname);
      push(st, pc, AbsVal::any());
      return;
    }
    const FieldDescriptor* fd = site->fd;
    uint32_t stride = fd->element_stride();
    if (in.imm != static_cast<int64_t>(stride)) {
      finding(VerifyCheck::kWidthMismatch, pc,
              "index stride " + std::to_string(in.imm) + " does not match element stride " +
                  std::to_string(stride) + " of '" + fname + "'",
              fname);
    }
    if (idx.iv.lo < 0 || idx.iv.hi >= static_cast<int64_t>(fd->static_count)) {
      finding(VerifyCheck::kOobAccess, pc,
              "static-array index not provably within [0, " + std::to_string(fd->static_count) +
                  ") for '" + fname + "' (index range [" + std::to_string(idx.iv.lo) + ", " +
                  std::to_string(idx.iv.hi) + "])",
              fname);
      push(st, pc, AbsVal::any());
      return;
    }
    Interval delta = iv_mul(idx.iv, Interval::exact(stride));
    if (fd->has_element_format()) {
      out.ptr.kind = PtrKind::kStruct;
      out.ptr.param = p.param;
      out.ptr.fmt = fd->element_format.get();
      out.ptr.off = Interval::exact(0);
    } else {
      out.ptr.kind = PtrKind::kScalarSlot;
      out.ptr.param = p.param;
      out.ptr.skind = fd->element_kind;
      out.ptr.ssize = fd->element_size;
    }
    out.ptr.root_inline = p.root_inline;
    out.ptr.root_off = iv_add(p.root_off, delta);
  } else if (p.kind == PtrKind::kDynElems) {
    const FieldDescriptor* fd = p.dyn;
    std::string fname = params_[static_cast<size_t>(p.param)].name + "." + fd->name;
    uint32_t stride = fd->element_stride();
    if (in.imm != static_cast<int64_t>(stride)) {
      finding(VerifyCheck::kWidthMismatch, pc,
              "index stride " + std::to_string(in.imm) + " does not match element stride " +
                  std::to_string(stride) + " of '" + fname + "'",
              fname);
    }
    bool proven = idx.iv.lo >= 0 && p.len.valid() && idx.ub.valid() && idx.ub.param == p.len.param &&
                  idx.ub.off == p.len.off && idx.ub.size == p.len.size && idx.ub.strict;
    if (!proven) {
      finding(VerifyCheck::kOobAccess, pc,
              "dynamic-array read of '" + fname +
                  "' is not dominated by a guard proving 0 <= index < its length field",
              fname);
      push(st, pc, AbsVal::any());
      return;
    }
    if (fd->has_element_format()) {
      out.ptr.kind = PtrKind::kStruct;
      out.ptr.param = p.param;
      out.ptr.fmt = fd->element_format.get();
      out.ptr.off = Interval::exact(0);
    } else {
      out.ptr.kind = PtrKind::kScalarSlot;
      out.ptr.param = p.param;
      out.ptr.skind = fd->element_kind;
      out.ptr.ssize = fd->element_size;
    }
    out.ptr.root_inline = false;
  } else {
    finding(VerifyCheck::kTypeConfusion, pc, "indexing a scalar address");
    push(st, pc, AbsVal::any());
    return;
  }
  push(st, pc, std::move(out));
}

void Interp::step(int pc, State st) {
  const Instr& in = chunk_.code[static_cast<size_t>(pc)];
  int next = pc + 1;
  switch (in.op) {
    case Op::kNop:
      break;
    case Op::kConstI: {
      AbsVal v = AbsVal::integer(Interval::exact(in.imm));
      v.origin.kind = OriginKind::kConst;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kConstF: {
      AbsVal v = AbsVal::floating();
      v.origin.kind = OriginKind::kConst;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kConstStr: {
      AbsVal v;
      v.kind = ValKind::kStr;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kLoadLocal: {
      AbsVal v = st.locals[static_cast<size_t>(in.a)];
      v.origin = Origin{OriginKind::kLocal, in.a, -1, 0, 0, FieldKind::kInt};
      v.pred = Pred{};
      push(st, pc, std::move(v));
      break;
    }
    case Op::kStoreLocal: {
      AbsVal v = pop(st, pc);
      kill_local_refs(st, in.a);
      v.origin = Origin{};
      v.pred = Pred{};
      st.locals[static_cast<size_t>(in.a)] = std::move(v);
      break;
    }

    case Op::kAddI:
    case Op::kSubI:
    case Op::kMulI:
    case Op::kDivI:
    case Op::kModI:
    case Op::kBitAnd:
    case Op::kBitOr:
    case Op::kBitXor:
    case Op::kShl:
    case Op::kShr: {
      AbsVal r = pop_int(st, pc, op_name(in.op).c_str());
      AbsVal l = pop_int(st, pc, op_name(in.op).c_str());
      Interval iv = Interval::full();
      switch (in.op) {
        case Op::kAddI:
          iv = iv_add(l.iv, r.iv);
          break;
        case Op::kSubI:
          iv = iv_sub(l.iv, r.iv);
          break;
        case Op::kMulI:
          iv = iv_mul(l.iv, r.iv);
          break;
        case Op::kDivI:
          iv = iv_div(l.iv, r.iv);
          break;
        case Op::kModI:
          iv = iv_mod(l.iv, r.iv);
          break;
        case Op::kBitAnd:
          iv = iv_and(l.iv, r.iv);
          break;
        case Op::kShr:
          iv = iv_shr(l.iv, r.iv);
          break;
        default:
          break;
      }
      AbsVal v = AbsVal::integer(iv);
      v.from_f2i = l.from_f2i || r.from_f2i;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kNegI: {
      AbsVal a = pop_int(st, pc, "neg");
      AbsVal v = AbsVal::integer(iv_neg(a.iv));
      v.from_f2i = a.from_f2i;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kNotL: {
      pop_int(st, pc, "logical not");
      push(st, pc, AbsVal::integer({0, 1}));
      break;
    }
    case Op::kBitNot: {
      pop_int(st, pc, "bitwise not");
      push(st, pc, AbsVal::integer(Interval::full()));
      break;
    }

    case Op::kAddF:
    case Op::kSubF:
    case Op::kMulF:
    case Op::kDivF: {
      AbsVal r = pop_float(st, pc, op_name(in.op).c_str());
      AbsVal l = pop_float(st, pc, op_name(in.op).c_str());
      (void)r;
      (void)l;
      push(st, pc, AbsVal::floating());
      break;
    }
    case Op::kNegF: {
      pop_float(st, pc, "float neg");
      push(st, pc, AbsVal::floating());
      break;
    }

    case Op::kEqI:
    case Op::kNeI:
    case Op::kLtI:
    case Op::kLeI:
    case Op::kGtI:
    case Op::kGeI: {
      AbsVal r = pop_int(st, pc, op_name(in.op).c_str());
      AbsVal l = pop_int(st, pc, op_name(in.op).c_str());
      // Side-record the operands for the loop-termination pass.
      auto it = cmp_recs_.find(pc);
      if (it == cmp_recs_.end()) {
        cmp_recs_.emplace(pc, CmpRec{l, r});
      } else {
        val_join(it->second.lhs, l, /*widen=*/false);
        val_join(it->second.rhs, r, /*widen=*/false);
      }
      AbsVal v = AbsVal::integer({0, 1});
      v.pred = Pred{in.op, false, l.origin, r.origin, l.iv, r.iv};
      push(st, pc, std::move(v));
      break;
    }
    case Op::kEqF:
    case Op::kNeF:
    case Op::kLtF:
    case Op::kLeF:
    case Op::kGtF:
    case Op::kGeF: {
      pop_float(st, pc, op_name(in.op).c_str());
      pop_float(st, pc, op_name(in.op).c_str());
      push(st, pc, AbsVal::integer({0, 1}));
      break;
    }

    case Op::kI2F: {
      AbsVal a = pop_int(st, pc, "int-to-float");
      AbsVal v = AbsVal::floating();
      v.origin = a.origin;
      v.from_f2i = a.from_f2i;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kF2I: {
      AbsVal a = pop_float(st, pc, "float-to-int");
      AbsVal v = AbsVal::integer(Interval::full());
      v.origin = a.origin;
      v.from_f2i = true;
      push(st, pc, std::move(v));
      break;
    }

    case Op::kAbsI: {
      AbsVal a = pop_int(st, pc, "abs");
      push(st, pc, AbsVal::integer(iv_abs(a.iv)));
      break;
    }
    case Op::kAbsF:
    case Op::kSqrtF:
    case Op::kFloorF:
    case Op::kCeilF: {
      pop_float(st, pc, op_name(in.op).c_str());
      push(st, pc, AbsVal::floating());
      break;
    }
    case Op::kMinI:
    case Op::kMaxI: {
      AbsVal r = pop_int(st, pc, op_name(in.op).c_str());
      AbsVal l = pop_int(st, pc, op_name(in.op).c_str());
      AbsVal v;
      if (in.op == Op::kMinI) {
        v = AbsVal::integer({std::min(l.iv.lo, r.iv.lo), std::min(l.iv.hi, r.iv.hi)});
        // min(a, b) inherits either operand's symbolic upper bound.
        v.ub = l.ub.valid() ? l.ub : r.ub;
      } else {
        v = AbsVal::integer({std::max(l.iv.lo, r.iv.lo), std::max(l.iv.hi, r.iv.hi)});
        if (l.ub == r.ub) v.ub = l.ub;
      }
      push(st, pc, std::move(v));
      break;
    }
    case Op::kMinF:
    case Op::kMaxF: {
      pop_float(st, pc, op_name(in.op).c_str());
      pop_float(st, pc, op_name(in.op).c_str());
      push(st, pc, AbsVal::floating());
      break;
    }
    case Op::kStrLen: {
      pop_str(st, pc, "strlen");
      push(st, pc, AbsVal::integer({0, INT64_MAX}));
      break;
    }
    case Op::kStrEq: {
      pop_str(st, pc, "streq");
      pop_str(st, pc, "streq");
      push(st, pc, AbsVal::integer({0, 1}));
      break;
    }

    case Op::kJmp:
      flow_to(in.a, std::move(st));
      return;
    case Op::kJz:
    case Op::kJnz: {
      AbsVal cond = pop_int(st, pc, op_name(in.op).c_str());
      bool jump_on_true = in.op == Op::kJnz;
      bool can_be_zero = cond.iv.lo <= 0 && cond.iv.hi >= 0;
      bool can_be_nonzero = !(cond.iv.lo == 0 && cond.iv.hi == 0);
      bool take_jump = jump_on_true ? can_be_nonzero : can_be_zero;
      bool take_fall = jump_on_true ? can_be_zero : can_be_nonzero;
      if (take_jump) {
        State js = st;
        bool feasible = true;
        if (cond.pred.cmp != Op::kNop) apply_rel(js, cond.pred, jump_on_true, feasible);
        if (feasible) flow_to(in.a, std::move(js));
      }
      if (take_fall) {
        bool feasible = true;
        if (cond.pred.cmp != Op::kNop) apply_rel(st, cond.pred, !jump_on_true, feasible);
        if (feasible) flow_to(next, std::move(st));
      }
      return;
    }
    case Op::kDup: {
      AbsVal v = pop(st, pc);
      push(st, pc, v);
      push(st, pc, std::move(v));
      break;
    }
    case Op::kPop:
      pop(st, pc);
      break;

    case Op::kParamAddr: {
      AbsVal v;
      v.kind = ValKind::kPtr;
      v.ptr.kind = PtrKind::kStruct;
      v.ptr.param = in.a;
      v.ptr.fmt = params_[static_cast<size_t>(in.a)].format.get();
      v.ptr.off = Interval::exact(0);
      v.ptr.root_inline = true;
      v.ptr.root_off = Interval::exact(0);
      push(st, pc, std::move(v));
      break;
    }
    case Op::kFieldAddr: {
      AbsVal base = pop(st, pc);
      if (base.kind != ValKind::kPtr || base.ptr.kind != PtrKind::kStruct) {
        finding(VerifyCheck::kTypeConfusion, pc, "field address of a non-struct base");
        push(st, pc, AbsVal::any());
        break;
      }
      base.ptr.off = iv_add(base.ptr.off, Interval::exact(in.imm));
      base.ptr.root_off = iv_add(base.ptr.root_off, Interval::exact(in.imm));
      push(st, pc, std::move(base));
      break;
    }
    case Op::kLoadPtr: {
      AbsVal addr = pop(st, pc);
      if (addr.kind != ValKind::kPtr) {
        finding(addr.kind == ValKind::kAny ? VerifyCheck::kOobAccess : VerifyCheck::kTypeConfusion,
                pc, "pointer load from a statically unresolvable address");
        push(st, pc, AbsVal::any());
        break;
      }
      const PtrVal& p = addr.ptr;
      if (p.kind == PtrKind::kScalarSlot && p.skind == FieldKind::kString) {
        if (p.root_inline) mark_read(st, pc, p.param, p.root_off, 8, "<element>");
        AbsVal v;
        v.kind = ValKind::kStr;
        push(st, pc, std::move(v));
        break;
      }
      if (p.kind != PtrKind::kStruct) {
        finding(VerifyCheck::kTypeConfusion, pc, "pointer load from a non-slot address");
        push(st, pc, AbsVal::any());
        break;
      }
      const FieldSite* site = resolve_site(p, pc, "pointer load");
      if (site == nullptr) {
        push(st, pc, AbsVal::any());
        break;
      }
      std::string fname = field_name(p.param, site->path);
      if (site->use == SiteUse::kStringSlot) {
        if (p.root_inline) mark_read(st, pc, p.param, p.root_off, 8, fname);
        AbsVal v;
        v.kind = ValKind::kStr;
        push(st, pc, std::move(v));
      } else if (site->use == SiteUse::kDynSlot) {
        if (p.root_inline) mark_read(st, pc, p.param, p.root_off, 8, fname);
        AbsVal v;
        v.kind = ValKind::kPtr;
        v.ptr.kind = PtrKind::kDynElems;
        v.ptr.param = p.param;
        v.ptr.dyn = site->fd;
        if (p.root_inline && p.off.singleton() && p.root_off.singleton() && site->len_off >= 0) {
          v.ptr.len =
              SymBound{p.param, p.root_off.lo - p.off.lo + site->len_off, site->len_size, true};
        }
        push(st, pc, std::move(v));
      } else {
        finding(VerifyCheck::kTypeConfusion, pc,
                "pointer load from non-pointer field '" + fname + "'", fname);
        push(st, pc, AbsVal::any());
      }
      break;
    }
    case Op::kIndex:
      do_index(st, pc, in);
      break;

    case Op::kLoadI8:
    case Op::kLoadI16:
    case Op::kLoadI32:
    case Op::kLoadI64:
    case Op::kLoadU8:
    case Op::kLoadU16:
    case Op::kLoadU32:
    case Op::kLoadF32:
    case Op::kLoadF64:
      do_load(st, pc, in.op);
      break;

    case Op::kStoreI8:
    case Op::kStoreI16:
    case Op::kStoreI32:
    case Op::kStoreI64:
    case Op::kStoreF32:
    case Op::kStoreF64:
      do_store(st, pc, in.op);
      break;

    case Op::kEnsure: {
      AbsVal idx = pop_int(st, pc, "ensure");
      AbsVal slot = pop(st, pc);
      (void)idx;  // runtime clamps negatives and grows: any index is safe
      if (slot.kind != ValKind::kPtr || slot.ptr.kind != PtrKind::kStruct) {
        finding(VerifyCheck::kTypeConfusion, pc, "ensure on a non-struct slot address");
        push(st, pc, AbsVal::any());
        break;
      }
      const PtrVal& p = slot.ptr;
      const FieldSite* site = resolve_site(p, pc, "ensure");
      if (site == nullptr) {
        push(st, pc, AbsVal::any());
        break;
      }
      std::string fname = field_name(p.param, site->path);
      if (site->use != SiteUse::kDynSlot) {
        finding(VerifyCheck::kTypeConfusion, pc,
                "ensure on non-dynamic-array field '" + fname + "'", fname);
        push(st, pc, AbsVal::any());
        break;
      }
      const FieldDescriptor* fd = site->fd;
      uint32_t stride = fd->element_stride();
      if (in.imm != static_cast<int64_t>(stride)) {
        finding(VerifyCheck::kWidthMismatch, pc,
                "ensure stride " + std::to_string(in.imm) + " does not match element stride " +
                    std::to_string(stride) + " of '" + fname + "'",
                fname);
      }
      // The runtime writes the slot pointer; the slot itself counts as
      // assigned, and element writes are tracked separately.
      if (p.root_inline) mark_store(st, pc, p.param, p.root_off, 8);
      record_store(pc, p.param, p, /*scalar=*/false, FieldKind::kDynArray, 8, AbsVal::any(), site->path);
      AbsVal v;
      v.kind = ValKind::kPtr;
      v.ptr.param = p.param;
      if (fd->has_element_format()) {
        v.ptr.kind = PtrKind::kStruct;
        v.ptr.fmt = fd->element_format.get();
        v.ptr.off = Interval::exact(0);
      } else {
        v.ptr.kind = PtrKind::kScalarSlot;
        v.ptr.skind = fd->element_kind;
        v.ptr.ssize = fd->element_size;
      }
      v.ptr.root_inline = false;
      push(st, pc, std::move(v));
      break;
    }
    case Op::kStrAssign: {
      AbsVal slot = pop(st, pc);
      AbsVal src = pop_str(st, pc, "string assignment");
      (void)src;
      if (slot.kind != ValKind::kPtr) {
        finding(VerifyCheck::kTypeConfusion, pc, "string assignment to a non-address");
        break;
      }
      const PtrVal& p = slot.ptr;
      if (p.kind == PtrKind::kScalarSlot && p.skind == FieldKind::kString) {
        if (p.root_inline) mark_store(st, pc, p.param, p.root_off, 8);
        record_store(pc, p.param, p, /*scalar=*/false, FieldKind::kString, 8, src, "<element>");
        break;
      }
      if (p.kind != PtrKind::kStruct) {
        finding(VerifyCheck::kTypeConfusion, pc, "string assignment to a non-slot address");
        break;
      }
      const FieldSite* site = resolve_site(p, pc, "string assignment");
      if (site == nullptr) break;
      std::string fname = field_name(p.param, site->path);
      if (site->use != SiteUse::kStringSlot) {
        finding(VerifyCheck::kTypeConfusion, pc,
                "string assignment to non-string field '" + fname + "'", fname);
        break;
      }
      if (p.root_inline) mark_store(st, pc, p.param, p.root_off, 8);
      record_store(pc, p.param, p, /*scalar=*/false, FieldKind::kString, 8, src, site->path);
      break;
    }
    case Op::kStructCopy: {
      AbsVal dst = pop(st, pc);
      AbsVal src = pop(st, pc);
      const auto* copied =
          reinterpret_cast<const FormatDescriptor*>(static_cast<intptr_t>(in.imm));
      int64_t size = copied != nullptr ? copied->struct_size() : 0;
      auto check_end = [&](const AbsVal& v, const char* role) -> const PtrVal* {
        if (v.kind != ValKind::kPtr || v.ptr.kind != PtrKind::kStruct || v.ptr.fmt == nullptr) {
          finding(VerifyCheck::kTypeConfusion, pc,
                  std::string("struct copy ") + role + " is not a struct address");
          return nullptr;
        }
        if (v.ptr.off.lo < 0 ||
            v.ptr.off.hi + size > static_cast<int64_t>(v.ptr.fmt->struct_size())) {
          finding(VerifyCheck::kOobAccess, pc,
                  std::string("struct copy ") + role + " range [" + std::to_string(v.ptr.off.lo) +
                      ", " + std::to_string(v.ptr.off.hi + size) + ") exceeds format '" +
                      v.ptr.fmt->name() + "' (" + std::to_string(v.ptr.fmt->struct_size()) +
                      " bytes)");
          return nullptr;
        }
        return &v.ptr;
      };
      const PtrVal* ps = check_end(src, "source");
      const PtrVal* pd = check_end(dst, "destination");
      if (ps != nullptr && ps->root_inline) {
        mark_read(st, pc, ps->param, ps->root_off, static_cast<uint32_t>(size),
                  params_[static_cast<size_t>(ps->param)].name + ".<struct>");
      }
      if (pd != nullptr && pd->root_inline) {
        mark_store(st, pc, pd->param, pd->root_off, static_cast<uint32_t>(size));
      }
      if (pd != nullptr) {
        record_store(pc, pd->param, *pd, /*scalar=*/false, FieldKind::kStruct, static_cast<uint32_t>(size), src,
                     "<struct>");
      }
      break;
    }

    case Op::kRet: {
      if (!st.stack.empty()) {
        finding(VerifyCheck::kStackShape, pc,
                "evaluation stack holds " + std::to_string(st.stack.size()) +
                    " value(s) at return; the JIT requires an empty stack");
      }
      any_ret_ = true;
      for (size_t p = 0; p < ret_init_.size(); ++p) {
        if (st.init[p].empty()) continue;
        if (ret_init_[p].empty()) {
          ret_init_[p] = st.init[p];
        } else {
          for (size_t i = 0; i < ret_init_[p].size(); ++i) {
            ret_init_[p][i] = ret_init_[p][i] && st.init[p][i];
          }
        }
      }
      return;
    }
  }
  flow_to(next, std::move(st));
}

AbsintResult Interp::run() {
  const int n = static_cast<int>(chunk_.code.size());
  states_.assign(static_cast<size_t>(n), State{});
  join_counts_.assign(static_cast<size_t>(n), 0);
  loop_heads_.assign(static_cast<size_t>(n), 0);
  for (int pc = 0; pc < n; ++pc) {
    const Instr& in = chunk_.code[static_cast<size_t>(pc)];
    if ((in.op == Op::kJmp || in.op == Op::kJz || in.op == Op::kJnz) && in.a >= 0 && in.a <= pc) {
      loop_heads_[static_cast<size_t>(in.a)] = 1;
    }
  }
  on_work_.assign(static_cast<size_t>(n), 0);
  summaries_.resize(params_.size());
  ret_init_.resize(params_.size());
  for (size_t p = 0; p < params_.size(); ++p) {
    uint32_t sz = params_[p].format->struct_size();
    summaries_[p].ever_read.assign(sz, 0);
    summaries_[p].ever_stored.assign(sz, 0);
  }

  State entry;
  entry.reachable = true;
  entry.locals.assign(static_cast<size_t>(chunk_.local_slots), AbsVal::any());
  entry.init.resize(params_.size());
  for (int d : options_.dst_params) {
    if (d >= 0 && d < static_cast<int>(params_.size())) {
      entry.init[static_cast<size_t>(d)].assign(params_[static_cast<size_t>(d)].format->struct_size(),
                                                0);
    }
  }
  flow_to(0, std::move(entry));

  // Generous budget: widening bounds joins per pc, so the fixpoint is small;
  // the cap is a backstop against analysis bugs, not a tuning knob.
  long budget = static_cast<long>(n) * 512 + 4096;
  while (!worklist_.empty()) {
    if (--budget < 0) {
      finding(VerifyCheck::kStructure, -1, "abstract interpretation did not converge");
      result_.converged = false;
      break;
    }
    int pc = worklist_.front();
    worklist_.pop_front();
    on_work_[static_cast<size_t>(pc)] = 0;
    step(pc, states_[static_cast<size_t>(pc)]);
  }

  // Definite assignment at return, per destination parameter.
  for (int d : options_.dst_params) {
    if (d < 0 || d >= static_cast<int>(params_.size())) continue;
    auto& summary = summaries_[static_cast<size_t>(d)];
    summary.any_ret = any_ret_;
    summary.must_init = ret_init_[static_cast<size_t>(d)];
    if (!any_ret_) continue;
    const auto& init = ret_init_[static_cast<size_t>(d)];
    if (init.empty()) continue;
    for (const FieldSite& site : layout(params_[static_cast<size_t>(d)].format.get()).sites()) {
      if (site.use != SiteUse::kScalar && site.use != SiteUse::kStringSlot) continue;
      bool covered = true;
      for (int64_t i = site.start; i < site.start + site.size; ++i) {
        if (i < 0 || i >= static_cast<int64_t>(init.size()) || !init[static_cast<size_t>(i)]) {
          covered = false;
          break;
        }
      }
      if (!covered) {
        VerifyFinding f;
        f.check = VerifyCheck::kUninitField;
        f.severity = severity_of(VerifyCheck::kUninitField);
        f.field = field_name(d, site.path);
        f.message = "destination field '" + f.field + "' is never definitely assigned";
        out_.push_back(std::move(f));
      }
    }
  }

  result_.depth_at.assign(static_cast<size_t>(n), -1);
  for (int pc = 0; pc < n; ++pc) {
    if (states_[static_cast<size_t>(pc)].reachable) {
      result_.depth_at[static_cast<size_t>(pc)] =
          static_cast<int>(states_[static_cast<size_t>(pc)].stack.size());
    }
  }
  result_.cmps = std::move(cmp_recs_);
  for (auto& [pc, rec] : store_recs_) result_.stores.push_back(std::move(rec));
  result_.params = std::move(summaries_);
  return std::move(result_);
}

}  // namespace

// ---------------------------------------------------------------------------
// Layout

Layout::Layout(const pbio::FormatDescriptor* fmt) : fmt_(fmt) {
  flatten(*fmt, 0, "", -1);
  std::sort(sites_.begin(), sites_.end(),
            [](const FieldSite& a, const FieldSite& b) { return a.start < b.start; });
}

void Layout::flatten(const pbio::FormatDescriptor& f, int64_t base, const std::string& prefix,
                     int top_field) {
  for (size_t i = 0; i < f.fields().size(); ++i) {
    const FieldDescriptor& fd = f.fields()[i];
    int tf = top_field < 0 ? static_cast<int>(i) : top_field;
    FieldSite s;
    s.fd = &fd;
    s.start = base + fd.offset;
    s.size = fd.size;
    s.path = prefix + fd.name;
    s.top_field = tf;
    switch (fd.kind) {
      case FieldKind::kInt:
      case FieldKind::kUInt:
      case FieldKind::kFloat:
      case FieldKind::kChar:
      case FieldKind::kEnum:
        s.use = SiteUse::kScalar;
        s.kind = fd.kind;
        sites_.push_back(std::move(s));
        break;
      case FieldKind::kString:
        s.use = SiteUse::kStringSlot;
        sites_.push_back(std::move(s));
        break;
      case FieldKind::kDynArray: {
        s.use = SiteUse::kDynSlot;
        if (const FieldDescriptor* lf = f.find_field(fd.length_field)) {
          s.len_off = base + lf->offset;
          s.len_size = lf->size;
        }
        sites_.push_back(std::move(s));
        break;
      }
      case FieldKind::kStruct:
        flatten(*fd.element_format, base + fd.offset, s.path + ".", tf);
        break;
      case FieldKind::kStaticArray:
        s.use = SiteUse::kStaticArray;
        sites_.push_back(std::move(s));
        break;
    }
  }
}

const FieldSite* Layout::at(int64_t off) const {
  auto it = std::upper_bound(sites_.begin(), sites_.end(), off,
                             [](int64_t v, const FieldSite& s) { return v < s.start; });
  if (it == sites_.begin()) return nullptr;
  --it;
  if (off >= it->start && off < it->start + static_cast<int64_t>(it->size)) return &*it;
  return nullptr;
}

AbsintResult interpret(const Chunk& chunk, const std::vector<RecordParam>& params,
                       const VerifyOptions& options, std::vector<VerifyFinding>& out) {
  return Interp(chunk, params, options, out).run();
}

}  // namespace morph::ecode::absint
