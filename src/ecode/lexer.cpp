#include "ecode/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "common/error.hpp"

namespace morph::ecode {

std::string_view token_name(Tok t) {
  switch (t) {
    case Tok::kEnd: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kCharLit: return "char literal";
    case Tok::kKwInt: return "'int'";
    case Tok::kKwLong: return "'long'";
    case Tok::kKwShort: return "'short'";
    case Tok::kKwChar: return "'char'";
    case Tok::kKwUnsigned: return "'unsigned'";
    case Tok::kKwFloat: return "'float'";
    case Tok::kKwDouble: return "'double'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwFor: return "'for'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwDo: return "'do'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwBreak: return "'break'";
    case Tok::kKwContinue: return "'continue'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kSlashAssign: return "'/='";
    case Tok::kPercentAssign: return "'%='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kBang: return "'!'";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kQuestion: return "'?'";
    case Tok::kColon: return "':'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"int", Tok::kKwInt},       {"long", Tok::kKwLong},     {"short", Tok::kKwShort},
      {"char", Tok::kKwChar},     {"unsigned", Tok::kKwUnsigned},
      {"float", Tok::kKwFloat},   {"double", Tok::kKwDouble}, {"if", Tok::kKwIf},
      {"else", Tok::kKwElse},     {"for", Tok::kKwFor},       {"while", Tok::kKwWhile},  {"do", Tok::kKwDo},
      {"return", Tok::kKwReturn},  {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue},
  };
  return kMap;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_space_and_comments();
      Token t = next();
      bool end = t.kind == Tok::kEnd;
      out.push_back(std::move(t));
      if (end) break;
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) { throw EcodeError(msg, line_); }

  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool match(char c) {
    if (peek() != c) return false;
    advance();
    return true;
  }

  void skip_space_and_comments() {
    for (;;) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') fail("unterminated /* comment");
          advance();
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  char escape() {
    char c = advance();
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: fail(std::string("unknown escape \\") + c);
    }
  }

  Token next() {
    Token t;
    t.line = line_;
    if (pos_ >= src_.size()) {
      t.kind = Tok::kEnd;
      return t;
    }
    char c = advance();
    switch (c) {
      case '(': t.kind = Tok::kLParen; return t;
      case ')': t.kind = Tok::kRParen; return t;
      case '{': t.kind = Tok::kLBrace; return t;
      case '}': t.kind = Tok::kRBrace; return t;
      case '[': t.kind = Tok::kLBracket; return t;
      case ']': t.kind = Tok::kRBracket; return t;
      case ';': t.kind = Tok::kSemi; return t;
      case ',': t.kind = Tok::kComma; return t;
      case '.': t.kind = Tok::kDot; return t;
      case '~': t.kind = Tok::kTilde; return t;
      case '?': t.kind = Tok::kQuestion; return t;
      case ':': t.kind = Tok::kColon; return t;
      case '+':
        t.kind = match('+') ? Tok::kPlusPlus : match('=') ? Tok::kPlusAssign : Tok::kPlus;
        return t;
      case '-':
        t.kind = match('-') ? Tok::kMinusMinus : match('=') ? Tok::kMinusAssign : Tok::kMinus;
        return t;
      case '*': t.kind = match('=') ? Tok::kStarAssign : Tok::kStar; return t;
      case '/': t.kind = match('=') ? Tok::kSlashAssign : Tok::kSlash; return t;
      case '%': t.kind = match('=') ? Tok::kPercentAssign : Tok::kPercent; return t;
      case '&': t.kind = match('&') ? Tok::kAndAnd : Tok::kAmp; return t;
      case '|': t.kind = match('|') ? Tok::kOrOr : Tok::kPipe; return t;
      case '^': t.kind = Tok::kCaret; return t;
      case '!': t.kind = match('=') ? Tok::kNe : Tok::kBang; return t;
      case '=': t.kind = match('=') ? Tok::kEq : Tok::kAssign; return t;
      case '<':
        t.kind = match('<') ? Tok::kShl : match('=') ? Tok::kLe : Tok::kLt;
        return t;
      case '>':
        t.kind = match('>') ? Tok::kShr : match('=') ? Tok::kGe : Tok::kGt;
        return t;
      case '"': {
        t.kind = Tok::kStringLit;
        while (peek() != '"') {
          if (peek() == '\0') fail("unterminated string literal");
          char ch = advance();
          t.text.push_back(ch == '\\' ? escape() : ch);
        }
        advance();
        return t;
      }
      case '\'': {
        t.kind = Tok::kCharLit;
        if (peek() == '\0') fail("unterminated char literal");
        char ch = advance();
        if (ch == '\\') ch = escape();
        t.int_value = static_cast<unsigned char>(ch);
        if (!match('\'')) fail("unterminated char literal");
        return t;
      }
      default:
        break;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_ - 1;
      if (c == '0' && (peek() == 'x' || peek() == 'X')) {
        advance();
        while (std::isxdigit(static_cast<unsigned char>(peek()))) advance();
        t.kind = Tok::kIntLit;
        t.int_value = static_cast<int64_t>(
            std::strtoull(src_.substr(start, pos_ - start).c_str(), nullptr, 16));
        return t;
      }
      bool is_float = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        size_t save = pos_;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          is_float = true;
          while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        } else {
          pos_ = save;
        }
      }
      std::string text = src_.substr(start, pos_ - start);
      if (is_float) {
        t.kind = Tok::kFloatLit;
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = Tok::kIntLit;
        t.int_value = static_cast<int64_t>(std::strtoull(text.c_str(), nullptr, 10));
      }
      return t;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_ - 1;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
      t.text = src_.substr(start, pos_ - start);
      auto it = keywords().find(t.text);
      t.kind = it == keywords().end() ? Tok::kIdent : it->second;
      return t;
    }

    fail(std::string("unexpected character '") + c + "'");
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace morph::ecode
