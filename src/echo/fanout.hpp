// Format-grouped event fan-out for the echo broker layer.
//
// Two pieces, both shared by EchoProcess and the fan-out bench:
//
//   * FanoutRegistry — which sinks of a channel/event-format pair want
//     which target format. Keyed by "<channel>\x1f<format name>"; each key
//     maps sinks to the fingerprint of the format they registered. Readers
//     take an immutable copy-on-write GroupSnapshot (sinks grouped by
//     target fingerprint), rebuilt lazily after membership churn, so the
//     publish path never holds a lock while morphing or sending. Sharded
//     like the receiver's decision cache; all methods are thread-safe.
//
//   * GroupPublisher — the delivery engine. For one event it encodes the
//     publisher's record once, then per group: resolves the
//     core::FanoutPlanner plan, runs the morph chain once, encodes the
//     morphed record once into a refcounted immutable frame
//     (transport::SharedPayload), and hands the same frame to every sink in
//     the group. Unreachable groups (no format definition, no chain, or
//     verifier-rejected) are reported through a fallback callback so the
//     caller can deliver per-subscriber instead. A GroupPublisher is NOT
//     thread-safe — one publisher thread each (EchoProcess is
//     single-threaded; concurrent publishers share the planner, not the
//     GroupPublisher).
//
// Payload lifetime: the shared frame is alive while any link's outbox (or
// any in-flight send) still references it; the last release frees it
// exactly once. See docs/ECHO.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/fanout.hpp"
#include "transport/port.hpp"

namespace morph::echo {

/// Opaque stable identity of a sink connection (the echo layer uses the
/// peer's address; the bench uses indices).
using SinkId = uint64_t;

/// Wire encoding a sink asked for. kPbio is the native default; kPbuf sinks
/// announced protobuf acceptance (EVTENC) and receive kPbufData frames.
enum class SinkEncoding : uint8_t { kPbio = 0, kPbuf = 1 };

/// One fan-out group: every sink that registered the same target format
/// AND the same wire encoding. Groups for the same format but different
/// encodings are adjacent in the snapshot (sorted by fingerprint, then
/// encoding), so the publisher morphs once per format and encodes once per
/// group.
struct FanoutGroup {
  uint64_t target_fp = 0;
  SinkEncoding encoding = SinkEncoding::kPbio;
  std::vector<SinkId> sinks;  // ascending, unique
};

/// Immutable grouping of a key's sinks, shared out to publishers.
struct GroupSnapshot {
  std::vector<FanoutGroup> groups;  // ascending by target_fp
  size_t total_sinks = 0;
};

struct FanoutRegistryStats {
  uint64_t subscribes = 0;
  uint64_t unsubscribes = 0;
  uint64_t rebuilds = 0;       // snapshot rebuilds after churn
  uint64_t snapshot_hits = 0;  // snapshots served from the cached copy
};

class FanoutRegistry {
 public:
  /// Key for a channel/event-format pair ('\x1f' cannot appear in either).
  static std::string key(const std::string& channel, const std::string& format_name) {
    return channel + '\x1f' + format_name;
  }

  /// Add `sink` to `key`'s grouping with target fingerprint `target_fp`
  /// and wire encoding `encoding`. Upsert: a sink re-announcing a different
  /// fingerprint or encoding moves groups.
  void subscribe(const std::string& key, SinkId sink, uint64_t target_fp,
                 SinkEncoding encoding = SinkEncoding::kPbio);

  /// Remove `sink` from `key`'s grouping (no-op when absent).
  void unsubscribe(const std::string& key, SinkId sink);

  /// Remove `sink` from every key (peer disconnect / leave-all).
  void unsubscribe_all(SinkId sink);

  /// The current grouping for `key`; never null (empty snapshot for an
  /// unknown key). Lazily rebuilt after churn and cached; the returned
  /// snapshot is immutable and safe to use without the registry's locks.
  std::shared_ptr<const GroupSnapshot> snapshot(const std::string& key) const;

  FanoutRegistryStats stats() const;

 private:
  struct Sub {
    uint64_t target_fp = 0;
    SinkEncoding encoding = SinkEncoding::kPbio;
  };
  struct Entry {
    std::map<SinkId, Sub> members;  // sink -> (target fingerprint, encoding)
    std::shared_ptr<const GroupSnapshot> snap;  // null while dirty
  };
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable SharedMutex mutex;
    std::unordered_map<std::string, Entry> entries MORPH_GUARDED_BY(mutex);
  };

  Shard& shard_for(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) & (kShards - 1)];
  }
  static std::shared_ptr<const GroupSnapshot> build_snapshot(const Entry& entry);

  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<uint64_t> subscribes_{0};
  mutable std::atomic<uint64_t> unsubscribes_{0};
  mutable std::atomic<uint64_t> rebuilds_{0};
  mutable std::atomic<uint64_t> snapshot_hits_{0};
};

/// Per-event delivery tally returned by GroupPublisher::publish.
struct PublishCounts {
  size_t groups = 0;        // reachable groups delivered to
  size_t morphs = 0;        // morph-chain executions (identity groups: none)
  size_t morph_reuses = 0;  // groups that reused the previous group's morph
                            // (same format, different encoding)
  size_t encodes = 0;       // shared frames built (one per reachable group)
  size_t pbuf_encodes = 0;  // of those, protobuf-encoded (kPbufData frames)
  size_t deliveries = 0;    // send_shared calls (sum of group sizes)
  size_t fallbacks = 0;     // sinks punted to the fallback callback
};

class GroupPublisher {
 public:
  explicit GroupPublisher(core::FanoutPlanner& planner) : planner_(planner) {}

  /// Resolve a SinkId to its port; nullptr punts the sink to `fallback`.
  using ResolvePort = std::function<transport::MessagePort*(SinkId)>;
  using Fallback = std::function<void(SinkId)>;

  /// Deliver one event (`record` of `fmt`) to every group in `snapshot`:
  /// encode the source record once, morph + encode once per group, hand the
  /// shared frame to every resolved sink. Sinks in unreachable groups (and
  /// sinks `resolve` cannot map) go through `fallback` — the caller's
  /// legacy per-subscriber path. Bumps the echo_fanout_* obs counters.
  PublishCounts publish(const pbio::FormatPtr& fmt, const void* record,
                        const GroupSnapshot& snapshot, const ResolvePort& resolve,
                        const Fallback& fallback);

 private:
  /// Cached protobuf encoder for a group's target format; nullptr is a
  /// cached negative (target not pbuf-encodable — its sinks fall back).
  pbuf::EncodePlan* pbuf_encoder_for(const pbio::FormatPtr& target);

  core::FanoutPlanner& planner_;
  // Publisher-side wire encoders for source formats, one per fingerprint.
  std::unordered_map<uint64_t, std::unique_ptr<pbio::Encoder>> encoders_;
  std::unordered_map<uint64_t, std::unique_ptr<pbuf::EncodePlan>> pbuf_encoders_;
  RecordArena arena_;    // morphed records live until the next publish
  ByteBuffer wire_;      // scratch: the event's source-format encoding
  ByteBuffer scratch_;   // scratch: per-group morphed encoding
  std::vector<transport::MessagePort*> ports_;  // scratch: resolved group
};

}  // namespace morph::echo
