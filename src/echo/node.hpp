// EchoTcpNode: one EchoProcess served over real TCP at connection scale.
//
// EchoProcess itself is deliberately single-threaded (deterministic pump
// semantics, per-connection receivers with no internal locks). This node
// supplies the serving shell around it, in either transport mode:
//
//   kReactor   one epoll event loop owns every connection AND the process:
//              all protocol handling, membership bookkeeping, and fan-out
//              runs on the loop thread, so the process needs no locking at
//              all. Publishes from other threads hop onto the loop through
//              with_process(). This is the connection-scale path — peers
//              cost a socket and a receiver, not an OS thread.
//   kThreaded  the legacy shell and differential oracle: an acceptor plus
//              one pumping thread per connection, serialized by a node
//              mutex so concurrent pumps cannot race inside the process.
//
// Lifecycle caveat (inherited from EchoProcess, whose peer table only
// grows): a disconnected peer stays in channel membership; sends to it
// become counted drops (morph_reactor_send_drops_total in reactor mode)
// until it re-joins or the node dies. Link objects are pinned until node
// destruction so the process's MessagePorts never dangle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "echo/process.hpp"
#include "transport/reactor.hpp"
#include "transport/tcp.hpp"

namespace morph::echo {

struct NodeOptions {
  uint16_t port = 0;  // 0 picks an ephemeral port; read back with port()
  transport::TransportMode transport = transport::default_transport_mode();
  /// Reactor-mode idle-connection timeout, 0 = never. A peer that dribbles
  /// bytes without ever completing a frame is reaped by this, not by any
  /// protocol-level watchdog.
  uint32_t idle_timeout_ms = 0;
  size_t max_connections = 1u << 20;
  core::ReceiverOptions receiver;
  EchoVersion version = EchoVersion::kV2;
  FanoutMode fanout = FanoutMode::kGrouped;
};

class EchoTcpNode {
 public:
  /// Start serving immediately. `contact` is the hosted process's name in
  /// the channel protocol.
  EchoTcpNode(std::string contact, NodeOptions options = {});
  ~EchoTcpNode();

  EchoTcpNode(const EchoTcpNode&) = delete;
  EchoTcpNode& operator=(const EchoTcpNode&) = delete;

  uint16_t port() const { return listener_.port(); }
  transport::TransportMode mode() const { return options_.transport; }
  size_t connections() const;

  /// Run `fn` with the hosted process, inside its serialization domain:
  /// on the event loop in reactor mode (blocking until done), under the
  /// node mutex in threaded mode. This is the only way to touch the
  /// process — create_channel, on_event, publish, stats all go through it.
  void with_process(const std::function<void(EchoProcess&)>& fn);

  /// Convenience: publish under with_process, returning the fan-out count.
  size_t publish(const std::string& channel, const pbio::FormatPtr& fmt, const void* record);

 private:
  struct ThreadedConn;

  void accept_loop();
  void serve_conn(ThreadedConn& conn);

  std::string contact_;
  NodeOptions options_;
  transport::TcpListener listener_;
  std::unique_ptr<EchoProcess> process_;
  std::atomic<bool> stop_{false};

  // Threaded mode: the node mutex is the process's serialization domain.
  std::mutex process_mutex_;
  // conns_ is appended to by the acceptor thread while connections() may
  // iterate it from any thread — guarded by its own mutex so a
  // reallocating push_back never races an iteration.
  mutable std::mutex conns_mutex_;
  std::vector<std::unique_ptr<ThreadedConn>> conns_;

  // Reactor mode: links pinned until node destruction (see header comment).
  // Loop-thread-only once serving starts.
  std::vector<std::shared_ptr<transport::AsyncTcpLink>> pinned_links_;

  std::unique_ptr<transport::ReactorServer> reactor_;
  std::thread acceptor_;  // threaded mode only; initialized last
};

}  // namespace morph::echo
