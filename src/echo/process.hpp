// ECho-style event-delivery middleware (§4.1).
//
// An EchoProcess is one middleware instance. Processes are linked pairwise
// (in-process links for tests/examples, TCP for distribution); each link
// carries a MessagePort with its own core::Receiver, so format conversions
// are per-connection exactly as in PBIO.
//
// Channel protocol:
//   * the creator owns the membership list;
//   * a joiner sends ChannelOpenRequest{channel, contact, as_source,
//     as_sink};
//   * the creator replies — and re-notifies every existing member — with
//     ChannelOpenResponse in ITS protocol version: v1.0 (triple lists) or
//     v2.0 (flagged member list, with the Figure 5 retro-transform declared
//     on the port);
//   * sources send events directly to the sinks in their member list.
//
// Version model (paper §3.1): a v1.0 process understands only v1.0
// responses. A v2.0 process understands both v1.0 and v2.0 ("new clients
// speak Protocol X and Protocol Y") and always sends v2.0 — old receivers
// cope through morphing.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/receiver.hpp"
#include "echo/fanout.hpp"
#include "echo/messages.hpp"
#include "transport/link.hpp"
#include "transport/port.hpp"

namespace morph::echo {

enum class EchoVersion { kV1, kV2 };

/// How publish() delivers events to a channel's sinks.
///   kPerSubscriber — the historical path: encode and send the source-format
///     record once per sink; every sink's receiver runs its own decode/morph.
///   kGrouped — format-grouped fan-out: sinks announce their registered
///     event formats (EVTSUB control frames), the publisher groups them by
///     target fingerprint, morphs once per group, encodes once per group
///     into a refcounted shared frame, and every link in the group forwards
///     the same buffer. Sinks that never announced, or whose target is
///     unreachable (no transform chain), transparently fall back to the
///     per-subscriber path.
enum class FanoutMode { kPerSubscriber, kGrouped };

struct Member {
  std::string contact;
  int32_t id = 0;
  bool is_source = false;
  bool is_sink = false;
};

/// Delivered application event.
struct Event {
  const core::Delivery* delivery;  // record + format + outcome
  const std::string& channel;
};

using EventHandler = std::function<void(const Event&)>;

class EchoProcess {
 public:
  EchoProcess(std::string contact, EchoVersion version,
              core::ReceiverOptions receiver_options = {},
              FanoutMode fanout = FanoutMode::kGrouped);
  ~EchoProcess();

  FanoutMode fanout_mode() const { return fanout_mode_; }

  const std::string& contact() const { return contact_; }
  EchoVersion version() const { return version_; }

  /// Attach a bidirectional link to another process. Both processes must
  /// attach their end. Returns the peer slot index.
  void attach_link(transport::Link& link);

  // --- channel API ---------------------------------------------------------

  /// Become the creator of `channel`.
  void create_channel(const std::string& channel);

  /// Join a channel owned by the peer named `creator_contact`.
  void open_channel(const std::string& channel, const std::string& creator_contact,
                    bool as_source, bool as_sink);

  /// Leave a channel previously joined via open_channel. The creator drops
  /// this process from the membership and re-notifies remaining members.
  void leave_channel(const std::string& channel, const std::string& creator_contact);

  /// Members of a channel as this process last learned them.
  std::vector<Member> members(const std::string& channel) const;

  /// Register an event handler: events of `fmt` arriving for `channel`.
  /// The format is registered on every connection's receiver, so evolved
  /// event formats morph per-connection. Passing SinkEncoding::kPbuf asks
  /// publishers to deliver this subscription protobuf-encoded (EVTENC
  /// announcement; legacy publishers ignore it and keep sending PBIO,
  /// which this process still accepts).
  void on_event(const std::string& channel, pbio::FormatPtr fmt, EventHandler handler,
                SinkEncoding encoding = SinkEncoding::kPbio);

  /// Declare a retro-transform for an event format this process publishes.
  void declare_event_transform(core::TransformSpec spec);

  /// Route first-contact format meta-data through an out-of-band publisher
  /// (typically fmtsvc::FormatResolver::publish) on every connection, current
  /// and future. See transport::MessagePort::set_meta_publisher for the
  /// fallback semantics when the publisher declines a format.
  void set_meta_publisher(transport::MessagePort::MetaPublisher publisher);

  /// Publish an event to every sink member of `channel` (except self).
  /// Returns the number of peers the event was sent to. In kGrouped mode
  /// the event is morphed once per target format and the same encoded
  /// frame is shared across each group's links; sinks outside any group
  /// receive the source-format record exactly as in kPerSubscriber mode.
  size_t publish(const std::string& channel, const pbio::FormatPtr& fmt, const void* record);

  // --- introspection ---------------------------------------------------------

  /// Per-process counters, mirrored 1:1 into the obs registry as
  /// morph_echo_* / echo_fanout_* counters (the RxMetrics discipline:
  /// per-instance fields stay exact per process, the global counters
  /// aggregate across processes for morph-stat).
  struct ProcessStats {
    uint64_t open_requests_handled = 0;
    uint64_t responses_received = 0;
    uint64_t responses_morphed = 0;
    uint64_t events_received = 0;
    uint64_t events_morphed = 0;
    uint64_t events_published = 0;
    // Grouped fan-out tallies, summed over publishes (see PublishCounts).
    uint64_t fanout_morphs = 0;
    uint64_t fanout_morph_reuses = 0;
    uint64_t fanout_encodes = 0;
    uint64_t fanout_pbuf_encodes = 0;
    uint64_t fanout_deliveries = 0;
    uint64_t fanout_fallbacks = 0;
  };
  const ProcessStats& stats() const { return stats_; }

  /// Planner behind kGrouped publishing (plan cache, fusion, verification).
  const core::FanoutPlanner& fanout_planner() const { return planner_; }
  /// Sink grouping registry (announcement x membership).
  const FanoutRegistry& fanout_groups() const { return groups_; }

  /// Aggregated receiver stats over all connections.
  core::ReceiverStats receiver_totals() const;

 private:
  struct Peer;
  struct EventReg {
    std::string channel;
    pbio::FormatPtr fmt;
    EventHandler handler;
    SinkEncoding encoding = SinkEncoding::kPbio;
  };

  void setup_peer(Peer& peer);
  Peer* peer_by_contact(const std::string& peer_contact);
  void handle_open_request(Peer& peer, const core::Delivery& d);
  void handle_open_response(const core::Delivery& d, bool from_v2_format);
  void send_response_to(Peer& peer, const std::string& channel);
  void handle_control(Peer& peer, const std::string& msg);
  void announce_subscription(Peer& peer, const EventReg& reg);
  /// Re-derive the fan-out registry for `channel` from current membership
  /// and the peers' announced event formats (both sync points: membership
  /// changes and EVTSUB arrivals funnel here).
  void sync_channel_groups(const std::string& channel);
  size_t publish_grouped(const std::string& channel, const std::vector<Member>& members,
                         const pbio::FormatPtr& fmt, const void* record);

  struct ChannelState {
    bool creator = false;
    int32_t next_member_id = 0;
    std::vector<Member> members;
  };

  std::string contact_;
  EchoVersion version_;
  core::ReceiverOptions rx_options_;
  FanoutMode fanout_mode_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::map<std::string, ChannelState> channels_;
  // deque: handlers capture pointers to entries, which must stay stable as
  // registrations are appended.
  std::deque<EventReg> event_regs_;
  std::vector<core::TransformSpec> event_transforms_;
  transport::MessagePort::MetaPublisher meta_publisher_;
  core::FanoutPlanner planner_;
  FanoutRegistry groups_;
  GroupPublisher publisher_;
  ProcessStats stats_;
};

/// Deterministic in-process wiring for tests and examples: owns the links
/// and pumps them until quiescent.
class EchoDomain {
 public:
  EchoProcess& spawn(const std::string& contact, EchoVersion version,
                     core::ReceiverOptions options = {},
                     FanoutMode fanout = FanoutMode::kGrouped);
  void connect(EchoProcess& a, EchoProcess& b);

  /// Deliver queued traffic until the network is quiet.
  size_t pump();

 private:
  std::vector<std::unique_ptr<EchoProcess>> processes_;
  std::vector<std::unique_ptr<transport::InprocPair>> pairs_;
};

}  // namespace morph::echo
