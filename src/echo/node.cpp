#include "echo/node.hpp"

#include <poll.h>

#include <cerrno>

#include "common/error.hpp"
#include "common/log.hpp"

namespace morph::echo {

struct EchoTcpNode::ThreadedConn {
  std::unique_ptr<transport::TcpLink> link;
  std::thread thread;
};

EchoTcpNode::EchoTcpNode(std::string contact, NodeOptions options)
    : contact_(std::move(contact)), options_(options), listener_(options.port) {
  process_ = std::make_unique<EchoProcess>(contact_, options_.version, options_.receiver,
                                           options_.fanout);
  if (options_.transport == transport::TransportMode::kReactor) {
    transport::ReactorOptions ropts;
    ropts.loops = 1;  // EchoProcess is single-threaded: one loop owns it
    ropts.idle_timeout_ms = options_.idle_timeout_ms;
    ropts.max_connections = options_.max_connections;
    reactor_ = std::make_unique<transport::ReactorServer>(
        listener_, ropts, [this](transport::AsyncTcpLink& link) {
          // Loop thread. Pin the link for the process's lifetime (its
          // MessagePort holds a Link&), then let the process claim the
          // data callback and send its HELLO.
          pinned_links_.push_back(link.shared());
          process_->attach_link(link);
        });
  } else {
    acceptor_ = std::thread([this] { accept_loop(); });
  }
}

EchoTcpNode::~EchoTcpNode() {
  stop_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  reactor_.reset();  // stops the loop; pinned links die with the members
}

size_t EchoTcpNode::connections() const {
  if (reactor_) return reactor_->connections();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  size_t live = 0;
  for (const auto& conn : conns_) {
    if (conn->link->connected()) ++live;
  }
  return live;
}

void EchoTcpNode::with_process(const std::function<void(EchoProcess&)>& fn) {
  if (reactor_ == nullptr) {
    std::lock_guard<std::mutex> lock(process_mutex_);
    fn(*process_);
    return;
  }
  transport::Reactor& loop = reactor_->loop(0);
  if (loop.on_loop_thread()) {
    fn(*process_);
    return;
  }
  // Hop onto the loop and wait: callers get sequential consistency with
  // inbound protocol traffic, and the process stays lock-free.
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  loop.post([&] {
    try {
      fn(*process_);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(m);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  if (error) std::rethrow_exception(error);
}

size_t EchoTcpNode::publish(const std::string& channel, const pbio::FormatPtr& fmt,
                            const void* record) {
  size_t sent = 0;
  with_process([&](EchoProcess& p) { sent = p.publish(channel, fmt, record); });
  return sent;
}

void EchoTcpNode::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::unique_ptr<transport::TcpLink> link;
    try {
      link = listener_.accept(50);
    } catch (const Error& e) {
      MORPH_LOG_WARN("echo") << "accept failed: " << e.what();
      continue;
    }
    if (link == nullptr) continue;
    if (connections() >= options_.max_connections) continue;  // EOF to client
    auto conn = std::make_unique<ThreadedConn>();
    conn->link = std::move(link);
    {
      std::lock_guard<std::mutex> lock(process_mutex_);
      process_->attach_link(*conn->link);
    }
    ThreadedConn* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_conn(*raw); });
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
  }
}

void EchoTcpNode::serve_conn(ThreadedConn& conn) {
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      // Poll outside the node mutex so one quiet connection never holds
      // the process hostage; deliver under it so pumps are serialized.
      pollfd pfd{conn.link->fd(), POLLIN, 0};
      const int r = ::poll(&pfd, 1, 50);
      if (r < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (r == 0) continue;
      std::lock_guard<std::mutex> lock(process_mutex_);
      if (!conn.link->pump(0)) break;
    }
  } catch (const Error& e) {
    // Malformed traffic or a vanished peer: this connection is done, the
    // node keeps serving (same containment as fmtsvc).
    MORPH_LOG_WARN("echo") << "connection dropped: " << e.what();
  }
  conn.link->close();
}

}  // namespace morph::echo
