#include "echo/messages.hpp"

#include <cstddef>
#include <cstring>

#include "pbio/record.hpp"

namespace morph::echo {

using pbio::FormatBuilder;
using pbio::FormatPtr;

FormatPtr member_entry_v1_format() {
  static FormatPtr fmt = FormatBuilder("CMentry", sizeof(MemberEntryV1))
                             .add_string("info", offsetof(MemberEntryV1, info))
                             .add_int("ID", 4, offsetof(MemberEntryV1, id))
                             .build();
  return fmt;
}

FormatPtr member_entry_v2_format() {
  static FormatPtr fmt = FormatBuilder("CMentry", sizeof(MemberEntryV2))
                             .add_string("info", offsetof(MemberEntryV2, info))
                             .add_int("ID", 4, offsetof(MemberEntryV2, id))
                             .add_int("is_source", 4, offsetof(MemberEntryV2, is_source))
                             .add_int("is_sink", 4, offsetof(MemberEntryV2, is_sink))
                             .build();
  return fmt;
}

FormatPtr channel_open_response_v1_format() {
  static FormatPtr fmt =
      FormatBuilder("ChannelOpenResponse", sizeof(ChannelOpenResponseV1))
          .add_string("channel", offsetof(ChannelOpenResponseV1, channel))
          .add_int("member_count", 4, offsetof(ChannelOpenResponseV1, member_count))
          .add_dyn_array("member_list", member_entry_v1_format(), "member_count",
                         offsetof(ChannelOpenResponseV1, member_list))
          .add_int("src_count", 4, offsetof(ChannelOpenResponseV1, src_count))
          .add_dyn_array("src_list", member_entry_v1_format(), "src_count",
                         offsetof(ChannelOpenResponseV1, src_list))
          .add_int("sink_count", 4, offsetof(ChannelOpenResponseV1, sink_count))
          .add_dyn_array("sink_list", member_entry_v1_format(), "sink_count",
                         offsetof(ChannelOpenResponseV1, sink_list))
          .build();
  return fmt;
}

FormatPtr channel_open_response_v2_format() {
  static FormatPtr fmt =
      FormatBuilder("ChannelOpenResponse", sizeof(ChannelOpenResponseV2))
          .add_string("channel", offsetof(ChannelOpenResponseV2, channel))
          .add_int("member_count", 4, offsetof(ChannelOpenResponseV2, member_count))
          .add_dyn_array("member_list", member_entry_v2_format(), "member_count",
                         offsetof(ChannelOpenResponseV2, member_list))
          .build();
  return fmt;
}

FormatPtr channel_open_request_format() {
  static FormatPtr fmt =
      FormatBuilder("ChannelOpenRequest", sizeof(ChannelOpenRequest))
          .add_string("channel_id", offsetof(ChannelOpenRequest, channel_id))
          .add_string("contact", offsetof(ChannelOpenRequest, contact))
          .add_int("as_source", 4, offsetof(ChannelOpenRequest, as_source))
          .add_int("as_sink", 4, offsetof(ChannelOpenRequest, as_sink))
          .build();
  return fmt;
}

const std::string& response_v2_to_v1_code() {
  // Figure 5, in Ecode. `old` is the v1.0 destination, `new` the v2.0
  // source. Destination dynamic arrays grow automatically on indexed
  // stores; the count fields are stored explicitly, as in the paper.
  static const std::string kCode = R"ECODE(
    int i;
    int sink_count = 0;
    int src_count = 0;
    old.channel = new.channel;
    old.member_count = new.member_count;
    for (i = 0; i < new.member_count; i++) {
      old.member_list[i].info = new.member_list[i].info;
      old.member_list[i].ID = new.member_list[i].ID;
      if (new.member_list[i].is_source) {
        old.src_list[src_count].info = new.member_list[i].info;
        old.src_list[src_count].ID = new.member_list[i].ID;
        src_count++;
      }
      if (new.member_list[i].is_sink) {
        old.sink_list[sink_count].info = new.member_list[i].info;
        old.sink_list[sink_count].ID = new.member_list[i].ID;
        sink_count++;
      }
    }
    old.src_count = src_count;
    old.sink_count = sink_count;
  )ECODE";
  return kCode;
}

core::TransformSpec response_v2_to_v1_spec() {
  core::TransformSpec spec;
  spec.src = channel_open_response_v2_format();
  spec.dst = channel_open_response_v1_format();
  spec.code = response_v2_to_v1_code();
  return spec;
}

const std::string& response_v2_to_v1_xslt() {
  static const std::string kSheet = R"XSLT(
<xsl:stylesheet version="1.0">
  <xsl:template match="/ChannelOpenResponse">
    <ChannelOpenResponse>
      <channel><xsl:value-of select="channel"/></channel>
      <member_count><xsl:value-of select="member_count"/></member_count>
      <xsl:for-each select="member_list">
        <member_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </member_list>
      </xsl:for-each>
      <src_count><xsl:value-of select="count(member_list[is_source='1'])"/></src_count>
      <xsl:for-each select="member_list[is_source='1']">
        <src_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </src_list>
      </xsl:for-each>
      <sink_count><xsl:value-of select="count(member_list[is_sink='1'])"/></sink_count>
      <xsl:for-each select="member_list[is_sink='1']">
        <sink_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </sink_list>
      </xsl:for-each>
    </ChannelOpenResponse>
  </xsl:template>
</xsl:stylesheet>
)XSLT";
  return kSheet;
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

ChannelOpenResponseV2* make_response_v2(const ResponseWorkload& workload, Rng& rng,
                                        RecordArena& arena) {
  auto* rec = static_cast<ChannelOpenResponseV2*>(
      pbio::alloc_record(*channel_open_response_v2_format(), arena));
  rec->channel = arena.copy_string("load-monitor");
  rec->member_count = static_cast<int32_t>(workload.members);
  rec->member_list = static_cast<MemberEntryV2*>(
      pbio::alloc_dyn_array(arena, sizeof(MemberEntryV2), workload.members));
  for (uint32_t i = 0; i < workload.members; ++i) {
    MemberEntryV2& m = rec->member_list[i];
    // Contact info shaped like ECho's: transport address + QoS attributes.
    std::string info = "atl" + std::to_string(i) + ".cc.gt:";
    info += std::to_string(6000 + rng.next_below(3000));
    while (info.size() < workload.contact_bytes) info += 'q';
    if (info.size() > workload.contact_bytes) info.resize(workload.contact_bytes);
    m.info = arena.copy_string(info);
    m.id = static_cast<int32_t>(i + 1);
    m.is_source = rng.next_double() < workload.source_fraction ? 1 : 0;
    m.is_sink = rng.next_double() < workload.sink_fraction ? 1 : 0;
  }
  return rec;
}

ChannelOpenResponseV1* transform_v2_to_v1_reference(const ChannelOpenResponseV2& v2,
                                                    RecordArena& arena) {
  auto* rec = static_cast<ChannelOpenResponseV1*>(
      pbio::alloc_record(*channel_open_response_v1_format(), arena));
  rec->channel = arena.copy_string(v2.channel == nullptr ? "" : v2.channel);
  int32_t n = v2.member_count;
  rec->member_count = n;
  rec->member_list =
      static_cast<MemberEntryV1*>(pbio::alloc_dyn_array(arena, sizeof(MemberEntryV1),
                                                        static_cast<uint64_t>(n > 0 ? n : 1)));
  rec->src_list =
      static_cast<MemberEntryV1*>(pbio::alloc_dyn_array(arena, sizeof(MemberEntryV1),
                                                        static_cast<uint64_t>(n > 0 ? n : 1)));
  rec->sink_list =
      static_cast<MemberEntryV1*>(pbio::alloc_dyn_array(arena, sizeof(MemberEntryV1),
                                                        static_cast<uint64_t>(n > 0 ? n : 1)));
  int32_t src = 0, sink = 0;
  for (int32_t i = 0; i < n; ++i) {
    const MemberEntryV2& m = v2.member_list[i];
    rec->member_list[i].info = arena.copy_string(m.info == nullptr ? "" : m.info);
    rec->member_list[i].id = m.id;
    if (m.is_source) {
      rec->src_list[src].info = arena.copy_string(m.info == nullptr ? "" : m.info);
      rec->src_list[src].id = m.id;
      ++src;
    }
    if (m.is_sink) {
      rec->sink_list[sink].info = arena.copy_string(m.info == nullptr ? "" : m.info);
      rec->sink_list[sink].id = m.id;
      ++sink;
    }
  }
  rec->src_count = src;
  rec->sink_count = sink;
  return rec;
}

namespace {
size_t entry_bytes_v1(const MemberEntryV1& e) {
  return sizeof(MemberEntryV1) + (e.info == nullptr ? 0 : std::strlen(e.info) + 1);
}
}  // namespace

size_t unencoded_size_v1(const ChannelOpenResponseV1& rec) {
  size_t total = sizeof(ChannelOpenResponseV1);
  if (rec.channel != nullptr) total += std::strlen(rec.channel) + 1;
  for (int32_t i = 0; i < rec.member_count; ++i) total += entry_bytes_v1(rec.member_list[i]);
  for (int32_t i = 0; i < rec.src_count; ++i) total += entry_bytes_v1(rec.src_list[i]);
  for (int32_t i = 0; i < rec.sink_count; ++i) total += entry_bytes_v1(rec.sink_list[i]);
  return total;
}

size_t unencoded_size_v2(const ChannelOpenResponseV2& rec) {
  size_t total = sizeof(ChannelOpenResponseV2);
  if (rec.channel != nullptr) total += std::strlen(rec.channel) + 1;
  for (int32_t i = 0; i < rec.member_count; ++i) {
    total += sizeof(MemberEntryV2) +
             (rec.member_list[i].info == nullptr ? 0 : std::strlen(rec.member_list[i].info) + 1);
  }
  return total;
}

uint32_t members_for_target_size(size_t target_bytes, const ResponseWorkload& workload) {
  size_t per_member = sizeof(MemberEntryV2) + workload.contact_bytes + 1;
  if (target_bytes <= sizeof(ChannelOpenResponseV2)) return 1;
  size_t n = (target_bytes - sizeof(ChannelOpenResponseV2) + per_member / 2) / per_member;
  return static_cast<uint32_t>(n == 0 ? 1 : n);
}

}  // namespace morph::echo
