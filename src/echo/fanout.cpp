#include "echo/fanout.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbuf/schema.hpp"

namespace morph::echo {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

/// Process-wide fan-out metrics, resolved once. echo_fanout_events_total
/// counts publishes that reached at least one grouped sink; the gauges hold
/// the most recent event's shape (morphs per event == number of distinct
/// non-identity formats, the O(formats)-not-O(subscribers) invariant).
struct FanoutMetrics {
  obs::Counter& events = obs::metrics().counter("echo_fanout_events_total");
  obs::Counter& groups = obs::metrics().counter("echo_fanout_groups_total");
  obs::Counter& morphs = obs::metrics().counter("echo_fanout_morphs_total");
  obs::Counter& morph_reuses = obs::metrics().counter("echo_fanout_morph_reuses_total");
  obs::Counter& encodes = obs::metrics().counter("echo_fanout_encodes_total");
  obs::Counter& pbuf_encodes = obs::metrics().counter("echo_fanout_pbuf_encodes_total");
  obs::Counter& deliveries = obs::metrics().counter("echo_fanout_deliveries_total");
  obs::Counter& fallbacks = obs::metrics().counter("echo_fanout_fallback_total");
  obs::Gauge& event_morphs = obs::metrics().gauge("echo_fanout_event_morphs");
  obs::Gauge& event_groups = obs::metrics().gauge("echo_fanout_event_groups");
  obs::Histogram& group_sinks = obs::metrics().histogram("echo_fanout_group_sinks");
  obs::Gauge& reg_groups = obs::metrics().gauge("echo_fanout_groups");
  obs::Gauge& reg_subscribers = obs::metrics().gauge("echo_fanout_subscribers");
};

FanoutMetrics& fm() {
  static FanoutMetrics* m = new FanoutMetrics();  // leaked: outlives all users
  return *m;
}
}  // namespace

// ---------------------------------------------------------------------------
// FanoutRegistry
// ---------------------------------------------------------------------------

void FanoutRegistry::subscribe(const std::string& key, SinkId sink, uint64_t target_fp,
                               SinkEncoding encoding) {
  Shard& shard = shard_for(key);
  WriterLock lock(shard.mutex);
  Entry& entry = shard.entries[key];
  auto it = entry.members.find(sink);
  if (it != entry.members.end() && it->second.target_fp == target_fp &&
      it->second.encoding == encoding) {
    return;  // no churn
  }
  entry.members[sink] = Sub{target_fp, encoding};
  entry.snap = nullptr;  // invalidate; rebuilt on next snapshot()
  subscribes_.fetch_add(1, kRelaxed);
}

void FanoutRegistry::unsubscribe(const std::string& key, SinkId sink) {
  Shard& shard = shard_for(key);
  WriterLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  if (it->second.members.erase(sink) == 0) return;
  it->second.snap = nullptr;
  unsubscribes_.fetch_add(1, kRelaxed);
}

void FanoutRegistry::unsubscribe_all(SinkId sink) {
  for (auto& shard : shards_) {
    WriterLock lock(shard.mutex);
    for (auto& [key, entry] : shard.entries) {
      if (entry.members.erase(sink) != 0) {
        entry.snap = nullptr;
        unsubscribes_.fetch_add(1, kRelaxed);
      }
    }
  }
}

std::shared_ptr<const GroupSnapshot> FanoutRegistry::build_snapshot(const Entry& entry) {
  auto snap = std::make_shared<GroupSnapshot>();
  // members is ordered by SinkId; bucket by (fingerprint, encoding), then
  // sort groups. Same-format groups land adjacent regardless of encoding,
  // which is what lets the publisher reuse one morph across both.
  std::map<std::pair<uint64_t, SinkEncoding>, std::vector<SinkId>> by_fp;
  for (const auto& [sink, sub] : entry.members) {
    by_fp[{sub.target_fp, sub.encoding}].push_back(sink);
  }
  snap->groups.reserve(by_fp.size());
  for (auto& [key, sinks] : by_fp) {
    snap->total_sinks += sinks.size();
    snap->groups.push_back(FanoutGroup{key.first, key.second, std::move(sinks)});
  }
  return snap;
}

std::shared_ptr<const GroupSnapshot> FanoutRegistry::snapshot(const std::string& key) const {
  static const auto kEmpty = std::make_shared<const GroupSnapshot>();
  Shard& shard = shard_for(key);
  {
    ReaderLock lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return kEmpty;
    if (it->second.snap != nullptr) {
      snapshot_hits_.fetch_add(1, kRelaxed);
      return it->second.snap;
    }
  }
  WriterLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return kEmpty;
  if (it->second.snap == nullptr) {
    it->second.snap = build_snapshot(it->second);
    rebuilds_.fetch_add(1, kRelaxed);
    // Gauges track the most recently rebuilt key — a live view of the
    // grouping shape under churn, not a sum across keys.
    fm().reg_groups.set(static_cast<double>(it->second.snap->groups.size()));
    fm().reg_subscribers.set(static_cast<double>(it->second.snap->total_sinks));
  } else {
    snapshot_hits_.fetch_add(1, kRelaxed);
  }
  return it->second.snap;
}

FanoutRegistryStats FanoutRegistry::stats() const {
  FanoutRegistryStats s;
  s.subscribes = subscribes_.load(kRelaxed);
  s.unsubscribes = unsubscribes_.load(kRelaxed);
  s.rebuilds = rebuilds_.load(kRelaxed);
  s.snapshot_hits = snapshot_hits_.load(kRelaxed);
  return s;
}

// ---------------------------------------------------------------------------
// GroupPublisher
// ---------------------------------------------------------------------------

PublishCounts GroupPublisher::publish(const pbio::FormatPtr& fmt, const void* record,
                                      const GroupSnapshot& snapshot, const ResolvePort& resolve,
                                      const Fallback& fallback) {
  PublishCounts out;
  if (snapshot.groups.empty()) return out;

  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  if (obs::tracing_enabled()) {
    trace_id = obs::current_trace().trace_id;
    if (trace_id == 0) {
      trace_id = obs::new_trace_id();
    } else {
      // Inherit the caller's active span: when the broker republishes from
      // inside a delivery, fan-out spans parent under port.deliver.
      parent_span = obs::current_trace().span_id;
    }
  }
  obs::TraceScope trace_scope(obs::TraceContext{trace_id, parent_span});

  // The single wire encode of the publisher's record: morph input for every
  // group, and the payload itself for the identity group.
  auto enc = encoders_.find(fmt->fingerprint());
  if (enc == encoders_.end()) {
    enc = encoders_.emplace(fmt->fingerprint(), std::make_unique<pbio::Encoder>(fmt)).first;
  }
  wire_.clear();
  enc->second->encode(record, wire_);
  arena_.reset();

  // Morph cache across adjacent groups: snapshots sort groups by
  // (fingerprint, encoding), so "protobuf sinks of F" directly follows
  // "native sinks of F" and reuses its morphed record (morph once per
  // format, encode once per group).
  uint64_t morphed_fp = 0;
  void* morphed_cached = nullptr;

  for (const auto& group : snapshot.groups) {
    auto plan = planner_.plan(fmt, group.target_fp);
    if (!plan->reachable()) {
      for (SinkId sink : group.sinks) fallback(sink);
      out.fallbacks += group.sinks.size();
      continue;
    }
    const pbio::FormatPtr& send_fmt = plan->identity() ? fmt : plan->target();

    pbuf::EncodePlan* pbuf_plan = nullptr;
    if (group.encoding == SinkEncoding::kPbuf) {
      pbuf_plan = pbuf_encoder_for(send_fmt);
      if (pbuf_plan == nullptr) {
        // Sinks asked for protobuf but the target cannot express it (no
        // field numbers): keep the legacy contract instead of going dark.
        for (SinkId sink : group.sinks) fallback(sink);
        out.fallbacks += group.sinks.size();
        continue;
      }
    }

    // Resolve ports before morphing: a group whose sinks all fell back
    // must cost no morph/encode, keeping morphs <= encodes <= deliveries
    // exact (the morph-stat conservation check).
    ports_.clear();
    for (SinkId sink : group.sinks) {
      transport::MessagePort* port = resolve(sink);
      if (port == nullptr) {
        fallback(sink);
        ++out.fallbacks;
      } else {
        ports_.push_back(port);
      }
    }
    if (ports_.empty()) continue;

    void* morphed = nullptr;
    if (!plan->identity()) {
      if (morphed_cached != nullptr && morphed_fp == group.target_fp) {
        morphed = morphed_cached;
        ++out.morph_reuses;
      } else {
        const uint64_t t0 = obs::monotonic_ns();
        morphed = plan->morph(wire_.data(), wire_.size(), arena_);
        const uint64_t morph_dur = obs::monotonic_ns() - t0;
        ++out.morphs;
        morphed_cached = morphed;
        morphed_fp = group.target_fp;
        // One span per format morph, tagged with the target format: the
        // collector's attribution table reconciles these against
        // echo_fanout_morphs_total (the conservation check).
        obs::record_span("fanout.morph", plan->target()->name(), t0, morph_dur);
        if (morph_dur >= obs::flight_slow_ns()) {
          obs::flight_record(obs::FlightKind::kSlowMorph, trace_id,
                             "fanout: slow morph to " + plan->target()->name() + " (" +
                                 std::to_string(morph_dur) + " ns)");
        }
      }
    }

    transport::SharedPayload frame;
    if (pbuf_plan != nullptr) {
      scratch_.clear();
      pbuf_plan->encode(plan->identity() ? record : morphed, scratch_);
      frame = transport::make_shared_pbuf_frame(send_fmt->fingerprint(), scratch_.data(),
                                                scratch_.size(), trace_id);
      ++out.pbuf_encodes;
    } else if (plan->identity()) {
      frame = transport::make_shared_frame(wire_.data(), wire_.size(), trace_id);
    } else {
      scratch_.clear();
      plan->encode(morphed, scratch_);
      frame = transport::make_shared_frame(scratch_.data(), scratch_.size(), trace_id);
    }
    ++out.encodes;

    for (transport::MessagePort* port : ports_) port->send_shared(send_fmt, frame);
    ++out.groups;
    out.deliveries += ports_.size();
    fm().group_sinks.record(ports_.size());
  }

  if (out.deliveries > 0) {
    fm().events.inc();
    fm().groups.add(out.groups);
    fm().morphs.add(out.morphs);
    fm().morph_reuses.add(out.morph_reuses);
    fm().encodes.add(out.encodes);
    fm().pbuf_encodes.add(out.pbuf_encodes);
    fm().deliveries.add(out.deliveries);
    fm().event_morphs.set(static_cast<double>(out.morphs));
    fm().event_groups.set(static_cast<double>(out.groups));
  }
  if (out.fallbacks > 0) {
    fm().fallbacks.add(out.fallbacks);
    obs::flight_record(obs::FlightKind::kFanoutFallback, trace_id,
                       "fanout: " + std::to_string(out.fallbacks) +
                           " sink(s) fell back to unmorphed delivery");
  }
  return out;
}

pbuf::EncodePlan* GroupPublisher::pbuf_encoder_for(const pbio::FormatPtr& target) {
  auto it = pbuf_encoders_.find(target->fingerprint());
  if (it == pbuf_encoders_.end()) {
    std::unique_ptr<pbuf::EncodePlan> plan;
    if (pbuf::pbuf_encodable(*target)) plan = std::make_unique<pbuf::EncodePlan>(target);
    it = pbuf_encoders_.emplace(target->fingerprint(), std::move(plan)).first;
  }
  return it->second.get();
}

}  // namespace morph::echo
