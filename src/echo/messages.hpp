// The ECho protocol messages from the paper's case study (§4.1).
//
// Figure 4 gives two revisions of ChannelOpenResponse:
//   v1.0 — member list plus separate source and sink lists (contact info
//          repeated up to three times per member),
//   v2.0 — a single member list with is_source / is_sink booleans.
// Figure 5 gives the retro-transformation (v2.0 -> v1.0) that ships with
// the v2.0 format. This header exposes both formats, the native structs
// bound to them, the transform source, and workload generators used by the
// tests, benchmarks, and examples.
#pragma once

#include <cstdint>
#include <string>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "core/transform.hpp"
#include "pbio/format.hpp"

namespace morph::echo {

/// One subscriber entry: contact information (an address string, which grew
/// "more complex" as QoS was added — we model the QoS-rich form) and the
/// channel-local ID.
struct MemberEntryV1 {
  const char* info;
  int32_t id;
};

struct MemberEntryV2 {
  const char* info;
  int32_t id;
  int32_t is_source;
  int32_t is_sink;
};

/// ChannelOpenResponse, ECho v1.0 (Figure 4.a). We add one field over the
/// paper's figure — the channel name — which the real system carried in
/// its connection context; it is needed here to route responses when one
/// connection serves many channels, and it exists identically in both
/// versions, so it does not affect the match analysis.
struct ChannelOpenResponseV1 {
  const char* channel;
  int32_t member_count;
  MemberEntryV1* member_list;
  int32_t src_count;
  MemberEntryV1* src_list;
  int32_t sink_count;
  MemberEntryV1* sink_list;
};

/// ChannelOpenResponse, ECho v2.0 (Figure 4.b).
struct ChannelOpenResponseV2 {
  const char* channel;
  int32_t member_count;
  MemberEntryV2* member_list;
};

/// ChannelOpenRequest (both versions; it never changed).
struct ChannelOpenRequest {
  const char* channel_id;
  const char* contact;
  int32_t as_source;
  int32_t as_sink;
};

pbio::FormatPtr member_entry_v1_format();
pbio::FormatPtr member_entry_v2_format();
pbio::FormatPtr channel_open_response_v1_format();
pbio::FormatPtr channel_open_response_v2_format();
pbio::FormatPtr channel_open_request_format();

/// The Ecode retro-transformation of Figure 5 (v2.0 record `new` into a
/// v1.0 record `old`).
const std::string& response_v2_to_v1_code();

/// The full TransformSpec a v2.0 sender attaches to its format.
core::TransformSpec response_v2_to_v1_spec();

/// The equivalent XSL stylesheet (the XML/XSLT comparison leg of §5):
/// transforms a v2.0 ChannelOpenResponse document into the v1.0 shape.
const std::string& response_v2_to_v1_xslt();

// ---------------------------------------------------------------------------
// Workload generation (benchmarks and tests)
// ---------------------------------------------------------------------------

struct ResponseWorkload {
  uint32_t members = 8;
  /// Fraction of members subscribed as sources / sinks. The paper's
  /// member-list is a superset of both lists; with both at 1.0 the v1.0
  /// rollback triples the data volume (Table 1's "increases by three
  /// times").
  double source_fraction = 1.0;
  double sink_fraction = 1.0;
  uint32_t contact_bytes = 16;  // length of each contact-info string
};

/// Build a v2.0 response with `workload.members` members in `arena`.
ChannelOpenResponseV2* make_response_v2(const ResponseWorkload& workload, Rng& rng,
                                        RecordArena& arena);

/// Build the equivalent v1.0 response (reference output of the Figure 5
/// transform, produced by handwritten C++ — the oracle the Ecode versions
/// are checked against, and the "native" baseline in the ablation bench).
ChannelOpenResponseV1* transform_v2_to_v1_reference(const ChannelOpenResponseV2& v2,
                                                    RecordArena& arena);

/// In-memory (unencoded) payload size of a record, counting struct bytes,
/// strings, and array elements — the "Unencoded" rows of Table 1.
size_t unencoded_size_v1(const ChannelOpenResponseV1& rec);
size_t unencoded_size_v2(const ChannelOpenResponseV2& rec);

/// Member count whose v2.0 unencoded size is closest to `target_bytes`
/// (used to reproduce the paper's 100B .. 1MB sweep).
uint32_t members_for_target_size(size_t target_bytes, const ResponseWorkload& workload);

}  // namespace morph::echo
