#include "echo/process.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "pbio/record.hpp"

namespace morph::echo {

using core::Delivery;
using core::Outcome;
using transport::MessagePort;

namespace {
/// Process-wide mirrors of ProcessStats, resolved once (the RxMetrics
/// discipline: per-instance counters in stats_ stay authoritative per
/// process, these aggregate across processes for morph-stat).
struct EchoMetrics {
  obs::Counter& open_requests = obs::metrics().counter("morph_echo_open_requests_total");
  obs::Counter& responses = obs::metrics().counter("morph_echo_responses_total");
  obs::Counter& responses_morphed = obs::metrics().counter("morph_echo_responses_morphed_total");
  obs::Counter& events = obs::metrics().counter("morph_echo_events_total");
  obs::Counter& events_morphed = obs::metrics().counter("morph_echo_events_morphed_total");
  obs::Counter& events_published = obs::metrics().counter("morph_echo_events_published_total");
};

EchoMetrics& em() {
  static EchoMetrics* m = new EchoMetrics();  // leaked: outlives all processes
  return *m;
}

core::FanoutPlannerOptions planner_options(const core::ReceiverOptions& rx) {
  core::FanoutPlannerOptions o;
  o.backend = rx.backend;
  o.verify = rx.verify;
  o.verify_fuel_limit = rx.verify_fuel_limit;
  o.fuse = rx.fuse;
  return o;
}

/// Hex round-trip for fingerprints in EVTSUB control frames.
std::string fp_to_hex(uint64_t fp) {
  std::ostringstream os;
  os << std::hex << fp;
  return os.str();
}

/// A uint64_t fingerprint as sent by fp_to_hex: 1..16 hex digits.
bool is_fp_hex(const std::string& s) {
  if (s.empty() || s.size() > 16) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isxdigit(c) != 0; });
}

/// Upper bound on distinct (channel, format-name) EVTSUB entries per peer.
/// Announcements are peer-controlled input; without a cap a hostile peer
/// streaming fresh names could grow broker memory without bound (the
/// max_cached_plans rationale, applied to the subscription map).
constexpr size_t kMaxEventSubsPerPeer = 4096;
}  // namespace

struct EchoProcess::Peer {
  std::string name;  // learned from the hello control frame
  std::unique_ptr<core::Receiver> receiver;
  std::unique_ptr<MessagePort> port;
  /// Event formats this peer announced via EVTSUB: channel -> format name
  /// -> fingerprint of the format it registered with its receiver.
  std::map<std::string, std::map<std::string, uint64_t>> event_subs;
  /// Subscriptions the peer additionally marked protobuf-preferred via
  /// EVTENC (always a subset of event_subs: EVTENC for an unknown
  /// subscription is dropped, which also bounds this map by the EVTSUB cap).
  std::map<std::string, std::set<std::string>> pbuf_subs;
};

/// A Peer's address doubles as its SinkId: Peer objects are uniquely owned
/// and never deallocated while the process lives (peers_ only grows).
static SinkId sink_id(const void* peer) { return reinterpret_cast<SinkId>(peer); }

EchoProcess::EchoProcess(std::string contact, EchoVersion version,
                         core::ReceiverOptions receiver_options, FanoutMode fanout)
    : contact_(std::move(contact)),
      version_(version),
      rx_options_(receiver_options),
      fanout_mode_(fanout),
      planner_(planner_options(receiver_options)),
      publisher_(planner_) {}

EchoProcess::~EchoProcess() = default;

void EchoProcess::attach_link(transport::Link& link) {
  auto peer = std::make_unique<Peer>();
  peer->receiver = std::make_unique<core::Receiver>(rx_options_);
  peer->port = std::make_unique<MessagePort>(link, peer->receiver.get());
  setup_peer(*peer);
  peers_.push_back(std::move(peer));
  // Introduce ourselves so the other side can route by contact name.
  std::string hello = "HELLO " + contact_;
  peers_.back()->port->send_control(hello.data(), hello.size());
}

void EchoProcess::set_meta_publisher(transport::MessagePort::MetaPublisher publisher) {
  meta_publisher_ = std::move(publisher);
  for (auto& peer : peers_) peer->port->set_meta_publisher(meta_publisher_);
}

void EchoProcess::setup_peer(Peer& peer) {
  Peer* p = &peer;

  if (meta_publisher_) peer.port->set_meta_publisher(meta_publisher_);

  peer.port->set_on_control([this, p](const uint8_t* data, size_t size) {
    handle_control(*p, std::string(reinterpret_cast<const char*>(data), size));
  });

  // Channel-open request handling (creator side).
  peer.receiver->register_handler(channel_open_request_format(),
                                  [this, p](const Delivery& d) { handle_open_request(*p, d); });

  // Channel-open response handling (subscriber side). A v1.0 process only
  // understands v1.0; a v2.0 process registers both ("speaks X and Y").
  peer.receiver->register_handler(channel_open_response_v1_format(), [this](const Delivery& d) {
    handle_open_response(d, /*from_v2_format=*/false);
  });
  if (version_ == EchoVersion::kV2) {
    peer.receiver->register_handler(channel_open_response_v2_format(), [this](const Delivery& d) {
      handle_open_response(d, /*from_v2_format=*/true);
    });
    // A v2.0 sender always ships the Figure 5 retro-transform with its
    // response format.
    peer.port->declare_transform(response_v2_to_v1_spec());
  }

  // Event formats registered so far: wire up delivery and tell the peer
  // which format this process wants, so a publishing peer can group us.
  for (const auto& reg : event_regs_) {
    const EventReg* r = &reg;
    peer.receiver->register_handler(reg.fmt, [this, r](const Delivery& d) {
      ++stats_.events_received;
      em().events.inc();
      if (d.outcome == Outcome::kMorphed || d.outcome == Outcome::kMorphedReconciled) {
        ++stats_.events_morphed;
        em().events_morphed.inc();
      }
      Event ev{&d, r->channel};
      r->handler(ev);
    });
    announce_subscription(peer, reg);
  }
  for (const auto& spec : event_transforms_) peer.port->declare_transform(spec);
}

void EchoProcess::handle_control(Peer& peer, const std::string& msg) {
  if (msg.rfind("HELLO ", 0) == 0) {
    bool was_unnamed = peer.name.empty();
    peer.name = msg.substr(6);
    MORPH_LOG_DEBUG("echo") << contact_ << ": peer introduced as " << peer.name;
    // EVTSUBs processed before the peer introduced itself could not be
    // grouped (sync matches members by name); re-derive those channels now
    // so the sink is not stuck on the per-subscriber fallback until the
    // next membership change.
    if (was_unnamed && !peer.name.empty()) {
      for (const auto& [channel, subs] : peer.event_subs) sync_channel_groups(channel);
    }
    return;
  }
  // EVTSUB <fp-hex>\x1f<channel>\x1f<format name>: the peer registered an
  // event handler; remember its target format so grouped publishes can
  // deliver pre-morphed events.
  if (msg.rfind("EVTSUB ", 0) == 0) {
    std::string rest = msg.substr(7);
    size_t s1 = rest.find('\x1f');
    size_t s2 = s1 == std::string::npos ? std::string::npos : rest.find('\x1f', s1 + 1);
    if (s2 == std::string::npos || !is_fp_hex(rest.substr(0, s1))) {
      MORPH_LOG_WARN("echo") << contact_ << ": malformed EVTSUB '" << msg << "'";
      return;
    }
    uint64_t fp = std::stoull(rest.substr(0, s1), nullptr, 16);
    std::string channel = rest.substr(s1 + 1, s2 - s1 - 1);
    std::string name = rest.substr(s2 + 1);
    auto chan_it = peer.event_subs.find(channel);
    if (chan_it == peer.event_subs.end() || chan_it->second.count(name) == 0) {
      size_t total = 0;
      for (const auto& [ch, subs] : peer.event_subs) total += subs.size();
      if (total >= kMaxEventSubsPerPeer) {
        MORPH_LOG_WARN("echo") << contact_ << ": EVTSUB cap (" << kMaxEventSubsPerPeer
                               << ") reached for peer '" << peer.name << "'; dropping '"
                               << name << "'";
        return;
      }
    }
    peer.event_subs[channel][name] = fp;
    sync_channel_groups(channel);
    return;
  }
  // EVTENC <fp-hex>\x1f<channel>\x1f<format name>: the peer wants the named
  // subscription delivered protobuf-encoded (kPbufData frames). Only
  // meaningful for a subscription it already announced — the sender always
  // emits EVTSUB first on the same ordered link — so EVTENC for an unknown
  // subscription is hostile or stale and gets dropped.
  if (msg.rfind("EVTENC ", 0) == 0) {
    std::string rest = msg.substr(7);
    size_t s1 = rest.find('\x1f');
    size_t s2 = s1 == std::string::npos ? std::string::npos : rest.find('\x1f', s1 + 1);
    if (s2 == std::string::npos || !is_fp_hex(rest.substr(0, s1))) {
      MORPH_LOG_WARN("echo") << contact_ << ": malformed EVTENC '" << msg << "'";
      return;
    }
    std::string channel = rest.substr(s1 + 1, s2 - s1 - 1);
    std::string name = rest.substr(s2 + 1);
    auto chan_it = peer.event_subs.find(channel);
    if (chan_it == peer.event_subs.end() || chan_it->second.count(name) == 0) {
      MORPH_LOG_WARN("echo") << contact_ << ": EVTENC without matching EVTSUB for '" << name
                             << "'";
      return;
    }
    peer.pbuf_subs[channel].insert(name);
    sync_channel_groups(channel);
    return;
  }
}

void EchoProcess::announce_subscription(Peer& peer, const EventReg& reg) {
  std::string body = fp_to_hex(reg.fmt->fingerprint()) + '\x1f' + reg.channel + '\x1f' +
                     reg.fmt->name();
  std::string msg = "EVTSUB " + body;
  peer.port->send_control(msg.data(), msg.size());
  if (reg.encoding == SinkEncoding::kPbuf) {
    // Two-level opt-in: the port-level sentinel switches direct
    // send_record traffic to protobuf, the EVTENC verb switches grouped
    // fan-out for this subscription. Legacy peers ignore both.
    peer.port->announce_pbuf();
    std::string enc = "EVTENC " + body;
    peer.port->send_control(enc.data(), enc.size());
  }
}

void EchoProcess::sync_channel_groups(const std::string& channel) {
  auto it = channels_.find(channel);
  const std::vector<Member>* members = it == channels_.end() ? nullptr : &it->second.members;
  for (auto& p : peers_) {
    if (p->name.empty()) continue;
    auto subs = p->event_subs.find(channel);
    if (subs == p->event_subs.end()) continue;
    bool is_sink = false;
    if (members != nullptr) {
      for (const auto& m : *members) {
        if (m.contact == p->name && m.is_sink) {
          is_sink = true;
          break;
        }
      }
    }
    auto enc_chan = p->pbuf_subs.find(channel);
    for (const auto& [name, fp] : subs->second) {
      std::string key = FanoutRegistry::key(channel, name);
      if (is_sink) {
        SinkEncoding enc =
            enc_chan != p->pbuf_subs.end() && enc_chan->second.count(name) != 0
                ? SinkEncoding::kPbuf
                : SinkEncoding::kPbio;
        groups_.subscribe(key, sink_id(p.get()), fp, enc);
      } else {
        groups_.unsubscribe(key, sink_id(p.get()));
      }
    }
  }
}

EchoProcess::Peer* EchoProcess::peer_by_contact(const std::string& peer_contact) {
  for (auto& p : peers_) {
    if (p->name == peer_contact) return p.get();
  }
  return nullptr;
}

void EchoProcess::create_channel(const std::string& channel) {
  auto& state = channels_[channel];
  state.creator = true;
}

void EchoProcess::open_channel(const std::string& channel, const std::string& creator_contact,
                               bool as_source, bool as_sink) {
  Peer* p = peer_by_contact(creator_contact);
  if (p == nullptr) {
    throw Error("echo: no connected peer named '" + creator_contact + "'");
  }
  channels_[channel];  // ensure state exists (members arrive in the response)

  RecordArena arena;
  auto* req = static_cast<ChannelOpenRequest*>(
      pbio::alloc_record(*channel_open_request_format(), arena));
  req->channel_id = arena.copy_string(channel);
  req->contact = arena.copy_string(contact_);
  req->as_source = as_source ? 1 : 0;
  req->as_sink = as_sink ? 1 : 0;
  p->port->send_record(channel_open_request_format(), req);
}

void EchoProcess::leave_channel(const std::string& channel,
                                const std::string& creator_contact) {
  // A subscription as neither source nor sink is the leave signal; the
  // creator removes us and re-notifies the remaining members.
  open_channel(channel, creator_contact, false, false);
}

void EchoProcess::handle_open_request(Peer& peer, const Delivery& d) {
  ++stats_.open_requests_handled;
  em().open_requests.inc();
  const auto* req = static_cast<const ChannelOpenRequest*>(d.record);
  std::string channel = req->channel_id == nullptr ? "" : req->channel_id;
  std::string contact = req->contact == nullptr ? "" : req->contact;
  auto it = channels_.find(channel);
  if (it == channels_.end() || !it->second.creator) {
    MORPH_LOG_WARN("echo") << contact_ << ": open request for unknown channel '" << channel
                           << "'";
    return;
  }
  if (peer.name.empty() && !contact.empty()) {
    peer.name = contact;
    // Naming the peer may unlock grouping for EVTSUBs it announced on
    // other channels before introducing itself (this channel syncs below).
    for (const auto& [ch, subs] : peer.event_subs) {
      if (ch != channel) sync_channel_groups(ch);
    }
  }
  auto& members = it->second.members;

  bool leaving = req->as_source == 0 && req->as_sink == 0;
  if (leaving) {
    // A request subscribing as neither source nor sink is a leave.
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const Member& m) { return m.contact == contact; }),
                  members.end());
  } else {
    bool found = false;
    for (auto& m : members) {
      if (m.contact == contact) {
        m.is_source = req->as_source != 0;
        m.is_sink = req->as_sink != 0;
        found = true;
        break;
      }
    }
    if (!found) {
      Member m;
      m.contact = contact;
      m.id = ++it->second.next_member_id;
      m.is_source = req->as_source != 0;
      m.is_sink = req->as_sink != 0;
      members.push_back(std::move(m));
    }
  }

  sync_channel_groups(channel);

  // Reply to the requester (including a leaver, so it sees the post-leave
  // membership) and re-notify every remaining member.
  send_response_to(peer, channel);
  for (const auto& m : members) {
    if (m.contact == contact) continue;
    Peer* target = peer_by_contact(m.contact);
    if (target != nullptr) send_response_to(*target, channel);
  }
}

void EchoProcess::send_response_to(Peer& peer, const std::string& channel) {
  const auto& members = channels_[channel].members;
  RecordArena arena;

  if (version_ == EchoVersion::kV2) {
    auto* rec = static_cast<ChannelOpenResponseV2*>(
        pbio::alloc_record(*channel_open_response_v2_format(), arena));
    rec->channel = arena.copy_string(channel);
    rec->member_count = static_cast<int32_t>(members.size());
    rec->member_list = static_cast<MemberEntryV2*>(
        pbio::alloc_dyn_array(arena, sizeof(MemberEntryV2), members.size()));
    for (size_t i = 0; i < members.size(); ++i) {
      rec->member_list[i].info = arena.copy_string(members[i].contact);
      rec->member_list[i].id = members[i].id;
      rec->member_list[i].is_source = members[i].is_source ? 1 : 0;
      rec->member_list[i].is_sink = members[i].is_sink ? 1 : 0;
    }
    peer.port->send_record(channel_open_response_v2_format(), rec);
    return;
  }

  auto* rec = static_cast<ChannelOpenResponseV1*>(
      pbio::alloc_record(*channel_open_response_v1_format(), arena));
  rec->channel = arena.copy_string(channel);
  rec->member_count = static_cast<int32_t>(members.size());
  size_t cap = members.empty() ? 1 : members.size();
  rec->member_list =
      static_cast<MemberEntryV1*>(pbio::alloc_dyn_array(arena, sizeof(MemberEntryV1), cap));
  rec->src_list =
      static_cast<MemberEntryV1*>(pbio::alloc_dyn_array(arena, sizeof(MemberEntryV1), cap));
  rec->sink_list =
      static_cast<MemberEntryV1*>(pbio::alloc_dyn_array(arena, sizeof(MemberEntryV1), cap));
  int32_t src = 0, sink = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    rec->member_list[i].info = arena.copy_string(members[i].contact);
    rec->member_list[i].id = members[i].id;
    if (members[i].is_source) {
      rec->src_list[src].info = rec->member_list[i].info;
      rec->src_list[src].id = members[i].id;
      ++src;
    }
    if (members[i].is_sink) {
      rec->sink_list[sink].info = rec->member_list[i].info;
      rec->sink_list[sink].id = members[i].id;
      ++sink;
    }
  }
  rec->src_count = src;
  rec->sink_count = sink;
  peer.port->send_record(channel_open_response_v1_format(), rec);
}

void EchoProcess::handle_open_response(const Delivery& d, bool from_v2_format) {
  ++stats_.responses_received;
  em().responses.inc();
  if (d.outcome == Outcome::kMorphed || d.outcome == Outcome::kMorphedReconciled) {
    ++stats_.responses_morphed;
    em().responses_morphed.inc();
  }

  std::string channel;
  std::vector<Member> members;
  if (from_v2_format) {
    const auto* rec = static_cast<const ChannelOpenResponseV2*>(d.record);
    channel = rec->channel == nullptr ? "" : rec->channel;
    for (int32_t i = 0; i < rec->member_count; ++i) {
      Member m;
      m.contact = rec->member_list[i].info == nullptr ? "" : rec->member_list[i].info;
      m.id = rec->member_list[i].id;
      m.is_source = rec->member_list[i].is_source != 0;
      m.is_sink = rec->member_list[i].is_sink != 0;
      members.push_back(std::move(m));
    }
  } else {
    const auto* rec = static_cast<const ChannelOpenResponseV1*>(d.record);
    channel = rec->channel == nullptr ? "" : rec->channel;
    for (int32_t i = 0; i < rec->member_count; ++i) {
      Member m;
      m.contact = rec->member_list[i].info == nullptr ? "" : rec->member_list[i].info;
      m.id = rec->member_list[i].id;
      members.push_back(std::move(m));
    }
    auto mark = [&members](const MemberEntryV1* list, int32_t count, bool source) {
      for (int32_t i = 0; i < count; ++i) {
        const char* info = list[i].info;
        for (auto& m : members) {
          if (m.contact == (info == nullptr ? "" : info)) {
            (source ? m.is_source : m.is_sink) = true;
          }
        }
      }
    };
    mark(rec->src_list, rec->src_count, true);
    mark(rec->sink_list, rec->sink_count, false);
  }
  channels_[channel].members = std::move(members);
  sync_channel_groups(channel);
}

std::vector<Member> EchoProcess::members(const std::string& channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? std::vector<Member>{} : it->second.members;
}

void EchoProcess::on_event(const std::string& channel, pbio::FormatPtr fmt,
                           EventHandler handler, SinkEncoding encoding) {
  for (const auto& reg : event_regs_) {
    if (reg.fmt->name() == fmt->name() && reg.channel != channel) {
      throw Error("echo: event format '" + fmt->name() +
                  "' is already registered for channel '" + reg.channel +
                  "' (one channel per format name per process)");
    }
  }
  event_regs_.push_back({channel, std::move(fmt), std::move(handler), encoding});
  const EventReg& reg = event_regs_.back();
  const EventReg* r = &reg;
  for (auto& p : peers_) {
    p->receiver->register_handler(reg.fmt, [this, r](const Delivery& d) {
      ++stats_.events_received;
      em().events.inc();
      if (d.outcome == Outcome::kMorphed || d.outcome == Outcome::kMorphedReconciled) {
        ++stats_.events_morphed;
        em().events_morphed.inc();
      }
      Event ev{&d, r->channel};
      r->handler(ev);
    });
    announce_subscription(*p, reg);
  }
}

void EchoProcess::declare_event_transform(core::TransformSpec spec) {
  event_transforms_.push_back(spec);
  // The publisher-side planner learns the transform too: it is what makes
  // the spec's destination reachable as a fan-out group target.
  planner_.learn_transform(spec);
  for (auto& p : peers_) p->port->declare_transform(spec);
}

size_t EchoProcess::publish(const std::string& channel, const pbio::FormatPtr& fmt,
                            const void* record) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) throw Error("echo: unknown channel '" + channel + "'");
  ++stats_.events_published;
  em().events_published.inc();
  if (fanout_mode_ == FanoutMode::kGrouped) {
    return publish_grouped(channel, it->second.members, fmt, record);
  }
  size_t sent = 0;
  for (const auto& m : it->second.members) {
    if (!m.is_sink || m.contact == contact_) continue;
    Peer* p = peer_by_contact(m.contact);
    if (p == nullptr) {
      MORPH_LOG_WARN("echo") << contact_ << ": no link to sink " << m.contact;
      continue;
    }
    p->port->send_record(fmt, record);
    ++sent;
  }
  return sent;
}

size_t EchoProcess::publish_grouped(const std::string& channel,
                                    const std::vector<Member>& members,
                                    const pbio::FormatPtr& fmt, const void* record) {
  auto snap = groups_.snapshot(FanoutRegistry::key(channel, fmt->name()));
  size_t sent = 0;

  PublishCounts counts = publisher_.publish(
      fmt, record, *snap,
      // SinkIds are Peer addresses (sink_id); the registry only ever holds
      // peers of this process, so the cast back is safe.
      [](SinkId sink) { return reinterpret_cast<Peer*>(sink)->port.get(); },
      // Unreachable target format: this sink keeps the legacy contract and
      // receives the source-format record; its own receiver reconciles.
      [&](SinkId sink) {
        reinterpret_cast<Peer*>(sink)->port->send_record(fmt, record);
        ++sent;
      });
  sent += counts.deliveries;
  stats_.fanout_morphs += counts.morphs;
  stats_.fanout_morph_reuses += counts.morph_reuses;
  stats_.fanout_encodes += counts.encodes;
  stats_.fanout_pbuf_encodes += counts.pbuf_encodes;
  stats_.fanout_deliveries += counts.deliveries;
  stats_.fanout_fallbacks += counts.fallbacks;

  // Sink members outside every group — nothing announced for this event
  // format (an old peer, or a sink that registered a different format
  // name) — still get the legacy per-subscriber delivery.
  auto grouped = [&](SinkId sink) {
    for (const auto& g : snap->groups) {
      if (std::binary_search(g.sinks.begin(), g.sinks.end(), sink)) return true;
    }
    return false;
  };
  for (const auto& m : members) {
    if (!m.is_sink || m.contact == contact_) continue;
    Peer* p = peer_by_contact(m.contact);
    if (p == nullptr) {
      MORPH_LOG_WARN("echo") << contact_ << ": no link to sink " << m.contact;
      continue;
    }
    if (grouped(sink_id(p))) continue;
    p->port->send_record(fmt, record);
    ++sent;
  }
  return sent;
}

core::ReceiverStats EchoProcess::receiver_totals() const {
  core::ReceiverStats total;
  for (const auto& p : peers_) {
    const auto& s = p->receiver->stats();
    total.messages += s.messages;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.exact += s.exact;
    total.perfect += s.perfect;
    total.morphed += s.morphed;
    total.reconciled += s.reconciled;
    total.defaulted += s.defaulted;
    total.rejected += s.rejected;
    total.transforms_compiled += s.transforms_compiled;
  }
  return total;
}

// ---------------------------------------------------------------------------
// EchoDomain
// ---------------------------------------------------------------------------

EchoProcess& EchoDomain::spawn(const std::string& contact, EchoVersion version,
                               core::ReceiverOptions options, FanoutMode fanout) {
  processes_.push_back(std::make_unique<EchoProcess>(contact, version, options, fanout));
  return *processes_.back();
}

void EchoDomain::connect(EchoProcess& a, EchoProcess& b) {
  pairs_.push_back(std::make_unique<transport::InprocPair>());
  auto& pair = *pairs_.back();
  a.attach_link(pair.a());
  b.attach_link(pair.b());
}

size_t EchoDomain::pump() {
  size_t total = 0;
  for (;;) {
    size_t round = 0;
    for (auto& pair : pairs_) round += pair->pump();
    total += round;
    if (round == 0) return total;
  }
}

}  // namespace morph::echo
