#include "analysis/audit.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/match.hpp"

namespace morph::analysis {

namespace {

using core::LintCheck;
using core::LintFinding;
using core::LintSeverity;
using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;

std::string fp_tag(const pbio::FormatPtr& f) {
  if (!f) return "-";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s#%016llx", f->name().c_str(),
                static_cast<unsigned long long>(f->fingerprint()));
  return buf;
}

AuditFinding make_finding(AuditCheck check, LintSeverity sev, std::string subject,
                          std::string message) {
  AuditFinding f;
  f.check = check;
  f.severity = sev;
  f.subject = std::move(subject);
  f.message = std::move(message);
  return f;
}

/// Worst-case coercion when the receiver's conversion plan moves a scalar
/// of (kind, size) `a` into `b`. Algorithm 1's diff is width-insensitive —
/// any two fixed scalars of the same name "match" — so a perfect match can
/// still hide a narrowing or truncating conversion. The audit refuses to
/// call that layout-only.
EdgeQuality scalar_link(FieldKind ak, uint32_t asz, FieldKind bk, uint32_t bsz) {
  if (ak == FieldKind::kFloat && bk != FieldKind::kFloat) return EdgeQuality::kLossy;
  if (asz > bsz) return EdgeQuality::kLossy;
  if (ak != bk || asz < bsz) return EdgeQuality::kWidening;
  return EdgeQuality::kLayoutOnly;
}

EdgeQuality delivery_link_quality(const FormatDescriptor& src, const FormatDescriptor& dst);

EdgeQuality field_link(const FieldDescriptor& a, const FieldDescriptor& b) {
  if (a.element_format && b.element_format) {
    return delivery_link_quality(*a.element_format, *b.element_format);
  }
  if (pbio::is_array(a.kind) && pbio::is_array(b.kind)) {
    return scalar_link(a.element_kind, a.element_size, b.element_kind, b.element_size);
  }
  if (a.kind == FieldKind::kString || b.kind == FieldKind::kString) {
    return EdgeQuality::kLayoutOnly;
  }
  return scalar_link(a.kind, a.size, b.kind, b.size);
}

/// Quality of the zero-transform delivery link src => dst (the pair already
/// perfect-matched both ways): the worst per-field coercion the receiver's
/// conversion plan would perform.
EdgeQuality delivery_link_quality(const FormatDescriptor& src, const FormatDescriptor& dst) {
  EdgeQuality q = EdgeQuality::kLayoutOnly;
  for (const auto& f : src.fields()) {
    const FieldDescriptor* other = dst.find_field(f.name);
    if (other == nullptr) continue;  // cannot happen after a perfect match
    q = compose(q, field_link(f, *other));
  }
  return q;
}

/// Deterministic report order: worst first, then by kind and subject.
void sort_findings(std::vector<AuditFinding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const AuditFinding& a, const AuditFinding& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    if (a.check != b.check) return a.check < b.check;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.message < b.message;
  });
}

/// The resolved graph the matrix and the findings are computed from. Node
/// order is sorted by (name, fingerprint) so every derived artifact — the
/// matrix, the JSON report — is stable across runs and platforms
/// (fingerprints are content hashes).
struct Engine {
  std::vector<AuditNode> nodes;
  std::unordered_map<uint64_t, size_t> index;
  std::vector<AuditEdge> edges;
  // adj[i] = {(j, quality)} over verifier-accepted edges only.
  std::vector<std::vector<std::pair<size_t, EdgeQuality>>> adj;
  // link[i][j]: quality of the zero-transform delivery i => j — kExact on
  // the diagonal, the classified conversion for a perfect match modulo
  // layout (what Algorithm 2 accepts without reconciliation), kUnreachable
  // when the receiver would have to reconcile.
  std::vector<std::vector<EdgeQuality>> link;
  std::vector<std::vector<MatrixCell>> matrix;

  size_t find(uint64_t fp) const {
    auto it = index.find(fp);
    return it == index.end() ? npos : it->second;
  }
  static constexpr size_t npos = static_cast<size_t>(-1);
};

Engine build_engine(const std::vector<AuditNode>& raw_nodes,
                    const std::vector<core::TransformSpec>& specs) {
  Engine e;
  e.nodes = raw_nodes;
  std::sort(e.nodes.begin(), e.nodes.end(), [](const AuditNode& a, const AuditNode& b) {
    if (a.format->name() != b.format->name()) return a.format->name() < b.format->name();
    return a.format->fingerprint() < b.format->fingerprint();
  });
  for (size_t i = 0; i < e.nodes.size(); ++i) e.index[e.nodes[i].format->fingerprint()] = i;

  // Classify each spec once; keep the best edge per (src, dst) pair. A
  // writer shipping both a sloppy and a clean transform for the same pair
  // is judged by the clean one — that is what a receiver would prefer too
  // once quality is visible.
  std::map<std::pair<uint64_t, uint64_t>, AuditEdge> best;
  for (const auto& spec : specs) {
    if (!spec.src || !spec.dst) continue;
    AuditEdge edge;
    edge.src_fp = spec.src->fingerprint();
    edge.dst_fp = spec.dst->fingerprint();
    edge.quality = classify_spec(spec, &edge.findings);
    auto key = std::make_pair(edge.src_fp, edge.dst_fp);
    auto it = best.find(key);
    if (it == best.end() || edge.quality < it->second.quality) best[key] = std::move(edge);
  }
  e.edges.reserve(best.size());
  for (auto& [key, edge] : best) e.edges.push_back(std::move(edge));

  const size_t n = e.nodes.size();
  e.adj.resize(n);
  for (const AuditEdge& edge : e.edges) {
    if (edge.quality == EdgeQuality::kUnreachable) continue;
    size_t src = e.find(edge.src_fp);
    size_t dst = e.find(edge.dst_fp);
    if (src == Engine::npos || dst == Engine::npos) continue;
    e.adj[src].emplace_back(dst, edge.quality);
  }

  e.link.assign(n, std::vector<EdgeQuality>(n, EdgeQuality::kUnreachable));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        e.link[i][j] = EdgeQuality::kExact;
      } else if (core::perfect_match(*e.nodes[i].format, *e.nodes[j].format)) {
        e.link[i][j] = delivery_link_quality(*e.nodes[i].format, *e.nodes[j].format);
      }
    }
  }

  // Transitive closure. Per source: a lexicographic (quality, hops)
  // Dijkstra for the best-quality chain (compose() is monotone, so the
  // greedy settle order is sound), plus a plain BFS for the hop-shortest
  // chain — the one the receiver's breadth-first closure would compile.
  constexpr uint32_t kInf = ~0u;
  e.matrix.assign(n, std::vector<MatrixCell>(n));
  std::vector<EdgeQuality> q(n);
  std::vector<uint32_t> h(n), bfs(n);
  for (size_t i = 0; i < n; ++i) {
    std::fill(q.begin(), q.end(), EdgeQuality::kUnreachable);
    std::fill(h.begin(), h.end(), kInf);
    std::vector<uint8_t> done(n, 0);
    q[i] = EdgeQuality::kExact;
    h[i] = 0;
    for (;;) {
      size_t u = Engine::npos;
      for (size_t c = 0; c < n; ++c) {
        if (done[c] || q[c] == EdgeQuality::kUnreachable) continue;
        if (u == Engine::npos || q[c] < q[u] || (q[c] == q[u] && h[c] < h[u])) u = c;
      }
      if (u == Engine::npos) break;
      done[u] = 1;
      for (const auto& [v, w] : e.adj[u]) {
        EdgeQuality nq = compose(q[u], w);
        uint32_t nh = h[u] + 1;
        if (nq < q[v] || (nq == q[v] && nh < h[v])) {
          q[v] = nq;
          h[v] = nh;
        }
      }
    }

    std::fill(bfs.begin(), bfs.end(), kInf);
    bfs[i] = 0;
    std::vector<size_t> queue{i};
    for (size_t head = 0; head < queue.size(); ++head) {
      size_t u = queue[head];
      for (const auto& [v, w] : e.adj[u]) {
        (void)w;
        if (bfs[v] != kInf) continue;
        bfs[v] = bfs[u] + 1;
        queue.push_back(v);
      }
    }

    // Fold in the delivery link: reaching chain-end C delivers to B when
    // C == B or C perfectly matches B modulo layout, at the link's own
    // lattice cost (a narrowing conversion plan is itself lossy).
    for (size_t b = 0; b < n; ++b) {
      MatrixCell& cell = e.matrix[i][b];
      for (size_t c = 0; c < n; ++c) {
        if (q[c] == EdgeQuality::kUnreachable || e.link[c][b] == EdgeQuality::kUnreachable) {
          continue;
        }
        EdgeQuality lq = compose(q[c], e.link[c][b]);
        if (!cell.reachable() || lq < cell.quality ||
            (lq == cell.quality && h[c] < cell.hops)) {
          cell.quality = lq;
          cell.hops = h[c];
        }
      }
      if (!cell.reachable()) continue;
      uint32_t mh = kInf;
      for (size_t c = 0; c < n; ++c) {
        if (bfs[c] == kInf || e.link[c][b] == EdgeQuality::kUnreachable) continue;
        mh = std::min(mh, bfs[c]);
      }
      cell.min_hops = mh == kInf ? cell.hops : mh;
    }
  }
  return e;
}

/// Fleet-level findings derived from a settled engine.
void fleet_findings(const Engine& e, std::vector<AuditFinding>& out) {
  const size_t n = e.nodes.size();
  for (size_t i = 0; i < n; ++i) {
    const AuditNode& a = e.nodes[i];
    const std::string& name = a.format->name();
    std::string tag = fp_tag(a.format);

    if (a.stored) {
      // Orphans: live readers of this exchange exist, none can receive
      // this revision. Error-severity — messages of this revision are
      // undeliverable to the declared fleet.
      bool any_live = false;
      bool delivered = false;
      for (size_t j = 0; j < n; ++j) {
        if (!e.nodes[j].live || e.nodes[j].format->name() != name) continue;
        any_live = true;
        if (e.matrix[i][j].reachable()) delivered = true;
      }
      if (any_live && !delivered) {
        out.push_back(make_finding(AuditCheck::kOrphanRevision, LintSeverity::kError, tag,
                                   "no declared live peer of '" + name +
                                       "' can receive this revision; senders emitting it are "
                                       "cut off from the fleet"));
      }

      // Chain-quality warnings per live peer.
      for (size_t j = 0; j < n; ++j) {
        if (!e.nodes[j].live || i == j || e.nodes[j].format->name() != name) continue;
        const MatrixCell& cell = e.matrix[i][j];
        if (!cell.reachable()) continue;
        if (cell.quality == EdgeQuality::kLossy) {
          out.push_back(make_finding(
              AuditCheck::kLossyOnlyPath, LintSeverity::kWarning, tag,
              "live peer " + fp_tag(e.nodes[j].format) + " receives this revision only via " +
                  (cell.hops == 0 ? std::string("a lossy direct conversion")
                                  : "a " + std::to_string(cell.hops) + "-hop lossy chain")));
        } else if (cell.quality == EdgeQuality::kDefaulted) {
          out.push_back(make_finding(
              AuditCheck::kDegradedPath, LintSeverity::kNote, tag,
              "live peer " + fp_tag(e.nodes[j].format) +
                  " receives this revision with defaulted fields (chain quality 'defaulted')"));
        }
      }

      // Coverage gaps: a stored revision with same-name peers but no
      // transform connectivity in either direction — a registered
      // revision whose writer forgot to attach (or chain) transforms.
      bool has_family = false;
      bool connected = false;
      for (size_t j = 0; j < n; ++j) {
        if (i == j || !e.nodes[j].stored || e.nodes[j].format->name() != name) continue;
        has_family = true;
        if (e.matrix[i][j].reachable() || e.matrix[j][i].reachable()) connected = true;
      }
      if (has_family && !connected) {
        out.push_back(make_finding(AuditCheck::kCoverageGap, LintSeverity::kWarning, tag,
                                   "revision of '" + name +
                                       "' has no transform path to or from any other stored "
                                       "revision of the exchange"));
      }
    }
  }
}

}  // namespace

const char* edge_quality_name(EdgeQuality q) {
  switch (q) {
    case EdgeQuality::kExact: return "exact";
    case EdgeQuality::kLayoutOnly: return "layout-only";
    case EdgeQuality::kWidening: return "widening";
    case EdgeQuality::kDefaulted: return "defaulted";
    case EdgeQuality::kLossy: return "lossy";
    case EdgeQuality::kUnreachable: return "unreachable";
  }
  return "?";
}

const char* audit_policy_name(AuditPolicy p) {
  switch (p) {
    case AuditPolicy::kOff: return "off";
    case AuditPolicy::kWarn: return "warn";
    case AuditPolicy::kEnforce: return "enforce";
  }
  return "?";
}

const char* audit_check_name(AuditCheck c) {
  switch (c) {
    case AuditCheck::kFingerprintCollision: return "fingerprint-collision";
    case AuditCheck::kOrphanRevision: return "orphan-revision";
    case AuditCheck::kStrandedPeer: return "stranded-peer";
    case AuditCheck::kLossyOnlyPath: return "lossy-only-path";
    case AuditCheck::kDegradedPath: return "degraded-path";
    case AuditCheck::kCoverageGap: return "coverage-gap";
    case AuditCheck::kUnknownLiveReader: return "unknown-live-reader";
    case AuditCheck::kQualityRegression: return "quality-regression";
    case AuditCheck::kNewFinding: return "new-finding";
  }
  return "?";
}

std::string AuditFinding::to_string() const {
  std::string out = core::lint_severity_name(severity);
  out += ": ";
  out += audit_check_name(check);
  out += ": ";
  if (!subject.empty()) {
    out += subject;
    out += ": ";
  }
  out += message;
  return out;
}

EdgeQuality classify_spec(const core::TransformSpec& spec,
                          std::vector<core::LintFinding>* findings) {
  core::LintReport rep = core::lint_spec(spec);
  if (findings != nullptr) *findings = rep.findings;
  bool lossy = false;
  bool defaulted = false;
  bool widened = false;
  for (const LintFinding& f : rep.findings) {
    if (f.severity == LintSeverity::kError) return EdgeQuality::kUnreachable;
    switch (f.check) {
      case LintCheck::kLossyNarrowing:
      case LintCheck::kFloatTruncation:
        lossy = true;
        break;
      case LintCheck::kDroppedField:
        // Dropping a source field the destination simply lacks is what a
        // retro-transformation is *for*; only operator-weighted fields
        // (importance > 1, warning severity) count as data loss.
        if (f.severity >= LintSeverity::kWarning) lossy = true;
        break;
      case LintCheck::kUnassignedField:
        defaulted = true;
        break;
      case LintCheck::kSignChange:
        widened = true;
        break;
      default:
        break;
    }
  }
  if (lossy) return EdgeQuality::kLossy;
  if (defaulted) return EdgeQuality::kDefaulted;
  if (widened) return EdgeQuality::kWidening;
  if (spec.src->fingerprint() == spec.dst->fingerprint()) return EdgeQuality::kExact;
  if (spec.src->shape_fingerprint() == spec.dst->shape_fingerprint()) {
    return EdgeQuality::kLayoutOnly;
  }
  // Every destination field computed, every source byte consumable, no
  // narrowing: a value-preserving restructure.
  return EdgeQuality::kWidening;
}

void AuditUniverse::intern(const pbio::FormatPtr& format, bool stored) {
  if (!format) return;
  uint64_t fp = format->fingerprint();
  auto it = by_fp_.find(fp);
  if (it != by_fp_.end()) {
    Node& node = nodes_[it->second];
    if (!node.format->identical_to(*format)) {
      collisions_.push_back(make_finding(
          AuditCheck::kFingerprintCollision, LintSeverity::kError, fp_tag(format),
          "structurally different descriptor collides with " + fp_tag(node.format)));
    }
    node.stored = node.stored || stored;
    return;
  }
  by_fp_.emplace(fp, nodes_.size());
  nodes_.push_back(Node{format, stored});
}

void AuditUniverse::add(const pbio::FormatPtr& format,
                        const std::vector<core::TransformSpec>& transforms, bool stored) {
  intern(format, stored);
  for (const auto& spec : transforms) add_spec(spec);
}

void AuditUniverse::add_spec(const core::TransformSpec& spec) {
  if (!spec.src || !spec.dst) return;
  intern(spec.src, false);
  intern(spec.dst, false);
  // Dedup exact re-submissions (the same bundle loaded twice).
  for (const auto& s : specs_) {
    if (s.src->fingerprint() == spec.src->fingerprint() &&
        s.dst->fingerprint() == spec.dst->fingerprint() && s.code == spec.code) {
      return;
    }
  }
  specs_.push_back(spec);
}

void AuditUniverse::declare_live(uint64_t fingerprint) {
  if (live_set_.insert(fingerprint).second) live_.push_back(fingerprint);
}

AuditReport AuditUniverse::audit() const {
  std::vector<AuditNode> raw;
  raw.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    AuditNode an;
    an.format = n.format;
    an.stored = n.stored;
    an.live = live_set_.count(n.format->fingerprint()) > 0;
    raw.push_back(std::move(an));
  }
  Engine e = build_engine(raw, specs_);

  AuditReport report;
  report.findings = collisions_;
  for (uint64_t fp : live_) {
    if (by_fp_.count(fp) != 0) continue;
    char buf[32];
    std::snprintf(buf, sizeof buf, "#%016llx", static_cast<unsigned long long>(fp));
    report.findings.push_back(make_finding(
        AuditCheck::kUnknownLiveReader, LintSeverity::kWarning, buf,
        "a live peer declares this fingerprint but no such revision is registered"));
  }
  fleet_findings(e, report.findings);
  sort_findings(report.findings);
  report.nodes = std::move(e.nodes);
  report.edges = std::move(e.edges);
  report.matrix = std::move(e.matrix);
  return report;
}

std::vector<AuditFinding> audit_candidate(const AuditUniverse& universe,
                                          const pbio::FormatPtr& format,
                                          const std::vector<core::TransformSpec>& transforms) {
  std::vector<AuditFinding> out;
  if (!format) return out;

  AuditUniverse extended = universe;
  size_t collisions_before = extended.collisions_.size();
  extended.add(format, transforms, true);
  for (size_t i = collisions_before; i < extended.collisions_.size(); ++i) {
    out.push_back(extended.collisions_[i]);
  }

  AuditReport report = extended.audit();
  size_t cand = Engine::npos;
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    if (report.nodes[i].format->fingerprint() == format->fingerprint()) cand = i;
  }
  if (cand == Engine::npos) return out;  // collision kept the first descriptor

  std::string tag = fp_tag(format);
  for (size_t j = 0; j < report.nodes.size(); ++j) {
    const AuditNode& reader = report.nodes[j];
    if (!reader.live || j == cand || reader.format->name() != format->name()) continue;
    const MatrixCell& cell = report.matrix[cand][j];
    if (!cell.reachable()) {
      out.push_back(make_finding(AuditCheck::kStrandedPeer, LintSeverity::kError, tag,
                                 "pushing this revision strands live peer " +
                                     fp_tag(reader.format) +
                                     ": no transform chain reaches it"));
    } else if (cell.quality == EdgeQuality::kLossy) {
      out.push_back(make_finding(
          AuditCheck::kLossyOnlyPath, LintSeverity::kError, tag,
          "live peer " + fp_tag(reader.format) + " is reachable only via " +
              (cell.hops == 0 ? std::string("a lossy direct conversion")
                              : "a " + std::to_string(cell.hops) + "-hop lossy chain")));
    } else if (cell.quality == EdgeQuality::kDefaulted) {
      out.push_back(make_finding(AuditCheck::kDegradedPath, LintSeverity::kWarning, tag,
                                 "live peer " + fp_tag(reader.format) +
                                     " receives this revision with defaulted fields"));
    }
  }
  sort_findings(out);
  return out;
}

bool AuditReport::breaking() const {
  for (const auto& f : findings) {
    if (f.severity == LintSeverity::kError) return true;
  }
  return false;
}

size_t AuditReport::count(core::LintSeverity sev) const {
  size_t n = 0;
  for (const auto& f : findings) n += f.severity == sev ? 1 : 0;
  return n;
}

}  // namespace morph::analysis
