#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace morph::analysis {

namespace {

using core::LintFinding;
using core::LintSeverity;

std::string hex_fp(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

std::string node_tag(const AuditNode& n) {
  return n.format->name() + "#" + hex_fp(n.format->fingerprint());
}

/// Rank on the loss lattice for a quality name read back from a baseline
/// report; -1 when the name is unknown (future schema revision).
int quality_rank(const std::string& name) {
  for (int q = 0; q <= static_cast<int>(EdgeQuality::kUnreachable); ++q) {
    if (name == edge_quality_name(static_cast<EdgeQuality>(q))) return q;
  }
  return -1;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string lint_finding_json(const core::LintFinding& f) {
  std::ostringstream os;
  os << "{\"check\":\"" << core::lint_check_name(f.check) << "\",\"severity\":\""
     << core::lint_severity_name(f.severity) << "\",\"message\":\"" << json_escape(f.message)
     << "\"";
  if (!f.field.empty()) os << ",\"field\":\"" << json_escape(f.field) << "\"";
  if (f.line > 0) os << ",\"line\":" << f.line;
  os << "}";
  return os.str();
}

std::string audit_finding_json(const AuditFinding& f) {
  std::ostringstream os;
  os << "{\"check\":\"" << audit_check_name(f.check) << "\",\"severity\":\""
     << core::lint_severity_name(f.severity) << "\",\"message\":\"" << json_escape(f.message)
     << "\"";
  if (!f.subject.empty()) os << ",\"subject\":\"" << json_escape(f.subject) << "\"";
  os << "}";
  return os.str();
}

std::string AuditReport::to_text() const {
  std::ostringstream os;
  size_t live = 0;
  size_t stored = 0;
  for (const auto& n : nodes) {
    live += n.live ? 1 : 0;
    stored += n.stored ? 1 : 0;
  }
  os << "evolution audit: " << nodes.size() << " revision" << (nodes.size() == 1 ? "" : "s")
     << " (" << stored << " stored, " << live << " live), " << edges.size() << " transform edge"
     << (edges.size() == 1 ? "" : "s") << "\n";

  if (!nodes.empty()) {
    os << "\nrevisions:\n";
    for (const auto& n : nodes) {
      os << "  " << node_tag(n);
      if (n.stored) os << "  [stored]";
      if (n.live) os << "  [live]";
      os << "\n";
    }
  }

  if (!edges.empty()) {
    os << "\ntransform edges:\n";
    for (const auto& e : edges) {
      size_t src = nodes.size();
      size_t dst = nodes.size();
      for (size_t i = 0; i < nodes.size(); ++i) {
        uint64_t fp = nodes[i].format->fingerprint();
        if (fp == e.src_fp) src = i;
        if (fp == e.dst_fp) dst = i;
      }
      os << "  " << (src < nodes.size() ? node_tag(nodes[src]) : "#" + hex_fp(e.src_fp))
         << " -> " << (dst < nodes.size() ? node_tag(nodes[dst]) : "#" + hex_fp(e.dst_fp))
         << "  " << edge_quality_name(e.quality);
      if (!e.findings.empty()) {
        os << " (" << e.findings.size() << " lint finding" << (e.findings.size() == 1 ? "" : "s")
           << ")";
      }
      os << "\n";
    }
  }

  // Only the off-diagonal reachable cells: the diagonal is trivially exact
  // and unreachable pairs are the matrix's default, so listing either would
  // drown the signal in an N^2 dump.
  size_t listed = 0;
  std::ostringstream cells;
  for (size_t i = 0; i < matrix.size(); ++i) {
    for (size_t j = 0; j < matrix[i].size(); ++j) {
      const MatrixCell& c = matrix[i][j];
      if (i == j || !c.reachable()) continue;
      ++listed;
      cells << "  " << node_tag(nodes[i]) << " => " << node_tag(nodes[j]) << "  "
            << edge_quality_name(c.quality) << "  hops=" << c.hops;
      if (c.min_hops != c.hops) cells << " min_hops=" << c.min_hops;
      cells << "\n";
    }
  }
  if (listed > 0) {
    os << "\nreachability (" << listed << " pair" << (listed == 1 ? "" : "s") << "):\n"
       << cells.str();
  }

  if (!findings.empty()) {
    os << "\nfindings:\n";
    for (const auto& f : findings) os << "  " << f.to_string() << "\n";
  }

  os << "\nsummary: " << count(LintSeverity::kError) << " error(s), "
     << count(LintSeverity::kWarning) << " warning(s), " << count(LintSeverity::kNote)
     << " note(s) -- " << (breaking() ? "BREAKING" : "ok") << "\n";
  return os.str();
}

std::string AuditReport::to_json() const {
  std::ostringstream os;
  size_t live = 0;
  for (const auto& n : nodes) live += n.live ? 1 : 0;
  os << "{\"schema\":\"morph-audit-v1\",";
  os << "\"summary\":{\"nodes\":" << nodes.size() << ",\"edges\":" << edges.size()
     << ",\"live\":" << live << ",\"errors\":" << count(LintSeverity::kError)
     << ",\"warnings\":" << count(LintSeverity::kWarning)
     << ",\"notes\":" << count(LintSeverity::kNote)
     << ",\"breaking\":" << (breaking() ? "true" : "false") << "},";

  os << "\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const AuditNode& n = nodes[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << json_escape(n.format->name()) << "\",\"fingerprint\":\""
       << hex_fp(n.format->fingerprint()) << "\",\"stored\":" << (n.stored ? "true" : "false")
       << ",\"live\":" << (n.live ? "true" : "false") << "}";
  }
  os << "],";

  os << "\"edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    const AuditEdge& e = edges[i];
    if (i > 0) os << ",";
    os << "{\"src\":\"" << hex_fp(e.src_fp) << "\",\"dst\":\"" << hex_fp(e.dst_fp)
       << "\",\"quality\":\"" << edge_quality_name(e.quality) << "\",\"findings\":[";
    for (size_t k = 0; k < e.findings.size(); ++k) {
      if (k > 0) os << ",";
      os << lint_finding_json(e.findings[k]);
    }
    os << "]}";
  }
  os << "],";

  // Off-diagonal reachable cells only; unreachable is the implicit default
  // so a reader reconstructs the full matrix from nodes + these entries.
  os << "\"matrix\":[";
  bool first = true;
  for (size_t i = 0; i < matrix.size(); ++i) {
    for (size_t j = 0; j < matrix[i].size(); ++j) {
      const MatrixCell& c = matrix[i][j];
      if (i == j || !c.reachable()) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"src\":\"" << hex_fp(nodes[i].format->fingerprint()) << "\",\"dst\":\""
         << hex_fp(nodes[j].format->fingerprint()) << "\",\"quality\":\""
         << edge_quality_name(c.quality) << "\",\"hops\":" << c.hops
         << ",\"min_hops\":" << c.min_hops << "}";
    }
  }
  os << "],";

  os << "\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) os << ",";
    os << audit_finding_json(findings[i]);
  }
  os << "]}";
  return os.str();
}

bool BaselineDiff::breaking() const {
  for (const auto& f : findings) {
    if (f.severity == LintSeverity::kError) return true;
  }
  return false;
}

std::string BaselineDiff::to_text() const {
  if (findings.empty()) return "baseline diff: no new breaking findings, no regressions\n";
  std::ostringstream os;
  os << "baseline diff (" << findings.size() << " change" << (findings.size() == 1 ? "" : "s")
     << "):\n";
  for (const auto& f : findings) os << "  " << f.to_string() << "\n";
  return os.str();
}

BaselineDiff diff_against_baseline(const AuditReport& current, const std::string& baseline_json) {
  obs::JsonValue doc = obs::json_parse(baseline_json);
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != "morph-audit-v1") {
    throw Error("baseline is not a morph-audit-v1 report");
  }

  BaselineDiff diff;

  // Error findings the baseline already acknowledged are grandfathered;
  // anything error-severity beyond that set is new and breaking.
  std::set<std::string> known;
  if (const obs::JsonValue* bf = doc.find("findings"); bf != nullptr && bf->is_array()) {
    for (const auto& f : bf->as_array()) {
      const obs::JsonValue* check = f.find("check");
      const obs::JsonValue* subject = f.find("subject");
      const obs::JsonValue* message = f.find("message");
      std::string key = (check != nullptr && check->is_string() ? check->as_string() : "?");
      key += '\x01';
      key += subject != nullptr && subject->is_string() ? subject->as_string() : "";
      key += '\x01';
      key += message != nullptr && message->is_string() ? message->as_string() : "";
      known.insert(std::move(key));
    }
  }
  for (const AuditFinding& f : current.findings) {
    if (f.severity != LintSeverity::kError) continue;
    std::string key = audit_check_name(f.check);
    key += '\x01';
    key += f.subject;
    key += '\x01';
    key += f.message;
    if (known.count(key) != 0) continue;
    AuditFinding nf;
    nf.check = AuditCheck::kNewFinding;
    nf.severity = LintSeverity::kError;
    nf.subject = f.subject;
    nf.message = "not in baseline: " + f.to_string();
    diff.findings.push_back(std::move(nf));
  }

  // Quality regressions: for every node pair the baseline knew, did the
  // cell slide down the lattice? Absent matrix entries mean unreachable on
  // both sides, so only pairs with at least one listed entry can regress.
  std::set<std::string> base_nodes;
  if (const obs::JsonValue* bn = doc.find("nodes"); bn != nullptr && bn->is_array()) {
    for (const auto& n : bn->as_array()) {
      if (const obs::JsonValue* fp = n.find("fingerprint"); fp != nullptr && fp->is_string()) {
        base_nodes.insert(fp->as_string());
      }
    }
  }
  std::map<std::pair<std::string, std::string>, int> base_cells;
  if (const obs::JsonValue* bm = doc.find("matrix"); bm != nullptr && bm->is_array()) {
    for (const auto& cell : bm->as_array()) {
      const obs::JsonValue* src = cell.find("src");
      const obs::JsonValue* dst = cell.find("dst");
      const obs::JsonValue* quality = cell.find("quality");
      if (src == nullptr || dst == nullptr || quality == nullptr) continue;
      int rank = quality_rank(quality->as_string());
      if (rank < 0) continue;
      base_cells[{src->as_string(), dst->as_string()}] = rank;
    }
  }

  for (size_t i = 0; i < current.nodes.size(); ++i) {
    std::string src_hex = hex_fp(current.nodes[i].format->fingerprint());
    if (base_nodes.count(src_hex) == 0) continue;
    for (size_t j = 0; j < current.nodes.size(); ++j) {
      if (i == j) continue;
      std::string dst_hex = hex_fp(current.nodes[j].format->fingerprint());
      if (base_nodes.count(dst_hex) == 0) continue;
      auto it = base_cells.find({src_hex, dst_hex});
      int base_rank =
          it != base_cells.end() ? it->second : static_cast<int>(EdgeQuality::kUnreachable);
      int cur_rank = static_cast<int>(current.matrix[i][j].quality);
      if (cur_rank <= base_rank) continue;
      bool severe = current.matrix[i][j].quality == EdgeQuality::kLossy ||
                    current.matrix[i][j].quality == EdgeQuality::kUnreachable;
      AuditFinding rf;
      rf.check = AuditCheck::kQualityRegression;
      rf.severity = severe ? LintSeverity::kError : LintSeverity::kWarning;
      rf.subject = node_tag(current.nodes[i]);
      rf.message = "chain to " + node_tag(current.nodes[j]) + " regressed from '" +
                   edge_quality_name(static_cast<EdgeQuality>(base_rank)) + "' to '" +
                   edge_quality_name(static_cast<EdgeQuality>(cur_rank)) + "'";
      diff.findings.push_back(std::move(rf));
    }
  }

  std::sort(diff.findings.begin(), diff.findings.end(),
            [](const AuditFinding& a, const AuditFinding& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              if (a.check != b.check) return a.check < b.check;
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.message < b.message;
            });
  return diff;
}

}  // namespace morph::analysis
