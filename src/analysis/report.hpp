// Report rendering and baseline diffing for the evolution audit.
//
// The JSON report ("morph-audit-v1") is the machine contract: sorted node
// order, fingerprints as 16-digit hex strings, no floats — byte-identical
// across runs on the same universe, so a committed report doubles as a
// golden file in CI. The finding object shape ("check" / "severity" /
// "message" / "field" / "line") is shared with morph-lint --json
// ("morph-lint-v1"), so findings from either tool are machine-diffable
// with the same scripts.
#pragma once

#include <string>
#include <vector>

#include "analysis/audit.hpp"

namespace morph::analysis {

/// Escape a string for embedding in a JSON document (the subset
/// obs::json_parse reads back).
std::string json_escape(const std::string& s);

/// One core::LintFinding as the shared JSON finding object.
std::string lint_finding_json(const core::LintFinding& f);

/// One AuditFinding as the shared JSON finding object (subject instead of
/// field/line).
std::string audit_finding_json(const AuditFinding& f);

/// Result of comparing a fresh audit against a previously committed
/// morph-audit-v1 report.
struct BaselineDiff {
  std::vector<AuditFinding> findings;  // kNewFinding / kQualityRegression

  bool breaking() const;
  std::string to_text() const;
};

/// Diff `current` against the JSON text of a previous report: error
/// findings that were not in the baseline, and matrix cells (for node
/// pairs both universes know) whose quality moved down the loss lattice.
/// A cell falling to lossy/unreachable is error-severity; a milder slide
/// is a warning. Throws Error on an unparsable or wrong-schema baseline.
BaselineDiff diff_against_baseline(const AuditReport& current, const std::string& baseline_json);

}  // namespace morph::analysis
