// Static evolution audit over an entire format universe.
//
// The per-spec linter (core/lint.hpp) and the Ecode verifier answer
// point-wise questions: is this one transform safe, does it lose data. This
// layer asks the operator's question before a deployment: given *all* the
// revisions of every data exchange plus the transform catalog — if senders
// start emitting revision N, which deployed peers break, and how good is
// the chain that keeps the rest alive? No message is sent; the whole
// analysis is static.
//
// Model:
//
//  * Nodes are format revisions, identified by fingerprint. A node is
//    "stored" when it came from a registered entry (vs appearing only
//    inside a transform spec) and "live" when the operator declared that a
//    deployed peer still reads exactly that revision.
//
//  * Edges are transform specs. Each edge is classified once on the loss
//    lattice below by reusing the linter's abstract-interpretation
//    summaries; verifier-rejected specs classify as kUnreachable and do
//    not provide connectivity (an enforce-mode receiver would refuse them).
//
//  * The audit computes the full N x N morph-reachability matrix: the
//    transitive closure over transform edges, where chain quality composes
//    *absorptively* (max over the lattice — one lossy hop makes the whole
//    chain lossy), followed by an optional zero-transform delivery link:
//    exact fingerprint identity, or a perfect match modulo layout
//    (core::perfect_match), mirroring exactly what the receiver's
//    Algorithm 2 accepts without reconciliation. The link itself is
//    classified on the lattice: Algorithm 1's diff is width-insensitive,
//    so a "perfect" match whose conversion plan narrows a field is lossy,
//    not layout-only.
//
//  * Fleet findings fall out of the matrix: orphaned revisions no live
//    peer can receive, candidate revisions that would strand a live peer,
//    fingerprint collisions, transform coverage gaps, and — via the
//    report's baseline diff — chain-quality regressions since the last
//    audit.
//
// The three consumers are the fmtsvc PUT gate (AuditPolicy on REGISTER),
// the tools/morph-audit CLI, and the CI corpus gate. See docs/ANALYSIS.md.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/lint.hpp"
#include "core/transform.hpp"
#include "pbio/format.hpp"

namespace morph::analysis {

/// Loss lattice, best to worst. Chain quality is the maximum over the
/// chain's edges (compose()), so a single bad hop is absorptive: nothing
/// later in the chain can un-lose data.
enum class EdgeQuality : uint8_t {
  kExact = 0,    // fingerprint-identical, bytes deliverable in place
  kLayoutOnly,   // perfect match modulo layout; conversion plan only
  kWidening,     // representation changes (wider fields, signedness,
                 // restructuring) but every destination field is computed
                 // and no value is narrowed
  kDefaulted,    // destination fields left to declared defaults/zero-fill
  kLossy,        // values narrowed/truncated or important fields dropped
  kUnreachable,  // no verifier-accepted chain connects the pair
};

const char* edge_quality_name(EdgeQuality q);

/// Absorptive composition: the worse of the two qualities.
constexpr EdgeQuality compose(EdgeQuality a, EdgeQuality b) { return a < b ? b : a; }

/// What an ingest point (fmtsvc REGISTER) does with breaking audit
/// findings, mirroring core::LintPolicy: kOff skips the audit, kWarn logs
/// and counts, kEnforce rejects the revision.
enum class AuditPolicy : uint8_t { kOff, kWarn, kEnforce };

const char* audit_policy_name(AuditPolicy p);

enum class AuditCheck : uint8_t {
  kFingerprintCollision,  // two distinct descriptors share a fingerprint
  kOrphanRevision,        // no live peer can receive this revision
  kStrandedPeer,          // candidate revision cannot reach a live peer
  kLossyOnlyPath,         // a live peer is reachable only via a lossy chain
  kDegradedPath,          // a live peer is reachable only via a defaulted chain
  kCoverageGap,           // revision disconnected from its name family
  kUnknownLiveReader,     // a declared live fingerprint matches no revision
  kQualityRegression,     // baseline diff: a matrix cell got worse
  kNewFinding,            // baseline diff: breaking finding not in baseline
};

const char* audit_check_name(AuditCheck c);

struct AuditFinding {
  AuditCheck check = AuditCheck::kCoverageGap;
  core::LintSeverity severity = core::LintSeverity::kNote;
  std::string subject;  // "Name#fingerprint" of the revision concerned
  std::string message;

  std::string to_string() const;
};

/// One revision-graph node, in report order (sorted by name, then
/// fingerprint — stable across runs because fingerprints are content
/// hashes).
struct AuditNode {
  pbio::FormatPtr format;
  bool stored = false;
  bool live = false;
};

/// One classified transform edge (best spec per (src, dst) pair).
struct AuditEdge {
  uint64_t src_fp = 0;
  uint64_t dst_fp = 0;
  EdgeQuality quality = EdgeQuality::kUnreachable;
  std::vector<core::LintFinding> findings;  // the lint evidence behind quality
};

/// One reachability cell. `hops` counts transform executions on the
/// best-quality chain; `min_hops` is the hop-shortest delivery irrespective
/// of quality — the chain core::analyze_compatibility (and the receiver's
/// BFS closure) would pick.
struct MatrixCell {
  EdgeQuality quality = EdgeQuality::kUnreachable;
  uint32_t hops = 0;
  uint32_t min_hops = 0;

  bool reachable() const { return quality != EdgeQuality::kUnreachable; }
};

struct AuditReport {
  std::vector<AuditNode> nodes;
  std::vector<AuditEdge> edges;                 // sorted by (src_fp, dst_fp)
  std::vector<std::vector<MatrixCell>> matrix;  // [src node][dst node]
  std::vector<AuditFinding> findings;

  /// True when any finding is error-severity (the CLI's exit-1 condition
  /// and the enforce gate's rejection condition).
  bool breaking() const;
  size_t count(core::LintSeverity sev) const;

  /// Aligned text rendering (nodes, edges, matrix, findings, summary).
  std::string to_text() const;
  /// Stable machine-readable report, schema "morph-audit-v1": sorted keys,
  /// fingerprints as 16-digit hex strings, byte-identical across runs on
  /// the same universe. Shared finding shape with morph-lint --json.
  std::string to_json() const;
};

/// The input universe: every revision of every exchange plus the transform
/// catalog, assembled from a fmtsvc FormatStore dump, .eco bundles, or
/// descriptors built in code.
class AuditUniverse {
 public:
  /// Add one revision with the transform specs its writer attached.
  /// Formats referenced only by a spec become non-stored nodes. A
  /// fingerprint collision with a structurally different descriptor is
  /// recorded as an error finding (first descriptor wins).
  void add(const pbio::FormatPtr& format, const std::vector<core::TransformSpec>& transforms,
           bool stored = true);

  /// Add a bare transform spec; its endpoint formats join as non-stored
  /// nodes.
  void add_spec(const core::TransformSpec& spec);

  /// Declare that a deployed peer still reads revision `fingerprint`.
  void declare_live(uint64_t fingerprint);

  size_t size() const { return nodes_.size(); }
  size_t edge_count() const { return specs_.size(); }
  const std::vector<uint64_t>& live() const { return live_; }

  /// Run the full fleet audit.
  AuditReport audit() const;

 private:
  friend std::vector<AuditFinding> audit_candidate(const AuditUniverse&, const pbio::FormatPtr&,
                                                   const std::vector<core::TransformSpec>&);

  struct Node {
    pbio::FormatPtr format;
    bool stored = false;
  };

  void intern(const pbio::FormatPtr& format, bool stored);

  std::vector<Node> nodes_;                       // insertion order
  std::unordered_map<uint64_t, size_t> by_fp_;    // fingerprint -> nodes_ index
  std::vector<core::TransformSpec> specs_;
  std::vector<uint64_t> live_;
  std::unordered_set<uint64_t> live_set_;
  std::vector<AuditFinding> collisions_;  // recorded at add() time
};

/// The PUT gate: audit `format` (+ its attached transforms) as a candidate
/// joining `universe`. Returns findings about the candidate only — a
/// stranded live peer or a lossy-only chain to one is error-severity, a
/// defaulted-only chain is a warning. The universe itself is not modified.
std::vector<AuditFinding> audit_candidate(const AuditUniverse& universe,
                                          const pbio::FormatPtr& format,
                                          const std::vector<core::TransformSpec>& transforms);

/// Classify one transform spec on the loss lattice, surfacing the lint
/// findings that drove the classification. Exposed for tests and the lint
/// CLI's quality column.
EdgeQuality classify_spec(const core::TransformSpec& spec,
                          std::vector<core::LintFinding>* findings = nullptr);

}  // namespace morph::analysis
