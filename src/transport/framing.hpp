// Frame protocol shared by every transport.
//
// A connection carries length-prefixed frames:
//   [u32 length][u8 type][optional u64 trace id][payload ...]
// where length counts everything after itself (type byte, optional trace
// header, payload). Frame types implement the paper's out-of-band meta-data
// channel: format definitions and transform definitions travel once, data
// messages reference formats by the fingerprint in their PBIO header.
//
// Trace header: when bit 0x80 of the type byte is set, an 8-byte trace id
// follows the type byte before the payload (obs/trace.hpp). The bit is
// optional and per-frame, so peers built before the header existed keep
// interoperating: frames they send parse exactly as they always did, and
// tracing-aware senders only set the bit when a trace is active.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"

namespace morph::transport {

enum class FrameType : uint8_t {
  kFormatDef = 1,      // serialized FormatDescriptor
  kTransformDef = 2,   // serialized TransformSpec
  kData = 3,           // PBIO-encoded message
  kControl = 4,        // application-level control payload
  kFmtsvcRequest = 5,  // format-service request (fmtsvc/protocol.hpp)
  kFmtsvcReply = 6,    // format-service reply
  kTelemetry = 7,      // telemetry-plane payload (obs/telemetry.hpp)
  /// Protobuf-encoded message: [u64 format fingerprint][protobuf bytes].
  /// Sent only after the peer announced pbuf acceptance (the "@enc pbuf"
  /// control sentinel — see MessagePort::announce_pbuf), so legacy peers
  /// never see the type. The fingerprint substitutes for the PBIO header:
  /// it names the imported .proto format whose field numbers decode the
  /// payload.
  kPbufData = 8,
};

constexpr uint8_t kMaxFrameType = 8;

/// Type-byte bit marking the presence of the 8-byte trace id header.
constexpr uint8_t kFrameTraceBit = 0x80;

struct Frame {
  FrameType type = FrameType::kData;
  uint64_t trace_id = 0;  // 0 when the frame carried no trace header
  std::vector<uint8_t> payload;
};

constexpr size_t kMaxFrameBytes = 64u << 20;  // hostile-peer allocation cap

/// Append a frame to `out`. A non-zero `trace_id` is propagated in the
/// optional trace header (zero sends the legacy headerless shape).
void write_frame(ByteBuffer& out, FrameType type, const void* payload, size_t size,
                 uint64_t trace_id = 0);

/// Incremental frame decoder: feed raw bytes, pop complete frames.
class FrameAssembler {
 public:
  /// Feed `size` bytes; invokes `sink` for every completed frame.
  /// Throws TransportError on malformed frames (oversized, bad type).
  void feed(const void* data, size_t size, const std::function<void(Frame&)>& sink);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

}  // namespace morph::transport
