// Frame protocol shared by every transport.
//
// A connection carries length-prefixed frames:
//   [u32 length][u8 type][payload ...]
// where length counts type + payload. Frame types implement the paper's
// out-of-band meta-data channel: format definitions and transform
// definitions travel once, data messages reference formats by the
// fingerprint in their PBIO header.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"

namespace morph::transport {

enum class FrameType : uint8_t {
  kFormatDef = 1,     // serialized FormatDescriptor
  kTransformDef = 2,  // serialized TransformSpec
  kData = 3,          // PBIO-encoded message
  kControl = 4,       // application-level control payload
};

struct Frame {
  FrameType type = FrameType::kData;
  std::vector<uint8_t> payload;
};

constexpr size_t kMaxFrameBytes = 64u << 20;  // hostile-peer allocation cap

/// Append a frame to `out`.
void write_frame(ByteBuffer& out, FrameType type, const void* payload, size_t size);

/// Incremental frame decoder: feed raw bytes, pop complete frames.
class FrameAssembler {
 public:
  /// Feed `size` bytes; invokes `sink` for every completed frame.
  /// Throws TransportError on malformed frames (oversized, bad type).
  void feed(const void* data, size_t size, const std::function<void(Frame&)>& sink);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

}  // namespace morph::transport
