// Event-driven reactor transport: 10k+ concurrent peers per process.
//
// The thread-per-connection servers (fmtsvc/server.cpp historically, the
// endpoints in this directory) cap a process at a few thousand peers — one
// OS thread per peer. The reactor replaces that with non-blocking sockets
// multiplexed over edge-triggered epoll:
//
//   Reactor        one event loop on one thread: epoll, an eventfd for
//                  cross-thread wakeups (post()), and a hashed timer wheel
//                  for idle-connection timeouts. Everything about a
//                  connection happens on its owning loop's thread, so
//                  per-connection protocol state needs no locks.
//   AsyncTcpLink   a transport::Link over a non-blocking socket. Reads are
//                  batched: on readiness the loop readv()s into a growable
//                  ring until EAGAIN and hands the bytes to the data
//                  callback in large chunks, so one wakeup typically
//                  delivers many frames. Writes go through a bounded
//                  per-connection outbox (send_shared enqueues the
//                  refcounted payload itself — zero copy until the kernel
//                  write) drained opportunistically and via EPOLLOUT;
//                  overflow means a slow consumer and closes the
//                  connection, counted, instead of buffering unboundedly.
//   ReactorServer  a shared acceptor thread feeding accepted sockets
//                  round-robin to N per-core loops.
//
// Thread-safety contract: send()/send_shared()/close() may be called from
// any thread (they enqueue and wake the owning loop; lifetime is the
// caller's problem — hold shared() across threads). The data callback, the
// accept callback, and the close callback run on the owning loop's thread.
// A connection's callbacks never run concurrently with each other.
//
// Servers ported onto the reactor keep their threaded implementation as a
// differential oracle behind TransportMode (fmtsvc::ServiceOptions,
// echo::EchoTcpNode); MORPH_TRANSPORT=reactor|threaded flips the default,
// which is how CI re-runs the whole middleware suite in reactor mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "transport/link.hpp"
#include "transport/tcp.hpp"

namespace morph::transport {

/// Which serving engine a network server uses. kThreaded is the legacy
/// thread-per-connection path (the differential oracle); kReactor is the
/// epoll event-loop path.
enum class TransportMode { kThreaded, kReactor };

/// Process default, read once from MORPH_TRANSPORT ("reactor" or
/// "threaded"; anything else, or unset, means kThreaded). Lets CI re-run
/// the existing middleware suites in reactor mode without touching tests.
TransportMode default_transport_mode();

const char* transport_mode_name(TransportMode mode);

struct ReactorOptions {
  /// Event loops the server spreads connections over (per-core loops; the
  /// shared acceptor assigns round-robin).
  int loops = 1;
  /// Close connections with no inbound bytes for this long (0 = never).
  /// Timeouts are detected by a coarse timer wheel, so reaping happens
  /// within ~1/8 of the timeout after it elapses, not at the exact instant.
  uint32_t idle_timeout_ms = 0;
  /// Per-connection outbox bound. A connection whose peer reads slower
  /// than we write eventually hits this and is closed (counted in
  /// morph_reactor_backpressure_closes_total) — bounded memory beats an
  /// unbounded buffer to a dead peer.
  size_t max_outbox_bytes = 4u << 20;
  /// Accepts beyond this many live connections are closed immediately
  /// (the client sees EOF, as with fmtsvc's threaded limit).
  size_t max_connections = 1u << 20;
  /// Upper bound on the per-connection receive ring. The ring starts small
  /// and doubles as a single wakeup drains more, so idle connections cost
  /// ~1KB and hot ones batch up to this much per dispatch.
  size_t max_read_batch = 256u << 10;
};

class Reactor;

/// One reactor-owned connection. Created by the acceptor; handed to the
/// application in the on_accept callback, on the owning loop's thread.
class AsyncTcpLink : public Link, public std::enable_shared_from_this<AsyncTcpLink> {
 public:
  ~AsyncTcpLink() override;

  using Link::send;  // keep the ByteBuffer convenience overload visible

  /// Enqueue bytes toward the peer. Never throws and never blocks: bytes
  /// are copied into the outbox and flushed by the loop. After close(), or
  /// on outbox overflow, the bytes are dropped and counted
  /// (morph_reactor_send_drops_total) — an async sender cannot usefully
  /// unwind into, so drops are observable instead of thrown.
  void send(const void* data, size_t size) override;

  /// Enqueue a shared immutable payload: the outbox holds the refcount,
  /// not a copy, so a fan-out group's encode is shared right up to the
  /// kernel write on every member connection.
  void send_shared(SharedPayload payload) override;

  bool connected() const override { return !closed_.load(std::memory_order_acquire); }

  /// Request close. Thread-safe; the actual teardown (epoll removal, close
  /// callback, state destruction) runs on the owning loop.
  void close();

  /// Stable id, unique per process (survives fd reuse).
  uint64_t id() const { return id_; }

  /// The loop that owns this connection.
  Reactor& loop() const { return *loop_; }

  /// Attach per-connection application state; destroyed on the owning
  /// loop's thread when the connection closes. This is where servers hang
  /// their FrameAssembler / MessagePort / Receiver.
  void set_user(std::shared_ptr<void> user) { user_ = std::move(user); }
  template <typename T>
  T* user() const {
    return static_cast<T*>(user_.get());
  }

  /// Shared handle for cross-thread senders: keeps the object (not the
  /// connection) alive, so a send racing a close degrades to a counted
  /// drop instead of a use-after-free.
  std::shared_ptr<AsyncTcpLink> shared() { return shared_from_this(); }

  /// Bytes currently queued toward the peer (diagnostic; racy by nature).
  size_t outbox_bytes() const;

 private:
  friend class Reactor;
  AsyncTcpLink(int fd, Reactor* loop, uint64_t id);

  /// One outbox entry: either owned bytes or a shared payload, partially
  /// written up to `off`.
  struct OutChunk {
    std::vector<uint8_t> owned;
    SharedPayload shared;
    size_t off = 0;
    const uint8_t* data() const { return shared ? shared->data() + off : owned.data() + off; }
    size_t size() const { return (shared ? shared->size() : owned.size()) - off; }
  };

  bool enqueue(OutChunk chunk, size_t size);
  void deliver(const uint8_t* data, size_t size) {
    if (on_data_) on_data_(data, size);
  }

  int fd_;
  Reactor* loop_;
  uint64_t id_;
  std::atomic<bool> closed_{false};

  // Outbox, shared between senders (any thread) and the loop.
  mutable std::mutex out_mutex_;
  std::deque<OutChunk> outbox_;
  size_t out_bytes_ = 0;
  bool flush_queued_ = false;  // a cross-thread flush wakeup is in flight
  bool kill_ = false;          // overflow or fatal error; close is scheduled

  // Loop-thread-only state.
  bool dead_ = false;          // torn down; skip events already harvested
  bool in_wheel_ = false;
  size_t wheel_slot_ = 0;
  size_t wheel_pos_ = 0;
  uint64_t last_active_ms_ = 0;
  std::vector<uint8_t> ring_;  // growable receive ring (head_ + size_)
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  std::shared_ptr<void> user_;
};

/// One epoll event loop on one owned thread.
class Reactor {
 public:
  explicit Reactor(const ReactorOptions& options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Callbacks for connections this loop owns. on_accept runs before any
  /// data is delivered; on_close runs exactly once per accepted connection
  /// unless the reactor itself is being destroyed mid-flight.
  using ConnCallback = std::function<void(AsyncTcpLink&)>;
  void set_on_accept(ConnCallback cb) { on_accept_ = std::move(cb); }
  void set_on_close(ConnCallback cb) { on_close_ = std::move(cb); }

  /// Take ownership of a connected socket (thread-safe; registration and
  /// the on_accept callback run on the loop).
  void adopt(int fd);

  /// Run `fn` on the loop thread (thread-safe). Tasks run in post order,
  /// interleaved with I/O.
  void post(std::function<void()> fn);

  bool on_loop_thread() const { return std::this_thread::get_id() == thread_.get_id(); }

  size_t connections() const { return conn_count_.load(std::memory_order_relaxed); }

  /// Ask the loop to stop; the destructor joins.
  void stop();

  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t idle_timeouts = 0;
    uint64_t backpressure_closes = 0;
    uint64_t send_drops = 0;  // send() calls dropped (closed link or overflow)
    uint64_t bad_callbacks = 0;  // data callbacks that threw (connection closed)
  };
  Stats stats() const;

 private:
  friend class AsyncTcpLink;

  void run();
  void wake();
  void handle_readable(AsyncTcpLink& conn);
  void dispatch_ring(AsyncTcpLink& conn);
  bool flush(AsyncTcpLink& conn);  // loop thread; false if conn was killed
  void queue_flush(std::shared_ptr<AsyncTcpLink> conn);
  void request_close(std::shared_ptr<AsyncTcpLink> conn, const char* reason);
  void close_conn(AsyncTcpLink& conn, const char* reason);
  void wheel_touch(AsyncTcpLink& conn, uint64_t now_ms);
  void wheel_remove(AsyncTcpLink& conn);
  void wheel_advance(uint64_t now_ms);

  ReactorOptions options_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> conn_count_{0};

  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;
  bool wake_pending_ = false;  // guarded by tasks_mutex_

  // Loop-thread-only connection table and per-iteration graveyard (events
  // harvested in an iteration may reference a connection closed earlier in
  // the same iteration; the graveyard keeps the object alive until the
  // iteration ends and dead_ makes the stale event a no-op).
  std::vector<std::shared_ptr<AsyncTcpLink>> graveyard_;
  std::unordered_map<int, std::shared_ptr<AsyncTcpLink>> conns_;

  // Idle timer wheel (loop-thread-only).
  static constexpr size_t kWheelSlots = 64;  // power of two
  std::vector<std::vector<AsyncTcpLink*>> wheel_;
  uint64_t tick_ms_ = 0;
  uint64_t last_tick_ = 0;

  ConnCallback on_accept_;
  ConnCallback on_close_;

  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> closed{0};
    std::atomic<uint64_t> idle_timeouts{0};
    std::atomic<uint64_t> backpressure_closes{0};
    std::atomic<uint64_t> send_drops{0};
    std::atomic<uint64_t> bad_callbacks{0};
  };
  Counters counters_;

  std::thread thread_;  // initialized last: run() starts after members
};

/// A listening socket served by a shared acceptor thread feeding N event
/// loops round-robin. The listener is borrowed and must outlive the server
/// (servers that already own a TcpListener — fmtsvc, the echo node — pass
/// theirs; port() stays wherever it always lived).
class ReactorServer {
 public:
  using ConnCallback = Reactor::ConnCallback;

  /// Serving starts immediately. `on_accept` is required; `on_close` may
  /// be empty.
  ReactorServer(TcpListener& listener, ReactorOptions options, ConnCallback on_accept,
                ConnCallback on_close = {});
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  uint16_t port() const { return listener_.port(); }
  size_t connections() const;
  size_t loop_count() const { return loops_.size(); }
  Reactor& loop(size_t i) { return *loops_[i]; }

  /// Accepts refused because max_connections was reached.
  uint64_t refused() const { return refused_.load(std::memory_order_relaxed); }

  /// Aggregated over all loops.
  Reactor::Stats stats() const;

 private:
  void accept_loop();

  TcpListener& listener_;
  ReactorOptions options_;
  std::vector<std::unique_ptr<Reactor>> loops_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> refused_{0};
  std::atomic<size_t> next_loop_{0};
  std::thread acceptor_;  // initialized last
};

}  // namespace morph::transport
