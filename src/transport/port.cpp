#include "transport/port.hpp"

#include "common/error.hpp"

namespace morph::transport {

MessagePort::MessagePort(Link& link, core::Receiver* receiver)
    : link_(link), receiver_(receiver) {
  link_.set_on_data([this](const uint8_t* data, size_t size) { on_bytes(data, size); });
}

void MessagePort::declare_transform(core::TransformSpec spec) {
  declared_transforms_.push_back(std::move(spec));
  // If the source format already went out, ship the transform immediately
  // so existing peers can use it.
  const auto& s = declared_transforms_.back();
  if (sent_formats_.count(s.src->fingerprint()) != 0) {
    ByteBuffer payload;
    s.serialize(payload);
    ByteBuffer frame;
    write_frame(frame, FrameType::kTransformDef, payload.data(), payload.size());
    link_.send(frame);
    ++stats_.meta_frames_sent;
    stats_.bytes_sent += frame.size();
  }
}

void MessagePort::send_meta_for(const pbio::FormatPtr& fmt) {
  if (!sent_formats_.insert(fmt->fingerprint()).second) return;

  ByteBuffer payload;
  fmt->serialize(payload);
  ByteBuffer frame;
  write_frame(frame, FrameType::kFormatDef, payload.data(), payload.size());
  link_.send(frame);
  ++stats_.meta_frames_sent;
  stats_.bytes_sent += frame.size();

  // Ship every declared transform reachable from this format, walking the
  // retro-transformation chain (Figure 1).
  for (const auto& spec : declared_transforms_) {
    if (spec.src->fingerprint() != fmt->fingerprint()) continue;
    ByteBuffer tp;
    spec.serialize(tp);
    ByteBuffer tf;
    write_frame(tf, FrameType::kTransformDef, tp.data(), tp.size());
    link_.send(tf);
    ++stats_.meta_frames_sent;
    stats_.bytes_sent += tf.size();
    send_meta_for(spec.dst);  // recurse down the chain
  }
}

void MessagePort::send_record(const pbio::FormatPtr& fmt, const void* record) {
  send_meta_for(fmt);
  auto it = encoders_.find(fmt->fingerprint());
  if (it == encoders_.end()) {
    it = encoders_.emplace(fmt->fingerprint(), std::make_unique<pbio::Encoder>(fmt)).first;
  }
  ByteBuffer msg;
  it->second->encode(record, msg);
  ByteBuffer frame;
  write_frame(frame, FrameType::kData, msg.data(), msg.size());
  link_.send(frame);
  ++stats_.data_sent;
  stats_.bytes_sent += frame.size();
}

void MessagePort::send_control(const void* data, size_t size) {
  ByteBuffer frame;
  write_frame(frame, FrameType::kControl, data, size);
  link_.send(frame);
  stats_.bytes_sent += frame.size();
}

void MessagePort::on_bytes(const uint8_t* data, size_t size) {
  assembler_.feed(data, size, [this](Frame& frame) {
    switch (frame.type) {
      case FrameType::kFormatDef: {
        ++stats_.meta_frames_received;
        if (receiver_ == nullptr) return;
        ByteReader r(frame.payload.data(), frame.payload.size());
        receiver_->learn_format(pbio::FormatDescriptor::deserialize(r));
        break;
      }
      case FrameType::kTransformDef: {
        ++stats_.meta_frames_received;
        if (receiver_ == nullptr) return;
        ByteReader r(frame.payload.data(), frame.payload.size());
        receiver_->learn_transform(core::TransformSpec::deserialize(r));
        break;
      }
      case FrameType::kData: {
        ++stats_.data_received;
        if (receiver_ == nullptr) return;
        // Records are valid for the duration of the handler; the arena is
        // recycled per message.
        rx_arena_.reset();
        receiver_->process(frame.payload.data(), frame.payload.size(), rx_arena_);
        break;
      }
      case FrameType::kControl:
        if (on_control_) on_control_(frame.payload.data(), frame.payload.size());
        break;
    }
  });
}

}  // namespace morph::transport
