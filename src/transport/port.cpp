#include "transport/port.hpp"

#include <cstring>
#include <exception>
#include <new>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbuf/schema.hpp"

namespace morph::transport {

namespace {
/// Process-wide port metrics, resolved once. Every MessagePort shares them
/// (the registry aggregates across ports; per-port numbers stay available
/// through MessagePort::stats()).
struct PortMetrics {
  obs::Counter& data_sent = obs::metrics().counter("morph_port_frames_sent_total{type=\"data\"}");
  obs::Counter& meta_sent = obs::metrics().counter("morph_port_frames_sent_total{type=\"meta\"}");
  obs::Counter& bytes_sent = obs::metrics().counter("morph_port_bytes_sent_total");
  obs::Counter& data_received =
      obs::metrics().counter("morph_port_frames_received_total{type=\"data\"}");
  obs::Counter& meta_received =
      obs::metrics().counter("morph_port_frames_received_total{type=\"meta\"}");
  obs::Counter& meta_published = obs::metrics().counter("morph_port_meta_published_total");
  obs::Counter& bad_frames = obs::metrics().counter("morph_port_bad_frames_total");
  obs::Counter& pbuf_sent = obs::metrics().counter("morph_port_frames_sent_total{type=\"pbuf\"}");
  obs::Counter& pbuf_received =
      obs::metrics().counter("morph_port_frames_received_total{type=\"pbuf\"}");
  obs::Counter& pbuf_rejects = obs::metrics().counter("morph_port_pbuf_rejects_total");
  obs::Histogram& send_ns = obs::metrics().histogram("morph_span_ns{span=\"port.send\"}");
  obs::Histogram& deliver_ns = obs::metrics().histogram("morph_span_ns{span=\"port.deliver\"}");
};

PortMetrics& port_metrics() {
  static PortMetrics* m = new PortMetrics();  // leaked: outlives all ports
  return *m;
}
}  // namespace

MessagePort::MessagePort(Link& link, core::Receiver* receiver)
    : link_(link), receiver_(receiver) {
  link_.set_on_data([this](const uint8_t* data, size_t size) { on_bytes(data, size); });
}

void MessagePort::declare_transform(core::TransformSpec spec) {
  declared_transforms_.push_back(std::move(spec));
  // If the source format already went out, ship the transform immediately
  // so existing peers can use it.
  const auto& s = declared_transforms_.back();
  if (sent_formats_.count(s.src->fingerprint()) != 0) {
    ByteBuffer payload;
    s.serialize(payload);
    ByteBuffer frame;
    write_frame(frame, FrameType::kTransformDef, payload.data(), payload.size());
    link_.send(frame);
    ++stats_.meta_frames_sent;
    stats_.bytes_sent += frame.size();
    port_metrics().meta_sent.inc();
    port_metrics().bytes_sent.add(frame.size());
  }
}

void MessagePort::send_meta_for(const pbio::FormatPtr& fmt) {
  if (!sent_formats_.insert(fmt->fingerprint()).second) return;

  if (meta_publisher_) {
    std::vector<core::TransformSpec> attached;
    for (const auto& spec : declared_transforms_) {
      if (spec.src->fingerprint() == fmt->fingerprint()) attached.push_back(spec);
    }
    if (meta_publisher_(fmt, attached)) {
      ++stats_.meta_published;
      port_metrics().meta_published.inc();
      // Chain targets go out of band too, so a receiver fetching this
      // format can resolve the whole retro-transformation chain.
      for (const auto& spec : attached) send_meta_for(spec.dst);
      return;
    }
    // Publisher declined (service down or entry refused): fall through to
    // inline meta-data frames so this format still reaches the peer.
  }

  ByteBuffer payload;
  fmt->serialize(payload);
  ByteBuffer frame;
  write_frame(frame, FrameType::kFormatDef, payload.data(), payload.size());
  link_.send(frame);
  ++stats_.meta_frames_sent;
  stats_.bytes_sent += frame.size();
  port_metrics().meta_sent.inc();
  port_metrics().bytes_sent.add(frame.size());

  // Ship every declared transform reachable from this format, walking the
  // retro-transformation chain (Figure 1).
  for (const auto& spec : declared_transforms_) {
    if (spec.src->fingerprint() != fmt->fingerprint()) continue;
    ByteBuffer tp;
    spec.serialize(tp);
    ByteBuffer tf;
    write_frame(tf, FrameType::kTransformDef, tp.data(), tp.size());
    link_.send(tf);
    ++stats_.meta_frames_sent;
    stats_.bytes_sent += tf.size();
    port_metrics().meta_sent.inc();
    port_metrics().bytes_sent.add(tf.size());
    send_meta_for(spec.dst);  // recurse down the chain
  }
}

void MessagePort::send_record(const pbio::FormatPtr& fmt, const void* record) {
  // With tracing enabled every message gets a trace id — the caller's
  // active one if there is one, else a fresh id — and carries it on the
  // wire so the receiving port (and any broker in between) can correlate
  // its spans with ours.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  if (obs::tracing_enabled()) {
    trace_id = obs::current_trace().trace_id;
    if (trace_id == 0) {
      trace_id = obs::new_trace_id();
    } else {
      // Inherit the caller's active span so our send span parents under it.
      parent_span = obs::current_trace().span_id;
    }
  }
  obs::TraceScope trace_scope(obs::TraceContext{trace_id, parent_span});
  obs::TraceSpan span("port.send", &port_metrics().send_ns);

  send_meta_for(fmt);
  if (peer_accepts_pbuf_ && pbuf_sendable(fmt)) {
    send_record_pbuf(fmt, record, trace_id);
    return;
  }
  auto it = encoders_.find(fmt->fingerprint());
  if (it == encoders_.end()) {
    it = encoders_.emplace(fmt->fingerprint(), std::make_unique<pbio::Encoder>(fmt)).first;
  }
  ByteBuffer msg;
  it->second->encode(record, msg);
  ByteBuffer frame;
  write_frame(frame, FrameType::kData, msg.data(), msg.size(), trace_id);
  link_.send(frame);
  ++stats_.data_sent;
  stats_.bytes_sent += frame.size();
  port_metrics().data_sent.inc();
  port_metrics().bytes_sent.add(frame.size());
}

bool MessagePort::pbuf_sendable(const pbio::FormatPtr& fmt) {
  auto it = pbuf_sendable_.find(fmt->fingerprint());
  if (it == pbuf_sendable_.end()) {
    it = pbuf_sendable_.emplace(fmt->fingerprint(), pbuf::pbuf_encodable(*fmt)).first;
  }
  return it->second;
}

void MessagePort::send_record_pbuf(const pbio::FormatPtr& fmt, const void* record,
                                   uint64_t trace_id) {
  auto it = pbuf_encoders_.find(fmt->fingerprint());
  if (it == pbuf_encoders_.end()) {
    it = pbuf_encoders_.emplace(fmt->fingerprint(), std::make_unique<pbuf::EncodePlan>(fmt))
             .first;
  }
  ByteBuffer msg;
  msg.append_u64(fmt->fingerprint());
  it->second->encode(record, msg);
  ByteBuffer frame;
  write_frame(frame, FrameType::kPbufData, msg.data(), msg.size(), trace_id);
  link_.send(frame);
  ++stats_.data_sent;
  ++stats_.pbuf_sent;
  stats_.bytes_sent += frame.size();
  port_metrics().data_sent.inc();
  port_metrics().pbuf_sent.inc();
  port_metrics().bytes_sent.add(frame.size());
}

void MessagePort::announce_pbuf() {
  send_control(kPbufEnableSentinel, sizeof(kPbufEnableSentinel) - 1);
}

SharedPayload make_shared_frame(const void* msg, size_t size, uint64_t trace_id) {
  auto frame = std::make_shared<ByteBuffer>();
  write_frame(*frame, FrameType::kData, msg, size, trace_id);
  return frame;
}

void MessagePort::send_shared(const pbio::FormatPtr& fmt, const SharedPayload& frame) {
  obs::TraceSpan span("port.send", &port_metrics().send_ns);
  send_meta_for(fmt);
  link_.send_shared(frame);
  ++stats_.data_sent;
  stats_.bytes_sent += frame->size();
  port_metrics().data_sent.inc();
  port_metrics().bytes_sent.add(frame->size());
}

void MessagePort::send_control(const void* data, size_t size) {
  ByteBuffer frame;
  write_frame(frame, FrameType::kControl, data, size);
  link_.send(frame);
  stats_.bytes_sent += frame.size();
}

void MessagePort::on_bytes(const uint8_t* data, size_t size) {
  // A malformed frame (bad type, oversized length, truncated trace
  // header) means the byte stream itself is corrupt: framing never
  // recovers after that, so the port goes wire-dead — every later chunk is
  // dropped — instead of letting TransportError unwind through the link's
  // receive callback into whatever event loop drives it.
  if (wire_dead_) return;
  try {
    feed_frames(data, size);
  } catch (const Error&) {
    wire_dead_ = true;
    ++stats_.bad_frames;
    port_metrics().bad_frames.inc();
  } catch (const std::bad_alloc&) {
    // Allocation failure while assembling or delivering a frame: go
    // wire-dead like any other poisoned stream instead of letting
    // bad_alloc unwind into the event loop driving the link.
    wire_dead_ = true;
    ++stats_.bad_frames;
    port_metrics().bad_frames.inc();
  }
}

void MessagePort::feed_frames(const uint8_t* data, size_t size) {
  assembler_.feed(data, size, [this](Frame& frame) {
    switch (frame.type) {
      case FrameType::kFormatDef: {
        ++stats_.meta_frames_received;
        port_metrics().meta_received.inc();
        if (receiver_ == nullptr) return;
        ByteReader r(frame.payload.data(), frame.payload.size());
        receiver_->learn_format(pbio::FormatDescriptor::deserialize(r));
        break;
      }
      case FrameType::kTransformDef: {
        ++stats_.meta_frames_received;
        port_metrics().meta_received.inc();
        if (receiver_ == nullptr) return;
        ByteReader r(frame.payload.data(), frame.payload.size());
        receiver_->learn_transform(core::TransformSpec::deserialize(r));
        break;
      }
      case FrameType::kData: {
        ++stats_.data_received;
        port_metrics().data_received.inc();
        if (receiver_ == nullptr) return;
        // Adopt the sender's trace id (0 when the frame carried none) for
        // the duration of delivery, so receiver-side spans correlate with
        // the sender's through the wire-propagated id.
        obs::TraceScope trace_scope(obs::TraceContext{frame.trace_id});
        obs::TraceSpan span("port.deliver", &port_metrics().deliver_ns);
        // Records are valid for the duration of the handler; the arena is
        // recycled per message.
        rx_arena_.reset();
        receiver_->process(frame.payload.data(), frame.payload.size(), rx_arena_);
        break;
      }
      case FrameType::kControl: {
        // Encoding negotiation rides the control channel: the sentinel is
        // consumed here, everything else reaches the application handler.
        constexpr size_t kSentinelLen = sizeof(kPbufEnableSentinel) - 1;
        if (frame.payload.size() == kSentinelLen &&
            std::memcmp(frame.payload.data(), kPbufEnableSentinel, kSentinelLen) == 0) {
          peer_accepts_pbuf_ = true;
          break;
        }
        if (on_control_) on_control_(frame.payload.data(), frame.payload.size());
        break;
      }
      case FrameType::kPbufData: {
        ++stats_.data_received;
        ++stats_.pbuf_received;
        port_metrics().data_received.inc();
        port_metrics().pbuf_received.inc();
        if (receiver_ == nullptr) return;
        obs::TraceScope trace_scope(obs::TraceContext{frame.trace_id});
        obs::TraceSpan span("port.deliver", &port_metrics().deliver_ns);
        deliver_pbuf(frame);
        break;
      }
      case FrameType::kFmtsvcRequest:
      case FrameType::kFmtsvcReply:
      case FrameType::kTelemetry:
        // Service-plane frames (format service, telemetry collector)
        // belong on their own connections, never on a data-plane port.
        break;
    }
  });
}

void MessagePort::deliver_pbuf(const Frame& frame) {
  // Unlike a mangled frame header, a hostile protobuf payload leaves the
  // byte stream itself in sync — rejects here are per-frame (counted and
  // flight-recorded), never wire-death, and never an exception through the
  // link's receive callback.
  auto reject = [this](const std::string& detail) {
    ++stats_.pbuf_rejects;
    port_metrics().pbuf_rejects.inc();
    obs::flight_record(obs::FlightKind::kReject, obs::current_trace().trace_id, detail);
  };
  if (frame.payload.size() < 8) {
    reject("port: pbuf frame shorter than its fingerprint header");
    return;
  }
  ByteReader r(frame.payload.data(), frame.payload.size());
  const uint64_t fp = r.read_u64();
  pbio::FormatPtr fmt = receiver_->learned().by_fingerprint(fp);
  if (fmt == nullptr) {
    reject("port: pbuf frame for unknown fingerprint " + std::to_string(fp));
    return;
  }
  auto it = pbuf_decoders_.find(fp);
  if (it == pbuf_decoders_.end()) {
    try {
      it = pbuf_decoders_.emplace(fp, std::make_unique<pbuf::DecodePlan>(fmt)).first;
    } catch (const Error& e) {
      // Negative-cache the failure: a learned-but-not-pbuf-decodable
      // format never becomes decodable (fingerprints are content-based),
      // so later frames for it reject on the map lookup instead of paying
      // plan construction again.
      pbuf_decoders_.emplace(fp, nullptr);
      reject("port: format '" + fmt->name() + "' is not pbuf-decodable: " + e.what());
      return;
    }
  }
  if (it->second == nullptr) {
    reject("port: format '" + fmt->name() + "' is not pbuf-decodable");
    return;
  }
  rx_arena_.reset();
  void* record = nullptr;
  try {
    record = it->second->decode(frame.payload.data() + 8, frame.payload.size() - 8, rx_arena_);
  } catch (const Error& e) {
    // DecodeError (malformed payload, budget) and FormatError alike: a
    // hostile payload is rejected per-frame, never wire-death.
    reject("port: pbuf decode of '" + fmt->name() + "' rejected: " + e.what());
    return;
  } catch (const std::exception& e) {
    // bad_alloc and friends from arena growth stop here too — anything
    // escaping the link's receive callback would kill the connection.
    reject("port: pbuf decode of '" + fmt->name() + "' failed: " + std::string(e.what()));
    return;
  }
  receiver_->process_record(fmt, record, rx_arena_);
}

SharedPayload make_shared_pbuf_frame(uint64_t fingerprint, const void* msg, size_t size,
                                     uint64_t trace_id) {
  ByteBuffer payload;
  payload.append_u64(fingerprint);
  payload.append(msg, size);
  auto frame = std::make_shared<ByteBuffer>();
  write_frame(*frame, FrameType::kPbufData, payload.data(), payload.size(), trace_id);
  return frame;
}

}  // namespace morph::transport
