// Transport abstraction and the in-process implementation.
//
// A Link is one end of a bidirectional byte-stream connection. The
// in-process pair delivers deterministically through explicit pump() calls,
// which keeps middleware tests single-threaded and reproducible; the TCP
// implementation (tcp.hpp) provides the distributed equivalent.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace morph::transport {

/// An immutable, refcounted frame buffer shared across the links of a
/// fan-out group: the broker encodes once, every group member holds a
/// reference, and the last release frees the bytes. Immutability is the
/// contract that makes sharing safe — nobody may mutate the buffer after it
/// is handed to send_shared().
using SharedPayload = std::shared_ptr<const ByteBuffer>;

class Link {
 public:
  using DataCallback = std::function<void(const uint8_t* data, size_t size)>;

  virtual ~Link() = default;

  /// Queue bytes toward the peer.
  virtual void send(const void* data, size_t size) = 0;
  void send(const ByteBuffer& buf) { send(buf.data(), buf.size()); }

  /// Queue a shared immutable payload toward the peer. The default copies
  /// through send() — correct for socket transports, which serialize into
  /// the kernel buffer anyway (the fan-out win there is the single shared
  /// *encode*). In-process links override this to enqueue the reference
  /// itself: zero-copy delivery on the loopback path.
  virtual void send_shared(SharedPayload payload) { send(payload->data(), payload->size()); }

  /// Callback invoked with received bytes during pumping.
  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }

  virtual bool connected() const = 0;

 protected:
  DataCallback on_data_;
};

class InprocLink;

/// A connected pair of in-process links plus the pump that moves queued
/// bytes. Delivery only happens inside pump(), never inside send(), so
/// re-entrant protocols (request triggers response triggers ...) unwind
/// iteratively.
class InprocPair {
 public:
  InprocPair();
  ~InprocPair();

  Link& a();
  Link& b();

  /// Deliver queued bytes in both directions until quiescent. Returns the
  /// number of deliveries performed.
  size_t pump();

 private:
  std::unique_ptr<InprocLink> a_;
  std::unique_ptr<InprocLink> b_;
};

}  // namespace morph::transport
