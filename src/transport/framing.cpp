#include "transport/framing.hpp"

#include <cstring>
#include <string>

#include "common/error.hpp"

namespace morph::transport {

void write_frame(ByteBuffer& out, FrameType type, const void* payload, size_t size,
                 uint64_t trace_id) {
  const size_t header = trace_id != 0 ? 1 + 8 : 1;
  if (size + header > kMaxFrameBytes) throw TransportError("frame too large");
  out.append_u32(static_cast<uint32_t>(size + header));
  uint8_t type_byte = static_cast<uint8_t>(type);
  if (trace_id != 0) type_byte |= kFrameTraceBit;
  out.append_u8(type_byte);
  if (trace_id != 0) out.append_u64(trace_id);
  if (size > 0) out.append(payload, size);
}

void FrameAssembler::feed(const void* data, size_t size,
                          const std::function<void(Frame&)>& sink) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);

  size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    uint32_t len;
    std::memcpy(&len, buffer_.data() + pos, 4);
    if (len == 0 || len > kMaxFrameBytes) throw TransportError("bad frame length");
    if (buffer_.size() - pos - 4 < len) break;
    uint8_t type_byte = buffer_[pos + 4];
    uint8_t type = type_byte & static_cast<uint8_t>(~kFrameTraceBit);
    if (type < 1 || type > kMaxFrameType) {
      throw TransportError("bad frame type " + std::to_string(static_cast<unsigned>(type)));
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    size_t header = 1;
    if ((type_byte & kFrameTraceBit) != 0) {
      if (len < 1 + 8) throw TransportError("bad frame length");  // trace header truncated
      std::memcpy(&frame.trace_id, buffer_.data() + pos + 5, 8);
      header = 1 + 8;
    }
    frame.payload.assign(buffer_.begin() + static_cast<long>(pos + 4 + header),
                         buffer_.begin() + static_cast<long>(pos + 4 + len));
    pos += 4 + len;
    sink(frame);
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(pos));
}

}  // namespace morph::transport
