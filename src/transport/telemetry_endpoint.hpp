// Telemetry plane endpoints: the per-process SpanExporter that drains the
// span ring into kTelemetry frames, and the TelemetryCollector service
// that ingests batches from many processes and stitches them.
//
// SpanExporter is deliberately lock-light on the instrumented paths: spans
// land in the obs span ring exactly as before, and a background thread
// drains the ring (one mutexed move) every interval and ships a
// morph-telemetry-v1 span batch. Failed sends keep spans in a bounded
// pending buffer and retry with a fresh connection next tick; overflow is
// dropped-oldest and counted (morph_telemetry_export_dropped_total), never
// silent.
//
// TelemetryCollector mirrors fmtsvc::FormatService's containment model:
// one acceptor thread, one thread per connection, and a malformed frame
// kills only its own connection (counted in
// morph_telemetry_bad_frames_total).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stitch.hpp"
#include "obs/telemetry.hpp"
#include "transport/tcp.hpp"

namespace morph::transport {

struct ExporterOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;          // collector port (required)
  uint32_t interval_ms = 50;  // drain cadence
  /// Spans kept across failed sends; beyond this the oldest are dropped
  /// and counted.
  size_t max_pending = 8192;
  /// Exporting implies tracing: without it the ring never fills and the
  /// exporter ships nothing. Set false to leave the global switch alone.
  bool enable_tracing = true;
};

/// Background span shipper. Construct after set_process_name() (the name
/// is stamped on every batch); destruction flushes once more, best effort.
class SpanExporter {
 public:
  explicit SpanExporter(ExporterOptions options);
  ~SpanExporter();

  SpanExporter(const SpanExporter&) = delete;
  SpanExporter& operator=(const SpanExporter&) = delete;

  /// Drain the ring and push everything pending to the collector now.
  /// Returns true when the pending buffer is empty afterwards.
  bool flush();

  /// Cumulative spans successfully written to the collector.
  uint64_t exported() const { return exported_.load(std::memory_order_relaxed); }

 private:
  void run();
  bool push_pending_locked();  // requires cycle_mutex_

  ExporterOptions options_;
  std::atomic<uint64_t> exported_{0};
  std::atomic<bool> stop_{false};

  std::mutex cycle_mutex_;  // serializes flush() against the thread's cycles
  std::vector<obs::SpanRecord> pending_;
  std::unique_ptr<TcpLink> link_;  // lazy; reset on send failure

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::thread thread_;  // initialized last
};

struct CollectorOptions {
  uint16_t port = 0;  // 0 picks an ephemeral port; read back with port()
  size_t max_connections = 64;
};

struct CollectorStats {
  uint64_t connections = 0;
  uint64_t batches = 0;
  uint64_t spans = 0;
  uint64_t dumps = 0;
  uint64_t bad_frames = 0;
};

/// Telemetry ingest service. Accepts kTelemetry frames: span batches feed
/// the stitcher, dump requests are answered with the stitched state as
/// morph-telemetry-v1 JSON.
class TelemetryCollector {
 public:
  explicit TelemetryCollector(CollectorOptions options = {});
  ~TelemetryCollector();

  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  uint16_t port() const { return listener_.port(); }
  CollectorStats stats() const;

  const obs::TraceStitcher& stitcher() const { return stitcher_; }

 private:
  struct Conn;

  void accept_loop();
  void serve_conn(Conn& conn);
  void reap_finished();

  CollectorOptions options_;
  obs::TraceStitcher stitcher_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};

  struct Counters {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> spans{0};
    std::atomic<uint64_t> dumps{0};
    std::atomic<uint64_t> bad_frames{0};
  };
  mutable Counters counters_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread acceptor_;  // initialized last: serving starts after members
};

/// One-shot client: ask a running collector for its stitched-state JSON.
/// Throws TransportError/DecodeError on connection or protocol failure.
std::string fetch_telemetry_dump(const std::string& host, uint16_t port,
                                 uint32_t timeout_ms = 5000);

}  // namespace morph::transport
