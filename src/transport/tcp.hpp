// TCP transport: a Link over a socket, for genuinely distributed peers.
//
// Blocking sends (records are small relative to socket buffers) and
// poll-driven receives through pump(). Single owner per link; no internal
// threads — callers decide the threading model.
#pragma once

#include <memory>
#include <string>

#include "transport/link.hpp"

namespace morph::transport {

class TcpLink : public Link {
 public:
  /// Connect to host:port. Throws TransportError.
  static std::unique_ptr<TcpLink> connect(const std::string& host, uint16_t port);

  ~TcpLink() override;
  using Link::send;  // keep the ByteBuffer convenience overload visible
  void send(const void* data, size_t size) override;
  bool connected() const override { return fd_ >= 0; }

  /// Wait up to `timeout_ms` for readable data, deliver it via the data
  /// callback. Returns false once the peer has closed.
  bool pump(int timeout_ms);

  void close();
  int fd() const { return fd_; }

  /// Relinquish ownership of the socket (handoff to the reactor): returns
  /// the fd and leaves this link closed.
  int release_fd() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  friend class TcpListener;
  explicit TcpLink(int fd) : fd_(fd) {}
  int fd_ = -1;
};

class TcpListener {
 public:
  /// Bind and listen on 127.0.0.1:`port` (0 picks an ephemeral port).
  explicit TcpListener(uint16_t port = 0);
  ~TcpListener();

  uint16_t port() const { return port_; }

  /// Accept one connection, waiting up to `timeout_ms`. nullptr on timeout.
  std::unique_ptr<TcpLink> accept(int timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace morph::transport
