#include "transport/telemetry_endpoint.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "transport/framing.hpp"

namespace morph::transport {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

/// Process-wide exporter metrics, resolved once.
struct ExportMetrics {
  obs::Counter& batches = obs::metrics().counter("morph_telemetry_export_batches_total");
  obs::Counter& spans = obs::metrics().counter("morph_telemetry_export_spans_total");
  obs::Counter& dropped = obs::metrics().counter("morph_telemetry_export_dropped_total");
  obs::Counter& send_failures =
      obs::metrics().counter("morph_telemetry_export_send_failures_total");
  // Conservation inputs, read (not owned) by name: how many morphs this
  // process performed and how many spans the ring already evicted. The
  // lookups create the counters at zero when the instrumented code never
  // ran — harmless, and it keeps obs free of upward dependencies.
  obs::Counter& rx_morphs = obs::metrics().counter("morph_rx_morphs_total");
  obs::Counter& fanout_morphs = obs::metrics().counter("echo_fanout_morphs_total");
  obs::Counter& ring_dropped = obs::metrics().counter("morph_obs_spans_dropped_total");
};

ExportMetrics& xm() {
  static ExportMetrics& m = *new ExportMetrics();  // leaked: outlives static dtors
  return m;
}

/// Process-wide collector metrics.
struct CollectorMetrics {
  obs::Counter& batches = obs::metrics().counter("morph_telemetry_batches_total");
  obs::Counter& spans = obs::metrics().counter("morph_telemetry_spans_total");
  obs::Counter& dumps = obs::metrics().counter("morph_telemetry_dumps_total");
  obs::Counter& bad_frames = obs::metrics().counter("morph_telemetry_bad_frames_total");
  obs::Gauge& live_conns = obs::metrics().gauge("morph_telemetry_connections");
};

CollectorMetrics& cm() {
  static CollectorMetrics& m = *new CollectorMetrics();  // leaked
  return m;
}

}  // namespace

SpanExporter::SpanExporter(ExporterOptions options) : options_(std::move(options)) {
  if (options_.enable_tracing) obs::set_tracing(true);
  thread_ = std::thread([this] { run(); });
}

SpanExporter::~SpanExporter() {
  stop_.store(true, kRelaxed);
  wake_.notify_all();
  thread_.join();
  flush();  // last chance for spans recorded since the final cycle
}

void SpanExporter::run() {
  std::unique_lock<std::mutex> wake_lock(wake_mutex_);
  while (!stop_.load(kRelaxed)) {
    wake_.wait_for(wake_lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_.load(kRelaxed); });
    if (stop_.load(kRelaxed)) break;
    std::lock_guard<std::mutex> cycle(cycle_mutex_);
    push_pending_locked();
  }
}

bool SpanExporter::flush() {
  std::lock_guard<std::mutex> cycle(cycle_mutex_);
  return push_pending_locked();
}

bool SpanExporter::push_pending_locked() {
  auto drained = obs::drain_spans();
  pending_.insert(pending_.end(), std::make_move_iterator(drained.begin()),
                  std::make_move_iterator(drained.end()));
  if (pending_.size() > options_.max_pending) {
    size_t excess = pending_.size() - options_.max_pending;
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(excess));
    xm().dropped.add(excess);
  }
  if (pending_.empty()) return true;

  while (!pending_.empty()) {
    size_t take = std::min(pending_.size(), static_cast<size_t>(obs::kMaxSpansPerBatch));
    obs::SpanBatch batch;
    batch.process = obs::process_name();
    batch.spans.assign(std::make_move_iterator(pending_.begin()),
                       std::make_move_iterator(pending_.begin() + static_cast<ptrdiff_t>(take)));
    batch.exported_total = exported_.load(kRelaxed) + take;
    batch.dropped_total = xm().ring_dropped.value() + xm().dropped.value();
    batch.morphs_total = xm().rx_morphs.value() + xm().fanout_morphs.value();
    auto payload = obs::encode_span_batch(batch);
    ByteBuffer frame;
    write_frame(frame, FrameType::kTelemetry, payload.data(), payload.size());
    try {
      if (link_ == nullptr || !link_->connected()) {
        link_ = TcpLink::connect(options_.host, options_.port);
      }
      link_->send(frame);
    } catch (const Error&) {
      // Collector down or mid-restart: put the spans back (order
      // preserved) and retry with a fresh connection next cycle.
      xm().send_failures.inc();
      link_.reset();
      for (size_t i = 0; i < take; ++i) {
        pending_[i] = std::move(batch.spans[i]);
      }
      return false;
    }
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(take));
    exported_.fetch_add(take, kRelaxed);
    xm().batches.inc();
    xm().spans.add(take);
  }
  return true;
}

struct TelemetryCollector::Conn {
  std::unique_ptr<TcpLink> link;
  std::thread thread;
  std::atomic<bool> done{false};
};

TelemetryCollector::TelemetryCollector(CollectorOptions options)
    : options_(options), listener_(options.port), acceptor_([this] { accept_loop(); }) {}

TelemetryCollector::~TelemetryCollector() {
  stop_.store(true, kRelaxed);
  acceptor_.join();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  // Handlers poll in <=100ms slices and re-check stop_, so joining
  // suffices; closing their links here would race the handlers.
  for (auto& conn : conns_) conn->thread.join();
  conns_.clear();
}

CollectorStats TelemetryCollector::stats() const {
  CollectorStats s;
  s.connections = counters_.connections.load(kRelaxed);
  s.batches = counters_.batches.load(kRelaxed);
  s.spans = counters_.spans.load(kRelaxed);
  s.dumps = counters_.dumps.load(kRelaxed);
  s.bad_frames = counters_.bad_frames.load(kRelaxed);
  return s;
}

void TelemetryCollector::reap_finished() {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) {
    if (!c->done.load(kRelaxed)) return false;
    c->thread.join();
    return true;
  });
}

void TelemetryCollector::accept_loop() {
  while (!stop_.load(kRelaxed)) {
    std::unique_ptr<TcpLink> link;
    try {
      link = listener_.accept(100);
    } catch (const Error& e) {
      MORPH_LOG_WARN("telemetry") << "accept failed: " << e.what();
      continue;
    }
    if (link == nullptr) continue;
    reap_finished();
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (conns_.size() >= options_.max_connections) {
      MORPH_LOG_WARN("telemetry") << "connection limit reached, refusing exporter";
      continue;  // link closes on scope exit; exporter retries next cycle
    }
    counters_.connections.fetch_add(1, kRelaxed);
    auto conn = std::make_unique<Conn>();
    conn->link = std::move(link);
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      cm().live_conns.add(1);
      serve_conn(*raw);
      cm().live_conns.add(-1);
      raw->done.store(true, kRelaxed);
    });
    conns_.push_back(std::move(conn));
  }
}

void TelemetryCollector::serve_conn(Conn& conn) {
  FrameAssembler assembler;
  conn.link->set_on_data([&](const uint8_t* data, size_t size) {
    assembler.feed(data, size, [&](Frame& frame) {
      if (frame.type != FrameType::kTelemetry) {
        throw TransportError("telemetry: unexpected frame type on collector connection");
      }
      uint8_t op = obs::telemetry_op(frame.payload.data(), frame.payload.size());
      if (op == static_cast<uint8_t>(obs::TelemetryOp::kSpanBatch)) {
        auto batch = obs::decode_span_batch(frame.payload.data(), frame.payload.size());
        counters_.batches.fetch_add(1, kRelaxed);
        counters_.spans.fetch_add(batch.spans.size(), kRelaxed);
        cm().batches.inc();
        cm().spans.add(batch.spans.size());
        stitcher_.ingest(batch);
      } else if (op == static_cast<uint8_t>(obs::TelemetryOp::kDumpRequest)) {
        counters_.dumps.fetch_add(1, kRelaxed);
        cm().dumps.inc();
        auto payload = obs::encode_dump_reply(stitcher_.to_json());
        ByteBuffer out;
        write_frame(out, FrameType::kTelemetry, payload.data(), payload.size());
        conn.link->send(out);
      } else {
        throw DecodeError("telemetry: unknown op " + std::to_string(op));
      }
    });
  });
  try {
    while (!stop_.load(kRelaxed) && conn.link->pump(100)) {
    }
  } catch (const Error& e) {
    // Malformed frame or the peer vanished mid-write: this connection is
    // done, the collector keeps serving everyone else.
    counters_.bad_frames.fetch_add(1, kRelaxed);
    cm().bad_frames.inc();
    MORPH_LOG_WARN("telemetry") << "connection dropped: " << e.what();
  }
  conn.link->close();
}

std::string fetch_telemetry_dump(const std::string& host, uint16_t port, uint32_t timeout_ms) {
  auto link = TcpLink::connect(host, port);
  auto request = obs::encode_dump_request();
  ByteBuffer frame;
  write_frame(frame, FrameType::kTelemetry, request.data(), request.size());
  link->send(frame);

  FrameAssembler assembler;
  std::string json;
  bool got_reply = false;
  link->set_on_data([&](const uint8_t* data, size_t size) {
    assembler.feed(data, size, [&](Frame& f) {
      if (f.type != FrameType::kTelemetry) {
        throw TransportError("telemetry: unexpected frame type in dump reply");
      }
      json = obs::decode_dump_reply(f.payload.data(), f.payload.size());
      got_reply = true;
    });
  });
  // Pump in slices until the reply lands or the deadline passes.
  uint32_t waited = 0;
  while (!got_reply && waited < timeout_ms) {
    if (!link->pump(100)) break;
    waited += 100;
  }
  if (!got_reply) throw TransportError("telemetry: no dump reply from collector");
  return json;
}

}  // namespace morph::transport
