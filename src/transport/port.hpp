// MessagePort: the morphing middleware endpoint over a Link.
//
// A port implements the paper's out-of-band meta-data discipline:
//   * the first time a format is sent, its FormatDescriptor — and every
//     transform spec reachable from it — travels as meta-data frames;
//   * subsequent messages of that format cost only the 16-byte PBIO header;
//   * the receiving port feeds learned formats/transforms into its
//     core::Receiver and pushes every data frame through Algorithm 2.
//
// Control frames bypass morphing and deliver raw bytes (ECho uses them for
// its own bootstrap before formats are established).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/receiver.hpp"
#include "pbio/encode.hpp"
#include "pbuf/bridge.hpp"
#include "transport/framing.hpp"
#include "transport/link.hpp"

namespace morph::transport {

/// Control sentinel a port sends to announce it accepts protobuf-encoded
/// data frames (FrameType::kPbufData). The remote port consumes it during
/// frame dispatch — it never reaches the application control handler — and
/// ports that predate the sentinel deliver it as an ordinary control
/// payload, which applications ignore by convention; such peers simply
/// never set the bit and keep receiving PBIO.
inline constexpr char kPbufEnableSentinel[] = "@enc pbuf";

class MessagePort {
 public:
  /// `receiver` may be null for a send-only port. Both must outlive the
  /// port.
  MessagePort(Link& link, core::Receiver* receiver);

  /// Declare a transform to ship alongside its source format (the sender
  /// side of "the writer may also specify a set of transformations").
  void declare_transform(core::TransformSpec spec);

  /// Encode and send a record; lazily sends format + transform meta-data.
  void send_record(const pbio::FormatPtr& fmt, const void* record);

  /// Send a pre-built shared data frame of format `fmt` (see
  /// make_shared_frame). Per-port meta-data for the format still goes out
  /// first — once, lazily, exactly as send_record does — but the payload
  /// bytes themselves are shared: the broker encodes one frame and every
  /// port in the fan-out group forwards the same buffer.
  void send_shared(const pbio::FormatPtr& fmt, const SharedPayload& frame);

  /// Announce to the peer that this port accepts protobuf-encoded data
  /// frames. After the announcement round-trips, the peer's send_record
  /// switches to FrameType::kPbufData for every pbuf-encodable format
  /// (formats without protobuf field numbers keep using PBIO frames).
  void announce_pbuf();

  /// True once the peer announced pbuf acceptance ("@enc pbuf" arrived).
  bool peer_accepts_pbuf() const { return peer_accepts_pbuf_; }

  /// Raw control payload.
  void send_control(const void* data, size_t size);
  void set_on_control(std::function<void(const uint8_t*, size_t)> cb) {
    on_control_ = std::move(cb);
  }

  /// Out-of-band meta-data distribution hook. When set, a first-contact
  /// format (plus the transforms declared for it) is offered to the
  /// publisher — typically fmtsvc::FormatResolver::publish — instead of
  /// being framed inline. A false return (service unreachable or entry
  /// refused) degrades gracefully: the port falls back to inline
  /// kFormatDef/kTransformDef frames for that format, so peers without
  /// service access still learn it. Transforms declared after their source
  /// format already went out always travel inline.
  using MetaPublisher =
      std::function<bool(const pbio::FormatPtr&, const std::vector<core::TransformSpec>&)>;
  void set_meta_publisher(MetaPublisher publisher) { meta_publisher_ = std::move(publisher); }

  struct PortStats {
    uint64_t data_sent = 0;
    uint64_t data_received = 0;
    uint64_t meta_frames_sent = 0;
    uint64_t meta_frames_received = 0;
    uint64_t meta_published = 0;  // formats handed to the meta publisher
    uint64_t bytes_sent = 0;
    uint64_t bad_frames = 0;  // malformed frames; the port is wire-dead after one
    uint64_t pbuf_sent = 0;      // data frames that went out protobuf-encoded
    uint64_t pbuf_received = 0;  // kPbufData frames that arrived
    uint64_t pbuf_rejects = 0;   // pbuf frames dropped (bad payload/unknown format)
  };
  const PortStats& stats() const { return stats_; }

  /// True once a malformed frame poisoned the byte stream: the port stops
  /// processing input (framing cannot resynchronize) but never throws
  /// through the link's receive callback.
  bool wire_dead() const { return wire_dead_; }

 private:
  void on_bytes(const uint8_t* data, size_t size);
  void feed_frames(const uint8_t* data, size_t size);
  void send_meta_for(const pbio::FormatPtr& fmt);
  bool pbuf_sendable(const pbio::FormatPtr& fmt);
  void send_record_pbuf(const pbio::FormatPtr& fmt, const void* record, uint64_t trace_id);
  void deliver_pbuf(const Frame& frame);

  Link& link_;
  core::Receiver* receiver_;
  FrameAssembler assembler_;
  std::unordered_set<uint64_t> sent_formats_;
  std::vector<core::TransformSpec> declared_transforms_;
  std::unordered_map<uint64_t, std::unique_ptr<pbio::Encoder>> encoders_;
  std::unordered_map<uint64_t, std::unique_ptr<pbuf::EncodePlan>> pbuf_encoders_;
  std::unordered_map<uint64_t, std::unique_ptr<pbuf::DecodePlan>> pbuf_decoders_;
  std::unordered_map<uint64_t, bool> pbuf_sendable_;  // pbuf_encodable, cached
  std::function<void(const uint8_t*, size_t)> on_control_;
  MetaPublisher meta_publisher_;
  RecordArena rx_arena_;
  PortStats stats_;
  bool wire_dead_ = false;
  bool peer_accepts_pbuf_ = false;
};

/// Build a complete kData frame around an already-encoded PBIO message —
/// the shared encode of a fan-out group, ready for MessagePort::send_shared
/// on every member port. A non-zero `trace_id` travels in the frame's trace
/// header, as in send_record.
SharedPayload make_shared_frame(const void* msg, size_t size, uint64_t trace_id = 0);

/// Build a complete kPbufData frame around an already protobuf-encoded
/// payload: the fan-out group's shared encode for pbuf-speaking sinks.
/// `fingerprint` names the format the payload was encoded from (the
/// receiving port resolves it against its learned registry).
SharedPayload make_shared_pbuf_frame(uint64_t fingerprint, const void* msg, size_t size,
                                     uint64_t trace_id = 0);

}  // namespace morph::transport
