#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace morph::transport {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}
}  // namespace

std::unique_ptr<TcpLink> TcpLink::connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("bad address '" + host + "'");
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINTR) {
    // Interrupted after the SYN went out: the handshake keeps completing
    // asynchronously, and re-calling connect() meanwhile returns EALREADY
    // (or EISCONN once done) — retrying the call cannot distinguish
    // in-progress from failed. POSIX's answer is to wait for writability
    // and read the real outcome from SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    int pr;
    do {
      pr = ::poll(&pfd, 1, -1);
    } while (pr < 0 && errno == EINTR);
    if (pr < 0) {
      ::close(fd);
      fail("poll (connect)");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      ::close(fd);
      fail("getsockopt SO_ERROR");
    }
    if (err != 0) {
      ::close(fd);
      errno = err;
      fail("connect");
    }
  } else if (rc != 0) {
    ::close(fd);
    fail("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::unique_ptr<TcpLink>(new TcpLink(fd));
}

TcpLink::~TcpLink() { close(); }

void TcpLink::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpLink::send(const void* data, size_t size) {
  if (fd_ < 0) throw TransportError("send on closed link");
  const auto* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
}

bool TcpLink::pump(int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) {
    if (errno == EINTR) return true;
    fail("poll");
  }
  if (r == 0) return true;  // timeout, still connected
  // Drain the socket for this readiness event instead of taking one
  // fixed-size bite: a sender that batched many frames costs one poll and
  // a few large recvs, not one poll per 64KB. Bounded per call so one
  // firehose peer cannot starve a caller multiplexing several links.
  uint8_t buf[64 * 1024];
  size_t drained = 0;
  constexpr size_t kMaxDrainPerPump = 1u << 20;
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      fail("recv");
    }
    if (n == 0) {
      close();
      return false;
    }
    if (on_data_) on_data_(buf, static_cast<size_t>(n));
    drained += static_cast<size_t>(n);
    if (static_cast<size_t>(n) < sizeof buf || drained >= kMaxDrainPerPump) {
      return true;  // short read: socket drained (or per-call bound hit)
    }
  }
}

TcpListener::TcpListener(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) fail("bind");
  // Deep backlog (kernel clamps to somaxconn): connection-scale clients
  // arrive in storms, and a backlog of 16 turns those into ECONNREFUSED.
  if (::listen(fd_, 4096) != 0) fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) fail("getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpLink> TcpListener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) {
    if (errno == EINTR) return nullptr;  // signal: report as a timeout
    fail("poll");
  }
  if (r == 0) return nullptr;
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ECONNABORTED) return nullptr;  // peer gave up while queued
    fail("accept");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::unique_ptr<TcpLink>(new TcpLink(fd));
}

}  // namespace morph::transport
