#include "transport/stats_endpoint.hpp"

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace morph::transport {

StatsServer::StatsServer(uint16_t port, obs::MetricsRegistry* registry)
    : registry_(registry != nullptr ? *registry : obs::MetricsRegistry::global()),
      listener_(port),
      thread_([this] { serve_loop(); }) {}

StatsServer::~StatsServer() {
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
}

void StatsServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    try {
      auto link = listener_.accept(100);
      if (link != nullptr) handle(*link);
    } catch (const Error& e) {
      // A misbehaving client must not take the endpoint down.
      MORPH_LOG_WARN("stats") << "request failed: " << e.what();
    }
  }
}

void StatsServer::handle(TcpLink& link) {
  // Accumulate until the request head is complete; a scraper that dawdles
  // longer than ~2s forfeits its response.
  std::string request;
  link.set_on_data([&](const uint8_t* d, size_t n) {
    request.append(reinterpret_cast<const char*>(d), n);
  });
  for (int rounds = 0; rounds < 20; ++rounds) {
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;
    }
    if (!link.pump(100)) return;  // peer went away
    if (stop_.load(std::memory_order_relaxed)) return;
  }

  std::string path = "/";
  if (request.compare(0, 4, "GET ") == 0) {
    size_t end = request.find(' ', 4);
    if (end != std::string::npos) path = request.substr(4, end - 4);
  }

  std::string body;
  const char* content_type;
  if (path == "/metrics") {
    body = obs::to_prometheus(registry_.snapshot());
    content_type = "text/plain; version=0.0.4";
  } else {
    body = obs::to_json(registry_.snapshot(), obs::recent_spans(), obs::flight_events());
    content_type = "application/json";
  }

  char head[256];
  int n = std::snprintf(head, sizeof head,
                        "HTTP/1.0 200 OK\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n\r\n",
                        content_type, body.size());
  link.send(head, static_cast<size_t>(n));
  link.send(body.data(), body.size());
}

}  // namespace morph::transport
