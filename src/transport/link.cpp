#include "transport/link.hpp"

namespace morph::transport {

class InprocLink : public Link {
 public:
  void send(const void* data, size_t size) override {
    const auto* p = static_cast<const uint8_t*>(data);
    outbox_.push_back(Chunk{{p, p + size}, nullptr});
  }

  /// Zero-copy: the queue holds the refcount, not a copy. The payload is
  /// released when the chunk is delivered (or the link destroyed).
  void send_shared(SharedPayload payload) override {
    outbox_.push_back(Chunk{{}, std::move(payload)});
  }

  bool connected() const override { return peer_ != nullptr; }

  /// A queued chunk either owns its bytes (plain send) or shares them with
  /// every other link in a fan-out group (send_shared).
  struct Chunk {
    std::vector<uint8_t> owned;
    SharedPayload shared;
  };

  InprocLink* peer_ = nullptr;
  std::deque<Chunk> outbox_;

  /// Move one queued chunk to the peer. Returns false when idle.
  bool deliver_one() {
    if (outbox_.empty() || peer_ == nullptr) return false;
    Chunk chunk = std::move(outbox_.front());
    outbox_.pop_front();
    const uint8_t* data = chunk.shared != nullptr ? chunk.shared->data() : chunk.owned.data();
    size_t size = chunk.shared != nullptr ? chunk.shared->size() : chunk.owned.size();
    if (peer_->on_data_) peer_->on_data_(data, size);
    return true;
  }
};

InprocPair::InprocPair() : a_(std::make_unique<InprocLink>()), b_(std::make_unique<InprocLink>()) {
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

InprocPair::~InprocPair() = default;

Link& InprocPair::a() { return *a_; }
Link& InprocPair::b() { return *b_; }

size_t InprocPair::pump() {
  size_t deliveries = 0;
  for (;;) {
    bool moved = false;
    if (a_->deliver_one()) {
      moved = true;
      ++deliveries;
    }
    if (b_->deliver_one()) {
      moved = true;
      ++deliveries;
    }
    if (!moved) return deliveries;
  }
}

}  // namespace morph::transport
