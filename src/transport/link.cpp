#include "transport/link.hpp"

namespace morph::transport {

class InprocLink : public Link {
 public:
  void send(const void* data, size_t size) override {
    const auto* p = static_cast<const uint8_t*>(data);
    outbox_.emplace_back(p, p + size);
  }

  bool connected() const override { return peer_ != nullptr; }

  InprocLink* peer_ = nullptr;
  std::deque<std::vector<uint8_t>> outbox_;

  /// Move one queued chunk to the peer. Returns false when idle.
  bool deliver_one() {
    if (outbox_.empty() || peer_ == nullptr) return false;
    std::vector<uint8_t> chunk = std::move(outbox_.front());
    outbox_.pop_front();
    if (peer_->on_data_) peer_->on_data_(chunk.data(), chunk.size());
    return true;
  }
};

InprocPair::InprocPair() : a_(std::make_unique<InprocLink>()), b_(std::make_unique<InprocLink>()) {
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

InprocPair::~InprocPair() = default;

Link& InprocPair::a() { return *a_; }
Link& InprocPair::b() { return *b_; }

size_t InprocPair::pump() {
  size_t deliveries = 0;
  for (;;) {
    bool moved = false;
    if (a_->deliver_one()) {
      moved = true;
      ++deliveries;
    }
    if (b_->deliver_one()) {
      moved = true;
      ++deliveries;
    }
    if (!moved) return deliveries;
  }
}

}  // namespace morph::transport
