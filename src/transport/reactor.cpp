#include "transport/reactor.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace morph::transport {

namespace {

uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull + static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t monotonic_ms() { return monotonic_ns() / 1'000'000ull; }

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw TransportError("fcntl O_NONBLOCK: " + std::string(strerror(errno)));
  }
}

/// Process-wide reactor metrics, looked up once (references stay valid for
/// the registry's lifetime). Leaked singleton, same idiom as PortMetrics.
struct ReactorMetrics {
  obs::Gauge& connections = obs::metrics().gauge("morph_reactor_connections");
  obs::Gauge& outbox_bytes = obs::metrics().gauge("morph_reactor_outbox_bytes");
  obs::Histogram& loop_ns = obs::metrics().histogram("morph_reactor_loop_ns");
  obs::Histogram& dispatch_ns = obs::metrics().histogram("morph_reactor_dispatch_ns");
  obs::Counter& accepted = obs::metrics().counter("morph_reactor_accepted_total");
  obs::Counter& closed = obs::metrics().counter("morph_reactor_closed_total");
  obs::Counter& refused = obs::metrics().counter("morph_reactor_refused_total");
  obs::Counter& idle_timeouts = obs::metrics().counter("morph_reactor_idle_timeouts_total");
  obs::Counter& backpressure_closes =
      obs::metrics().counter("morph_reactor_backpressure_closes_total");
  obs::Counter& send_drops = obs::metrics().counter("morph_reactor_send_drops_total");
  obs::Counter& wakeups = obs::metrics().counter("morph_reactor_wakeups_total");
  obs::Counter& bad_callbacks = obs::metrics().counter("morph_reactor_bad_callbacks_total");
};

ReactorMetrics& gm() {
  static ReactorMetrics* m = new ReactorMetrics();  // leaked: refs live forever
  return *m;
}

std::atomic<uint64_t> g_next_link_id{1};

// First allocation of a connection's receive ring. Kept small: at 10k+
// mostly-quiet peers the rings dominate the process RSS, and a busy
// connection doubles its way up to max_read_batch within a few wakeups.
constexpr size_t kInitialRing = 4u << 10;
constexpr int kMaxEvents = 256;
constexpr int kFlushIov = 16;  // outbox chunks gathered per sendmsg

}  // namespace

TransportMode default_transport_mode() {
  static const TransportMode mode = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once before threads spawn
    const char* env = std::getenv("MORPH_TRANSPORT");
    if (env != nullptr && std::string(env) == "reactor") return TransportMode::kReactor;
    return TransportMode::kThreaded;
  }();
  return mode;
}

const char* transport_mode_name(TransportMode mode) {
  return mode == TransportMode::kReactor ? "reactor" : "threaded";
}

// ---------------------------------------------------------------------------
// AsyncTcpLink

AsyncTcpLink::AsyncTcpLink(int fd, Reactor* loop, uint64_t id) : fd_(fd), loop_(loop), id_(id) {}

AsyncTcpLink::~AsyncTcpLink() {
  if (fd_ >= 0) ::close(fd_);
}

void AsyncTcpLink::send(const void* data, size_t size) {
  if (size == 0) return;
  OutChunk chunk;
  chunk.owned.assign(static_cast<const uint8_t*>(data), static_cast<const uint8_t*>(data) + size);
  enqueue(std::move(chunk), size);
}

void AsyncTcpLink::send_shared(SharedPayload payload) {
  if (!payload || payload->empty()) return;
  const size_t size = payload->size();
  OutChunk chunk;
  chunk.shared = std::move(payload);
  enqueue(std::move(chunk), size);
}

bool AsyncTcpLink::enqueue(OutChunk chunk, size_t size) {
  bool need_flush = false;
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (kill_ || closed_.load(std::memory_order_relaxed)) {
      // Closed or closing: the bytes have nowhere to go. Counted, not thrown
      // — async senders (fan-out loops, reply paths) cannot usefully unwind.
      loop_->counters_.send_drops.fetch_add(1, std::memory_order_relaxed);
      gm().send_drops.inc();
      return false;
    }
    if (out_bytes_ + size > loop_->options_.max_outbox_bytes) {
      // The peer reads slower than we write. Bounded memory wins: drop this
      // chunk, latch kill_ so later sends drop cheaply, close the connection.
      kill_ = true;
      overflow = true;
    } else {
      outbox_.push_back(std::move(chunk));
      out_bytes_ += size;
      if (!flush_queued_) {
        flush_queued_ = true;
        need_flush = true;
      }
    }
  }
  if (overflow) {
    loop_->counters_.send_drops.fetch_add(1, std::memory_order_relaxed);
    loop_->counters_.backpressure_closes.fetch_add(1, std::memory_order_relaxed);
    gm().send_drops.inc();
    gm().backpressure_closes.inc();
    loop_->request_close(shared(), "outbox overflow");
    return false;
  }
  gm().outbox_bytes.add(static_cast<double>(size));
  if (need_flush) loop_->queue_flush(shared());
  return true;
}

void AsyncTcpLink::close() { loop_->request_close(shared(), "closed by application"); }

size_t AsyncTcpLink::outbox_bytes() const {
  std::lock_guard<std::mutex> lock(out_mutex_);
  return out_bytes_;
}

// ---------------------------------------------------------------------------
// Reactor

Reactor::Reactor(const ReactorOptions& options) : options_(options) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw TransportError("epoll_create1: " + std::string(strerror(errno)));
  event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    ::close(epoll_fd_);
    throw TransportError("eventfd: " + std::string(strerror(errno)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered is fine: we drain the counter
  ev.data.ptr = nullptr;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    ::close(event_fd_);
    ::close(epoll_fd_);
    throw TransportError("epoll_ctl eventfd: " + std::string(strerror(errno)));
  }
  wheel_.resize(kWheelSlots);
  if (options_.idle_timeout_ms > 0) {
    tick_ms_ = std::max<uint64_t>(options_.idle_timeout_ms / 8, 10);
    last_tick_ = monotonic_ms() / tick_ms_;
  }
  thread_ = std::thread(&Reactor::run, this);
}

Reactor::~Reactor() {
  stop();
  if (thread_.joinable()) thread_.join();
  // Loop is gone: tear down whatever it still owned. Link destructors close
  // the sockets; no callbacks fire (the contract exempts mid-flight
  // destruction).
  conns_.clear();
  graveyard_.clear();
  tasks_.clear();
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void Reactor::wake() {
  const uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(event_fd_, &one, sizeof one);
  } while (n < 0 && errno == EINTR);
}

void Reactor::post(std::function<void()> fn) {
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(fn));
    if (!wake_pending_) {
      wake_pending_ = true;
      need_wake = true;
    }
  }
  if (need_wake) wake();
}

void Reactor::adopt(int fd) {
  set_nonblocking(fd);
  // Counted here, on the caller's (acceptor's) thread, not in the posted
  // task: the acceptor gates admission on connections(), and counting only
  // when the loop runs the task would let an accept storm overshoot
  // max_connections before any increment becomes visible.
  conn_count_.fetch_add(1, std::memory_order_relaxed);
  post([this, fd] {
    auto conn = std::shared_ptr<AsyncTcpLink>(
        new AsyncTcpLink(fd, this, g_next_link_id.fetch_add(1, std::memory_order_relaxed)));
    epoll_event ev{};
    // Permanently armed for both directions: with edge triggering EPOLLOUT
    // only fires on not-writable -> writable transitions (plus one initial
    // edge), so there is no epoll_ctl churn to arm/disarm write interest.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.ptr = conn.get();
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
      return;  // fd closed by the link destructor
    }
    conns_[fd] = conn;
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    gm().accepted.inc();
    gm().connections.add(1);
    if (tick_ms_ > 0) wheel_touch(*conn, monotonic_ms());
    if (on_accept_) {
      try {
        on_accept_(*conn);
      } catch (...) {
        counters_.bad_callbacks.fetch_add(1, std::memory_order_relaxed);
        gm().bad_callbacks.inc();
        close_conn(*conn, "accept callback error");
      }
    }
  });
}

void Reactor::queue_flush(std::shared_ptr<AsyncTcpLink> conn) {
  if (on_loop_thread()) {
    if (!conn->dead_) flush(*conn);
    return;
  }
  post([this, conn = std::move(conn)] {
    if (!conn->dead_) flush(*conn);
  });
}

void Reactor::request_close(std::shared_ptr<AsyncTcpLink> conn, const char* reason) {
  if (on_loop_thread()) {
    close_conn(*conn, reason);
    return;
  }
  post([this, conn = std::move(conn), reason] { close_conn(*conn, reason); });
}

bool Reactor::flush(AsyncTcpLink& conn) {
  bool fatal = false;
  {
    std::lock_guard<std::mutex> lock(conn.out_mutex_);
    conn.flush_queued_ = false;
    while (!conn.outbox_.empty()) {
      iovec iov[kFlushIov];
      int iovcnt = 0;
      for (auto it = conn.outbox_.begin(); it != conn.outbox_.end() && iovcnt < kFlushIov; ++it) {
        iov[iovcnt].iov_base = const_cast<uint8_t*>(it->data());
        iov[iovcnt].iov_len = it->size();
        ++iovcnt;
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<size_t>(iovcnt);
      // sendmsg, not writev: writev has no MSG_NOSIGNAL, and a peer that
      // closed mid-write must surface as EPIPE, never SIGPIPE.
      const ssize_t n = ::sendmsg(conn.fd_, &mh, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return true;  // kernel buffer full: the EPOLLOUT edge resumes us
        }
        conn.kill_ = true;
        gm().outbox_bytes.add(-static_cast<double>(conn.out_bytes_));
        conn.outbox_.clear();
        conn.out_bytes_ = 0;
        fatal = true;
        break;
      }
      size_t left = static_cast<size_t>(n);
      conn.out_bytes_ -= left;
      gm().outbox_bytes.add(-static_cast<double>(left));
      while (left > 0) {
        AsyncTcpLink::OutChunk& front = conn.outbox_.front();
        const size_t sz = front.size();
        if (left >= sz) {
          left -= sz;
          conn.outbox_.pop_front();
        } else {
          front.off += left;
          left = 0;
        }
      }
    }
  }
  if (fatal) {
    // flush() only ever runs on the loop thread, so close synchronously —
    // but only after out_mutex_ is released above, because close_conn
    // re-locks it and std::mutex is non-recursive.
    close_conn(conn, "send error");
    return false;
  }
  return true;
}

void Reactor::close_conn(AsyncTcpLink& conn, const char* reason) {
  (void)reason;
  if (conn.dead_) return;
  conn.dead_ = true;
  conn.closed_.store(true, std::memory_order_release);
  wheel_remove(conn);

  // Keep the object alive through the rest of this loop iteration: events
  // harvested by the same epoll_wait may still reference it (dead_ makes
  // them no-ops).
  auto it = conns_.find(conn.fd_);
  if (it != conns_.end()) {
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
  }

  // Publish the departure before the fd closes: the peer observes our FIN
  // the instant ::close runs, and anything it does in response (including a
  // test polling connections()) must not see a stale count.
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
  gm().closed.inc();
  gm().connections.add(-1);

  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd_, nullptr);
  ::close(conn.fd_);
  conn.fd_ = -1;

  {
    std::lock_guard<std::mutex> lock(conn.out_mutex_);
    gm().outbox_bytes.add(-static_cast<double>(conn.out_bytes_));
    conn.outbox_.clear();
    conn.out_bytes_ = 0;
    conn.kill_ = true;
  }

  if (on_close_) {
    try {
      on_close_(conn);
    } catch (...) {
      counters_.bad_callbacks.fetch_add(1, std::memory_order_relaxed);
      gm().bad_callbacks.inc();
    }
  }
  conn.user_.reset();  // application state dies on the loop thread
}

void Reactor::handle_readable(AsyncTcpLink& conn) {
  for (;;) {
    size_t cap = conn.ring_.size();
    if (conn.ring_size_ == cap) {
      if (cap >= options_.max_read_batch) {
        // Ring at its bound: hand the batch to the application mid-wakeup,
        // then keep draining (edge-triggered readiness must reach EAGAIN).
        dispatch_ring(conn);
        if (conn.dead_) return;
      } else {
        // Grow (and linearize — cheap, and only until the ring plateaus at
        // this connection's natural batch size).
        const size_t grown = std::max(kInitialRing, cap * 2);
        std::vector<uint8_t> next(grown);
        for (size_t i = 0; i < conn.ring_size_; ++i) {
          next[i] = conn.ring_[(conn.ring_head_ + i) % cap];
        }
        conn.ring_ = std::move(next);
        conn.ring_head_ = 0;
        cap = grown;
      }
    }
    // Scatter-read into the free span(s): [tail, cap) and, if wrapped
    // around, [0, head).
    const size_t tail = (conn.ring_head_ + conn.ring_size_) % cap;
    const size_t free_total = cap - conn.ring_size_;
    iovec iov[2];
    int iovcnt = 1;
    iov[0].iov_base = conn.ring_.data() + tail;
    iov[0].iov_len = std::min(free_total, cap - tail);
    if (iov[0].iov_len < free_total) {
      iov[1].iov_base = conn.ring_.data();
      iov[1].iov_len = free_total - iov[0].iov_len;
      iovcnt = 2;
    }
    const ssize_t n = ::readv(conn.fd_, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      dispatch_ring(conn);
      if (!conn.dead_) close_conn(conn, "recv error");
      return;
    }
    if (n == 0) {
      dispatch_ring(conn);
      if (!conn.dead_) close_conn(conn, "peer closed");
      return;
    }
    conn.ring_size_ += static_cast<size_t>(n);
    if (tick_ms_ > 0) wheel_touch(conn, monotonic_ms());
    if (static_cast<size_t>(n) < free_total) break;  // short read: drained
  }
  dispatch_ring(conn);
}

void Reactor::dispatch_ring(AsyncTcpLink& conn) {
  while (conn.ring_size_ > 0 && !conn.dead_) {
    const size_t cap = conn.ring_.size();
    const size_t seg = std::min(conn.ring_size_, cap - conn.ring_head_);
    const uint64_t t0 = monotonic_ns();
    try {
      conn.deliver(conn.ring_.data() + conn.ring_head_, seg);
    } catch (...) {
      // Exceptions never unwind through the loop: a throwing protocol
      // handler costs its connection, not the process.
      counters_.bad_callbacks.fetch_add(1, std::memory_order_relaxed);
      gm().bad_callbacks.inc();
      close_conn(conn, "data callback error");
      return;
    }
    gm().dispatch_ns.record(monotonic_ns() - t0);
    conn.ring_head_ = (conn.ring_head_ + seg) % cap;
    conn.ring_size_ -= seg;
  }
}

void Reactor::wheel_touch(AsyncTcpLink& conn, uint64_t now_ms) {
  conn.last_active_ms_ = now_ms;
  if (conn.in_wheel_) return;  // lazy: entries advance during slot scans
  const uint64_t deadline = now_ms + options_.idle_timeout_ms;
  size_t slot = (deadline / tick_ms_) & (kWheelSlots - 1);
  conn.in_wheel_ = true;
  conn.wheel_slot_ = slot;
  conn.wheel_pos_ = wheel_[slot].size();
  wheel_[slot].push_back(&conn);
}

void Reactor::wheel_remove(AsyncTcpLink& conn) {
  if (!conn.in_wheel_) return;
  conn.in_wheel_ = false;
  auto& slot = wheel_[conn.wheel_slot_];
  const size_t pos = conn.wheel_pos_;
  if (pos < slot.size() && slot[pos] == &conn) {
    slot[pos] = slot.back();
    slot[pos]->wheel_pos_ = pos;
    slot.pop_back();
  }
}

void Reactor::wheel_advance(uint64_t now_ms) {
  if (tick_ms_ == 0) return;
  const uint64_t cur = now_ms / tick_ms_;
  if (cur == last_tick_) return;
  const uint64_t span = std::min<uint64_t>(cur - last_tick_, kWheelSlots);
  for (uint64_t t = 1; t <= span; ++t) {
    const size_t slot_idx = (last_tick_ + t) & (kWheelSlots - 1);
    std::vector<AsyncTcpLink*> slot;
    slot.swap(wheel_[slot_idx]);
    for (AsyncTcpLink* c : slot) {
      c->in_wheel_ = false;
      if (c->dead_) continue;
      const uint64_t deadline = c->last_active_ms_ + options_.idle_timeout_ms;
      if (deadline <= now_ms) {
        counters_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        gm().idle_timeouts.inc();
        close_conn(*c, "idle timeout");
        continue;
      }
      size_t next = (deadline / tick_ms_) & (kWheelSlots - 1);
      if (next == slot_idx) next = (slot_idx + 1) & (kWheelSlots - 1);
      c->in_wheel_ = true;
      c->wheel_slot_ = next;
      c->wheel_pos_ = wheel_[next].size();
      wheel_[next].push_back(c);
    }
  }
  last_tick_ = cur;
}

void Reactor::run() {
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout = -1;
    if (tick_ms_ > 0) {
      const uint64_t now = monotonic_ms();
      const uint64_t next_tick = (last_tick_ + 1) * tick_ms_;
      timeout = next_tick > now ? static_cast<int>(std::min<uint64_t>(next_tick - now, 60'000))
                                : 0;
    }
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: only happens at teardown
    }
    const uint64_t t0 = monotonic_ns();
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drain = 0;
        while (::read(event_fd_, &drain, sizeof drain) > 0) {
        }
        gm().wakeups.inc();
        continue;
      }
      auto* conn = static_cast<AsyncTcpLink*>(events[i].data.ptr);
      if (conn->dead_) continue;
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        handle_readable(*conn);  // HUP/ERR surface as EOF/error from readv
      }
      if (!conn->dead_ && (events[i].events & EPOLLOUT) != 0) {
        flush(*conn);
      }
    }
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mutex_);
      wake_pending_ = false;
      tasks.swap(tasks_);
    }
    for (auto& task : tasks) task();
    if (tick_ms_ > 0) wheel_advance(monotonic_ms());
    graveyard_.clear();
    if (n > 0 || !tasks.empty()) gm().loop_ns.record(monotonic_ns() - t0);
  }
}

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.accepted = counters_.accepted.load(std::memory_order_relaxed);
  s.closed = counters_.closed.load(std::memory_order_relaxed);
  s.idle_timeouts = counters_.idle_timeouts.load(std::memory_order_relaxed);
  s.backpressure_closes = counters_.backpressure_closes.load(std::memory_order_relaxed);
  s.send_drops = counters_.send_drops.load(std::memory_order_relaxed);
  s.bad_callbacks = counters_.bad_callbacks.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// ReactorServer

ReactorServer::ReactorServer(TcpListener& listener, ReactorOptions options,
                             ConnCallback on_accept, ConnCallback on_close)
    : listener_(listener), options_(options) {
  const int n = std::max(1, options_.loops);
  loops_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<Reactor>(options_));
    loops_.back()->set_on_accept(on_accept);
    loops_.back()->set_on_close(on_close);
  }
  acceptor_ = std::thread(&ReactorServer::accept_loop, this);
}

ReactorServer::~ReactorServer() {
  stop_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  loops_.clear();  // each Reactor stops and joins in its destructor
}

size_t ReactorServer::connections() const {
  size_t total = 0;
  for (const auto& loop : loops_) total += loop->connections();
  return total;
}

Reactor::Stats ReactorServer::stats() const {
  Reactor::Stats total;
  for (const auto& loop : loops_) {
    const Reactor::Stats s = loop->stats();
    total.accepted += s.accepted;
    total.closed += s.closed;
    total.idle_timeouts += s.idle_timeouts;
    total.backpressure_closes += s.backpressure_closes;
    total.send_drops += s.send_drops;
    total.bad_callbacks += s.bad_callbacks;
  }
  return total;
}

void ReactorServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::unique_ptr<TcpLink> link;
    try {
      link = listener_.accept(50);
    } catch (const Error&) {
      continue;  // transient accept failure; the listener itself is fine
    }
    if (!link) continue;
    if (connections() >= options_.max_connections) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      gm().refused.inc();
      continue;  // link destructor closes: the client sees EOF
    }
    const size_t idx = next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    loops_[idx]->adopt(link->release_fd());
  }
}

}  // namespace morph::transport
