// Optional stats endpoint: a tiny HTTP/1.0 server over the TCP transport
// that serves the observability layer's exporters, so any process that
// embeds the middleware can be scraped while it runs.
//
//   GET /metrics      Prometheus text exposition (obs::to_prometheus)
//   GET <anything>    JSON snapshot incl. recent trace spans (obs::to_json)
//
// One background thread, one request per connection ("Connection: close"),
// loopback only (TcpListener binds 127.0.0.1). Intended for morph-stat,
// curl, or a local Prometheus scraper — not for untrusted networks.
#pragma once

#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "transport/tcp.hpp"

namespace morph::transport {

class StatsServer {
 public:
  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port — read it back with
  /// port()) and start serving. `registry` defaults to the global one.
  explicit StatsServer(uint16_t port = 0, obs::MetricsRegistry* registry = nullptr);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  uint16_t port() const { return listener_.port(); }

 private:
  void serve_loop();
  void handle(TcpLink& link);

  obs::MetricsRegistry& registry_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace morph::transport
