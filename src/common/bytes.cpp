#include "common/bytes.hpp"

namespace morph {

std::string to_hex(const void* data, size_t size) {
  static const char kDigits[] = "0123456789abcdef";
  const auto* p = static_cast<const uint8_t*>(data);
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[p[i] >> 4]);
    out.push_back(kDigits[p[i] & 0xF]);
  }
  return out;
}

}  // namespace morph
