// Growable byte buffer (writer side) and bounds-checked cursor (reader side).
//
// These are the only two primitives the wire layer is built on. ByteBuffer
// grows geometrically and supports patching earlier positions, which the
// PBIO encoder uses to fix up pointer fields after flattening variable-size
// data. ByteReader throws DecodeError instead of reading out of bounds so a
// hostile or truncated message can never walk off a buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace morph {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t reserve_bytes) { data_.reserve(reserve_bytes); }

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  void clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }

  /// Append `n` raw bytes.
  void append(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }

  /// Append `n` zero bytes and return the offset of the first one.
  size_t append_zeros(size_t n) {
    size_t at = data_.size();
    data_.resize(data_.size() + n, 0);
    return at;
  }

  /// Zero-pad until size() is a multiple of `alignment` (power of two).
  void align_to(size_t alignment) {
    size_t rem = data_.size() & (alignment - 1);
    if (rem != 0) append_zeros(alignment - rem);
  }

  void append_u8(uint8_t v) { data_.push_back(v); }
  void append_u16(uint16_t v) { append(&v, sizeof v); }
  void append_u32(uint32_t v) { append(&v, sizeof v); }
  void append_u64(uint64_t v) { append(&v, sizeof v); }
  void append_i32(int32_t v) { append(&v, sizeof v); }
  void append_i64(int64_t v) { append(&v, sizeof v); }
  void append_f64(double v) { append(&v, sizeof v); }

  /// Append a length-prefixed (u32) string.
  void append_string(std::string_view s) {
    append_u32(static_cast<uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  /// Overwrite `n` bytes at `offset` (must already exist).
  void patch(size_t offset, const void* p, size_t n) {
    if (offset + n > data_.size()) throw Error("ByteBuffer::patch out of range");
    std::memcpy(data_.data() + offset, p, n);
  }

  void patch_u32(size_t offset, uint32_t v) { patch(offset, &v, sizeof v); }
  void patch_u64(size_t offset, uint64_t v) { patch(offset, &v, sizeof v); }

  std::vector<uint8_t> take() { return std::move(data_); }
  const std::vector<uint8_t>& vec() const { return data_; }

 private:
  std::vector<uint8_t> data_;
};

class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }
  const uint8_t* cursor() const { return data_ + pos_; }

  void require(size_t n) const {
    if (n > remaining()) throw DecodeError("truncated buffer: need " + std::to_string(n) +
                                           " bytes, have " + std::to_string(remaining()));
  }

  void skip(size_t n) {
    require(n);
    pos_ += n;
  }

  void seek(size_t pos) {
    if (pos > size_) throw DecodeError("seek beyond buffer");
    pos_ = pos;
  }

  void read(void* out, size_t n) {
    require(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  uint8_t read_u8() {
    uint8_t v;
    read(&v, 1);
    return v;
  }
  uint16_t read_u16() {
    uint16_t v;
    read(&v, sizeof v);
    return v;
  }
  uint32_t read_u32() {
    uint32_t v;
    read(&v, sizeof v);
    return v;
  }
  uint64_t read_u64() {
    uint64_t v;
    read(&v, sizeof v);
    return v;
  }
  int32_t read_i32() {
    int32_t v;
    read(&v, sizeof v);
    return v;
  }
  int64_t read_i64() {
    int64_t v;
    read(&v, sizeof v);
    return v;
  }
  double read_f64() {
    double v;
    read(&v, sizeof v);
    return v;
  }

  std::string read_string() {
    uint32_t n = read_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Render a byte range as lowercase hex, for diagnostics and tests.
std::string to_hex(const void* data, size_t size);

}  // namespace morph
