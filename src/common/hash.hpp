// FNV-1a hashing, used for format fingerprints and registry keys.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace morph {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t fnv1a(const void* data, size_t size, uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t fnv1a(std::string_view s, uint64_t seed = kFnvOffset) {
  return fnv1a(s.data(), s.size(), seed);
}

/// String literals must never resolve to the (pointer, length) overload —
/// the second argument would silently become a byte count.
inline uint64_t fnv1a(const char* s, uint64_t seed = kFnvOffset) {
  return fnv1a(std::string_view(s), seed);
}

inline uint64_t fnv1a_u64(uint64_t v, uint64_t seed) { return fnv1a(&v, sizeof v, seed); }

}  // namespace morph
