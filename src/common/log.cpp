#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <vector>

namespace morph {

namespace {

/// Initial threshold: MORPH_LOG=debug|info|warn|error|off (case-insensitive),
/// defaulting to kWarn so tests and benchmarks stay quiet. An unrecognized
/// value keeps the default rather than failing startup.
int initial_level() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once before threads start
  const char* env = std::getenv("MORPH_LOG");
  if (env == nullptr || env[0] == '\0') return static_cast<int>(LogLevel::kWarn);
  char buf[8] = {0};
  for (size_t i = 0; i < sizeof buf - 1 && env[i] != '\0'; ++i) {
    buf[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(env[i])));
  }
  if (std::strcmp(buf, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(buf, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(buf, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(buf, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(buf, "off") == 0) return static_cast<int>(LogLevel::kOff);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

/// Monotonic seconds since process start (well, since the first log line
/// forced this anchor — close enough for relative timing between lines).
std::chrono::steady_clock::time_point mono_anchor() {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

/// "HH:MM:SS.mmm +123.456s": wall clock (UTC) for correlating across
/// processes, monotonic offset for intra-process timing that survives wall
/// clock adjustments.
void format_timestamp(char* out, size_t cap) {
  using namespace std::chrono;
  auto wall = system_clock::now();
  auto mono = duration_cast<microseconds>(steady_clock::now() - mono_anchor());
  std::time_t secs = system_clock::to_time_t(wall);
  auto wall_ms = duration_cast<milliseconds>(wall.time_since_epoch()).count() % 1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  std::snprintf(out, cap, "%02d:%02d:%02d.%03d +%lld.%06llds", tm_utc.tm_hour, tm_utc.tm_min,
                tm_utc.tm_sec, static_cast<int>(wall_ms),
                static_cast<long long>(mono.count() / 1000000),
                static_cast<long long>(mono.count() % 1000000));
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& component, const std::string& text) {
  if (static_cast<int>(level) < g_level.load()) return;
  char stamp[64];
  format_timestamp(stamp, sizeof stamp);
  // Format the whole line into a local buffer first, then emit it with a
  // single stdio call. stdio locks the stream per call, so lines never
  // interleave — and concurrent workers never serialize on a logger mutex
  // while formatting.
  char line[512];
  int n = std::snprintf(line, sizeof line, "[%s %s] %s: %s\n", stamp, level_name(level),
                        component.c_str(), text.c_str());
  if (n < 0) return;
  if (static_cast<size_t>(n) < sizeof line) {
    std::fwrite(line, 1, static_cast<size_t>(n), stderr);
    return;
  }
  // Rare oversized message: fall back to a heap buffer of the exact size.
  std::vector<char> big(static_cast<size_t>(n) + 1);
  std::snprintf(big.data(), big.size(), "[%s %s] %s: %s\n", stamp, level_name(level),
                component.c_str(), text.c_str());
  std::fwrite(big.data(), 1, static_cast<size_t>(n), stderr);
}

}  // namespace morph
