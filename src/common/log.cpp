#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <vector>

namespace morph {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& component, const std::string& text) {
  if (static_cast<int>(level) < g_level.load()) return;
  // Format the whole line into a local buffer first, then emit it with a
  // single stdio call. stdio locks the stream per call, so lines never
  // interleave — and concurrent workers never serialize on a logger mutex
  // while formatting.
  char line[512];
  int n = std::snprintf(line, sizeof line, "[%s] %s: %s\n", level_name(level),
                        component.c_str(), text.c_str());
  if (n < 0) return;
  if (static_cast<size_t>(n) < sizeof line) {
    std::fwrite(line, 1, static_cast<size_t>(n), stderr);
    return;
  }
  // Rare oversized message: fall back to a heap buffer of the exact size.
  std::vector<char> big(static_cast<size_t>(n) + 1);
  std::snprintf(big.data(), big.size(), "[%s] %s: %s\n", level_name(level),
                component.c_str(), text.c_str());
  std::fwrite(big.data(), 1, static_cast<size_t>(n), stderr);
}

}  // namespace morph
