// Clang Thread Safety Analysis support (-Wthread-safety).
//
// The MORPH_* macros expand to clang's capability attributes when the
// analysis is available and to nothing elsewhere (gcc builds see plain
// code). Because libstdc++'s std::mutex is not an annotated capability,
// this header also provides thin annotated wrappers — Mutex / SharedMutex
// plus their RAII guards — that delegate to the std types, so guarded
// members can be declared MORPH_GUARDED_BY(mutex_) and the analysis
// actually fires. The wrappers add no state and no behavior; TSan and the
// runtime see the underlying std primitives unchanged.
//
// Enable the analysis with -DMORPH_THREAD_SAFETY=ON (clang only); the CI
// static-analysis lane builds the library with it as -Werror.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MORPH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MORPH_THREAD_ANNOTATION
#define MORPH_THREAD_ANNOTATION(x)
#endif

#define MORPH_CAPABILITY(x) MORPH_THREAD_ANNOTATION(capability(x))
#define MORPH_SCOPED_CAPABILITY MORPH_THREAD_ANNOTATION(scoped_lockable)
#define MORPH_GUARDED_BY(x) MORPH_THREAD_ANNOTATION(guarded_by(x))
#define MORPH_PT_GUARDED_BY(x) MORPH_THREAD_ANNOTATION(pt_guarded_by(x))
#define MORPH_REQUIRES(...) MORPH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MORPH_REQUIRES_SHARED(...) \
  MORPH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define MORPH_ACQUIRE(...) MORPH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MORPH_ACQUIRE_SHARED(...) \
  MORPH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MORPH_RELEASE(...) MORPH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MORPH_RELEASE_SHARED(...) \
  MORPH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MORPH_TRY_ACQUIRE(...) MORPH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MORPH_EXCLUDES(...) MORPH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MORPH_RETURN_CAPABILITY(x) MORPH_THREAD_ANNOTATION(lock_returned(x))
#define MORPH_NO_THREAD_SAFETY_ANALYSIS MORPH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace morph {

/// std::mutex as an annotated capability.
class MORPH_CAPABILITY("mutex") Mutex {
 public:
  void lock() MORPH_ACQUIRE() { m_.lock(); }
  void unlock() MORPH_RELEASE() { m_.unlock(); }
  bool try_lock() MORPH_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::shared_mutex as an annotated capability (exclusive + shared modes).
class MORPH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  void lock() MORPH_ACQUIRE() { m_.lock(); }
  void unlock() MORPH_RELEASE() { m_.unlock(); }
  void lock_shared() MORPH_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() MORPH_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// RAII exclusive lock on a Mutex (std::lock_guard with annotations).
class MORPH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) MORPH_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() MORPH_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// RAII exclusive lock on a SharedMutex.
class MORPH_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& m) MORPH_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~WriterLock() MORPH_RELEASE() { m_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& m_;
};

/// RAII shared (reader) lock on a SharedMutex.
class MORPH_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& m) MORPH_ACQUIRE_SHARED(m) : m_(m) { m_.lock_shared(); }
  ~ReaderLock() MORPH_RELEASE() { m_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& m_;
};

}  // namespace morph
