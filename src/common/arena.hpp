// Bump allocator that owns every allocation made while materializing a
// decoded or transformed record.
//
// Native-layout records contain raw pointers (strings, dynamic arrays).
// Rather than making callers track each allocation, the decoder and the
// ecode runtime carve everything out of one RecordArena; the record is valid
// exactly as long as its arena, and freeing is O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace morph {

class RecordArena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit RecordArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  RecordArena(const RecordArena&) = delete;
  RecordArena& operator=(const RecordArena&) = delete;
  RecordArena(RecordArena&&) = default;
  RecordArena& operator=(RecordArena&&) = default;

  /// Allocate `size` bytes aligned to `align` (power of two). Zero-filled.
  void* allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    size_t base = (cursor_ + (align - 1)) & ~(align - 1);
    if (current_ == nullptr || base + size > current_size_) {
      grow(size + align);
      base = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = base + size;
    void* p = current_ + base;
    std::memset(p, 0, size);
    return p;
  }

  template <typename T>
  T* allocate_array(size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copy a string into the arena, NUL-terminated; returns the copy.
  char* copy_string(std::string_view s) {
    char* p = static_cast<char*>(allocate(s.size() + 1, 1));
    std::memcpy(p, s.data(), s.size());
    p[s.size()] = '\0';
    return p;
  }

  /// Total bytes handed out (diagnostics only).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Drop every allocation but keep the chunks for reuse. Pointers into the
  /// arena become dangling; only call between messages.
  void reset() {
    if (!chunks_.empty()) {
      current_ = chunks_.front().get();
      current_size_ = chunk_sizes_.front();
      cursor_ = 0;
      active_chunk_ = 0;
    }
    bytes_allocated_ = 0;
  }

 private:
  void grow(size_t min_bytes) {
    // Reuse a retained chunk if one is big enough, otherwise allocate.
    while (active_chunk_ + 1 < chunks_.size()) {
      ++active_chunk_;
      if (chunk_sizes_[active_chunk_] >= min_bytes) {
        current_ = chunks_[active_chunk_].get();
        current_size_ = chunk_sizes_[active_chunk_];
        cursor_ = 0;
        return;
      }
    }
    size_t n = chunk_bytes_;
    while (n < min_bytes) n *= 2;
    chunks_.push_back(std::make_unique<uint8_t[]>(n));
    chunk_sizes_.push_back(n);
    active_chunk_ = chunks_.size() - 1;
    current_ = chunks_.back().get();
    current_size_ = n;
    cursor_ = 0;
    bytes_allocated_ += n;
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  std::vector<size_t> chunk_sizes_;
  uint8_t* current_ = nullptr;
  size_t current_size_ = 0;
  size_t cursor_ = 0;
  size_t active_chunk_ = 0;
  size_t bytes_allocated_ = 0;
};

}  // namespace morph
