// Error types shared by every morph library.
//
// The libraries throw exceptions for programmer errors (malformed format
// declarations, ecode syntax errors) and return status/optional values on
// data-dependent paths that a distributed receiver must survive (truncated
// wire buffers, unknown formats).
#pragma once

#include <stdexcept>
#include <string>

namespace morph {

/// Base class for all errors raised by the morph libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A format declaration is self-inconsistent (duplicate field names,
/// dynamic array without a size field, negative offsets, ...).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error("format error: " + what) {}
};

/// A wire buffer cannot be decoded (truncated, bad magic, bad offsets).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode error: " + what) {}
};

/// Ecode compilation failed (lexical, syntax, or type error). Carries the
/// 1-based source line where the problem was detected.
class EcodeError : public Error {
 public:
  EcodeError(const std::string& what, int line)
      : Error("ecode error (line " + std::to_string(line) + "): " + what), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// XML parsing / XSLT evaluation failure.
class XmlError : public Error {
 public:
  explicit XmlError(const std::string& what) : Error("xml error: " + what) {}
};

/// Transport-level failure (socket errors, broken frames).
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error("transport error: " + what) {}
};

}  // namespace morph
