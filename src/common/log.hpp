// Minimal leveled logger. Middleware pieces (transport, echo) log through
// this so examples can show what the morphing layer is doing; hot paths
// never log. Thread-safe without a global mutex: each message is formatted
// into a local buffer and emitted with one stdio call, so concurrent
// workers never serialize on the logger.
#pragma once

#include <sstream>
#include <string>

namespace morph {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn, so tests
/// and benchmarks stay quiet unless something is wrong. The MORPH_LOG
/// environment variable (debug|info|warn|error|off, case-insensitive) sets
/// the initial threshold; set_log_level overrides it at runtime. Every line
/// carries a UTC wall timestamp plus a monotonic offset since process start.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& component, const std::string& text);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};
}  // namespace detail

#define MORPH_LOG(level, component)                        \
  if (static_cast<int>(level) < static_cast<int>(::morph::log_level())) { \
  } else                                                   \
    ::morph::detail::LogLine(level, component)

#define MORPH_LOG_DEBUG(component) MORPH_LOG(::morph::LogLevel::kDebug, component)
#define MORPH_LOG_INFO(component) MORPH_LOG(::morph::LogLevel::kInfo, component)
#define MORPH_LOG_WARN(component) MORPH_LOG(::morph::LogLevel::kWarn, component)
#define MORPH_LOG_ERROR(component) MORPH_LOG(::morph::LogLevel::kError, component)

}  // namespace morph
