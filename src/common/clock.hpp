// Monotonic timing helper for the paper-table benchmark mode.
#pragma once

#include <chrono>

namespace morph {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace morph
