// Deterministic PRNG (splitmix64) for workload generators and property
// tests. Deterministic seeds keep every benchmark row and every generated
// test case reproducible across runs.
#pragma once

#include <cstdint>
#include <string>

namespace morph {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  double next_double() {  // [0, 1)
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Lowercase identifier of the given length (starts with a letter).
  std::string next_ident(size_t len) {
    static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s.push_back(kAlpha[next_below(26)]);
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace morph
