// Host byte-order detection and byte-swapping primitives.
//
// PBIO ships records in the *writer's* native byte order together with a
// one-byte order tag in the out-of-band meta-data; the receiver swaps only
// when the orders differ (the common homogeneous-cluster case pays nothing).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace morph {

enum class ByteOrder : uint8_t { kLittle = 0, kBig = 1 };

constexpr ByteOrder host_byte_order() {
  return std::endian::native == std::endian::little ? ByteOrder::kLittle
                                                    : ByteOrder::kBig;
}

constexpr uint16_t byteswap16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}

constexpr uint32_t byteswap32(uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

constexpr uint64_t byteswap64(uint64_t v) {
  return (static_cast<uint64_t>(byteswap32(static_cast<uint32_t>(v))) << 32) |
         byteswap32(static_cast<uint32_t>(v >> 32));
}

/// Swap a value of `size` bytes (1, 2, 4, or 8) in place. Sizes other than
/// these are left untouched (single bytes and opaque blobs never swap).
inline void byteswap_inplace(void* p, size_t size) {
  switch (size) {
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      v = byteswap16(v);
      std::memcpy(p, &v, 2);
      break;
    }
    case 4: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      v = byteswap32(v);
      std::memcpy(p, &v, 4);
      break;
    }
    case 8: {
      uint64_t v;
      std::memcpy(&v, p, 8);
      v = byteswap64(v);
      std::memcpy(p, &v, 8);
      break;
    }
    default:
      break;
  }
}

}  // namespace morph
