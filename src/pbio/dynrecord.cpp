#include "pbio/dynrecord.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "pbio/record.hpp"

namespace morph::pbio {

bool DynStruct::operator==(const DynStruct& other) const {
  // Equality is data equality under the format's field names, so a value
  // survives layout changes: compare field-by-name, not by position.
  if (!format || !other.format) return format == other.format && fields == other.fields;
  if (fields.size() != format->field_count() || other.fields.size() != other.format->field_count())
    return fields == other.fields;
  if (format->field_count() != other.format->field_count()) return false;
  for (size_t i = 0; i < format->field_count(); ++i) {
    const auto& name = format->field_at(i).name;
    size_t j = other.format->field_index(name);
    if (j == FormatDescriptor::npos) return false;
    if (!(fields[i] == other.fields[j])) return false;
  }
  return true;
}

const DynValue& DynValue::field(std::string_view name) const {
  const auto& s = as_struct();
  size_t i = s.format->field_index(name);
  if (i == FormatDescriptor::npos) {
    throw FormatError("DynValue: no field '" + std::string(name) + "'");
  }
  return s.fields[i];
}

DynValue& DynValue::field(std::string_view name) {
  const auto& s = as_struct();
  size_t i = s.format->field_index(name);
  if (i == FormatDescriptor::npos) {
    throw FormatError("DynValue: no field '" + std::string(name) + "'");
  }
  return as_struct().fields[i];
}

namespace {

DynValue box_element(const FieldDescriptor& fd, const uint8_t* elem) {
  if (fd.element_format) {
    return to_dyn(*fd.element_format, elem);
  }
  switch (fd.element_kind) {
    case FieldKind::kString: {
      const char* s;
      std::memcpy(&s, elem, sizeof(char*));
      return DynValue(std::string(s == nullptr ? "" : s));
    }
    case FieldKind::kFloat: {
      FieldDescriptor tmp;
      tmp.kind = fd.element_kind;
      tmp.size = fd.element_size;
      tmp.offset = 0;
      return DynValue(read_scalar_f64(elem, tmp));
    }
    default: {
      FieldDescriptor tmp;
      tmp.kind = fd.element_kind;
      tmp.size = fd.element_size;
      tmp.offset = 0;
      return DynValue(read_scalar_i64(elem, tmp));
    }
  }
}

void unbox_element(const FieldDescriptor& fd, const DynValue& v, uint8_t* elem,
                   RecordArena& arena);

void unbox_struct(const DynStruct& s, uint8_t* dst, RecordArena& arena) {
  const FormatDescriptor& fmt = *s.format;
  if (s.fields.size() != fmt.field_count()) {
    throw FormatError("DynStruct field count does not match format '" + fmt.name() + "'");
  }
  // Arrays sharing a count field must agree on their length, or the
  // materialized record would lie about one of them.
  for (size_t i = 0; i < fmt.field_count(); ++i) {
    const FieldDescriptor& a = fmt.field_at(i);
    if (a.kind != FieldKind::kDynArray) continue;
    for (size_t j = i + 1; j < fmt.field_count(); ++j) {
      const FieldDescriptor& b = fmt.field_at(j);
      if (b.kind == FieldKind::kDynArray && b.length_field == a.length_field &&
          s.fields[i].as_list().size() != s.fields[j].as_list().size()) {
        throw FormatError("arrays '" + a.name + "' and '" + b.name +
                          "' share count field '" + a.length_field +
                          "' but have different lengths");
      }
    }
  }
  for (size_t i = 0; i < fmt.field_count(); ++i) {
    const FieldDescriptor& fd = fmt.field_at(i);
    const DynValue& v = s.fields[i];
    switch (fd.kind) {
      case FieldKind::kInt:
      case FieldKind::kUInt:
      case FieldKind::kEnum:
      case FieldKind::kChar:
        write_scalar_i64(dst, fd, v.is_float() ? static_cast<int64_t>(v.as_float()) : v.as_int());
        break;
      case FieldKind::kFloat:
        write_scalar_f64(dst, fd, v.is_int() ? static_cast<double>(v.as_int()) : v.as_float());
        break;
      case FieldKind::kString:
        write_string_field(dst, fd, v.as_string(), arena);
        break;
      case FieldKind::kStruct:
        unbox_struct(v.as_struct(), dst + fd.offset, arena);
        break;
      case FieldKind::kStaticArray: {
        const DynList& list = v.as_list();
        uint32_t stride = fd.element_stride();
        uint32_t n = std::min<uint32_t>(fd.static_count, static_cast<uint32_t>(list.size()));
        for (uint32_t e = 0; e < n; ++e) {
          unbox_element(fd, list[e], dst + fd.offset + e * stride, arena);
        }
        break;
      }
      case FieldKind::kDynArray: {
        const DynList& list = v.as_list();
        uint32_t stride = fd.element_stride();
        if (list.empty()) {
          write_pointer(dst, fd, nullptr);
        } else {
          auto* elems =
              static_cast<uint8_t*>(alloc_dyn_array(arena, stride, list.size()));
          for (size_t e = 0; e < list.size(); ++e) {
            unbox_element(fd, list[e], elems + e * stride, arena);
          }
          write_pointer(dst, fd, elems);
        }
        // Keep the count field consistent with the materialized list.
        const FieldDescriptor* len = fmt.find_field(fd.length_field);
        if (len != nullptr) write_scalar_i64(dst, *len, static_cast<int64_t>(list.size()));
        break;
      }
    }
  }
}

void unbox_element(const FieldDescriptor& fd, const DynValue& v, uint8_t* elem,
                   RecordArena& arena) {
  if (fd.element_format) {
    unbox_struct(v.as_struct(), elem, arena);
    return;
  }
  switch (fd.element_kind) {
    case FieldKind::kString: {
      char* s = arena.copy_string(v.as_string());
      std::memcpy(elem, &s, sizeof(char*));
      break;
    }
    default: {
      FieldDescriptor tmp;
      tmp.kind = fd.element_kind;
      tmp.size = fd.element_size;
      tmp.offset = 0;
      if (fd.element_kind == FieldKind::kFloat) {
        write_scalar_f64(elem, tmp, v.is_int() ? static_cast<double>(v.as_int()) : v.as_float());
      } else {
        write_scalar_i64(elem, tmp, v.is_float() ? static_cast<int64_t>(v.as_float()) : v.as_int());
      }
      break;
    }
  }
}

void debug_render(const DynValue& v, std::string& out, int indent);

void debug_render_struct(const DynStruct& s, std::string& out, int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out += "{\n";
  for (size_t i = 0; i < s.fields.size(); ++i) {
    out += pad + "  " + (s.format ? s.format->field_at(i).name : std::to_string(i)) + " = ";
    debug_render(s.fields[i], out, indent + 1);
    out += "\n";
  }
  out += pad + "}";
}

void debug_render(const DynValue& v, std::string& out, int indent) {
  if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_float()) {
    out += std::to_string(v.as_float());
  } else if (v.is_string()) {
    out += "\"" + v.as_string() + "\"";
  } else if (v.is_struct()) {
    debug_render_struct(v.as_struct(), out, indent);
  } else {
    out += "[";
    const auto& list = v.as_list();
    for (size_t i = 0; i < list.size(); ++i) {
      if (i > 0) out += ", ";
      debug_render(list[i], out, indent);
    }
    out += "]";
  }
}

}  // namespace

DynValue to_dyn(const FormatDescriptor& fmt, const void* record) {
  const auto* rec = static_cast<const uint8_t*>(record);
  DynStruct s;
  s.format = const_cast<FormatDescriptor&>(fmt).shared_from_this();
  s.fields.reserve(fmt.field_count());
  for (const auto& fd : fmt.fields()) {
    switch (fd.kind) {
      case FieldKind::kInt:
      case FieldKind::kUInt:
      case FieldKind::kEnum:
      case FieldKind::kChar:
        s.fields.emplace_back(read_scalar_i64(rec, fd));
        break;
      case FieldKind::kFloat:
        s.fields.emplace_back(read_scalar_f64(rec, fd));
        break;
      case FieldKind::kString:
        s.fields.emplace_back(std::string(read_string_field(rec, fd)));
        break;
      case FieldKind::kStruct:
        s.fields.emplace_back(to_dyn(*fd.element_format, rec + fd.offset));
        break;
      case FieldKind::kStaticArray: {
        DynList list;
        uint32_t stride = fd.element_stride();
        list.reserve(fd.static_count);
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          list.push_back(box_element(fd, rec + fd.offset + i * stride));
        }
        s.fields.emplace_back(std::move(list));
        break;
      }
      case FieldKind::kDynArray: {
        DynList list;
        const FieldDescriptor* len = fmt.find_field(fd.length_field);
        int64_t count = len ? read_scalar_i64(rec, *len) : 0;
        const auto* elems = static_cast<const uint8_t*>(read_pointer(rec, fd));
        uint32_t stride = fd.element_stride();
        if (elems != nullptr && count > 0) {
          list.reserve(static_cast<size_t>(count));
          for (int64_t i = 0; i < count; ++i) {
            list.push_back(box_element(fd, elems + static_cast<size_t>(i) * stride));
          }
        }
        s.fields.emplace_back(std::move(list));
        break;
      }
    }
  }
  return DynValue(std::move(s));
}

void* from_dyn(const DynValue& value, RecordArena& arena) {
  const DynStruct& s = value.as_struct();
  if (!s.format) throw FormatError("from_dyn: struct value has no format");
  void* rec = alloc_record(*s.format, arena);
  unbox_struct(s, static_cast<uint8_t*>(rec), arena);
  return rec;
}

DynValue make_dyn(const FormatPtr& fmt) {
  if (!fmt) throw FormatError("make_dyn: null format");
  DynStruct s;
  s.format = fmt;
  for (const auto& fd : fmt->fields()) {
    switch (fd.kind) {
      case FieldKind::kFloat:
        s.fields.emplace_back(0.0);
        break;
      case FieldKind::kString:
        s.fields.emplace_back(std::string());
        break;
      case FieldKind::kStruct:
        s.fields.push_back(make_dyn(fd.element_format));
        break;
      case FieldKind::kStaticArray: {
        DynList list;
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          if (fd.element_format) {
            list.push_back(make_dyn(fd.element_format));
          } else if (fd.element_kind == FieldKind::kString) {
            list.emplace_back(std::string());
          } else if (fd.element_kind == FieldKind::kFloat) {
            list.emplace_back(0.0);
          } else {
            list.emplace_back(int64_t{0});
          }
        }
        s.fields.emplace_back(std::move(list));
        break;
      }
      case FieldKind::kDynArray:
        s.fields.emplace_back(DynList{});
        break;
      default:
        s.fields.emplace_back(int64_t{0});
        break;
    }
  }
  return DynValue(std::move(s));
}

std::string to_debug_string(const DynValue& value) {
  std::string out;
  debug_render(value, out, 0);
  return out;
}

}  // namespace morph::pbio
