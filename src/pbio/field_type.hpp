// Field type taxonomy for PBIO record formats.
//
// The paper distinguishes *basic* types (integer, unsigned integer, float,
// char, enumeration, string) from *complex* types (collections of other
// fields). We add two array flavors — fixed-count and dynamically-sized —
// because the paper's driving example (ChannelOpenResponse's member lists)
// requires variable-length lists of structures.
#pragma once

#include <cstdint>
#include <string_view>

namespace morph::pbio {

enum class FieldKind : uint8_t {
  kInt = 0,      // signed integer, size 1/2/4/8
  kUInt = 1,     // unsigned integer, size 1/2/4/8
  kFloat = 2,    // IEEE float, size 4/8
  kChar = 3,     // single character, size 1
  kEnum = 4,     // named 32-bit enumeration
  kString = 5,   // NUL-terminated char*, owned by the record's arena
  kStruct = 6,   // nested record, stored inline
  kStaticArray = 7,  // fixed element count, stored inline
  kDynArray = 8,     // pointer to elements; count lives in a sibling field
};

/// Basic types are the leaves counted by the paper's diff/weight metrics.
constexpr bool is_basic(FieldKind k) {
  switch (k) {
    case FieldKind::kInt:
    case FieldKind::kUInt:
    case FieldKind::kFloat:
    case FieldKind::kChar:
    case FieldKind::kEnum:
    case FieldKind::kString:
      return true;
    default:
      return false;
  }
}

constexpr bool is_array(FieldKind k) {
  return k == FieldKind::kStaticArray || k == FieldKind::kDynArray;
}

/// Scalar kinds that occupy fixed bytes directly inside the struct.
constexpr bool is_fixed_scalar(FieldKind k) {
  switch (k) {
    case FieldKind::kInt:
    case FieldKind::kUInt:
    case FieldKind::kFloat:
    case FieldKind::kChar:
    case FieldKind::kEnum:
      return true;
    default:
      return false;
  }
}

constexpr std::string_view field_kind_name(FieldKind k) {
  switch (k) {
    case FieldKind::kInt:
      return "integer";
    case FieldKind::kUInt:
      return "unsigned integer";
    case FieldKind::kFloat:
      return "float";
    case FieldKind::kChar:
      return "char";
    case FieldKind::kEnum:
      return "enumeration";
    case FieldKind::kString:
      return "string";
    case FieldKind::kStruct:
      return "struct";
    case FieldKind::kStaticArray:
      return "static array";
    case FieldKind::kDynArray:
      return "dynamic array";
  }
  return "?";
}

}  // namespace morph::pbio
