#include "pbio/decode.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "pbio/record.hpp"
#include "pbio/varwalk.hpp"

namespace morph::pbio {

namespace {

constexpr uint8_t kVersionDecoded = 2;  // in-place-decoded marker

bool order_mismatch(ByteOrder wire) { return wire != host_byte_order(); }

uint64_t load_u64_swapped(const uint8_t* p, bool swap) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return swap ? byteswap64(v) : v;
}

uint32_t load_u32_swapped(const uint8_t* p, bool swap) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return swap ? byteswap32(v) : v;
}

/// Load a fixed scalar from wire bytes as a widened int64.
int64_t load_wire_i64(const uint8_t* p, FieldKind kind, uint32_t size, bool swap) {
  switch (size) {
    case 1: {
      uint8_t v;
      std::memcpy(&v, p, 1);
      if (kind == FieldKind::kInt) return static_cast<int8_t>(v);
      return v;
    }
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      if (swap) v = byteswap16(v);
      if (kind == FieldKind::kInt) return static_cast<int16_t>(v);
      return v;
    }
    case 4: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      if (swap) v = byteswap32(v);
      if (kind == FieldKind::kFloat) {
        float f;
        std::memcpy(&f, &v, 4);
        return static_cast<int64_t>(f);
      }
      if (kind == FieldKind::kInt || kind == FieldKind::kEnum) return static_cast<int32_t>(v);
      return v;
    }
    case 8: {
      uint64_t v;
      std::memcpy(&v, p, 8);
      if (swap) v = byteswap64(v);
      if (kind == FieldKind::kFloat) {
        double f;
        std::memcpy(&f, &v, 8);
        return static_cast<int64_t>(f);
      }
      return static_cast<int64_t>(v);
    }
    default:
      throw DecodeError("bad scalar size");
  }
}

double load_wire_f64(const uint8_t* p, FieldKind kind, uint32_t size, bool swap) {
  if (kind == FieldKind::kFloat) {
    if (size == 4) {
      uint32_t v;
      std::memcpy(&v, p, 4);
      if (swap) v = byteswap32(v);
      float f;
      std::memcpy(&f, &v, 4);
      return f;
    }
    uint64_t v;
    std::memcpy(&v, p, 8);
    if (swap) v = byteswap64(v);
    double f;
    std::memcpy(&f, &v, 8);
    return f;
  }
  if (kind == FieldKind::kUInt) {
    return static_cast<double>(static_cast<uint64_t>(load_wire_i64(p, kind, size, swap)));
  }
  return static_cast<double>(load_wire_i64(p, kind, size, swap));
}

/// Convert one scalar from wire bytes into a host field.
void convert_scalar(const uint8_t* src, const FieldDescriptor& sfd, bool swap, void* dst_struct,
                    const FieldDescriptor& dfd) {
  if (dfd.kind == FieldKind::kFloat || sfd.kind == FieldKind::kFloat) {
    write_scalar_f64(dst_struct, dfd, load_wire_f64(src, sfd.kind, sfd.size, swap));
  } else {
    write_scalar_i64(dst_struct, dfd, load_wire_i64(src, sfd.kind, sfd.size, swap));
  }
}

/// Copy a wire string (body-relative offset slot) into the arena and return
/// the host pointer; nullptr when the slot is 0.
const char* convert_string(const uint8_t* slot, const uint8_t* body, size_t body_size,
                           bool swap, RecordArena& arena) {
  uint64_t rel = load_u64_swapped(slot, swap);
  if (rel == 0) return nullptr;
  if (rel >= body_size) throw DecodeError("string offset out of range");
  const void* nul = std::memchr(body + rel, 0, body_size - rel);
  if (nul == nullptr) throw DecodeError("unterminated string in message");
  size_t len = static_cast<const uint8_t*>(nul) - (body + rel);
  return arena.copy_string(std::string_view(reinterpret_cast<const char*>(body + rel), len));
}

bool scalar_compatible(const FieldDescriptor& a, const FieldDescriptor& b) {
  return is_fixed_scalar(a.kind) && is_fixed_scalar(b.kind);
}

/// Would converting a wire scalar of (wk, size) into a host scalar of
/// (hk, size) reproduce the wire bytes unchanged (after any byteswap)?
/// Same-size integer-family pairs round-trip exactly: the widening load
/// (sign- or zero-extend) and the truncating store cancel out. Floats only
/// match floats of the same width; cross float/int conversions change the
/// representation.
bool kinds_byte_identical(FieldKind wk, uint32_t wsize, FieldKind hk, uint32_t hsize) {
  if (wsize != hsize) return false;
  if (wk == hk) return true;
  auto int_family = [](FieldKind k) {
    return k == FieldKind::kInt || k == FieldKind::kUInt || k == FieldKind::kEnum ||
           k == FieldKind::kChar;
  };
  return int_family(wk) && int_family(hk);
}

bool element_compatible(const FieldDescriptor& w, const FieldDescriptor& h) {
  bool w_struct = w.element_format != nullptr;
  bool h_struct = h.element_format != nullptr;
  if (w_struct != h_struct) return false;
  if (w_struct) return true;  // element plans handle the details
  if (w.element_kind == FieldKind::kString || h.element_kind == FieldKind::kString) {
    return w.element_kind == h.element_kind;
  }
  return is_fixed_scalar(w.element_kind) && is_fixed_scalar(h.element_kind);
}

/// Are a wire field and a host field of the same "type" for matching
/// purposes? All fixed scalars interconvert; strings only match strings;
/// structs match structs; arrays match arrays with compatible elements.
bool fields_compatible(const FieldDescriptor& w, const FieldDescriptor& h) {
  if (is_fixed_scalar(h.kind)) return scalar_compatible(w, h);
  if (h.kind == FieldKind::kString) return w.kind == FieldKind::kString;
  if (h.kind == FieldKind::kStruct) return w.kind == FieldKind::kStruct;
  if (is_array(h.kind)) return is_array(w.kind) && element_compatible(w, h);
  return false;
}

}  // namespace

WireInfo peek_header(const void* buf, size_t size) {
  if (size < kWireHeaderSize) throw DecodeError("message shorter than header");
  const auto* p = static_cast<const uint8_t*>(buf);
  if (p[0] != 'P' || p[1] != 'B') throw DecodeError("bad magic");
  WireInfo info;
  info.version = p[2];
  if (info.version != kWireVersion && info.version != kVersionDecoded) {
    throw DecodeError("unsupported wire version " + std::to_string(info.version));
  }
  uint8_t order = p[3];
  if (order > 1) throw DecodeError("bad byte-order tag");
  info.order = static_cast<ByteOrder>(order);
  bool swap = order_mismatch(info.order);
  info.fingerprint = load_u64_swapped(p + 4, swap);
  info.total_size = load_u32_swapped(p + 12, swap);
  if (info.total_size < kWireHeaderSize || info.total_size > size) {
    throw DecodeError("bad total size " + std::to_string(info.total_size));
  }
  return info;
}

// ---------------------------------------------------------------------------
// ConversionPlan
// ---------------------------------------------------------------------------

struct ConversionPlan::Impl {
  enum class Op : uint8_t { kScalar, kEnumRemap, kString, kStruct, kArray, kDefault, kCopyRun };

  struct Step {
    Op op;
    const FieldDescriptor* src = nullptr;      // wire field (null for kDefault)
    const FieldDescriptor* dst = nullptr;      // host field
    std::unique_ptr<Impl> sub;                 // struct / struct-array element plan
    const FieldDescriptor* src_len = nullptr;  // wire dyn-array count field
    const FieldDescriptor* dst_len = nullptr;  // host dyn-array count field
    std::vector<std::pair<int32_t, int32_t>> enum_remap;  // sorted by wire value
    // kCopyRun: total bytes covered, and the (width, count) batches a
    // foreign-order message needs to byteswap the run in place.
    uint32_t run_bytes = 0;
    std::vector<std::pair<uint32_t, uint32_t>> swap_runs;
    // kArray of basic scalars whose wire/host element layout is
    // byte-identical: the whole element block can be bulk-copied.
    bool elem_identity = false;
  };

  const FormatDescriptor* wire = nullptr;
  const FormatDescriptor* host = nullptr;
  std::vector<Step> steps;
  bool lossy = false;
  size_t defaulted = 0;
  size_t coalesced_runs = 0;    // totals include nested sub-plans
  size_t coalesced_fields = 0;

  static std::unique_ptr<Impl> compile(const FormatDescriptor& w, const FormatDescriptor& h,
                                       int depth) {
    if (depth > static_cast<int>(FormatDescriptor::kMaxNesting)) {
      throw FormatError("conversion nesting too deep");
    }
    auto impl = std::make_unique<Impl>();
    impl->wire = &w;
    impl->host = &h;
    for (const auto& hf : h.fields()) {
      const FieldDescriptor* wf = w.find_field(hf.name);
      if (wf == nullptr || !fields_compatible(*wf, hf)) {
        Step s;
        s.op = Op::kDefault;
        s.dst = &hf;
        if (hf.kind == FieldKind::kStruct) {
          // Nested defaults are handled by fill_defaults at execution.
        }
        impl->steps.push_back(std::move(s));
        impl->lossy = true;
        impl->defaulted += 1;
        continue;
      }
      Step s;
      s.src = wf;
      s.dst = &hf;
      if (is_fixed_scalar(hf.kind)) {
        s.op = Op::kScalar;
        if (hf.kind == FieldKind::kEnum && wf->kind == FieldKind::kEnum &&
            !hf.enumerators.empty() && !wf->enumerators.empty()) {
          // Remap enum values by enumerator name where names overlap.
          for (const auto& we : wf->enumerators) {
            for (const auto& he : hf.enumerators) {
              if (we.name == he.name && we.value != he.value) {
                s.enum_remap.emplace_back(we.value, he.value);
              }
            }
          }
          if (!s.enum_remap.empty()) {
            std::sort(s.enum_remap.begin(), s.enum_remap.end());
            s.op = Op::kEnumRemap;
          }
        }
      } else if (hf.kind == FieldKind::kString) {
        s.op = Op::kString;
      } else if (hf.kind == FieldKind::kStruct) {
        s.op = Op::kStruct;
        s.sub = compile(*wf->element_format, *hf.element_format, depth + 1);
        if (s.sub->lossy) {
          impl->lossy = true;
          impl->defaulted += s.sub->defaulted;
        }
      } else {  // arrays
        s.op = Op::kArray;
        if (wf->kind == FieldKind::kDynArray) s.src_len = w.find_field(wf->length_field);
        if (hf.kind == FieldKind::kDynArray) s.dst_len = h.find_field(hf.length_field);
        if (wf->element_format != nullptr) {
          s.sub = compile(*wf->element_format, *hf.element_format, depth + 1);
          if (s.sub->lossy) {
            impl->lossy = true;
            impl->defaulted += s.sub->defaulted;
          }
        } else if (wf->element_kind != FieldKind::kString &&
                   hf.element_kind != FieldKind::kString) {
          s.elem_identity = kinds_byte_identical(wf->element_kind, wf->element_size,
                                                 hf.element_kind, hf.element_size) &&
                            wf->element_stride() == hf.element_stride();
        }
      }
      impl->steps.push_back(std::move(s));
    }
    impl->coalesce();
    for (const auto& s : impl->steps) {
      if (s.sub) {
        impl->coalesced_runs += s.sub->coalesced_runs;
        impl->coalesced_fields += s.sub->coalesced_fields;
      }
    }
    return impl;
  }

  /// Post-pass: merge maximal runs of >= 2 scalar steps whose wire and host
  /// fields are byte-identical and strictly adjacent in both layouts into a
  /// single kCopyRun. In host order the run executes as one memcpy; in
  /// foreign order it byteswaps batches of same-width fields.
  void coalesce() {
    std::vector<Step> out;
    out.reserve(steps.size());
    size_t i = 0;
    while (i < steps.size()) {
      size_t j = i;
      uint32_t src_end = 0;
      uint32_t dst_end = 0;
      while (j < steps.size()) {
        const Step& s = steps[j];
        if (s.op != Op::kScalar ||
            !kinds_byte_identical(s.src->kind, s.src->size, s.dst->kind, s.dst->size)) {
          break;
        }
        if (j > i && (s.src->offset != src_end || s.dst->offset != dst_end)) break;
        src_end = s.src->offset + s.src->size;
        dst_end = s.dst->offset + s.dst->size;
        ++j;
      }
      if (j - i >= 2) {
        Step run;
        run.op = Op::kCopyRun;
        run.src = steps[i].src;
        run.dst = steps[i].dst;
        run.run_bytes = src_end - steps[i].src->offset;
        for (size_t k = i; k < j; ++k) {
          uint32_t width = steps[k].src->size;
          if (!run.swap_runs.empty() && run.swap_runs.back().first == width) {
            run.swap_runs.back().second += 1;
          } else {
            run.swap_runs.emplace_back(width, 1);
          }
        }
        coalesced_runs += 1;
        coalesced_fields += j - i;
        out.push_back(std::move(run));
        i = j;
      } else {
        out.push_back(std::move(steps[i]));
        ++i;
      }
    }
    steps = std::move(out);
  }
};

namespace {

struct ExecCtx {
  const uint8_t* body;
  size_t body_size;
  bool swap;
  RecordArena* arena;
};

/// Fill a field's declared default (not zeros) into a freshly zeroed host
/// struct. `struct_base` is the base of the struct containing `fd`.
void fill_declared_defaults(const FieldDescriptor& fd, void* struct_base, ExecCtx& ctx) {
  if (is_fixed_scalar(fd.kind)) {
    if (fd.default_int) {
      write_scalar_i64(struct_base, fd, *fd.default_int);
    } else if (fd.default_float) {
      write_scalar_f64(struct_base, fd, *fd.default_float);
    }
  } else if (fd.kind == FieldKind::kString) {
    if (fd.default_string) write_string_field(struct_base, fd, *fd.default_string, *ctx.arena);
  } else if (fd.kind == FieldKind::kStruct) {
    for (const auto& sub : fd.element_format->fields()) {
      fill_declared_defaults(sub, static_cast<uint8_t*>(struct_base) + fd.offset, ctx);
    }
  }
  // Arrays default to empty (null pointer + zero count); nothing to do.
}

void exec_struct(const ConversionPlan::Impl& plan, const uint8_t* src, uint8_t* dst,
                 ExecCtx& ctx);

void exec_array(const ConversionPlan::Impl::Step& s, const uint8_t* src, uint8_t* dst,
                ExecCtx& ctx) {
  const FieldDescriptor& wf = *s.src;
  const FieldDescriptor& hf = *s.dst;
  uint32_t src_stride = wf.element_stride();
  uint32_t dst_stride = hf.element_stride();

  // Locate source elements and count.
  int64_t count;
  const uint8_t* src_elems;
  if (wf.kind == FieldKind::kDynArray) {
    count = s.src_len ? load_wire_i64(src + s.src_len->offset, s.src_len->kind, s.src_len->size,
                                      ctx.swap)
                      : 0;
    uint64_t rel = load_u64_swapped(src + wf.offset, ctx.swap);
    if (rel == 0 || count <= 0) {
      count = 0;
      src_elems = nullptr;
    } else {
      if (rel > ctx.body_size ||
          static_cast<uint64_t>(count) > (ctx.body_size - rel) / std::max(src_stride, 1u)) {
        throw DecodeError("array '" + wf.name + "' out of range");
      }
      src_elems = ctx.body + rel;
    }
  } else {
    count = wf.static_count;
    src_elems = src + wf.offset;
  }

  // Locate destination elements.
  uint8_t* dst_elems;
  int64_t dst_count = count;
  if (hf.kind == FieldKind::kDynArray) {
    if (count == 0) {
      write_pointer(dst, hf, nullptr);
      if (s.dst_len) write_scalar_i64(dst, *s.dst_len, 0);
      return;
    }
    dst_elems = static_cast<uint8_t*>(
        alloc_dyn_array(*ctx.arena, dst_stride, static_cast<uint64_t>(count)));
    write_pointer(dst, hf, dst_elems);
    if (s.dst_len) write_scalar_i64(dst, *s.dst_len, count);
  } else {
    dst_elems = dst + hf.offset;
    dst_count = std::min<int64_t>(count, hf.static_count);
  }

  // Byte-identical scalar elements: one bulk copy instead of per-element
  // widen/truncate round trips; foreign-order messages add one tight
  // fixed-width byteswap loop over the copied block.
  if (s.elem_identity && dst_count > 0) {
    std::memcpy(dst_elems, src_elems, static_cast<size_t>(dst_count) * dst_stride);
    if (ctx.swap && hf.element_size > 1 && hf.element_kind != FieldKind::kChar) {
      for (int64_t i = 0; i < dst_count; ++i) {
        byteswap_inplace(dst_elems + static_cast<size_t>(i) * dst_stride, hf.element_size);
      }
    }
    return;
  }

  for (int64_t i = 0; i < dst_count; ++i) {
    const uint8_t* se = src_elems + static_cast<size_t>(i) * src_stride;
    uint8_t* de = dst_elems + static_cast<size_t>(i) * dst_stride;
    if (s.sub) {
      exec_struct(*s.sub, se, de, ctx);
    } else if (hf.element_kind == FieldKind::kString) {
      const char* str = convert_string(se, ctx.body, ctx.body_size, ctx.swap, *ctx.arena);
      std::memcpy(de, &str, sizeof(char*));
    } else {
      // Basic scalar elements: build throwaway descriptors once per call.
      FieldDescriptor sfd;
      sfd.kind = wf.element_kind;
      sfd.size = wf.element_size;
      sfd.offset = 0;
      FieldDescriptor dfd;
      dfd.kind = hf.element_kind;
      dfd.size = hf.element_size;
      dfd.offset = 0;
      convert_scalar(se, sfd, ctx.swap, de, dfd);
    }
  }
}

void exec_struct(const ConversionPlan::Impl& plan, const uint8_t* src, uint8_t* dst,
                 ExecCtx& ctx) {
  using Op = ConversionPlan::Impl::Op;
  for (const auto& s : plan.steps) {
    switch (s.op) {
      case Op::kScalar:
        convert_scalar(src + s.src->offset, *s.src, ctx.swap, dst, *s.dst);
        break;
      case Op::kCopyRun: {
        const uint8_t* sp = src + s.src->offset;
        uint8_t* dp = dst + s.dst->offset;
        if (!ctx.swap) {
          std::memcpy(dp, sp, s.run_bytes);
        } else {
          for (const auto& [width, n] : s.swap_runs) {
            for (uint32_t k = 0; k < n; ++k) {
              std::memcpy(dp, sp, width);
              byteswap_inplace(dp, width);
              sp += width;
              dp += width;
            }
          }
        }
        break;
      }
      case Op::kEnumRemap: {
        auto v = static_cast<int32_t>(
            load_wire_i64(src + s.src->offset, s.src->kind, s.src->size, ctx.swap));
        auto it = std::lower_bound(s.enum_remap.begin(), s.enum_remap.end(),
                                   std::make_pair(v, INT32_MIN));
        if (it != s.enum_remap.end() && it->first == v) v = it->second;
        write_scalar_i64(dst, *s.dst, v);
        break;
      }
      case Op::kString: {
        const char* str =
            convert_string(src + s.src->offset, ctx.body, ctx.body_size, ctx.swap, *ctx.arena);
        std::memcpy(dst + s.dst->offset, &str, sizeof(char*));
        break;
      }
      case Op::kStruct:
        exec_struct(*s.sub, src + s.src->offset, dst + s.dst->offset, ctx);
        break;
      case Op::kArray:
        exec_array(s, src, dst, ctx);
        break;
      case Op::kDefault: {
        const FieldDescriptor& hf = *s.dst;
        if (is_fixed_scalar(hf.kind)) {
          if (hf.default_int) write_scalar_i64(dst, hf, *hf.default_int);
          if (hf.default_float) write_scalar_f64(dst, hf, *hf.default_float);
        } else if (hf.kind == FieldKind::kString) {
          if (hf.default_string) write_string_field(dst, hf, *hf.default_string, *ctx.arena);
        } else if (hf.kind == FieldKind::kStruct) {
          for (const auto& sub : hf.element_format->fields()) {
            fill_declared_defaults(sub, dst + hf.offset, ctx);
          }
        }
        // Arrays stay empty; the zeroed record already reads as count 0 /
        // null elements.
        break;
      }
    }
  }
}

}  // namespace

ConversionPlan::ConversionPlan(FormatPtr wire_fmt, FormatPtr host_fmt)
    : wire_(std::move(wire_fmt)), host_(std::move(host_fmt)) {
  if (!wire_ || !host_) throw FormatError("ConversionPlan: null format");
  impl_ = Impl::compile(*wire_, *host_, 0);
  identity_ = wire_->identical_to(*host_);
  lossy_ = impl_->lossy;
  defaulted_ = impl_->defaulted;
  coalesced_runs_ = impl_->coalesced_runs;
  coalesced_fields_ = impl_->coalesced_fields;
}

ConversionPlan::~ConversionPlan() = default;
ConversionPlan::ConversionPlan(ConversionPlan&&) noexcept = default;

void* ConversionPlan::execute(const void* buf, size_t size, RecordArena& arena) const {
  WireInfo info = peek_header(buf, size);
  if (info.version != kWireVersion) throw DecodeError("buffer was already decoded in place");
  if (info.fingerprint != wire_->fingerprint()) {
    throw DecodeError("message format does not match this plan's wire format");
  }
  const uint8_t* body = static_cast<const uint8_t*>(buf) + kWireHeaderSize;
  size_t body_size = info.total_size - kWireHeaderSize;
  if (body_size < wire_->struct_size()) throw DecodeError("body shorter than record");

  ExecCtx ctx{body, body_size, order_mismatch(info.order), &arena};
  auto* dst = static_cast<uint8_t*>(alloc_record(*host_, arena));
  if (identity_ && !ctx.swap && !host_->has_pointers()) {
    // Layout-identical, host-order, fully inline record: the body already
    // is the host representation. One memcpy replaces the whole program.
    std::memcpy(dst, body, host_->struct_size());
  } else {
    exec_struct(*impl_, body, dst, ctx);
  }
  // Hot-path telemetry: relaxed adds only, no clock reads (latency
  // histograms live one level up, in the receiver pipeline).
  static obs::Counter& converts = obs::metrics().counter("morph_pbio_convert_decodes_total");
  static obs::Counter& bytes = obs::metrics().counter("morph_pbio_decoded_bytes_total");
  converts.inc();
  bytes.add(info.total_size);
  return dst;
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

namespace {

void inplace_struct(const VarWalk& walk, uint8_t* rec, uint8_t* body, size_t body_size);

uint8_t* inplace_pointer(uint8_t* slot, uint8_t* body, size_t body_size, size_t need,
                         const char* what) {
  uint64_t rel;
  std::memcpy(&rel, slot, 8);
  if (rel == 0) {
    void* null = nullptr;
    std::memcpy(slot, &null, sizeof(void*));
    return nullptr;
  }
  if (rel >= body_size || need > body_size - rel) {
    throw DecodeError(std::string(what) + " offset out of range");
  }
  uint8_t* p = body + rel;
  std::memcpy(slot, &p, sizeof(void*));
  return p;
}

void inplace_string(uint8_t* slot, uint8_t* body, size_t body_size) {
  uint64_t rel;
  std::memcpy(&rel, slot, 8);
  if (rel == 0) {
    void* null = nullptr;
    std::memcpy(slot, &null, sizeof(void*));
    return;
  }
  if (rel >= body_size) throw DecodeError("string offset out of range");
  if (std::memchr(body + rel, 0, body_size - rel) == nullptr) {
    throw DecodeError("unterminated string in message");
  }
  uint8_t* p = body + rel;
  std::memcpy(slot, &p, sizeof(void*));
}

void inplace_struct(const VarWalk& walk, uint8_t* rec, uint8_t* body, size_t body_size) {
  for (const auto& v : walk.vars) {
    const FieldDescriptor& fd = *v.fd;
    switch (v.action) {
      case VarWalk::Action::kString:
        inplace_string(rec + fd.offset, body, body_size);
        break;
      case VarWalk::Action::kStaticStrings:
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          inplace_string(rec + fd.offset + i * sizeof(char*), body, body_size);
        }
        break;
      case VarWalk::Action::kInlineSub:
        if (fd.kind == FieldKind::kStruct) {
          inplace_struct(*v.elem, rec + fd.offset, body, body_size);
        } else {
          uint32_t stride = fd.element_stride();
          for (uint32_t i = 0; i < fd.static_count; ++i) {
            inplace_struct(*v.elem, rec + fd.offset + i * stride, body, body_size);
          }
        }
        break;
      case VarWalk::Action::kDynArray: {
        int64_t count = v.len_fd ? read_scalar_i64(rec, *v.len_fd) : 0;
        if (count < 0) throw DecodeError("negative array count");
        uint32_t stride = fd.element_stride();
        uint8_t* elems =
            inplace_pointer(rec + fd.offset, body, body_size,
                            static_cast<size_t>(count) * stride, fd.name.c_str());
        if (elems == nullptr) break;
        if (v.elem) {
          for (int64_t i = 0; i < count; ++i) {
            inplace_struct(*v.elem, elems + static_cast<size_t>(i) * stride, body, body_size);
          }
        } else if (v.elem_is_string) {
          for (int64_t i = 0; i < count; ++i) {
            inplace_string(elems + static_cast<size_t>(i) * sizeof(char*), body, body_size);
          }
        }
        break;
      }
    }
  }
}

}  // namespace

Decoder::Decoder(FormatPtr host_fmt) : host_(std::move(host_fmt)) {
  if (!host_) throw FormatError("Decoder: null format");
  walk_ = VarWalk::build(*host_);
}

Decoder::~Decoder() = default;
Decoder::Decoder(Decoder&& other) noexcept
    : host_(std::move(other.host_)),
      walk_(std::move(other.walk_)),
      plans_(std::move(other.plans_)) {}

void* Decoder::decode_in_place(void* buf, size_t size) const {
  WireInfo info = peek_header(buf, size);
  if (info.version != kWireVersion) throw DecodeError("buffer was already decoded in place");
  if (info.fingerprint != host_->fingerprint() || info.order != host_byte_order()) {
    return nullptr;
  }
  auto* p = static_cast<uint8_t*>(buf);
  uint8_t* body = p + kWireHeaderSize;
  size_t body_size = info.total_size - kWireHeaderSize;
  if (body_size < host_->struct_size()) throw DecodeError("body shorter than record");
  if (host_->has_pointers()) inplace_struct(*walk_, body, body, body_size);
  p[2] = kVersionDecoded;  // guard against double decoding
  // Zero-copy fast path: telemetry must stay within noise, so this is two
  // relaxed adds and nothing else.
  static obs::Counter& zero_copy = obs::metrics().counter("morph_pbio_zero_copy_decodes_total");
  static obs::Counter& bytes = obs::metrics().counter("morph_pbio_decoded_bytes_total");
  zero_copy.inc();
  bytes.add(info.total_size);
  return body;
}

void* Decoder::decode(const void* buf, size_t size, const FormatPtr& wire_fmt,
                      RecordArena& arena) {
  return plan_for(wire_fmt).execute(buf, size, arena);
}

const ConversionPlan& Decoder::plan_for(const FormatPtr& wire_fmt) {
  if (!wire_fmt) throw FormatError("Decoder: null wire format");
  // Plans are heap-allocated and never erased, so the reference stays valid
  // after the lock is released and execution happens lock-free.
  std::lock_guard<std::mutex> lock(plans_mutex_);
  auto it = plans_.find(wire_fmt->fingerprint());
  if (it == plans_.end()) {
    it = plans_
             .emplace(wire_fmt->fingerprint(),
                      std::make_unique<ConversionPlan>(wire_fmt, host_))
             .first;
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// reorder_encoded
// ---------------------------------------------------------------------------

namespace {

void swap_struct(const FormatDescriptor& fmt, uint8_t* rec, uint8_t* body, size_t body_size,
                 bool foreign);

void swap_scalar(uint8_t* p, uint32_t size) { byteswap_inplace(p, size); }

void swap_struct(const FormatDescriptor& fmt, uint8_t* rec, uint8_t* body, size_t body_size,
                 bool foreign) {
  // Pre-read dynamic array counts and element offsets before any swapping
  // destroys them. `foreign` says the buffer is currently in the opposite
  // byte order (i.e. this call is swapping back to host order), so stored
  // values must be swapped after reading.
  struct Pending {
    const FieldDescriptor* fd;
    int64_t count;
    uint64_t rel;
  };
  std::vector<Pending> dyn;
  for (const auto& fd : fmt.fields()) {
    if (fd.kind != FieldKind::kDynArray) continue;
    const FieldDescriptor* len = fmt.find_field(fd.length_field);
    int64_t count =
        len ? load_wire_i64(rec + len->offset, len->kind, len->size, foreign) : 0;
    uint64_t rel = load_u64_swapped(rec + fd.offset, foreign);
    dyn.push_back({&fd, count, rel});
  }

  for (const auto& fd : fmt.fields()) {
    switch (fd.kind) {
      case FieldKind::kInt:
      case FieldKind::kUInt:
      case FieldKind::kFloat:
      case FieldKind::kEnum:
        swap_scalar(rec + fd.offset, fd.size);
        break;
      case FieldKind::kChar:
        break;
      case FieldKind::kString:
      case FieldKind::kDynArray:
        swap_scalar(rec + fd.offset, 8);  // the offset slot
        break;
      case FieldKind::kStruct:
        swap_struct(*fd.element_format, rec + fd.offset, body, body_size, foreign);
        break;
      case FieldKind::kStaticArray: {
        uint32_t stride = fd.element_stride();
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          uint8_t* e = rec + fd.offset + i * stride;
          if (fd.element_format) {
            swap_struct(*fd.element_format, e, body, body_size, foreign);
          } else if (fd.element_kind == FieldKind::kString) {
            swap_scalar(e, 8);
          } else if (fd.element_kind != FieldKind::kChar) {
            swap_scalar(e, fd.element_size);
          }
        }
        break;
      }
    }
  }

  // Now swap the out-of-line elements of dynamic arrays.
  for (const auto& pd : dyn) {
    if (pd.rel == 0 || pd.count <= 0) continue;
    const FieldDescriptor& fd = *pd.fd;
    uint32_t stride = fd.element_stride();
    if (pd.rel >= body_size ||
        static_cast<uint64_t>(pd.count) > (body_size - pd.rel) / std::max(stride, 1u)) {
      throw DecodeError("reorder: array out of range");
    }
    uint8_t* elems = body + pd.rel;
    for (int64_t i = 0; i < pd.count; ++i) {
      uint8_t* e = elems + static_cast<size_t>(i) * stride;
      if (fd.element_format) {
        swap_struct(*fd.element_format, e, body, body_size, foreign);
      } else if (fd.element_kind == FieldKind::kString) {
        swap_scalar(e, 8);
      } else if (fd.element_kind != FieldKind::kChar) {
        swap_scalar(e, fd.element_size);
      }
    }
  }
}

}  // namespace

void reorder_encoded(ByteBuffer& message, const FormatDescriptor& fmt) {
  WireInfo info = peek_header(message.data(), message.size());
  if (info.version != kWireVersion) throw DecodeError("cannot reorder a decoded buffer");
  uint8_t* p = message.data();
  uint8_t* body = p + kWireHeaderSize;
  size_t body_size = info.total_size - kWireHeaderSize;
  // When the buffer is currently foreign-order, stored counts/offsets need
  // swapping after being read during the walk.
  swap_struct(fmt, body, body, body_size, order_mismatch(info.order));
  // Header: flip the order tag, swap fingerprint and total size.
  p[3] = static_cast<uint8_t>(info.order == ByteOrder::kLittle ? ByteOrder::kBig
                                                               : ByteOrder::kLittle);
  byteswap_inplace(p + 4, 8);
  byteswap_inplace(p + 12, 4);
}

}  // namespace morph::pbio
