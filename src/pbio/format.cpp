#include "pbio/format.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace morph::pbio {

namespace {

uint32_t align_up(uint32_t v, uint32_t a) { return (v + a - 1) & ~(a - 1); }

void check_scalar_size(FieldKind kind, uint32_t size, const std::string& field) {
  auto fail = [&] {
    throw FormatError("field '" + field + "': invalid size " + std::to_string(size) +
                      " for " + std::string(field_kind_name(kind)));
  };
  switch (kind) {
    case FieldKind::kInt:
    case FieldKind::kUInt:
      if (size != 1 && size != 2 && size != 4 && size != 8) fail();
      break;
    case FieldKind::kFloat:
      if (size != 4 && size != 8) fail();
      break;
    case FieldKind::kChar:
      if (size != 1) fail();
      break;
    case FieldKind::kEnum:
      if (size != 4) fail();
      break;
    default:
      break;
  }
}

/// Natural alignment of a field within the host struct.
uint32_t field_alignment(const FieldDescriptor& fd) {
  switch (fd.kind) {
    case FieldKind::kInt:
    case FieldKind::kUInt:
    case FieldKind::kFloat:
    case FieldKind::kEnum:
      return fd.size;
    case FieldKind::kChar:
      return 1;
    case FieldKind::kString:
    case FieldKind::kDynArray:
      return alignof(void*);
    case FieldKind::kStruct:
      return fd.element_format->alignment();
    case FieldKind::kStaticArray:
      return fd.element_format ? fd.element_format->alignment()
                               : (fd.element_kind == FieldKind::kString
                                      ? static_cast<uint32_t>(alignof(void*))
                                      : fd.element_size);
  }
  return 1;
}

uint64_t hash_field_shape(const FieldDescriptor& fd) {
  // Shape identity ignores size and offset: diff()/MaxMatch treat same-name,
  // same-kind fields as matching even when widths or layouts differ, because
  // the conversion plan absorbs those differences.
  uint64_t h = fnv1a(fd.name);
  h = fnv1a_u64(static_cast<uint64_t>(fd.kind), h);
  FieldKind ek = fd.element_format ? FieldKind::kStruct : fd.element_kind;
  if (is_array(fd.kind)) h = fnv1a_u64(static_cast<uint64_t>(ek), h);
  if (fd.element_format) h = fnv1a_u64(fd.element_format->shape_fingerprint(), h);
  return h * kFnvPrime;
}

struct Derived {
  uint32_t weight = 0;
  uint64_t fingerprint = 0;
  uint64_t shape_fingerprint = 0;
  bool has_pointers = false;
};

Derived compute_derived(const std::string& name, uint32_t struct_size,
                        const std::vector<FieldDescriptor>& fields) {
  Derived d;
  uint64_t fp = fnv1a(name);
  uint64_t shape = 0;
  for (const auto& fd : fields) {
    if (is_basic(fd.kind)) {
      d.weight += 1;
    } else if (fd.element_format) {
      d.weight += fd.element_format->weight();
    } else {
      d.weight += 1;  // array of basic elements counts as one field
    }
    if (fd.kind == FieldKind::kString || fd.kind == FieldKind::kDynArray) d.has_pointers = true;
    if (fd.element_format && fd.element_format->has_pointers()) d.has_pointers = true;
    if (is_array(fd.kind) && fd.element_kind == FieldKind::kString && !fd.element_format) {
      d.has_pointers = true;
    }
    fp = fnv1a(fd.name, fp);
    fp = fnv1a_u64(static_cast<uint64_t>(fd.kind), fp);
    fp = fnv1a_u64(fd.size, fp);
    fp = fnv1a_u64(fd.offset, fp);
    fp = fnv1a_u64(static_cast<uint64_t>(fd.element_kind), fp);
    fp = fnv1a_u64(fd.element_size, fp);
    fp = fnv1a_u64(fd.static_count, fp);
    fp = fnv1a(fd.length_field, fp);
    fp = fnv1a_u64(fd.importance, fp);
    // Mixed only when present so every pre-pbuf fingerprint is unchanged.
    if (fd.pb_field != 0) fp = fnv1a_u64(fd.pb_field, fp);
    for (const auto& ev : fd.enumerators) {
      fp = fnv1a(ev.name, fp);
      fp = fnv1a_u64(static_cast<uint64_t>(ev.value), fp);
    }
    if (fd.element_format) fp = fnv1a_u64(fd.element_format->fingerprint(), fp);
    shape += hash_field_shape(fd);  // order-insensitive combine
  }
  fp = fnv1a_u64(struct_size, fp);
  d.fingerprint = fp;
  d.shape_fingerprint = fnv1a(name) ^ shape;
  return d;
}

}  // namespace

uint32_t FieldDescriptor::pb_number() const { return pb_field & kPbNumberMask; }

uint32_t FieldDescriptor::element_stride() const {
  if (element_format) {
    return align_up(element_format->struct_size(), element_format->alignment());
  }
  if (element_kind == FieldKind::kString) return sizeof(void*);
  return element_size;
}

// ---------------------------------------------------------------------------
// FormatDescriptor
// ---------------------------------------------------------------------------

const FieldDescriptor* FormatDescriptor::find_field(std::string_view field_name) const {
  for (const auto& fd : fields_) {
    if (fd.name == field_name) return &fd;
  }
  return nullptr;
}

size_t FormatDescriptor::field_index(std::string_view field_name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == field_name) return i;
  }
  return npos;
}

bool FormatDescriptor::identical_to(const FormatDescriptor& other) const {
  if (this == &other) return true;
  if (name_ != other.name_ || struct_size_ != other.struct_size_ ||
      fields_.size() != other.fields_.size()) {
    return false;
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    const auto& a = fields_[i];
    const auto& b = other.fields_[i];
    if (a.name != b.name || a.kind != b.kind || a.size != b.size || a.offset != b.offset ||
        a.element_kind != b.element_kind || a.element_size != b.element_size ||
        a.static_count != b.static_count || a.length_field != b.length_field ||
        a.importance != b.importance || a.pb_field != b.pb_field ||
        a.enumerators != b.enumerators) {
      return false;
    }
    if ((a.element_format == nullptr) != (b.element_format == nullptr)) return false;
    if (a.element_format && !a.element_format->identical_to(*b.element_format)) return false;
  }
  return true;
}

std::string FormatDescriptor::to_string() const {
  std::string out;
  to_string_rec(out, 0);
  return out;
}

void FormatDescriptor::to_string_rec(std::string& out, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out += pad + "format \"" + name_ + "\" (size " + std::to_string(struct_size_) + ", weight " +
         std::to_string(weight_) + ")\n";
  for (const auto& fd : fields_) {
    out += pad + "  " + fd.name + " : " + std::string(field_kind_name(fd.kind));
    if (is_fixed_scalar(fd.kind)) out += "[" + std::to_string(fd.size) + "]";
    if (fd.kind == FieldKind::kStaticArray) out += " x" + std::to_string(fd.static_count);
    if (fd.kind == FieldKind::kDynArray) out += " [len=" + fd.length_field + "]";
    out += " @" + std::to_string(fd.offset);
    if (fd.pb_field != 0) {
      out += " pb=" + std::to_string(fd.pb_number());
      if ((fd.pb_field & kPbZigzag) != 0) out += "z";
      if ((fd.pb_field & kPbFixed) != 0) out += "f";
    }
    out += "\n";
    if (fd.element_format) fd.element_format->to_string_rec(out, indent + 2);
  }
}

void FormatDescriptor::serialize(ByteBuffer& out) const { serialize_rec(out, 0); }

void FormatDescriptor::serialize_rec(ByteBuffer& out, int depth) const {
  if (depth > static_cast<int>(kMaxNesting)) throw FormatError("nesting too deep to serialize");
  out.append_string(name_);
  out.append_u32(struct_size_);
  out.append_u32(alignment_);
  out.append_u32(static_cast<uint32_t>(fields_.size()));
  for (const auto& fd : fields_) {
    out.append_string(fd.name);
    out.append_u8(static_cast<uint8_t>(fd.kind));
    out.append_u32(fd.size);
    out.append_u32(fd.offset);
    out.append_u8(static_cast<uint8_t>(fd.element_kind));
    out.append_u32(fd.element_size);
    out.append_u32(fd.static_count);
    out.append_string(fd.length_field);
    out.append_u32(static_cast<uint32_t>(fd.enumerators.size()));
    for (const auto& ev : fd.enumerators) {
      out.append_string(ev.name);
      out.append_i32(ev.value);
    }
    uint8_t flags = 0;
    if (fd.element_format) flags |= 1;
    if (fd.default_int) flags |= 2;
    if (fd.default_float) flags |= 4;
    if (fd.default_string) flags |= 8;
    // Flag 16 is only set when protobuf metadata is present, so descriptors
    // without pb mappings serialize byte-identically to the legacy layout.
    if (fd.pb_field != 0) flags |= 16;
    out.append_u8(flags);
    out.append_u32(fd.importance);
    if (fd.default_int) out.append_i64(*fd.default_int);
    if (fd.default_float) out.append_f64(*fd.default_float);
    if (fd.default_string) out.append_string(*fd.default_string);
    if (fd.pb_field != 0) out.append_u32(fd.pb_field);
    if (fd.element_format) fd.element_format->serialize_rec(out, depth + 1);
  }
}

FormatPtr FormatDescriptor::deserialize(ByteReader& in) { return deserialize_rec(in, 0); }

FormatPtr FormatDescriptor::deserialize_rec(ByteReader& in, int depth) {
  if (depth > static_cast<int>(kMaxNesting)) throw DecodeError("format nesting too deep");
  std::string name = in.read_string();
  if (name.empty()) throw DecodeError("empty format name");
  uint32_t struct_size = in.read_u32();
  uint32_t alignment = in.read_u32();
  if (alignment == 0 || (alignment & (alignment - 1)) != 0 || alignment > 64) {
    throw DecodeError("bad format alignment");
  }
  uint32_t nfields = in.read_u32();
  if (nfields > FormatDescriptor::kMaxFields) throw DecodeError("too many fields");
  std::vector<FieldDescriptor> fields;
  fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    FieldDescriptor fd;
    fd.name = in.read_string();
    if (fd.name.empty()) throw DecodeError("empty field name");
    fd.kind = static_cast<FieldKind>(in.read_u8());
    if (static_cast<uint8_t>(fd.kind) > static_cast<uint8_t>(FieldKind::kDynArray)) {
      throw DecodeError("bad field kind");
    }
    fd.size = in.read_u32();
    fd.offset = in.read_u32();
    fd.element_kind = static_cast<FieldKind>(in.read_u8());
    fd.element_size = in.read_u32();
    fd.static_count = in.read_u32();
    fd.length_field = in.read_string();
    uint32_t nenum = in.read_u32();
    if (nenum > FormatDescriptor::kMaxFields) throw DecodeError("too many enumerators");
    for (uint32_t e = 0; e < nenum; ++e) {
      EnumValue ev;
      ev.name = in.read_string();
      ev.value = in.read_i32();
      fd.enumerators.push_back(std::move(ev));
    }
    uint8_t flags = in.read_u8();
    fd.importance = in.read_u32();
    if (flags & 2) fd.default_int = in.read_i64();
    if (flags & 4) fd.default_float = in.read_f64();
    if (flags & 8) fd.default_string = in.read_string();
    if (flags & 16) {
      fd.pb_field = in.read_u32();
      if ((fd.pb_field & kPbNumberMask) == 0) {
        throw DecodeError("pb field number missing in '" + fd.name + "'");
      }
      if ((fd.pb_field & ~(kPbNumberMask | kPbZigzag | kPbFixed)) != 0) {
        throw DecodeError("unknown pb flag bits in '" + fd.name + "'");
      }
    }
    if (flags & 1) fd.element_format = deserialize_rec(in, depth + 1);
    // Sanity limits that keep a hostile descriptor from driving huge
    // allocations during later conversion.
    if (fd.offset > (1u << 30) || fd.size > (1u << 30) || struct_size > (1u << 30)) {
      throw DecodeError("format dimensions out of range");
    }
    if (fd.offset + fd.size > struct_size) {
      throw DecodeError("field '" + fd.name + "' extends past struct size");
    }
    if (fd.kind == FieldKind::kDynArray && fd.length_field.empty()) {
      throw DecodeError("dynamic array '" + fd.name + "' lacks a length field");
    }
    // Internal consistency: everything the decoder later trusts when it
    // walks raw wire bytes must be proven here, not assumed.
    switch (fd.kind) {
      case FieldKind::kInt:
      case FieldKind::kUInt:
        if (fd.size != 1 && fd.size != 2 && fd.size != 4 && fd.size != 8) {
          throw DecodeError("bad integer size in '" + fd.name + "'");
        }
        break;
      case FieldKind::kFloat:
        if (fd.size != 4 && fd.size != 8) throw DecodeError("bad float size in '" + fd.name + "'");
        break;
      case FieldKind::kChar:
        if (fd.size != 1) throw DecodeError("bad char size in '" + fd.name + "'");
        break;
      case FieldKind::kEnum:
        if (fd.size != 4) throw DecodeError("bad enum size in '" + fd.name + "'");
        break;
      case FieldKind::kString:
      case FieldKind::kDynArray:
        // Wire pointer slots are always 8-byte body-relative offsets.
        if (fd.size != 8) throw DecodeError("bad pointer slot size in '" + fd.name + "'");
        break;
      case FieldKind::kStruct:
        if (fd.element_format == nullptr || fd.size != fd.element_format->struct_size()) {
          throw DecodeError("struct field '" + fd.name + "' size mismatch");
        }
        break;
      case FieldKind::kStaticArray:
        break;  // checked below, element data parsed by now
    }
    if (fd.kind == FieldKind::kStaticArray) {
      if (fd.static_count == 0) throw DecodeError("zero-count static array '" + fd.name + "'");
      if (!fd.element_format && !is_basic(fd.element_kind)) {
        throw DecodeError("bad element kind in '" + fd.name + "'");
      }
      uint64_t stride = fd.element_stride();
      if (stride == 0 || stride * fd.static_count != fd.size) {
        throw DecodeError("static array '" + fd.name + "' extent mismatch");
      }
    }
    if (is_array(fd.kind) && !fd.element_format) {
      if (!is_basic(fd.element_kind)) {
        throw DecodeError("bad element kind in '" + fd.name + "'");
      }
      if (fd.element_kind == FieldKind::kString) {
        if (fd.element_size != 8) throw DecodeError("bad string element size in '" + fd.name + "'");
      } else {
        uint32_t es = fd.element_size;
        bool ok = fd.element_kind == FieldKind::kChar ? es == 1
                  : fd.element_kind == FieldKind::kFloat
                      ? (es == 4 || es == 8)
                      : (es == 1 || es == 2 || es == 4 || es == 8);
        if (!ok) throw DecodeError("bad element size in '" + fd.name + "'");
      }
    }
    fields.push_back(std::move(fd));
  }
  // Validate dynamic-array length references point at earlier integer fields.
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].kind != FieldKind::kDynArray) continue;
    bool ok = false;
    for (size_t j = 0; j < i; ++j) {
      if (fields[j].name == fields[i].length_field &&
          (fields[j].kind == FieldKind::kInt || fields[j].kind == FieldKind::kUInt)) {
        ok = true;
        break;
      }
    }
    if (!ok) throw DecodeError("bad length field reference in '" + fields[i].name + "'");
  }

  auto fmt = std::shared_ptr<FormatDescriptor>(new FormatDescriptor());
  fmt->name_ = std::move(name);
  fmt->struct_size_ = struct_size;
  fmt->alignment_ = alignment;
  fmt->fields_ = std::move(fields);
  Derived d = compute_derived(fmt->name_, fmt->struct_size_, fmt->fields_);
  fmt->weight_ = d.weight;
  fmt->fingerprint_ = d.fingerprint;
  fmt->shape_fingerprint_ = d.shape_fingerprint;
  fmt->has_pointers_ = d.has_pointers;
  return fmt;
}

// ---------------------------------------------------------------------------
// FormatBuilder
// ---------------------------------------------------------------------------

FormatBuilder::FormatBuilder(std::string format_name, uint32_t struct_size)
    : name_(std::move(format_name)), declared_size_(struct_size) {
  if (name_.empty()) throw FormatError("format name must not be empty");
}

FieldDescriptor& FormatBuilder::push(FieldDescriptor fd) {
  if (built_) throw FormatError("builder already consumed");
  if (fd.name.empty()) throw FormatError("field name must not be empty");
  if (fields_.size() >= FormatDescriptor::kMaxFields) throw FormatError("too many fields");
  for (const auto& existing : fields_) {
    if (existing.name == fd.name) {
      throw FormatError("duplicate field name '" + fd.name + "' in format '" + name_ + "'");
    }
  }
  fields_.push_back(std::move(fd));
  return fields_.back();
}

FieldDescriptor& FormatBuilder::last() {
  if (fields_.empty()) throw FormatError("no field added yet");
  return fields_.back();
}

FormatBuilder& FormatBuilder::add_int(std::string name, uint32_t size, uint32_t offset) {
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kInt;
  fd.size = size;
  fd.offset = offset;
  check_scalar_size(fd.kind, size, fd.name);
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_uint(std::string name, uint32_t size, uint32_t offset) {
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kUInt;
  fd.size = size;
  fd.offset = offset;
  check_scalar_size(fd.kind, size, fd.name);
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_float(std::string name, uint32_t size, uint32_t offset) {
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kFloat;
  fd.size = size;
  fd.offset = offset;
  check_scalar_size(fd.kind, size, fd.name);
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_char(std::string name, uint32_t offset) {
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kChar;
  fd.size = 1;
  fd.offset = offset;
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_enum(std::string name, std::vector<EnumValue> values,
                                       uint32_t offset) {
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kEnum;
  fd.size = 4;
  fd.offset = offset;
  fd.enumerators = std::move(values);
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_string(std::string name, uint32_t offset) {
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kString;
  fd.size = sizeof(void*);
  fd.offset = offset;
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_struct(std::string name, FormatPtr format, uint32_t offset) {
  if (!format) throw FormatError("null nested format for field '" + name + "'");
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kStruct;
  fd.size = format->struct_size();
  fd.offset = offset;
  fd.element_format = std::move(format);
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_static_array(std::string name, FieldKind element_kind,
                                               uint32_t element_size, uint32_t count,
                                               uint32_t offset) {
  if (!is_basic(element_kind)) {
    throw FormatError("static array '" + name + "': element kind must be basic");
  }
  if (count == 0) throw FormatError("static array '" + name + "': zero count");
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kStaticArray;
  fd.element_kind = element_kind;
  if (element_kind == FieldKind::kString) {
    fd.element_size = sizeof(void*);
  } else {
    check_scalar_size(element_kind, element_size, fd.name);
    fd.element_size = element_size;
  }
  fd.static_count = count;
  fd.offset = offset;
  fd.size = fd.element_stride() * count;
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_static_array(std::string name, FormatPtr element_format,
                                               uint32_t count, uint32_t offset) {
  if (!element_format) throw FormatError("null element format for array '" + name + "'");
  if (count == 0) throw FormatError("static array '" + name + "': zero count");
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kStaticArray;
  fd.element_kind = FieldKind::kStruct;
  fd.element_format = std::move(element_format);
  fd.static_count = count;
  fd.offset = offset;
  fd.size = fd.element_stride() * count;
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_dyn_array(std::string name, FieldKind element_kind,
                                            uint32_t element_size, std::string length_field,
                                            uint32_t offset) {
  if (!is_basic(element_kind)) {
    throw FormatError("dynamic array '" + name + "': element kind must be basic");
  }
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kDynArray;
  fd.element_kind = element_kind;
  if (element_kind == FieldKind::kString) {
    fd.element_size = sizeof(void*);
  } else {
    check_scalar_size(element_kind, element_size, fd.name);
    fd.element_size = element_size;
  }
  fd.length_field = std::move(length_field);
  fd.size = sizeof(void*);
  fd.offset = offset;
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::add_dyn_array(std::string name, FormatPtr element_format,
                                            std::string length_field, uint32_t offset) {
  if (!element_format) throw FormatError("null element format for array '" + name + "'");
  FieldDescriptor fd;
  fd.name = std::move(name);
  fd.kind = FieldKind::kDynArray;
  fd.element_kind = FieldKind::kStruct;
  fd.element_format = std::move(element_format);
  fd.length_field = std::move(length_field);
  fd.size = sizeof(void*);
  fd.offset = offset;
  push(std::move(fd));
  return *this;
}

FormatBuilder& FormatBuilder::with_default(int64_t v) {
  last().default_int = v;
  return *this;
}

FormatBuilder& FormatBuilder::with_default(double v) {
  last().default_float = v;
  return *this;
}

FormatBuilder& FormatBuilder::with_default(std::string v) {
  last().default_string = std::move(v);
  return *this;
}

FormatBuilder& FormatBuilder::with_importance(uint32_t importance) {
  last().importance = importance;
  return *this;
}

FormatBuilder& FormatBuilder::with_pb_field(uint32_t pb_field) {
  if ((pb_field & kPbNumberMask) == 0) {
    throw FormatError("pb field number must be 1.." + std::to_string(kPbMaxFieldNumber));
  }
  if ((pb_field & ~(kPbNumberMask | kPbZigzag | kPbFixed)) != 0) {
    throw FormatError("unknown pb flag bits");
  }
  last().pb_field = pb_field;
  return *this;
}

FormatPtr FormatBuilder::build() {
  if (built_) throw FormatError("builder already consumed");
  built_ = true;

  // Validate dynamic-array length references: the length field must exist,
  // be an integer, and be declared before the array (so decoders and
  // transforms can always read the count first).
  for (size_t i = 0; i < fields_.size(); ++i) {
    const auto& fd = fields_[i];
    if (fd.kind != FieldKind::kDynArray) continue;
    bool found = false;
    for (size_t j = 0; j < i; ++j) {
      if (fields_[j].name == fd.length_field) {
        if (fields_[j].kind != FieldKind::kInt && fields_[j].kind != FieldKind::kUInt) {
          throw FormatError("length field '" + fd.length_field + "' of array '" + fd.name +
                            "' must be an integer field");
        }
        found = true;
        break;
      }
    }
    if (!found) {
      throw FormatError("dynamic array '" + fd.name + "' references length field '" +
                        fd.length_field + "' which is not declared before it");
    }
  }

  uint32_t max_align = 1;
  for (auto& fd : fields_) max_align = std::max(max_align, field_alignment(fd));

  uint32_t struct_size = declared_size_;
  if (declared_size_ == 0) {
    // Auto mode: natural C layout.
    uint32_t cursor = 0;
    for (auto& fd : fields_) {
      if (fd.offset != kAutoOffset) {
        throw FormatError("field '" + fd.name +
                          "' has explicit offset but no struct size was declared");
      }
      uint32_t a = field_alignment(fd);
      cursor = align_up(cursor, a);
      fd.offset = cursor;
      cursor += fd.size;
    }
    struct_size = align_up(std::max(cursor, 1u), max_align);
  } else {
    // Bound mode: all offsets must be explicit and in range.
    for (const auto& fd : fields_) {
      if (fd.offset == kAutoOffset) {
        throw FormatError("field '" + fd.name +
                          "' has auto offset but the format declared an explicit struct size");
      }
      if (fd.offset + fd.size > declared_size_) {
        throw FormatError("field '" + fd.name + "' extends past declared struct size");
      }
    }
  }

  auto fmt = std::shared_ptr<FormatDescriptor>(new FormatDescriptor());
  fmt->name_ = std::move(name_);
  fmt->struct_size_ = struct_size;
  fmt->alignment_ = max_align;
  fmt->fields_ = std::move(fields_);
  Derived d = compute_derived(fmt->name_, fmt->struct_size_, fmt->fields_);
  fmt->weight_ = d.weight;
  fmt->fingerprint_ = d.fingerprint;
  fmt->shape_fingerprint_ = d.shape_fingerprint;
  fmt->has_pointers_ = d.has_pointers;
  return fmt;
}

FormatPtr relayout(const FormatDescriptor& fmt) {
  FormatBuilder b(fmt.name());
  for (const auto& fd : fmt.fields()) {
    switch (fd.kind) {
      case FieldKind::kInt:
        b.add_int(fd.name, fd.size);
        break;
      case FieldKind::kUInt:
        b.add_uint(fd.name, fd.size);
        break;
      case FieldKind::kFloat:
        b.add_float(fd.name, fd.size);
        break;
      case FieldKind::kChar:
        b.add_char(fd.name);
        break;
      case FieldKind::kEnum:
        b.add_enum(fd.name, fd.enumerators);
        break;
      case FieldKind::kString:
        b.add_string(fd.name);
        break;
      case FieldKind::kStruct:
        b.add_struct(fd.name, relayout(*fd.element_format));
        break;
      case FieldKind::kStaticArray:
        if (fd.element_format) {
          b.add_static_array(fd.name, relayout(*fd.element_format), fd.static_count);
        } else {
          b.add_static_array(fd.name, fd.element_kind, fd.element_size, fd.static_count);
        }
        break;
      case FieldKind::kDynArray:
        if (fd.element_format) {
          b.add_dyn_array(fd.name, relayout(*fd.element_format), fd.length_field);
        } else {
          b.add_dyn_array(fd.name, fd.element_kind, fd.element_size, fd.length_field);
        }
        break;
    }
    if (fd.default_int) b.with_default(*fd.default_int);
    if (fd.default_float) b.with_default(*fd.default_float);
    if (fd.default_string) b.with_default(*fd.default_string);
    if (fd.importance != 1) b.with_importance(fd.importance);
    if (fd.pb_field != 0) b.with_pb_field(fd.pb_field);
  }
  return b.build();
}

}  // namespace morph::pbio
