// PBIO decoder: turns wire buffers back into native-layout records.
//
// Two paths, mirroring PBIO's design:
//
//  * In-place fast path — when the incoming format is byte-identical to the
//    receiver's format (same fingerprint) and byte orders agree, decoding
//    only rewrites the body-relative pointer offsets into real pointers
//    inside the caller's buffer. No copies, no allocation.
//
//  * Conversion plan — for any other (wire, host) format pair, a
//    ConversionPlan is compiled once and cached: a flat program of
//    field-level steps (copy / swap / widen / convert / default / recurse)
//    that materializes a host record in a RecordArena. This is the portable
//    equivalent of PBIO's dynamically generated conversion subroutine, and
//    it is also the engine the morph layer uses to reconcile imperfect
//    matches (fill defaults, drop unknown fields).
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/arena.hpp"
#include "common/endian.hpp"
#include "pbio/encode.hpp"
#include "pbio/format.hpp"

namespace morph::pbio {

struct VarWalk;  // internal, defined in varwalk.hpp

/// Parsed wire header.
struct WireInfo {
  uint8_t version = 0;
  ByteOrder order = ByteOrder::kLittle;
  uint64_t fingerprint = 0;
  uint32_t total_size = 0;
};

/// Validate and parse the 16-byte header. Throws DecodeError on bad input.
WireInfo peek_header(const void* buf, size_t size);

/// Compiled conversion from one wire format into one host format.
/// Immutable after construction; safe to share across threads.
class ConversionPlan {
 public:
  ConversionPlan(FormatPtr wire_fmt, FormatPtr host_fmt);
  ~ConversionPlan();
  ConversionPlan(ConversionPlan&&) noexcept;

  const FormatPtr& wire_format() const { return wire_; }
  const FormatPtr& host_format() const { return host_; }

  /// True when wire and host formats are layout-identical (no work beyond
  /// pointer rewriting would be needed).
  bool identity() const { return identity_; }

  /// True when at least one host field had no usable wire source and was
  /// filled from defaults — i.e. the match was imperfect.
  bool lossy() const { return lossy_; }

  /// Number of host fields filled from defaults.
  size_t defaulted_fields() const { return defaulted_; }

  /// Number of coalesced copy runs in the compiled program (counting nested
  /// struct / array-element plans). Adjacent fixed-size fields whose wire
  /// and host layouts agree byte-for-byte are merged into single runs that
  /// execute as one memcpy (or one batched byteswap loop when the message
  /// arrives in foreign order).
  size_t coalesced_runs() const { return coalesced_runs_; }

  /// Number of scalar fields covered by those runs.
  size_t coalesced_fields() const { return coalesced_fields_; }

  /// Convert the body of the message `buf` (a full wire message including
  /// header) into a fresh host record allocated from `arena`.
  void* execute(const void* buf, size_t size, RecordArena& arena) const;

  struct Impl;  // compiled step program; internal to decode.cpp

 private:
  FormatPtr wire_;
  FormatPtr host_;
  bool identity_ = false;
  bool lossy_ = false;
  size_t defaulted_ = 0;
  size_t coalesced_runs_ = 0;
  size_t coalesced_fields_ = 0;
  std::unique_ptr<Impl> impl_;
};

/// Receiver-side decoder bound to one host format. Caches conversion plans
/// per incoming wire format (PBIO: "expensive steps executed only for
/// formats not seen previously").
///
/// Thread safety: decode_in_place() is const and touches no mutable state;
/// it may run concurrently from any number of threads (on distinct
/// buffers). decode()/plan_for() take a short internal lock only to find or
/// build the cached plan — plans themselves are immutable after publish and
/// execute without any lock.
class Decoder {
 public:
  explicit Decoder(FormatPtr host_fmt);
  ~Decoder();
  Decoder(Decoder&&) noexcept;

  const FormatPtr& format() const { return host_; }

  /// Fast path: if the message's format fingerprint equals the host
  /// format's and the byte order matches, rewrite offsets to pointers in
  /// the caller's mutable buffer and return the record pointer (aliasing
  /// `buf`). Returns nullptr when the fast path does not apply.
  void* decode_in_place(void* buf, size_t size) const;

  /// General path: convert using (and caching) a plan for `wire_fmt`.
  /// `wire_fmt` must describe the sender's format (learned out-of-band).
  void* decode(const void* buf, size_t size, const FormatPtr& wire_fmt,
               RecordArena& arena);

  /// Access (building if needed) the cached plan for a wire format.
  const ConversionPlan& plan_for(const FormatPtr& wire_fmt);

  size_t cached_plans() const {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    return plans_.size();
  }

 private:
  FormatPtr host_;
  std::unique_ptr<VarWalk> walk_;  // for the in-place path
  mutable std::mutex plans_mutex_;  // guards the map, never plan execution
  std::unordered_map<uint64_t, std::unique_ptr<ConversionPlan>> plans_;
};

/// Testing / heterogeneity-simulation aid: byte-swap every scalar and
/// offset slot of an encoded message so it looks like it came from a
/// machine of the opposite byte order. The format must be the message's
/// true format. Flips the header order tag.
void reorder_encoded(ByteBuffer& message, const FormatDescriptor& fmt);

}  // namespace morph::pbio
