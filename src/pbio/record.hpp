// Generic accessors over native-layout records.
//
// A "record" is raw memory laid out according to a FormatDescriptor:
// scalars at fixed offsets, strings as char*, dynamic arrays as element
// pointers whose count lives in a sibling integer field. These helpers give
// descriptor-driven access for the slow paths (tests, generators, default
// filling, DynRecord conversion); hot paths use compiled plans / ecode.
//
// Dynamic-array allocation convention: every dynamic array allocated by
// this library carries a hidden 8-byte capacity header immediately before
// element 0. Transforms may therefore grow destination arrays in place
// (amortized doubling) through grow_dyn_array(). Arrays in user-built
// records that never grow do not need the header; only writers use it.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/arena.hpp"
#include "pbio/format.hpp"

namespace morph::pbio {

/// Read any fixed-size scalar field (int/uint/enum/char/float) widened to
/// int64_t (floats are truncated toward zero).
int64_t read_scalar_i64(const void* record, const FieldDescriptor& fd);

/// Read a float/double field (integers are converted).
double read_scalar_f64(const void* record, const FieldDescriptor& fd);

/// Store an int64 into a fixed-size scalar field, truncating as needed.
void write_scalar_i64(void* record, const FieldDescriptor& fd, int64_t value);

/// Store a double into a fixed-size scalar field (int targets truncate).
void write_scalar_f64(void* record, const FieldDescriptor& fd, double value);

/// Read a string field; nullptr pointers read as "".
std::string_view read_string_field(const void* record, const FieldDescriptor& fd);

/// Copy a string into `arena` and point the field at it.
void write_string_field(void* record, const FieldDescriptor& fd, std::string_view value,
                        RecordArena& arena);

/// Pointer stored in a kString/kDynArray field (may be nullptr).
void* read_pointer(const void* record, const FieldDescriptor& fd);
void write_pointer(void* record, const FieldDescriptor& fd, void* p);

/// Allocate a record of `fmt` from the arena (zeroed).
void* alloc_record(const FormatDescriptor& fmt, RecordArena& arena);

/// Allocate a dynamic array of `count` elements of `elem_stride` bytes with
/// the capacity header; returns the element pointer.
void* alloc_dyn_array(RecordArena& arena, uint32_t elem_stride, uint64_t count);

/// Capacity of an array allocated by alloc_dyn_array (0 for nullptr).
uint64_t dyn_array_capacity(const void* elements);

/// Capacity grow_dyn_array() would reserve to make `index` addressable
/// given a current capacity of `cap` (amortized doubling, floor of 8).
/// Exposed so callers decoding untrusted input can charge the exact
/// allocation against a budget before the growth happens.
uint64_t dyn_array_grown_capacity(uint64_t cap, uint64_t index);

/// Ensure the dynamic array field in `record` can hold index+1 elements,
/// growing (and copying) through the arena if needed. Returns the element
/// pointer (base of the array). Only valid on arrays this library allocated.
void* grow_dyn_array(void* record, const FieldDescriptor& fd, RecordArena& arena,
                     uint64_t index);

/// Convenience typed view used by tests and examples.
class RecordRef {
 public:
  RecordRef(void* data, FormatPtr fmt) : data_(data), fmt_(std::move(fmt)) {}

  void* data() const { return data_; }
  const FormatPtr& format() const { return fmt_; }

  int64_t get_int(std::string_view field) const;
  double get_float(std::string_view field) const;
  std::string_view get_string(std::string_view field) const;

  void set_int(std::string_view field, int64_t v);
  void set_float(std::string_view field, double v);
  void set_string(std::string_view field, std::string_view v, RecordArena& arena);

  /// Sub-record view of a kStruct field.
  RecordRef get_struct(std::string_view field) const;

  /// Element view of an array field (no bounds check against the count
  /// field; callers index within the count they wrote).
  RecordRef element(std::string_view field, uint64_t index) const;

 private:
  const FieldDescriptor& fd(std::string_view field) const;
  void* data_;
  FormatPtr fmt_;
};

}  // namespace morph::pbio
