// Internal: precomputed walk over the pointer-bearing fields of a format.
//
// Both the encoder (flatten + patch offsets) and the in-place decoder
// (offsets back to pointers) visit exactly the string / dynamic-array /
// nested-pointer fields of a format, in declaration order. Building that
// walk once per format keeps both hot paths free of name lookups.
#pragma once

#include <memory>
#include <vector>

#include "pbio/format.hpp"

namespace morph::pbio {

struct VarWalk {
  enum class Action : uint8_t {
    kString,        // char* slot
    kDynArray,      // element pointer slot + out-of-line elements
    kInlineSub,     // nested struct or static struct array with pointers
    kStaticStrings  // static array of char* slots
  };

  struct Var {
    Action action;
    const FieldDescriptor* fd = nullptr;
    const FieldDescriptor* len_fd = nullptr;  // kDynArray only
    std::unique_ptr<VarWalk> elem;            // element fix-ups (structs)
    bool elem_is_string = false;              // dyn array of strings
  };

  std::vector<Var> vars;

  /// Build the walk for `fmt`. The walk holds raw FieldDescriptor pointers,
  /// so the caller must keep the FormatDescriptor alive (they always live
  /// in shared_ptr-held descriptors).
  static std::unique_ptr<VarWalk> build(const FormatDescriptor& fmt) {
    auto w = std::make_unique<VarWalk>();
    for (const auto& fd : fmt.fields()) {
      switch (fd.kind) {
        case FieldKind::kString: {
          Var v;
          v.action = Action::kString;
          v.fd = &fd;
          w->vars.push_back(std::move(v));
          break;
        }
        case FieldKind::kDynArray: {
          Var v;
          v.action = Action::kDynArray;
          v.fd = &fd;
          v.len_fd = fmt.find_field(fd.length_field);
          if (fd.element_format && fd.element_format->has_pointers()) {
            v.elem = build(*fd.element_format);
          }
          v.elem_is_string = !fd.element_format && fd.element_kind == FieldKind::kString;
          w->vars.push_back(std::move(v));
          break;
        }
        case FieldKind::kStruct: {
          if (fd.element_format->has_pointers()) {
            Var v;
            v.action = Action::kInlineSub;
            v.fd = &fd;
            v.elem = build(*fd.element_format);
            w->vars.push_back(std::move(v));
          }
          break;
        }
        case FieldKind::kStaticArray: {
          if (fd.element_format && fd.element_format->has_pointers()) {
            Var v;
            v.action = Action::kInlineSub;
            v.fd = &fd;
            v.elem = build(*fd.element_format);
            w->vars.push_back(std::move(v));
          } else if (!fd.element_format && fd.element_kind == FieldKind::kString) {
            Var v;
            v.action = Action::kStaticStrings;
            v.fd = &fd;
            w->vars.push_back(std::move(v));
          }
          break;
        }
        default:
          break;
      }
    }
    return w;
  }
};

}  // namespace morph::pbio
