// PBIO encoder: flattens a native-layout record into a self-contained wire
// buffer.
//
// Wire layout (all multi-byte header fields in the writer's byte order,
// which the one-byte order tag makes decodable anywhere):
//
//   [0]  u8   magic 'P'
//   [1]  u8   magic 'B'
//   [2]  u8   wire version (1)
//   [3]  u8   body byte order (0 little, 1 big)
//   [4]  u64  identity fingerprint of the writer's format
//   [12] u32  total message size in bytes (header + body)
//   [16] body: the root struct verbatim, then variable sections
//
// Pointer fields (strings, dynamic arrays) are rewritten as u64 offsets
// relative to the body start; 0 means null (offset 0 is the root struct, so
// it can never be a legitimate variable section). Strings are stored
// NUL-terminated; dynamic arrays as contiguous elements in wire stride.
//
// The 16-byte header is the entire per-message meta-data cost — format
// descriptions travel out-of-band, once (Table 1's "less than 30 bytes").
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "pbio/format.hpp"

namespace morph::pbio {

constexpr size_t kWireHeaderSize = 16;
constexpr uint8_t kWireVersion = 1;

/// Reusable encoder for one format. Construction precomputes the pointer
/// fix-up walk so encoding a pointer-free record is header + one memcpy.
class Encoder {
 public:
  explicit Encoder(FormatPtr fmt);
  ~Encoder();
  Encoder(Encoder&&) noexcept;
  Encoder& operator=(Encoder&&) noexcept;

  const FormatPtr& format() const { return fmt_; }

  /// Append the encoded message to `out` (which is cleared first).
  /// Returns the encoded size in bytes.
  size_t encode(const void* record, ByteBuffer& out) const;

 private:
  struct Prepared;
  FormatPtr fmt_;
  std::unique_ptr<Prepared> prepared_;
};

/// One-shot convenience.
size_t encode_record(const FormatDescriptor& fmt, const void* record, ByteBuffer& out);

}  // namespace morph::pbio
