// Paper-compatible format declaration API (Figure 2).
//
// The paper declares formats as arrays of IOField entries:
//
//   IOField Msg_field[] = {
//     {"load", "integer", sizeof(int), IOOffset(MsgP, load)},
//     {"mem",  "integer", sizeof(int), IOOffset(MsgP, memory)},
//     {"net",  "integer", sizeof(int), IOOffset(MsgP, network)}};
//
// This header reproduces that style on top of FormatBuilder. Type strings:
//   "integer"            signed integer of the given size
//   "unsigned integer"   unsigned integer
//   "float"              IEEE float of the given size
//   "char"               single character
//   "string"             char*
//   "F"                  nested record named F (declared via subformats)
//   "F[count_field]"     dynamic array of F, count in `count_field`
//   "type[N]"            static array of N elements (basic element types)
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "pbio/format.hpp"

namespace morph::pbio {

struct IOField {
  const char* field_name;
  const char* field_type;
  size_t field_size;   // element size for arrays
  size_t field_offset;
};

#define IOOffset(ptr_type, member) offsetof(std::remove_pointer_t<ptr_type>, member)

/// A named subformat binding for complex IOField types.
struct IOSubFormat {
  std::string name;
  FormatPtr format;
};

/// Build a format from a paper-style IOField table. `fields` may be a
/// brace-terminated array; pass the element count explicitly or use the
/// initializer-list overload.
FormatPtr build_format(const std::string& format_name, size_t struct_size,
                       const IOField* fields, size_t field_count,
                       const std::vector<IOSubFormat>& subformats = {});

FormatPtr build_format(const std::string& format_name, size_t struct_size,
                       std::initializer_list<IOField> fields,
                       const std::vector<IOSubFormat>& subformats = {});

}  // namespace morph::pbio
