#include "pbio/encode.hpp"

#include <cstring>

#include "common/endian.hpp"
#include "obs/metrics.hpp"
#include "pbio/record.hpp"
#include "pbio/varwalk.hpp"

namespace morph::pbio {

struct Encoder::Prepared {
  std::unique_ptr<VarWalk> walk;
};

namespace {

/// Append the string `s` (may be null) and patch the pointer slot at
/// `slot_pos` with its body-relative offset (0 for null).
void emit_string(const char* s, size_t slot_pos, ByteBuffer& out) {
  if (s == nullptr) {
    out.patch_u64(slot_pos, 0);
    return;
  }
  uint64_t rel = out.size() - kWireHeaderSize;
  out.append(s, std::strlen(s) + 1);
  out.patch_u64(slot_pos, rel);
}

void fix_struct(const VarWalk& walk, size_t struct_pos, const uint8_t* rec, ByteBuffer& out);

void fix_one(const VarWalk::Var& v, size_t struct_pos, const uint8_t* rec, ByteBuffer& out) {
  const FieldDescriptor& fd = *v.fd;
  switch (v.action) {
    case VarWalk::Action::kString: {
      const char* s;
      std::memcpy(&s, rec + fd.offset, sizeof(char*));
      emit_string(s, struct_pos + fd.offset, out);
      break;
    }
    case VarWalk::Action::kInlineSub: {
      if (fd.kind == FieldKind::kStruct) {
        fix_struct(*v.elem, struct_pos + fd.offset, rec + fd.offset, out);
      } else {  // static array of structs
        uint32_t stride = fd.element_stride();
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          fix_struct(*v.elem, struct_pos + fd.offset + i * stride, rec + fd.offset + i * stride,
                     out);
        }
      }
      break;
    }
    case VarWalk::Action::kStaticStrings: {
      for (uint32_t i = 0; i < fd.static_count; ++i) {
        const char* s;
        std::memcpy(&s, rec + fd.offset + i * sizeof(char*), sizeof(char*));
        emit_string(s, struct_pos + fd.offset + i * sizeof(char*), out);
      }
      break;
    }
    case VarWalk::Action::kDynArray: {
      int64_t count = v.len_fd ? read_scalar_i64(rec, *v.len_fd) : 0;
      const uint8_t* elems;
      std::memcpy(&elems, rec + fd.offset, sizeof(void*));
      if (count <= 0 || elems == nullptr) {
        out.patch_u64(struct_pos + fd.offset, 0);
        break;
      }
      uint32_t stride = fd.element_stride();
      out.align_to(8);
      uint64_t rel = out.size() - kWireHeaderSize;
      size_t elems_pos = out.size();
      out.append(elems, static_cast<size_t>(count) * stride);
      out.patch_u64(struct_pos + fd.offset, rel);
      if (v.elem) {
        for (int64_t i = 0; i < count; ++i) {
          fix_struct(*v.elem, elems_pos + static_cast<size_t>(i) * stride,
                     elems + static_cast<size_t>(i) * stride, out);
        }
      } else if (v.elem_is_string) {
        for (int64_t i = 0; i < count; ++i) {
          const char* s;
          std::memcpy(&s, elems + static_cast<size_t>(i) * sizeof(char*), sizeof(char*));
          emit_string(s, elems_pos + static_cast<size_t>(i) * sizeof(char*), out);
        }
      }
      break;
    }
  }
}

void fix_struct(const VarWalk& walk, size_t struct_pos, const uint8_t* rec, ByteBuffer& out) {
  for (const auto& v : walk.vars) fix_one(v, struct_pos, rec, out);
}

}  // namespace

Encoder::Encoder(FormatPtr fmt) : fmt_(std::move(fmt)) {
  if (!fmt_) throw FormatError("Encoder: null format");
  prepared_ = std::make_unique<Prepared>();
  prepared_->walk = VarWalk::build(*fmt_);
}

Encoder::~Encoder() = default;
Encoder::Encoder(Encoder&&) noexcept = default;
Encoder& Encoder::operator=(Encoder&&) noexcept = default;

size_t Encoder::encode(const void* record, ByteBuffer& out) const {
  if (record == nullptr) throw FormatError("Encoder: null record");
  out.clear();
  out.append_u8('P');
  out.append_u8('B');
  out.append_u8(kWireVersion);
  out.append_u8(static_cast<uint8_t>(host_byte_order()));
  out.append_u64(fmt_->fingerprint());
  out.append_u32(0);  // total size, patched below

  const auto* rec = static_cast<const uint8_t*>(record);
  size_t struct_pos = out.size();  // == kWireHeaderSize
  out.append(rec, fmt_->struct_size());
  if (fmt_->has_pointers()) fix_struct(*prepared_->walk, struct_pos, rec, out);

  out.patch_u32(12, static_cast<uint32_t>(out.size()));
  // Hot-path telemetry: two relaxed adds, no clock reads.
  static obs::Counter& messages = obs::metrics().counter("morph_pbio_encoded_messages_total");
  static obs::Counter& bytes = obs::metrics().counter("morph_pbio_encoded_bytes_total");
  messages.inc();
  bytes.add(out.size());
  return out.size();
}

size_t encode_record(const FormatDescriptor& fmt, const void* record, ByteBuffer& out) {
  // Formats are always owned by shared_ptr (FormatBuilder::build), so
  // shared_from_this is safe here.
  auto self = const_cast<FormatDescriptor&>(fmt).shared_from_this();
  Encoder enc(std::static_pointer_cast<const FormatDescriptor>(self));
  return enc.encode(record, out);
}

}  // namespace morph::pbio
