#include "pbio/randgen.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace morph::pbio {

namespace {

FormatPtr random_format_rec(Rng& rng, const std::string& name, const RandFormatOptions& opt,
                            uint32_t depth) {
  FormatBuilder b(name);
  auto nfields = static_cast<uint32_t>(
      rng.next_range(opt.min_fields, std::max(opt.min_fields, opt.max_fields)));
  uint32_t field_no = 0;
  std::vector<std::string> int_fields;  // candidates for dyn-array lengths

  auto fresh_name = [&] { return "f" + std::to_string(field_no++) + "_" + rng.next_ident(4); };

  for (uint32_t i = 0; i < nfields; ++i) {
    // Pick a field kind; deeper levels get simpler.
    uint32_t roll = static_cast<uint32_t>(rng.next_below(100));
    std::string fname = fresh_name();
    if (roll < 35) {
      uint32_t sizes[] = {1, 2, 4, 8};
      b.add_int(fname, sizes[rng.next_below(4)]);
      int_fields.push_back(fname);
    } else if (roll < 45) {
      uint32_t sizes[] = {1, 2, 4, 8};
      b.add_uint(fname, sizes[rng.next_below(4)]);
      int_fields.push_back(fname);
    } else if (roll < 60) {
      b.add_float(fname, rng.next_bool() ? 4 : 8);
    } else if (roll < 65) {
      b.add_char(fname);
    } else if (roll < 72 && opt.allow_strings) {
      b.add_string(fname);
    } else if (roll < 80 && depth < opt.max_depth) {
      b.add_struct(fname, random_format_rec(rng, name + "_s" + std::to_string(field_no), opt,
                                            depth + 1));
    } else if (roll < 88 && opt.allow_static_arrays) {
      uint32_t count = 1 + static_cast<uint32_t>(rng.next_below(opt.max_static_count));
      if (depth < opt.max_depth && rng.next_bool()) {
        b.add_static_array(
            fname, random_format_rec(rng, name + "_e" + std::to_string(field_no), opt, depth + 1),
            count);
      } else {
        b.add_static_array(fname, FieldKind::kInt, 4, count);
      }
    } else if (opt.allow_dyn_arrays && !int_fields.empty()) {
      const std::string& len = int_fields[rng.next_below(int_fields.size())];
      if (depth < opt.max_depth && rng.next_bool()) {
        b.add_dyn_array(
            fname, random_format_rec(rng, name + "_d" + std::to_string(field_no), opt, depth + 1),
            len);
      } else if (opt.allow_strings && rng.next_bool()) {
        b.add_dyn_array(fname, FieldKind::kString, 0, len);
      } else {
        b.add_dyn_array(fname, FieldKind::kFloat, 8, len);
      }
    } else {
      b.add_int(fname, 4);
      int_fields.push_back(fname);
    }
  }
  return b.build();
}

DynValue random_basic(Rng& rng, FieldKind kind, uint32_t size, const RandRecordOptions& opt) {
  switch (kind) {
    case FieldKind::kFloat:
      return DynValue(rng.next_double() * 1000.0 - 500.0);
    case FieldKind::kString:
      return DynValue(rng.next_ident(1 + rng.next_below(std::max(1u, opt.max_string_len))));
    case FieldKind::kChar:
      return DynValue(static_cast<int64_t>('a' + rng.next_below(26)));
    case FieldKind::kEnum:
      return DynValue(static_cast<int64_t>(rng.next_below(4)));
    case FieldKind::kUInt: {
      uint64_t mask = size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
      return DynValue(static_cast<int64_t>(rng.next_u64() & mask & 0x7FFFFFFFFFFFFFFFull));
    }
    default: {  // signed int
      int64_t lo = size == 1 ? -100 : size == 2 ? -30000 : -1000000;
      int64_t hi = -lo;
      return DynValue(rng.next_range(lo, hi));
    }
  }
}

}  // namespace

FormatPtr random_format(Rng& rng, const std::string& name, const RandFormatOptions& opt) {
  return random_format_rec(rng, name, opt, 0);
}

DynValue random_dyn(Rng& rng, const FormatPtr& fmt, const RandRecordOptions& opt) {
  DynStruct s;
  s.format = fmt;
  // Several dynamic arrays may share one count field, so choose each count
  // up front and size every array from its assigned count.
  std::vector<std::pair<std::string, int64_t>> counts;
  for (const auto& fd : fmt->fields()) {
    if (fd.kind != FieldKind::kDynArray) continue;
    bool seen = false;
    for (const auto& [name, n] : counts) {
      if (name == fd.length_field) seen = true;
    }
    if (!seen) {
      counts.emplace_back(fd.length_field,
                          static_cast<int64_t>(rng.next_below(opt.max_array_len + 1)));
    }
  }
  auto count_of = [&](const std::string& len_name) {
    for (const auto& [name, n] : counts) {
      if (name == len_name) return n;
    }
    return int64_t{0};
  };
  for (const auto& fd : fmt->fields()) {
    switch (fd.kind) {
      case FieldKind::kStruct:
        s.fields.push_back(random_dyn(rng, fd.element_format, opt));
        break;
      case FieldKind::kStaticArray: {
        DynList list;
        for (uint32_t i = 0; i < fd.static_count; ++i) {
          if (fd.element_format) {
            list.push_back(random_dyn(rng, fd.element_format, opt));
          } else {
            list.push_back(random_basic(rng, fd.element_kind, fd.element_size, opt));
          }
        }
        s.fields.emplace_back(std::move(list));
        break;
      }
      case FieldKind::kDynArray: {
        DynList list;
        auto n = static_cast<uint32_t>(count_of(fd.length_field));
        for (uint32_t i = 0; i < n; ++i) {
          if (fd.element_format) {
            list.push_back(random_dyn(rng, fd.element_format, opt));
          } else {
            list.push_back(random_basic(rng, fd.element_kind, fd.element_size, opt));
          }
        }
        s.fields.emplace_back(std::move(list));
        break;
      }
      case FieldKind::kFloat:
        s.fields.push_back(random_basic(rng, fd.kind, fd.size, opt));
        break;
      case FieldKind::kString:
        s.fields.push_back(random_basic(rng, fd.kind, fd.size, opt));
        break;
      default:
        s.fields.push_back(random_basic(rng, fd.kind, fd.size, opt));
        break;
    }
  }
  for (const auto& [len_name, n] : counts) {
    size_t idx = fmt->field_index(len_name);
    if (idx != FormatDescriptor::npos) s.fields[idx] = DynValue(n);
  }
  return DynValue(std::move(s));
}

void* random_record(Rng& rng, const FormatPtr& fmt, RecordArena& arena,
                    const RandRecordOptions& opt) {
  return from_dyn(random_dyn(rng, fmt, opt), arena);
}

FormatPtr mutate_format(Rng& rng, const FormatDescriptor& fmt, const MutateOptions& opt) {
  // Collect which count fields are referenced so removal never breaks a
  // dynamic array.
  std::vector<std::string> referenced;
  for (const auto& fd : fmt.fields()) {
    if (fd.kind == FieldKind::kDynArray) referenced.push_back(fd.length_field);
  }
  auto is_referenced = [&](const std::string& n) {
    return std::find(referenced.begin(), referenced.end(), n) != referenced.end();
  };

  // Copy the field list in a mutable form.
  std::vector<FieldDescriptor> fields(fmt.fields().begin(), fmt.fields().end());

  enum class Mut { kAdd, kRemove, kReorder, kWiden, kRetype, kNone };
  std::vector<Mut> choices;
  if (opt.allow_add) choices.push_back(Mut::kAdd);
  if (opt.allow_remove && fields.size() > 1) choices.push_back(Mut::kRemove);
  if (opt.allow_reorder && fields.size() > 1) choices.push_back(Mut::kReorder);
  if (opt.allow_widen) choices.push_back(Mut::kWiden);
  if (opt.allow_retype) choices.push_back(Mut::kRetype);
  Mut pick = choices.empty() ? Mut::kNone : choices[rng.next_below(choices.size())];

  switch (pick) {
    case Mut::kAdd: {
      FieldDescriptor fd;
      fd.name = "added_" + rng.next_ident(5);
      uint32_t roll = static_cast<uint32_t>(rng.next_below(3));
      fd.kind = roll == 0 ? FieldKind::kInt : roll == 1 ? FieldKind::kFloat : FieldKind::kString;
      fd.size = fd.kind == FieldKind::kFloat ? 8 : fd.kind == FieldKind::kString ? 8 : 4;
      fields.insert(fields.begin() + static_cast<long>(rng.next_below(fields.size() + 1)),
                    std::move(fd));
      break;
    }
    case Mut::kRemove: {
      for (int attempt = 0; attempt < 8; ++attempt) {
        size_t i = rng.next_below(fields.size());
        if (!is_referenced(fields[i].name)) {
          // Removing a dyn array is fine; removing its count is not.
          fields.erase(fields.begin() + static_cast<long>(i));
          break;
        }
      }
      break;
    }
    case Mut::kReorder: {
      // Fisher-Yates, then stable-fix: count fields must precede their
      // arrays, so bubble arrays after their lengths.
      for (size_t i = fields.size(); i > 1; --i) {
        std::swap(fields[i - 1], fields[rng.next_below(i)]);
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t i = 0; i < fields.size(); ++i) {
          if (fields[i].kind != FieldKind::kDynArray) continue;
          for (size_t j = i + 1; j < fields.size(); ++j) {
            if (fields[j].name == fields[i].length_field) {
              std::swap(fields[i], fields[j]);
              changed = true;
              break;
            }
          }
        }
      }
      break;
    }
    case Mut::kWiden: {
      for (int attempt = 0; attempt < 8; ++attempt) {
        size_t i = rng.next_below(fields.size());
        auto& fd = fields[i];
        if ((fd.kind == FieldKind::kInt || fd.kind == FieldKind::kUInt) && fd.size < 8) {
          fd.size *= 2;
          break;
        }
        if (fd.kind == FieldKind::kFloat && fd.size == 4) {
          fd.size = 8;
          break;
        }
      }
      break;
    }
    case Mut::kRetype: {
      for (int attempt = 0; attempt < 8; ++attempt) {
        size_t i = rng.next_below(fields.size());
        auto& fd = fields[i];
        if (fd.kind == FieldKind::kInt && !is_referenced(fd.name)) {
          fd.kind = FieldKind::kFloat;
          fd.size = 8;
          break;
        }
        if (fd.kind == FieldKind::kFloat) {
          fd.kind = FieldKind::kInt;
          fd.size = 8;
          break;
        }
      }
      break;
    }
    case Mut::kNone:
      break;
  }

  // Rebuild with auto layout through the builder (which re-validates).
  FormatBuilder b(fmt.name());
  for (const auto& fd : fields) {
    switch (fd.kind) {
      case FieldKind::kInt:
        b.add_int(fd.name, fd.size);
        break;
      case FieldKind::kUInt:
        b.add_uint(fd.name, fd.size);
        break;
      case FieldKind::kFloat:
        b.add_float(fd.name, fd.size);
        break;
      case FieldKind::kChar:
        b.add_char(fd.name);
        break;
      case FieldKind::kEnum:
        b.add_enum(fd.name, fd.enumerators);
        break;
      case FieldKind::kString:
        b.add_string(fd.name);
        break;
      case FieldKind::kStruct:
        b.add_struct(fd.name, fd.element_format);
        break;
      case FieldKind::kStaticArray:
        if (fd.element_format) {
          b.add_static_array(fd.name, fd.element_format, fd.static_count);
        } else {
          b.add_static_array(fd.name, fd.element_kind, fd.element_size, fd.static_count);
        }
        break;
      case FieldKind::kDynArray:
        if (fd.element_format) {
          b.add_dyn_array(fd.name, fd.element_format, fd.length_field);
        } else {
          b.add_dyn_array(fd.name, fd.element_kind, fd.element_size, fd.length_field);
        }
        break;
    }
  }
  return b.build();
}

}  // namespace morph::pbio
