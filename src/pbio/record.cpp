#include "pbio/record.hpp"

#include <cstring>

#include "common/error.hpp"

namespace morph::pbio {

namespace {

const uint8_t* at(const void* record, uint32_t offset) {
  return static_cast<const uint8_t*>(record) + offset;
}
uint8_t* at(void* record, uint32_t offset) { return static_cast<uint8_t*>(record) + offset; }

[[noreturn]] void bad_kind(const FieldDescriptor& fd, const char* op) {
  throw FormatError(std::string(op) + ": field '" + fd.name + "' has kind " +
                    std::string(field_kind_name(fd.kind)));
}

}  // namespace

int64_t read_scalar_i64(const void* record, const FieldDescriptor& fd) {
  const uint8_t* p = at(record, fd.offset);
  switch (fd.kind) {
    case FieldKind::kInt: {
      switch (fd.size) {
        case 1: {
          int8_t v;
          std::memcpy(&v, p, 1);
          return v;
        }
        case 2: {
          int16_t v;
          std::memcpy(&v, p, 2);
          return v;
        }
        case 4: {
          int32_t v;
          std::memcpy(&v, p, 4);
          return v;
        }
        case 8: {
          int64_t v;
          std::memcpy(&v, p, 8);
          return v;
        }
      }
      break;
    }
    case FieldKind::kUInt: {
      switch (fd.size) {
        case 1: {
          uint8_t v;
          std::memcpy(&v, p, 1);
          return v;
        }
        case 2: {
          uint16_t v;
          std::memcpy(&v, p, 2);
          return v;
        }
        case 4: {
          uint32_t v;
          std::memcpy(&v, p, 4);
          return v;
        }
        case 8: {
          uint64_t v;
          std::memcpy(&v, p, 8);
          return static_cast<int64_t>(v);
        }
      }
      break;
    }
    case FieldKind::kEnum: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case FieldKind::kChar: {
      char v;
      std::memcpy(&v, p, 1);
      return static_cast<unsigned char>(v);
    }
    case FieldKind::kFloat: {
      if (fd.size == 4) {
        float v;
        std::memcpy(&v, p, 4);
        return static_cast<int64_t>(v);
      }
      double v;
      std::memcpy(&v, p, 8);
      return static_cast<int64_t>(v);
    }
    default:
      break;
  }
  bad_kind(fd, "read_scalar_i64");
}

double read_scalar_f64(const void* record, const FieldDescriptor& fd) {
  if (fd.kind == FieldKind::kFloat) {
    const uint8_t* p = at(record, fd.offset);
    if (fd.size == 4) {
      float v;
      std::memcpy(&v, p, 4);
      return v;
    }
    double v;
    std::memcpy(&v, p, 8);
    return v;
  }
  if (fd.kind == FieldKind::kUInt) {
    return static_cast<double>(static_cast<uint64_t>(read_scalar_i64(record, fd)));
  }
  return static_cast<double>(read_scalar_i64(record, fd));
}

void write_scalar_i64(void* record, const FieldDescriptor& fd, int64_t value) {
  uint8_t* p = at(record, fd.offset);
  switch (fd.kind) {
    case FieldKind::kInt:
    case FieldKind::kUInt: {
      switch (fd.size) {
        case 1: {
          auto v = static_cast<int8_t>(value);
          std::memcpy(p, &v, 1);
          return;
        }
        case 2: {
          auto v = static_cast<int16_t>(value);
          std::memcpy(p, &v, 2);
          return;
        }
        case 4: {
          auto v = static_cast<int32_t>(value);
          std::memcpy(p, &v, 4);
          return;
        }
        case 8:
          std::memcpy(p, &value, 8);
          return;
      }
      break;
    }
    case FieldKind::kEnum: {
      auto v = static_cast<int32_t>(value);
      std::memcpy(p, &v, 4);
      return;
    }
    case FieldKind::kChar: {
      auto v = static_cast<char>(value);
      std::memcpy(p, &v, 1);
      return;
    }
    case FieldKind::kFloat: {
      write_scalar_f64(record, fd, static_cast<double>(value));
      return;
    }
    default:
      break;
  }
  bad_kind(fd, "write_scalar_i64");
}

void write_scalar_f64(void* record, const FieldDescriptor& fd, double value) {
  if (fd.kind == FieldKind::kFloat) {
    uint8_t* p = at(record, fd.offset);
    if (fd.size == 4) {
      auto v = static_cast<float>(value);
      std::memcpy(p, &v, 4);
    } else {
      std::memcpy(p, &value, 8);
    }
    return;
  }
  write_scalar_i64(record, fd, static_cast<int64_t>(value));
}

std::string_view read_string_field(const void* record, const FieldDescriptor& fd) {
  if (fd.kind != FieldKind::kString) bad_kind(fd, "read_string_field");
  const char* s;
  std::memcpy(&s, at(record, fd.offset), sizeof(char*));
  return s == nullptr ? std::string_view{} : std::string_view(s);
}

void write_string_field(void* record, const FieldDescriptor& fd, std::string_view value,
                        RecordArena& arena) {
  if (fd.kind != FieldKind::kString) bad_kind(fd, "write_string_field");
  char* copy = arena.copy_string(value);
  std::memcpy(at(record, fd.offset), &copy, sizeof(char*));
}

void* read_pointer(const void* record, const FieldDescriptor& fd) {
  void* p;
  std::memcpy(&p, at(record, fd.offset), sizeof(void*));
  return p;
}

void write_pointer(void* record, const FieldDescriptor& fd, void* p) {
  std::memcpy(at(record, fd.offset), &p, sizeof(void*));
}

void* alloc_record(const FormatDescriptor& fmt, RecordArena& arena) {
  return arena.allocate(fmt.struct_size(), fmt.alignment());
}

void* alloc_dyn_array(RecordArena& arena, uint32_t elem_stride, uint64_t count) {
  if (count == 0) count = 1;  // always usable for element 0
  uint64_t bytes = 8 + elem_stride * count;
  auto* base = static_cast<uint8_t*>(arena.allocate(bytes, 8));
  uint64_t cap = count;
  std::memcpy(base, &cap, 8);
  return base + 8;
}

uint64_t dyn_array_capacity(const void* elements) {
  if (elements == nullptr) return 0;
  uint64_t cap;
  std::memcpy(&cap, static_cast<const uint8_t*>(elements) - 8, 8);
  return cap;
}

uint64_t dyn_array_grown_capacity(uint64_t cap, uint64_t index) {
  if (index < cap) return cap;
  uint64_t new_cap = cap == 0 ? 8 : cap * 2;
  while (new_cap <= index) new_cap *= 2;
  return new_cap;
}

void* grow_dyn_array(void* record, const FieldDescriptor& fd, RecordArena& arena,
                     uint64_t index) {
  void* elems = read_pointer(record, fd);
  uint64_t cap = dyn_array_capacity(elems);
  if (index < cap) return elems;
  uint64_t new_cap = dyn_array_grown_capacity(cap, index);
  uint32_t stride = fd.element_stride();
  void* grown = alloc_dyn_array(arena, stride, new_cap);
  if (elems != nullptr && cap > 0) std::memcpy(grown, elems, cap * stride);
  write_pointer(record, fd, grown);
  return grown;
}

// ---------------------------------------------------------------------------
// RecordRef
// ---------------------------------------------------------------------------

const FieldDescriptor& RecordRef::fd(std::string_view field) const {
  const FieldDescriptor* f = fmt_->find_field(field);
  if (f == nullptr) {
    throw FormatError("no field '" + std::string(field) + "' in format '" + fmt_->name() + "'");
  }
  return *f;
}

int64_t RecordRef::get_int(std::string_view field) const {
  return read_scalar_i64(data_, fd(field));
}

double RecordRef::get_float(std::string_view field) const {
  return read_scalar_f64(data_, fd(field));
}

std::string_view RecordRef::get_string(std::string_view field) const {
  return read_string_field(data_, fd(field));
}

void RecordRef::set_int(std::string_view field, int64_t v) { write_scalar_i64(data_, fd(field), v); }

void RecordRef::set_float(std::string_view field, double v) {
  write_scalar_f64(data_, fd(field), v);
}

void RecordRef::set_string(std::string_view field, std::string_view v, RecordArena& arena) {
  write_string_field(data_, fd(field), v, arena);
}

RecordRef RecordRef::get_struct(std::string_view field) const {
  const FieldDescriptor& f = fd(field);
  if (f.kind != FieldKind::kStruct) bad_kind(f, "get_struct");
  return RecordRef(at(data_, f.offset), f.element_format);
}

RecordRef RecordRef::element(std::string_view field, uint64_t index) const {
  const FieldDescriptor& f = fd(field);
  if (!is_array(f.kind)) bad_kind(f, "element");
  if (!f.element_format) {
    throw FormatError("element(): field '" + f.name + "' has basic elements; use typed access");
  }
  uint8_t* base;
  if (f.kind == FieldKind::kStaticArray) {
    base = at(data_, f.offset);
  } else {
    base = static_cast<uint8_t*>(read_pointer(data_, f));
    if (base == nullptr) throw FormatError("element(): array '" + f.name + "' is null");
  }
  return RecordRef(base + index * f.element_stride(), f.element_format);
}

}  // namespace morph::pbio
