#include "pbio/iofield.hpp"

#include <cctype>

#include "common/error.hpp"

namespace morph::pbio {

namespace {

struct ParsedType {
  std::string base;      // "integer", "string", subformat name, ...
  std::string bracket;   // contents of [...] if present ("" = none)
  bool has_bracket = false;
};

ParsedType parse_type(const std::string& t) {
  ParsedType p;
  size_t open = t.find('[');
  if (open == std::string::npos) {
    p.base = t;
    return p;
  }
  size_t close = t.find(']', open);
  if (close == std::string::npos || close != t.size() - 1) {
    throw FormatError("IOField: malformed type '" + t + "'");
  }
  p.base = t.substr(0, open);
  p.bracket = t.substr(open + 1, close - open - 1);
  p.has_bracket = true;
  // Trim trailing spaces of base.
  while (!p.base.empty() && p.base.back() == ' ') p.base.pop_back();
  return p;
}

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

FieldKind basic_kind(const std::string& base, bool* known) {
  *known = true;
  if (base == "integer" || base == "int") return FieldKind::kInt;
  if (base == "unsigned integer" || base == "unsigned") return FieldKind::kUInt;
  if (base == "float" || base == "double") return FieldKind::kFloat;
  if (base == "char") return FieldKind::kChar;
  if (base == "string") return FieldKind::kString;
  if (base == "enumeration" || base == "enum") return FieldKind::kEnum;
  *known = false;
  return FieldKind::kInt;
}

const FormatPtr* find_sub(const std::vector<IOSubFormat>& subs, const std::string& name) {
  for (const auto& s : subs) {
    if (s.name == name) return &s.format;
  }
  return nullptr;
}

}  // namespace

FormatPtr build_format(const std::string& format_name, size_t struct_size,
                       const IOField* fields, size_t field_count,
                       const std::vector<IOSubFormat>& subformats) {
  FormatBuilder b(format_name, static_cast<uint32_t>(struct_size));
  for (size_t i = 0; i < field_count; ++i) {
    const IOField& f = fields[i];
    if (f.field_name == nullptr || f.field_type == nullptr) {
      throw FormatError("IOField: null name or type at index " + std::to_string(i));
    }
    ParsedType t = parse_type(f.field_type);
    auto size = static_cast<uint32_t>(f.field_size);
    auto offset = static_cast<uint32_t>(f.field_offset);

    bool known = false;
    FieldKind kind = basic_kind(t.base, &known);

    if (!t.has_bracket) {
      if (known) {
        switch (kind) {
          case FieldKind::kInt:
            b.add_int(f.field_name, size, offset);
            break;
          case FieldKind::kUInt:
            b.add_uint(f.field_name, size, offset);
            break;
          case FieldKind::kFloat:
            b.add_float(f.field_name, size, offset);
            break;
          case FieldKind::kChar:
            b.add_char(f.field_name, offset);
            break;
          case FieldKind::kString:
            b.add_string(f.field_name, offset);
            break;
          case FieldKind::kEnum:
            b.add_enum(f.field_name, {}, offset);
            break;
          default:
            break;
        }
      } else {
        const FormatPtr* sub = find_sub(subformats, t.base);
        if (sub == nullptr) {
          throw FormatError("IOField: unknown type '" + t.base + "' for field '" +
                            f.field_name + "' (missing subformat?)");
        }
        b.add_struct(f.field_name, *sub, offset);
      }
      continue;
    }

    // Bracketed: static array (numeric) or dynamic array (count field name).
    if (is_number(t.bracket)) {
      auto count = static_cast<uint32_t>(std::stoul(t.bracket));
      if (known) {
        if (kind == FieldKind::kString) {
          b.add_static_array(f.field_name, FieldKind::kString, 0, count, offset);
        } else {
          b.add_static_array(f.field_name, kind, size, count, offset);
        }
      } else {
        const FormatPtr* sub = find_sub(subformats, t.base);
        if (sub == nullptr) {
          throw FormatError("IOField: unknown element type '" + t.base + "'");
        }
        b.add_static_array(f.field_name, *sub, count, offset);
      }
    } else {
      if (known) {
        b.add_dyn_array(f.field_name, kind, size, t.bracket, offset);
      } else {
        const FormatPtr* sub = find_sub(subformats, t.base);
        if (sub == nullptr) {
          throw FormatError("IOField: unknown element type '" + t.base + "'");
        }
        b.add_dyn_array(f.field_name, *sub, t.bracket, offset);
      }
    }
  }
  return b.build();
}

FormatPtr build_format(const std::string& format_name, size_t struct_size,
                       std::initializer_list<IOField> fields,
                       const std::vector<IOSubFormat>& subformats) {
  return build_format(format_name, struct_size, fields.begin(), fields.size(), subformats);
}

}  // namespace morph::pbio
