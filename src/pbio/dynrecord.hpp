// DynRecord: boxed, self-describing record values.
//
// The hot paths in this library operate on raw native-layout memory; tests,
// generators, examples, and the XML binding want a safe, comparable,
// printable value type instead. DynValue is that type: a variant tree that
// can be produced from any native record (to_dyn) and materialized back
// into native layout (from_dyn). Round-tripping through DynValue is the
// canonical way tests assert that two records carry the same data.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/arena.hpp"
#include "pbio/format.hpp"

namespace morph::pbio {

class DynValue;

/// A struct value: field values parallel to format()->fields().
struct DynStruct {
  FormatPtr format;
  std::vector<DynValue> fields;

  bool operator==(const DynStruct& other) const;
};

using DynList = std::vector<DynValue>;

class DynValue {
 public:
  using Storage = std::variant<int64_t, double, std::string, DynStruct, DynList>;

  DynValue() : v_(int64_t{0}) {}
  DynValue(int64_t v) : v_(v) {}                    // NOLINT(google-explicit-constructor)
  DynValue(double v) : v_(v) {}                     // NOLINT(google-explicit-constructor)
  DynValue(std::string v) : v_(std::move(v)) {}     // NOLINT(google-explicit-constructor)
  DynValue(DynStruct v) : v_(std::move(v)) {}       // NOLINT(google-explicit-constructor)
  DynValue(DynList v) : v_(std::move(v)) {}         // NOLINT(google-explicit-constructor)

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_struct() const { return std::holds_alternative<DynStruct>(v_); }
  bool is_list() const { return std::holds_alternative<DynList>(v_); }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_float() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const DynStruct& as_struct() const { return std::get<DynStruct>(v_); }
  DynStruct& as_struct() { return std::get<DynStruct>(v_); }
  const DynList& as_list() const { return std::get<DynList>(v_); }
  DynList& as_list() { return std::get<DynList>(v_); }

  bool operator==(const DynValue& other) const { return v_ == other.v_; }

  /// Field access on struct values; throws FormatError on unknown names.
  const DynValue& field(std::string_view name) const;
  DynValue& field(std::string_view name);

 private:
  Storage v_;
};

/// Box a native record described by `fmt`.
DynValue to_dyn(const FormatDescriptor& fmt, const void* record);

/// Materialize a boxed struct value back into native layout in `arena`.
/// The value must be a DynStruct; dynamic-array count fields are rewritten
/// from the actual list sizes so records are always self-consistent.
void* from_dyn(const DynValue& value, RecordArena& arena);

/// Build an empty struct value for a format: zeros, empty strings/lists,
/// recursively sized static arrays.
DynValue make_dyn(const FormatPtr& fmt);

/// Multi-line debug rendering.
std::string to_debug_string(const DynValue& value);

}  // namespace morph::pbio
