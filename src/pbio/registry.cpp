#include "pbio/registry.hpp"

#include "common/error.hpp"

namespace morph::pbio {

FormatPtr FormatRegistry::register_format(FormatPtr fmt) {
  if (!fmt) throw FormatError("cannot register null format");
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_fp_.try_emplace(fmt->fingerprint(), fmt);
  if (!inserted) {
    if (!it->second->identical_to(*fmt)) {
      throw FormatError("fingerprint collision between distinct formats named '" +
                        it->second->name() + "' and '" + fmt->name() + "'");
    }
    return it->second;
  }
  by_name_[fmt->name()].push_back(fmt);
  return fmt;
}

FormatPtr FormatRegistry::by_fingerprint(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_fp_.find(fingerprint);
  return it == by_fp_.end() ? nullptr : it->second;
}

std::vector<FormatPtr> FormatRegistry::by_name(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<FormatPtr>{} : it->second;
}

size_t FormatRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_fp_.size();
}

}  // namespace morph::pbio
