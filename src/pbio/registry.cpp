#include "pbio/registry.hpp"

#include "common/error.hpp"

namespace morph::pbio {

FormatRegistry::FormatRegistry() {
  history_.push_back(std::make_unique<const Snapshot>());
  snapshot_.store(history_.back().get(), std::memory_order_release);
}

FormatPtr FormatRegistry::register_format(FormatPtr fmt) {
  if (!fmt) throw FormatError("cannot register null format");
  std::lock_guard<std::mutex> lock(write_mutex_);
  const Snapshot* cur = snapshot_.load(std::memory_order_relaxed);
  auto it = cur->by_fp.find(fmt->fingerprint());
  if (it != cur->by_fp.end()) {
    if (!it->second->identical_to(*fmt)) {
      throw FormatError("fingerprint collision between distinct formats named '" +
                        it->second->name() + "' and '" + fmt->name() + "'");
    }
    return it->second;
  }
  // Copy-on-write: successors share the FormatDescriptor objects, so every
  // FormatPtr ever handed out stays valid and pointer-stable. The old
  // snapshot stays alive in history_ for readers still traversing it.
  auto next = std::make_unique<Snapshot>(*cur);
  next->by_fp.emplace(fmt->fingerprint(), fmt);
  next->by_name[fmt->name()].push_back(fmt);
  history_.push_back(std::move(next));
  snapshot_.store(history_.back().get(), std::memory_order_release);
  return fmt;
}

FormatPtr FormatRegistry::by_fingerprint(uint64_t fingerprint) const {
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  auto it = snap->by_fp.find(fingerprint);
  return it == snap->by_fp.end() ? nullptr : it->second;
}

std::vector<FormatPtr> FormatRegistry::by_name(const std::string& name) const {
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  auto it = snap->by_name.find(name);
  return it == snap->by_name.end() ? std::vector<FormatPtr>{} : it->second;
}

std::vector<FormatPtr> FormatRegistry::all() const {
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  std::vector<FormatPtr> out;
  out.reserve(snap->by_fp.size());
  for (const auto& [fp, fmt] : snap->by_fp) out.push_back(fmt);
  return out;
}

size_t FormatRegistry::size() const {
  return snapshot_.load(std::memory_order_acquire)->by_fp.size();
}

}  // namespace morph::pbio
