// Random format and record generation.
//
// Powers the property-based tests (random formats round-trip through
// encode/decode; random evolutions still convert losslessly on the matched
// fields) and the synthetic workloads in the benchmark harness. All
// generation is driven by the deterministic Rng, so failures reproduce.
#pragma once

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/format.hpp"

namespace morph::pbio {

struct RandFormatOptions {
  uint32_t min_fields = 1;
  uint32_t max_fields = 8;
  uint32_t max_depth = 3;       // nesting depth for structs/arrays of structs
  bool allow_strings = true;
  bool allow_dyn_arrays = true;
  bool allow_static_arrays = true;
  uint32_t max_static_count = 4;
};

/// Generate a random format (auto layout). Field names are deterministic
/// from the Rng; the format name is `name`.
FormatPtr random_format(Rng& rng, const std::string& name, const RandFormatOptions& opt = {});

struct RandRecordOptions {
  uint32_t max_array_len = 6;
  uint32_t max_string_len = 12;
};

/// Generate a random boxed value conforming to `fmt`.
DynValue random_dyn(Rng& rng, const FormatPtr& fmt, const RandRecordOptions& opt = {});

/// Generate a random native record conforming to `fmt` in `arena`.
void* random_record(Rng& rng, const FormatPtr& fmt, RecordArena& arena,
                    const RandRecordOptions& opt = {});

/// What mutate_format may do to a format.
struct MutateOptions {
  bool allow_add = true;       // append a new field
  bool allow_remove = true;    // drop a field (never a referenced count field)
  bool allow_reorder = true;   // shuffle field order (relayouts)
  bool allow_widen = true;     // grow an int field's size
  bool allow_retype = true;    // int <-> float swaps
};

/// Produce an "evolved" variant of `fmt`: a random structural mutation with
/// a fresh auto layout. The result models a new protocol revision of the
/// same message. Always returns a valid format (falls back to a pure
/// relayout when no mutation applies).
FormatPtr mutate_format(Rng& rng, const FormatDescriptor& fmt, const MutateOptions& opt = {});

}  // namespace morph::pbio
