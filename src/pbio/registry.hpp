// Format registry: the receiver-side catalog of formats.
//
// Readers register the formats (and handlers, one level up) they can
// interpret; the wire layer registers formats learned out-of-band from
// peers. Lookup is either by identity fingerprint (exact wire format) or by
// name (the candidate set `Fr` that Algorithm 2 feeds to MaxMatch).
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pbio/format.hpp"

namespace morph::pbio {

class FormatRegistry {
 public:
  /// Register a format; idempotent for identical formats. Returns the
  /// registered (possibly pre-existing, deduplicated) instance.
  FormatPtr register_format(FormatPtr fmt);

  /// Find by identity fingerprint; nullptr if unknown.
  FormatPtr by_fingerprint(uint64_t fingerprint) const;

  /// All registered formats sharing `name` (the paper's same-name candidate
  /// set), in registration order.
  std::vector<FormatPtr> by_name(const std::string& name) const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, FormatPtr> by_fp_;
  std::unordered_map<std::string, std::vector<FormatPtr>> by_name_;
};

}  // namespace morph::pbio
