// Format registry: the receiver-side catalog of formats.
//
// Readers register the formats (and handlers, one level up) they can
// interpret; the wire layer registers formats learned out-of-band from
// peers. Lookup is either by identity fingerprint (exact wire format) or by
// name (the candidate set `Fr` that Algorithm 2 feeds to MaxMatch).
//
// Thread safety: reads are lock-free — the maps live in an immutable
// snapshot published through an atomic pointer, so by_fingerprint /
// by_name never block, no matter how many threads hammer the hot path.
// Writers serialize on a mutex, copy the snapshot, and publish the
// successor (copy-on-write; registration is rare and cold by design).
// Superseded snapshots are retained until the registry is destroyed so a
// reader can never be left holding freed maps; the cost is bounded by the
// number of registrations, and the descriptors themselves are shared, not
// copied. FormatPtr values are pointer-stable across registrations:
// successive snapshots share the same FormatDescriptor objects.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pbio/format.hpp"

namespace morph::pbio {

class FormatRegistry {
 public:
  FormatRegistry();

  /// Register a format; idempotent for identical formats. Returns the
  /// registered (possibly pre-existing, deduplicated) instance. Safe to
  /// call concurrently with itself and with any reader.
  FormatPtr register_format(FormatPtr fmt);

  /// Find by identity fingerprint; nullptr if unknown. Lock-free.
  FormatPtr by_fingerprint(uint64_t fingerprint) const;

  /// All registered formats sharing `name` (the paper's same-name candidate
  /// set), in registration order. Lock-free; returns a consistent snapshot
  /// (never a torn, partially updated candidate set).
  std::vector<FormatPtr> by_name(const std::string& name) const;

  size_t size() const;

  /// Every registered format, in unspecified order. Lock-free; a consistent
  /// point-in-time view (the snapshot the call happened to observe). Used by
  /// the format service to enumerate a store shard.
  std::vector<FormatPtr> all() const;

 private:
  /// One immutable generation of the catalog. Never mutated after publish.
  struct Snapshot {
    std::unordered_map<uint64_t, FormatPtr> by_fp;
    std::unordered_map<std::string, std::vector<FormatPtr>> by_name;
  };

  std::mutex write_mutex_;  // serializes writers; guards history_
  /// Every generation ever published, oldest first; the last entry is the
  /// current one. Retained so lock-free readers need no reclamation scheme.
  std::vector<std::unique_ptr<const Snapshot>> history_;
  std::atomic<const Snapshot*> snapshot_;  // readers load, writers store
};

}  // namespace morph::pbio
