// PBIO format descriptors: the out-of-band meta-data that describes the
// names, types, sizes, and positions of the fields in a record.
//
// A FormatDescriptor is immutable once built and shared by pointer; it is
// consumed by the encoder (flattening plans), the decoder (conversion
// plans), the ecode compiler (field resolution), the morph core (diff /
// MaxMatch), and the XML binding. Formats describe records laid out as raw
// C structs: scalars at fixed offsets, strings and dynamic arrays as
// pointers, nested structs and static arrays inline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "pbio/field_type.hpp"

namespace morph::pbio {

class FormatDescriptor;
using FormatPtr = std::shared_ptr<const FormatDescriptor>;

/// Sentinel offset: let the builder assign offsets using natural C layout
/// rules (each field aligned to its alignment, struct padded to max align).
constexpr uint32_t kAutoOffset = 0xFFFFFFFFu;

struct EnumValue {
  std::string name;
  int32_t value = 0;
  bool operator==(const EnumValue&) const = default;
};

/// FieldDescriptor::pb_field layout. Proto field numbers fit in 29 bits
/// (the protobuf spec caps them at 2^29 - 1), leaving the top bits for the
/// wire-encoding variants that the descriptor alone must determine:
///   kPbZigzag — sint32/sint64: varints carry the zigzag-mapped value;
///   kPbFixed  — fixed/sfixed:  little-endian fixed32/fixed64 instead of
///               varint (floats are always fixed and need no flag).
constexpr uint32_t kPbNumberMask = 0x1FFFFFFFu;
constexpr uint32_t kPbZigzag = 1u << 29;
constexpr uint32_t kPbFixed = 1u << 30;
constexpr uint32_t kPbMaxFieldNumber = kPbNumberMask;

/// One field of a record format.
struct FieldDescriptor {
  std::string name;
  FieldKind kind = FieldKind::kInt;
  uint32_t size = 0;    // byte size occupied in the struct (pointer size for
                        // kString / kDynArray; total inline size for
                        // kStruct / kStaticArray)
  uint32_t offset = 0;  // byte offset within the struct

  // Element description for kStruct / kStaticArray / kDynArray.
  FieldKind element_kind = FieldKind::kInt;  // for arrays of basic elements
  uint32_t element_size = 0;                 // scalar element byte size
  FormatPtr element_format;                  // for kStruct and struct arrays
  uint32_t static_count = 0;                 // kStaticArray only

  // kDynArray: name of the integer field (in the same struct, declared
  // earlier) that carries the element count.
  std::string length_field;

  // kEnum: the enumerator table.
  std::vector<EnumValue> enumerators;

  // Optional default used when a receiver must fill in a field the sender's
  // format lacks (Algorithm 2, line 27). Stored as int/float/string.
  std::optional<int64_t> default_int;
  std::optional<double> default_float;
  std::optional<std::string> default_string;

  // Importance weight for the weighted diff / MaxMatch variant (the
  // paper's §6 future-work item: "the ability to weight different fields
  // and subfields based on some measure of importance"). 1 reproduces the
  // unweighted Algorithm 1; 0 makes a field's absence free; larger values
  // make losing the field costlier. Travels with the out-of-band meta-data.
  uint32_t importance = 1;

  // Protobuf interop metadata (src/pbuf/): the proto field number in the
  // low 29 bits plus wire-encoding flag bits (kPbZigzag / kPbFixed below).
  // Zero means "no protobuf mapping" — the historical state — and such
  // fields serialize byte-identically to pre-pbuf descriptors, so legacy
  // formats keep their fingerprints. Travels with the out-of-band
  // meta-data like every other field attribute.
  uint32_t pb_field = 0;

  /// Proto field number (0 when the field has no protobuf mapping).
  uint32_t pb_number() const;

  bool has_element_format() const { return element_format != nullptr; }

  /// Byte stride between consecutive array elements.
  uint32_t element_stride() const;
};

/// An immutable record format. Build with FormatBuilder.
class FormatDescriptor : public std::enable_shared_from_this<FormatDescriptor> {
 public:
  static constexpr size_t kMaxFields = 4096;
  static constexpr size_t kMaxNesting = 32;

  const std::string& name() const { return name_; }
  uint32_t struct_size() const { return struct_size_; }
  uint32_t alignment() const { return alignment_; }
  const std::vector<FieldDescriptor>& fields() const { return fields_; }

  /// Weight W_f: total number of basic fields, counting the basic fields
  /// inside complex fields as well (paper §3.2). An array — static or
  /// dynamic — contributes its element type's weight once.
  uint32_t weight() const { return weight_; }

  /// Layout-sensitive identity hash: two formats with equal fingerprints
  /// have identical names, field names/kinds/sizes/offsets, and nested
  /// structure — a record can be interpreted in place, no conversion.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Layout-insensitive shape hash: ignores offsets and field order, so it
  /// identifies formats that are perfect matches (diff == 0 both ways)
  /// modulo layout.
  uint64_t shape_fingerprint() const { return shape_fingerprint_; }

  /// True if any field is a string or dynamic array (directly or nested),
  /// i.e. encoding needs pointer flattening.
  bool has_pointers() const { return has_pointers_; }

  const FieldDescriptor* find_field(std::string_view field_name) const;
  const FieldDescriptor& field_at(size_t i) const { return fields_.at(i); }
  size_t field_count() const { return fields_.size(); }

  /// Index of a field by name, or npos.
  size_t field_index(std::string_view field_name) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Structural equality: same name, same fields (names, kinds, sizes,
  /// offsets), recursively. Equivalent to fingerprint equality except it
  /// does not rely on the absence of hash collisions.
  bool identical_to(const FormatDescriptor& other) const;

  /// Human-readable multi-line dump, for diagnostics and examples.
  std::string to_string() const;

  /// Serialize this descriptor (recursively) for out-of-band transmission.
  void serialize(ByteBuffer& out) const;
  static FormatPtr deserialize(ByteReader& in);

 private:
  friend class FormatBuilder;
  FormatDescriptor() = default;

  void to_string_rec(std::string& out, int indent) const;
  void serialize_rec(ByteBuffer& out, int depth) const;
  static FormatPtr deserialize_rec(ByteReader& in, int depth);

  std::string name_;
  uint32_t struct_size_ = 0;
  uint32_t alignment_ = 1;
  std::vector<FieldDescriptor> fields_;
  uint32_t weight_ = 0;
  uint64_t fingerprint_ = 0;
  uint64_t shape_fingerprint_ = 0;
  bool has_pointers_ = false;
};

/// Builder for FormatDescriptor. Two usage modes:
///
///  * Bound mode — pass real offsetof() values and sizeof(struct), binding
///    the format to an existing C++ struct (the paper's Figure 2 style).
///  * Auto mode — pass kAutoOffset everywhere (or use the offset-less
///    helpers) and the builder lays the struct out with natural C rules;
///    records are then allocated from an arena at runtime.
class FormatBuilder {
 public:
  explicit FormatBuilder(std::string format_name, uint32_t struct_size = 0);

  FormatBuilder& add_int(std::string name, uint32_t size = 4, uint32_t offset = kAutoOffset);
  FormatBuilder& add_uint(std::string name, uint32_t size = 4, uint32_t offset = kAutoOffset);
  FormatBuilder& add_float(std::string name, uint32_t size = 8, uint32_t offset = kAutoOffset);
  FormatBuilder& add_char(std::string name, uint32_t offset = kAutoOffset);
  FormatBuilder& add_enum(std::string name, std::vector<EnumValue> values,
                          uint32_t offset = kAutoOffset);
  FormatBuilder& add_string(std::string name, uint32_t offset = kAutoOffset);
  FormatBuilder& add_struct(std::string name, FormatPtr format, uint32_t offset = kAutoOffset);

  /// Fixed-count array of basic elements.
  FormatBuilder& add_static_array(std::string name, FieldKind element_kind,
                                  uint32_t element_size, uint32_t count,
                                  uint32_t offset = kAutoOffset);
  /// Fixed-count array of structs.
  FormatBuilder& add_static_array(std::string name, FormatPtr element_format, uint32_t count,
                                  uint32_t offset = kAutoOffset);

  /// Dynamically sized array of basic elements; `length_field` names an
  /// integer field already added to this builder.
  FormatBuilder& add_dyn_array(std::string name, FieldKind element_kind, uint32_t element_size,
                               std::string length_field, uint32_t offset = kAutoOffset);
  /// Dynamically sized array of structs.
  FormatBuilder& add_dyn_array(std::string name, FormatPtr element_format,
                               std::string length_field, uint32_t offset = kAutoOffset);

  /// Attach a default value to the most recently added field (used when the
  /// morph layer must synthesize the field; Algorithm 2 line 27).
  FormatBuilder& with_default(int64_t v);
  FormatBuilder& with_default(double v);
  FormatBuilder& with_default(std::string v);

  /// Set the importance weight of the most recently added field (weighted
  /// MaxMatch; 1 = the paper's unweighted semantics).
  FormatBuilder& with_importance(uint32_t importance);

  /// Attach protobuf wire metadata to the most recently added field: the
  /// proto field number (1 .. kPbMaxFieldNumber) optionally OR'd with
  /// kPbZigzag / kPbFixed. See pbuf/schema.hpp for the importers that use
  /// this.
  FormatBuilder& with_pb_field(uint32_t pb_field);

  /// Validate and freeze. Throws FormatError on inconsistency.
  FormatPtr build();

 private:
  FieldDescriptor& push(FieldDescriptor fd);
  FieldDescriptor& last();

  std::string name_;
  uint32_t declared_size_;
  std::vector<FieldDescriptor> fields_;
  bool built_ = false;
};

/// Recompute a format against natural C layout (auto offsets), preserving
/// names/kinds/sizes. Used when a receiver learns a foreign format and needs
/// a host-side layout to materialize records into.
FormatPtr relayout(const FormatDescriptor& fmt);

}  // namespace morph::pbio
