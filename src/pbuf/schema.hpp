// Proto schema import: turn a `.proto`-subset message definition into a
// FormatDescriptor, and annotate native formats with proto field numbers.
//
// The supported subset (documented in docs/PBUF.md):
//
//   syntax = "proto3";            // optional; proto2 is rejected
//   package anything;             // accepted, ignored
//   message Name {
//     int32|int64|uint32|uint64|sint32|sint64|bool       f = N;   // varint
//     fixed32|fixed64|sfixed32|sfixed64|float|double     f = N;   // fixed
//     string|bytes                                       f = N;
//     OtherMessage                                       f = N;   // nested
//     repeated <any of the above>                        f = N;
//     message Nested { ... }      // nested definitions, lexically scoped
//   }
//
// Not supported (rejected with FormatError): proto2 syntax, enum blocks,
// oneof, map<>, groups, options, extensions, reserved ranges, imports,
// services. Recursive message types are rejected too — PBIO nested structs
// are stored inline, so a self-referential message would have infinite
// size.
//
// Mapping rules: signed ints -> kInt (sint* adds kPbZigzag, sfixed* adds
// kPbFixed), unsigned -> kUInt (fixed* adds kPbFixed), bool -> 1-byte
// kUInt, float/double -> kFloat, string/bytes -> kString, message ->
// kStruct, `repeated T xs` -> kDynArray plus a synthesized `xs_count`
// length field. Length fields carry no pb number: protobuf implies element
// counts from the wire, so they are rewritten after decode and never
// encoded.
//
// Imported formats are ordinary FormatDescriptors — registered,
// fingerprinted, diffed, morphed, and served through fmtsvc like any
// native format; the pb numbers ride along as field metadata.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pbio/format.hpp"

namespace morph::pbuf {

/// Parse a .proto-subset source. Returns one FormatDescriptor per
/// top-level message, in declaration order. Throws FormatError with a
/// line-numbered message on anything outside the subset.
std::vector<pbio::FormatPtr> parse_proto(std::string_view source);

/// Parse and return the single message named `message_name` (top-level).
/// Throws FormatError if the source does not define it.
pbio::FormatPtr parse_proto_message(std::string_view source, std::string_view message_name);

/// Clone a native format, assigning sequential proto field numbers (1, 2,
/// ... in declaration order) to every field except dynamic-array length
/// fields, which stay implied. Layout (offsets, struct size) is preserved,
/// so records of the original format are records of the annotated one; the
/// fingerprint differs because the pb metadata is part of the identity.
/// Throws FormatError if the format cannot carry a pb mapping (static
/// arrays, >1-deep unsupported shapes — see pbuf_encodable).
pbio::FormatPtr annotate_field_numbers(const pbio::FormatDescriptor& fmt);

/// True when `fmt` has a complete protobuf mapping: every field except
/// dyn-array length fields carries a pb number, numbers are unique within
/// each message, length fields are unannotated, and every field kind is
/// representable on the protobuf wire (static arrays are not). When false
/// and `why` is non-null, *why names the first offending field.
bool pbuf_encodable(const pbio::FormatDescriptor& fmt, std::string* why = nullptr);

}  // namespace morph::pbuf
