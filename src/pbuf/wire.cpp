#include "pbuf/wire.hpp"

namespace morph::pbuf {

void put_varint(ByteBuffer& out, uint64_t v) {
  while (v >= 0x80) {
    out.append_u8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.append_u8(static_cast<uint8_t>(v));
}

void put_tag(ByteBuffer& out, uint32_t field_number, WireType wt) {
  put_varint(out, (static_cast<uint64_t>(field_number) << 3) |
                      static_cast<uint64_t>(wt));
}

void put_fixed32(ByteBuffer& out, uint32_t v) { out.append_u32(v); }
void put_fixed64(ByteBuffer& out, uint64_t v) { out.append_u64(v); }

size_t varint_size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

uint64_t PbReader::varint() {
  uint64_t v = 0;
  int shift = 0;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= size_) throw DecodeError("truncated varint");
    uint8_t b = data_[pos_++];
    // The 10th byte carries bits 63.. so only its low bit may be set; a set
    // continuation bit there would claim an 11-byte varint.
    if (i == kMaxVarintBytes - 1 && (b & 0xFE) != 0) {
      throw DecodeError("varint exceeds 10 bytes");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  throw DecodeError("varint exceeds 10 bytes");
}

PbReader::Tag PbReader::tag() {
  uint64_t raw = varint();
  uint32_t field = static_cast<uint32_t>(raw >> 3);
  if (raw >> 3 > 0x1FFFFFFFu) throw DecodeError("pb field number out of range");
  if (field == 0) throw DecodeError("pb field number 0 is reserved");
  switch (raw & 7) {
    case 0:
      return {field, WireType::kVarint};
    case 1:
      return {field, WireType::kFixed64};
    case 2:
      return {field, WireType::kLengthDelimited};
    case 5:
      return {field, WireType::kFixed32};
    default:
      throw DecodeError("unsupported pb wire type " + std::to_string(raw & 7) +
                        " (field " + std::to_string(field) + ")");
  }
}

uint32_t PbReader::fixed32() {
  if (remaining() < 4) throw DecodeError("truncated fixed32");
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

uint64_t PbReader::fixed64() {
  if (remaining() < 8) throw DecodeError("truncated fixed64");
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

PbReader PbReader::length_delimited() {
  uint64_t len = varint();
  if (len > remaining()) {
    throw DecodeError("pb length " + std::to_string(len) + " overflows " +
                      std::to_string(remaining()) + " remaining bytes");
  }
  PbReader sub(data_ + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return sub;
}

void PbReader::skip(WireType wt) {
  switch (wt) {
    case WireType::kVarint:
      (void)varint();
      break;
    case WireType::kFixed64:
      if (remaining() < 8) throw DecodeError("truncated fixed64");
      pos_ += 8;
      break;
    case WireType::kLengthDelimited:
      (void)length_delimited();
      break;
    case WireType::kFixed32:
      if (remaining() < 4) throw DecodeError("truncated fixed32");
      pos_ += 4;
      break;
  }
}

void PbReader::advance(size_t n) {
  if (n > remaining()) throw DecodeError("pb reader advance past end");
  pos_ += n;
}

}  // namespace morph::pbuf
