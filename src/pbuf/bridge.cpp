#include "pbuf/bridge.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "pbio/record.hpp"
#include "pbuf/schema.hpp"

namespace morph::pbuf {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatDescriptor;
using pbio::FormatPtr;

BridgeMetrics& bridge_metrics() {
  static BridgeMetrics m{
      obs::metrics().counter("morph_pbuf_frames_in_total"),
      obs::metrics().counter("morph_pbuf_decoded_total"),
      obs::metrics().counter("morph_pbuf_rejected_total"),
      obs::metrics().counter("morph_pbuf_unknown_fields_total"),
      obs::metrics().counter("morph_pbuf_encoded_total"),
      obs::metrics().histogram("morph_pbuf_decode_bytes"),
      obs::metrics().histogram("morph_pbuf_encode_bytes"),
  };
  return m;
}

// ---------------------------------------------------------------------------
// Dispatch table: per message, field number -> precompiled entry.
// ---------------------------------------------------------------------------

namespace detail {

struct MessageTable {
  FormatPtr fmt;

  struct Entry {
    uint32_t number = 0;
    const FieldDescriptor* fd = nullptr;  // owned by fmt (shared_ptr above)
    FieldDescriptor elem;                 // synthesized, scalar/string arrays
    const FieldDescriptor* length_fd = nullptr;  // kDynArray only
    std::shared_ptr<const MessageTable> sub;     // kStruct / struct arrays
  };
  std::vector<Entry> entries;  // sorted by number

  const Entry* find(uint32_t number) const {
    auto it = std::lower_bound(entries.begin(), entries.end(), number,
                               [](const Entry& e, uint32_t n) { return e.number < n; });
    return it != entries.end() && it->number == number ? &*it : nullptr;
  }

  static std::shared_ptr<const MessageTable> build(const FormatPtr& fmt);
};

}  // namespace detail

using detail::MessageTable;

namespace {

/// Synthesized descriptor for one element of a scalar/string array: same
/// kind/size as the elements, offset 0 (callers pass the slot base).
FieldDescriptor element_descriptor(const FieldDescriptor& array_fd) {
  FieldDescriptor efd;
  efd.name = array_fd.name + "[]";
  efd.kind = array_fd.element_kind;
  efd.size = array_fd.element_kind == FieldKind::kString ? 8 : array_fd.element_size;
  efd.offset = 0;
  return efd;
}

}  // namespace

std::shared_ptr<const MessageTable> MessageTable::build(const FormatPtr& fmt) {
  auto t = std::make_shared<MessageTable>();
  t->fmt = fmt;
  for (const auto& fd : fmt->fields()) {
    if (fd.pb_field == 0) continue;  // implied length fields
    Entry e;
    e.number = fd.pb_number();
    e.fd = &fd;
    if (fd.kind == FieldKind::kDynArray) {
      e.length_fd = fmt->find_field(fd.length_field);
      if (fd.element_format) {
        e.sub = build(fd.element_format);
      } else {
        e.elem = element_descriptor(fd);
      }
    } else if (fd.kind == FieldKind::kStruct) {
      e.sub = build(fd.element_format);
    }
    t->entries.push_back(std::move(e));
  }
  std::sort(t->entries.begin(), t->entries.end(),
            [](const Entry& a, const Entry& b) { return a.number < b.number; });
  return t;
}

// ---------------------------------------------------------------------------
// Shared scalar helpers
// ---------------------------------------------------------------------------

namespace {

/// Wire type a scalar (kind, size, pb flags) uses on the wire.
WireType scalar_wire_type(FieldKind kind, uint32_t size, uint32_t pb_flags) {
  if (kind == FieldKind::kFloat || (pb_flags & pbio::kPbFixed) != 0) {
    return size == 8 ? WireType::kFixed64 : WireType::kFixed32;
  }
  return WireType::kVarint;
}

/// Decode one scalar wire value into `target` at efd's offset. `pb_flags`
/// carries the zigzag/fixed bits (for array elements they live on the
/// array's descriptor, so they are passed separately).
void decode_scalar_value(PbReader& in, WireType wt, const FieldDescriptor& efd,
                         uint32_t pb_flags, void* target) {
  WireType expected = scalar_wire_type(efd.kind, efd.size, pb_flags);
  if (wt != expected) {
    throw DecodeError("wire type mismatch on field '" + efd.name + "'");
  }
  if (efd.kind == FieldKind::kFloat) {
    if (efd.size == 4) {
      pbio::write_scalar_f64(target, efd, std::bit_cast<float>(in.fixed32()));
    } else {
      pbio::write_scalar_f64(target, efd, std::bit_cast<double>(in.fixed64()));
    }
    return;
  }
  int64_t v;
  switch (expected) {
    case WireType::kVarint: {
      uint64_t raw = in.varint();
      v = (pb_flags & pbio::kPbZigzag) != 0 ? zigzag_decode(raw) : static_cast<int64_t>(raw);
      break;
    }
    case WireType::kFixed32: {
      uint32_t raw = in.fixed32();
      v = efd.kind == FieldKind::kInt ? static_cast<int64_t>(static_cast<int32_t>(raw))
                                      : static_cast<int64_t>(raw);
      break;
    }
    default: {  // kFixed64
      v = static_cast<int64_t>(in.fixed64());
      break;
    }
  }
  pbio::write_scalar_i64(target, efd, v);
}

/// Encode one scalar value from `source` at efd's offset (payload only).
void encode_scalar_payload(const void* source, const FieldDescriptor& efd, uint32_t pb_flags,
                           ByteBuffer& out) {
  if (efd.kind == FieldKind::kFloat) {
    double f = pbio::read_scalar_f64(source, efd);
    if (efd.size == 4) {
      put_fixed32(out, std::bit_cast<uint32_t>(static_cast<float>(f)));
    } else {
      put_fixed64(out, std::bit_cast<uint64_t>(f));
    }
    return;
  }
  int64_t v = pbio::read_scalar_i64(source, efd);
  if ((pb_flags & pbio::kPbFixed) != 0) {
    if (efd.size == 8) {
      put_fixed64(out, static_cast<uint64_t>(v));
    } else {
      put_fixed32(out, static_cast<uint32_t>(v));
    }
    return;
  }
  put_varint(out, (pb_flags & pbio::kPbZigzag) != 0 ? zigzag_encode(v)
                                                    : static_cast<uint64_t>(v));
}

std::string_view ld_view(const PbReader& sub) {
  return {reinterpret_cast<const char*>(sub.cursor()), sub.remaining()};
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// Per-frame ceiling on bytes of record storage the decoder may allocate
/// for repeated elements, as a multiple of the payload size (plus a fixed
/// slack so tiny frames still fit a few elements). Each repeated occurrence
/// costs at least one wire byte but allocates element_stride bytes — and
/// element_stride comes from a *peer-learned* descriptor whose struct_size
/// may be huge — so without this cap a few hostile bytes could force
/// multi-GB arena growth. The budget is charged with the exact allocation
/// before it happens; exceeding it is an ordinary per-frame DecodeError,
/// never a bad_alloc escaping through the link callback.
constexpr uint64_t kDecodeBudgetPerWireByte = 64;
constexpr uint64_t kDecodeBudgetSlackBytes = 64 * 1024;

struct DecodeBudget {
  uint64_t remaining;

  explicit DecodeBudget(size_t payload_size)
      : remaining(kDecodeBudgetSlackBytes + kDecodeBudgetPerWireByte * payload_size) {}

  void charge(uint64_t bytes, const FieldDescriptor& fd) {
    if (bytes > remaining) {
      throw DecodeError("repeated field '" + fd.name +
                        "' exceeds the per-frame decode byte budget");
    }
    remaining -= bytes;
  }
};

void decode_message_impl(PbReader& in, const MessageTable& table, void* record,
                         RecordArena& arena, DecodeBudget& budget, int depth);

/// Fill declared defaults into a fresh (zeroed) record, recursively.
/// Implied length fields carry no pb number and no defaults, so they stay
/// zero — repeated-field decode counts up from there. `budget` is null for
/// the top-level record (its default footprint is fixed per frame) and set
/// for repeated elements, whose count the wire controls.
void apply_defaults(void* record, const MessageTable& table, RecordArena& arena,
                    DecodeBudget* budget) {
  for (const auto& e : table.entries) {
    const FieldDescriptor& fd = *e.fd;
    if (fd.kind == FieldKind::kStruct) {
      apply_defaults(static_cast<uint8_t*>(record) + fd.offset, *e.sub, arena, budget);
      continue;
    }
    if (fd.default_int) pbio::write_scalar_i64(record, fd, *fd.default_int);
    if (fd.default_float) pbio::write_scalar_f64(record, fd, *fd.default_float);
    if (fd.default_string) {
      if (budget != nullptr) budget->charge(fd.default_string->size() + 1, fd);
      pbio::write_string_field(record, fd, *fd.default_string, arena);
    }
  }
}

/// Append one element slot to a dynamic array; returns the slot pointer
/// and bumps the length field. Growth is charged against the budget before
/// the allocation happens.
void* append_element(void* record, const MessageTable::Entry& e, RecordArena& arena,
                     DecodeBudget& budget) {
  const FieldDescriptor& fd = *e.fd;
  auto count = static_cast<uint64_t>(pbio::read_scalar_i64(record, *e.length_fd));
  uint64_t cap = pbio::dyn_array_capacity(pbio::read_pointer(record, fd));
  uint64_t grown = pbio::dyn_array_grown_capacity(cap, count);
  if (grown != cap) budget.charge((grown - cap) * fd.element_stride(), fd);
  void* base = pbio::grow_dyn_array(record, fd, arena, count);
  pbio::write_scalar_i64(record, *e.length_fd, static_cast<int64_t>(count + 1));
  return static_cast<uint8_t*>(base) + count * fd.element_stride();
}

void decode_repeated(PbReader& in, WireType wt, const MessageTable::Entry& e, void* record,
                     RecordArena& arena, DecodeBudget& budget, int depth) {
  const FieldDescriptor& fd = *e.fd;
  if (fd.element_format) {
    // Repeated message: one length-delimited occurrence per element.
    if (wt != WireType::kLengthDelimited) {
      throw DecodeError("wire type mismatch on repeated message '" + fd.name + "'");
    }
    PbReader sub = in.length_delimited();
    void* elem = append_element(record, e, arena, budget);
    std::memset(elem, 0, fd.element_stride());
    apply_defaults(elem, *e.sub, arena, &budget);
    decode_message_impl(sub, *e.sub, elem, arena, budget, depth + 1);
    return;
  }
  if (fd.element_kind == FieldKind::kString) {
    // Repeated string: one occurrence per element, never packed.
    if (wt != WireType::kLengthDelimited) {
      throw DecodeError("wire type mismatch on repeated string '" + fd.name + "'");
    }
    PbReader sub = in.length_delimited();
    std::string_view s = ld_view(sub);
    if (s.find('\0') != std::string_view::npos) {
      throw DecodeError("embedded NUL in string field '" + fd.name + "'");
    }
    void* elem = append_element(record, e, arena, budget);
    pbio::write_string_field(elem, e.elem, s, arena);
    return;
  }
  // Repeated scalar: packed (one length-delimited run) or unpacked (one
  // occurrence per element); both are accepted, as required of proto3
  // decoders.
  WireType elem_wt = scalar_wire_type(e.elem.kind, e.elem.size, fd.pb_field);
  if (wt == WireType::kLengthDelimited) {
    PbReader sub = in.length_delimited();
    while (!sub.at_end()) {
      void* elem = append_element(record, e, arena, budget);
      decode_scalar_value(sub, elem_wt, e.elem, fd.pb_field, elem);
    }
    return;
  }
  if (wt != elem_wt) {
    throw DecodeError("wire type mismatch on repeated field '" + fd.name + "'");
  }
  void* elem = append_element(record, e, arena, budget);
  decode_scalar_value(in, wt, e.elem, fd.pb_field, elem);
}

void decode_message_impl(PbReader& in, const MessageTable& table, void* record,
                         RecordArena& arena, DecodeBudget& budget, int depth) {
  if (depth > static_cast<int>(FormatDescriptor::kMaxNesting)) {
    throw DecodeError("pb message nesting exceeds depth cap");
  }
  BridgeMetrics& m = bridge_metrics();
  while (!in.at_end()) {
    PbReader::Tag tag = in.tag();
    const MessageTable::Entry* e = table.find(tag.field);
    if (e == nullptr) {
      // Unknown field number: skipped deterministically (never delivered,
      // never retained), counted so operators can see schema drift.
      in.skip(tag.wt);
      m.unknown_fields.inc();
      continue;
    }
    const FieldDescriptor& fd = *e->fd;
    switch (fd.kind) {
      case FieldKind::kString: {
        if (tag.wt != WireType::kLengthDelimited) {
          throw DecodeError("wire type mismatch on field '" + fd.name + "'");
        }
        PbReader sub = in.length_delimited();
        std::string_view s = ld_view(sub);
        if (s.find('\0') != std::string_view::npos) {
          throw DecodeError("embedded NUL in string field '" + fd.name + "'");
        }
        pbio::write_string_field(record, fd, s, arena);
        break;
      }
      case FieldKind::kStruct: {
        if (tag.wt != WireType::kLengthDelimited) {
          throw DecodeError("wire type mismatch on field '" + fd.name + "'");
        }
        PbReader sub = in.length_delimited();
        // Proto merge semantics degrade to last-one-wins per leaf: a second
        // occurrence decodes into the same struct without re-zeroing.
        decode_message_impl(sub, *e->sub, static_cast<uint8_t*>(record) + fd.offset, arena,
                            budget, depth + 1);
        break;
      }
      case FieldKind::kDynArray: {
        decode_repeated(in, tag.wt, *e, record, arena, budget, depth);
        break;
      }
      default: {
        decode_scalar_value(in, tag.wt, fd, fd.pb_field, record);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

void encode_message_impl(const void* record, const FormatDescriptor& fmt, ByteBuffer& out,
                         int depth);

void encode_repeated(const void* record, const FormatDescriptor& fmt,
                     const FieldDescriptor& fd, ByteBuffer& out, int depth) {
  const FieldDescriptor* length_fd = fmt.find_field(fd.length_field);
  auto count = static_cast<uint64_t>(pbio::read_scalar_i64(record, *length_fd));
  if (count == 0) return;  // proto3: empty repeated field omitted
  const auto* base = static_cast<const uint8_t*>(pbio::read_pointer(record, fd));
  if (base == nullptr) {
    throw FormatError("dynamic array '" + fd.name + "' is null but count is " +
                      std::to_string(count));
  }
  uint32_t number = fd.pb_number();
  uint32_t stride = fd.element_stride();
  if (fd.element_format) {
    // Every element is emitted, empty payloads included: the occurrence
    // count is the element count on the wire.
    for (uint64_t i = 0; i < count; ++i) {
      ByteBuffer scratch;
      encode_message_impl(base + i * stride, *fd.element_format, scratch, depth + 1);
      put_tag(out, number, WireType::kLengthDelimited);
      put_varint(out, scratch.size());
      out.append(scratch.data(), scratch.size());
    }
    return;
  }
  FieldDescriptor efd = element_descriptor(fd);
  if (fd.element_kind == FieldKind::kString) {
    for (uint64_t i = 0; i < count; ++i) {
      std::string_view s = pbio::read_string_field(base + i * stride, efd);
      put_tag(out, number, WireType::kLengthDelimited);
      put_varint(out, s.size());
      out.append(s.data(), s.size());
    }
    return;
  }
  // Packed scalars: one length-delimited run holding every element.
  ByteBuffer scratch;
  for (uint64_t i = 0; i < count; ++i) {
    encode_scalar_payload(base + i * stride, efd, fd.pb_field, scratch);
  }
  put_tag(out, number, WireType::kLengthDelimited);
  put_varint(out, scratch.size());
  out.append(scratch.data(), scratch.size());
}

void encode_message_impl(const void* record, const FormatDescriptor& fmt, ByteBuffer& out,
                         int depth) {
  if (depth > static_cast<int>(FormatDescriptor::kMaxNesting)) {
    throw FormatError("pb message nesting exceeds depth cap");
  }
  for (const auto& fd : fmt.fields()) {
    if (fd.pb_field == 0) continue;  // implied length fields
    uint32_t number = fd.pb_number();
    switch (fd.kind) {
      case FieldKind::kString: {
        std::string_view s = pbio::read_string_field(record, fd);
        if (s.empty()) break;  // proto3: empty string omitted
        put_tag(out, number, WireType::kLengthDelimited);
        put_varint(out, s.size());
        out.append(s.data(), s.size());
        break;
      }
      case FieldKind::kStruct: {
        ByteBuffer scratch;
        encode_message_impl(static_cast<const uint8_t*>(record) + fd.offset,
                            *fd.element_format, scratch, depth + 1);
        if (scratch.empty()) break;  // proto3: all-default submessage omitted
        put_tag(out, number, WireType::kLengthDelimited);
        put_varint(out, scratch.size());
        out.append(scratch.data(), scratch.size());
        break;
      }
      case FieldKind::kDynArray: {
        encode_repeated(record, fmt, fd, out, depth);
        break;
      }
      default: {
        if (fd.kind == FieldKind::kFloat) {
          if (pbio::read_scalar_f64(record, fd) == 0.0) break;  // proto3 zero omitted
        } else {
          if (pbio::read_scalar_i64(record, fd) == 0) break;
        }
        put_tag(out, number, scalar_wire_type(fd.kind, fd.size, fd.pb_field));
        encode_scalar_payload(record, fd, fd.pb_field, out);
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

DecodePlan::DecodePlan(FormatPtr fmt) : fmt_(std::move(fmt)) {
  std::string why;
  if (!pbuf_encodable(*fmt_, &why)) {
    throw FormatError("format '" + fmt_->name() + "' has no protobuf mapping: " + why);
  }
  table_ = MessageTable::build(fmt_);
}

void* DecodePlan::decode(const void* data, size_t size, RecordArena& arena) const {
  BridgeMetrics& m = bridge_metrics();
  m.frames_in.inc();
  try {
    void* record = pbio::alloc_record(*fmt_, arena);
    apply_defaults(record, *table_, arena, nullptr);
    PbReader in(data, size);
    DecodeBudget budget(size);
    decode_message_impl(in, *table_, record, arena, budget, 0);
    m.decoded.inc();
    m.decode_bytes.record(size);
    return record;
  } catch (...) {
    // Not just DecodeError: a bad_alloc from arena growth or a FormatError
    // from a record helper must also keep frames_in == decoded + rejected.
    m.rejected.inc();
    throw;
  }
}

EncodePlan::EncodePlan(FormatPtr fmt) : fmt_(std::move(fmt)) {
  std::string why;
  if (!pbuf_encodable(*fmt_, &why)) {
    throw FormatError("format '" + fmt_->name() + "' has no protobuf mapping: " + why);
  }
}

size_t EncodePlan::encode(const void* record, ByteBuffer& out) const {
  size_t before = out.size();
  encode_message_impl(record, *fmt_, out, 0);
  size_t n = out.size() - before;
  BridgeMetrics& m = bridge_metrics();
  m.encoded.inc();
  m.encode_bytes.record(n);
  return n;
}

}  // namespace morph::pbuf
