// Compiled conversion plans between protobuf frames and native records.
//
// DecodePlan: protobuf bytes -> a native-layout record allocated from a
// RecordArena, laid out exactly as the plan's format describes. When that
// format is a morph chain's *source* layout, the decode lands directly in
// the chain's input (the decode-into-morph idiom from the broker fan-out
// work): protobuf frame -> decode -> fused Ecode chain -> delivered native
// record, with no intermediate PBIO round trip.
//
// EncodePlan: native record -> protobuf bytes, proto3 semantics (zero
// scalars, empty strings, empty submessages, and empty arrays are
// omitted; repeated elements are always emitted, zeros included, so
// element counts survive). Round trips are value-identical because the
// decoder zero-fills records before applying field presence.
//
// Both plans precompile a field-number dispatch table per message, so the
// per-frame work is table lookups, not name/number searches.
//
// Conservation law (checked by tools/morph-stat): every frame handed to
// DecodePlan::decode bumps morph_pbuf_frames_in_total and then exactly one
// of morph_pbuf_decoded_total / morph_pbuf_rejected_total, so
//   frames_in == decoded + rejected
// holds at every instant, for every caller (ports, benches, tests). Every
// failure path counts as rejected — malformed input, the per-frame decode
// byte budget, allocation failure — not just DecodeError.
//
// Allocation is bounded per frame: repeated-element storage (dyn-array
// growth plus per-element default strings) is charged against a budget
// proportional to the payload size before each allocation, so a tiny
// hostile frame referencing a peer-learned descriptor with a huge
// element_stride rejects with DecodeError instead of forcing multi-GB
// arena growth.
#pragma once

#include <cstdint>
#include <memory>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "obs/metrics.hpp"
#include "pbio/format.hpp"
#include "pbuf/wire.hpp"

namespace morph::pbuf {

namespace detail {
struct MessageTable;
}

/// The process-wide morph_pbuf_* metrics, looked up once (registry
/// references stay valid forever; hot paths keep these references).
struct BridgeMetrics {
  obs::Counter& frames_in;       // morph_pbuf_frames_in_total
  obs::Counter& decoded;         // morph_pbuf_decoded_total
  obs::Counter& rejected;        // morph_pbuf_rejected_total
  obs::Counter& unknown_fields;  // morph_pbuf_unknown_fields_total
  obs::Counter& encoded;         // morph_pbuf_encoded_total
  obs::Histogram& decode_bytes;  // morph_pbuf_decode_bytes
  obs::Histogram& encode_bytes;  // morph_pbuf_encode_bytes
};
BridgeMetrics& bridge_metrics();

/// Decode protobuf payloads into native records of one format.
class DecodePlan {
 public:
  /// Throws FormatError unless `fmt` is pbuf_encodable (the same mapping
  /// completeness is needed in both directions).
  explicit DecodePlan(pbio::FormatPtr fmt);

  /// Decode one protobuf payload into a fresh record from `arena`.
  /// Declared field defaults are applied first, then wire fields overwrite
  /// them (absent fields therefore read as their default, or zero).
  /// Unknown field numbers are skipped deterministically and counted in
  /// morph_pbuf_unknown_fields_total. Malformed input — including input
  /// that exceeds the per-frame decode byte budget — throws DecodeError
  /// after bumping the rejected counter; the record under construction is
  /// abandoned to the arena (reset it between messages as usual). Any
  /// other failure (bad_alloc, FormatError) also bumps rejected before
  /// propagating, so the conservation law holds on every path.
  void* decode(const void* data, size_t size, RecordArena& arena) const;

  const pbio::FormatPtr& format() const { return fmt_; }

 private:
  pbio::FormatPtr fmt_;
  std::shared_ptr<const detail::MessageTable> table_;
};

/// Encode native records of one format as protobuf payloads.
class EncodePlan {
 public:
  /// Throws FormatError unless `fmt` is pbuf_encodable.
  explicit EncodePlan(pbio::FormatPtr fmt);

  /// Append the protobuf encoding of `record` to `out`; returns the number
  /// of bytes appended.
  size_t encode(const void* record, ByteBuffer& out) const;

  const pbio::FormatPtr& format() const { return fmt_; }

 private:
  pbio::FormatPtr fmt_;
};

}  // namespace morph::pbuf
