// Protobuf wire primitives: varints, zigzag, tags, and the four wire types
// the bridge supports.
//
// This is the bottom layer of src/pbuf/ — pure byte manipulation with the
// same hostile-input posture as the PBIO decoder: every read is bounds
// checked, malformed input throws DecodeError (never UB, never a silent
// wrong value), and nothing here allocates proportionally to attacker-
// controlled counts before validating them against the buffer that must
// contain the data. See docs/PBUF.md for the schema subset this backs.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace morph::pbuf {

/// Protobuf wire types. Groups (3/4) and the reserved values (6/7) are not
/// supported: a tag carrying one is a hard DecodeError, because skipping a
/// group requires trusting unbounded nesting from the attacker.
enum class WireType : uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

/// Longest legal varint: 10 bytes covers 64 payload bits at 7 bits/byte.
constexpr size_t kMaxVarintBytes = 10;

/// Zigzag mapping for sint32/sint64 (small magnitudes -> small varints).
inline uint64_t zigzag_encode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t zigzag_decode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Append a base-128 varint.
void put_varint(ByteBuffer& out, uint64_t v);

/// Append a field tag: (field_number << 3) | wire_type.
void put_tag(ByteBuffer& out, uint32_t field_number, WireType wt);

void put_fixed32(ByteBuffer& out, uint32_t v);
void put_fixed64(ByteBuffer& out, uint64_t v);

/// Serialized size of a varint, for length pre-computation.
size_t varint_size(uint64_t v);

/// Bounds-checked protobuf reader over a byte range. Thin wrapper around
/// the raw bytes (not ByteReader: protobuf scalars are not the fixed-width
/// little-endian primitives ByteReader speaks).
class PbReader {
 public:
  PbReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

  /// Read one varint. Throws DecodeError on truncation or a varint longer
  /// than 10 bytes (overlong encodings of small values are accepted, as in
  /// every mainstream protobuf decoder, but an 11th continuation byte is
  /// not a varint at all).
  uint64_t varint();

  /// Read one tag; returns {field_number, wire_type}. Throws on field
  /// number 0 (reserved), numbers above 2^29-1, and unsupported wire types.
  struct Tag {
    uint32_t field = 0;
    WireType wt = WireType::kVarint;
  };
  Tag tag();

  uint32_t fixed32();
  uint64_t fixed64();

  /// Read a length prefix and return a sub-reader over exactly that many
  /// bytes, advancing this reader past them. Throws if the declared length
  /// overflows what remains — the "nested length overflow" hostile case.
  PbReader length_delimited();

  /// Skip one field's payload given its wire type (unknown-field handling).
  void skip(WireType wt);

  const uint8_t* cursor() const { return data_ + pos_; }
  void advance(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace morph::pbuf
