#include "pbuf/schema.hpp"

#include <map>
#include <set>

#include "common/error.hpp"
#include "pbuf/wire.hpp"

namespace morph::pbuf {

using pbio::FieldDescriptor;
using pbio::FieldKind;
using pbio::FormatBuilder;
using pbio::FormatDescriptor;
using pbio::FormatPtr;

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: identifiers / integers / punctuation / quoted strings, with
// // and /* */ comments. Tracks line numbers for error messages.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kPunct, kString, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  const Token& peek() {
    if (!have_) {
      tok_ = lex();
      have_ = true;
    }
    return tok_;
  }

  Token next() {
    Token t = peek();
    have_ = false;
    return t;
  }

  [[noreturn]] void fail(const std::string& what, int line) const {
    throw FormatError("proto parse error (line " + std::to_string(line) + "): " + what);
  }

 private:
  Token lex() {
    for (;;) {
      while (pos_ < src_.size() && is_space(src_[pos_])) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
        int start = line_;
        pos_ += 2;
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= src_.size()) fail("unterminated /* comment", start);
        pos_ += 2;
        continue;
      }
      break;
    }
    if (pos_ >= src_.size()) return {Token::kEnd, "", line_};
    char c = src_[pos_];
    if (is_ident_start(c)) {
      size_t start = pos_;
      while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
      return {Token::kIdent, std::string(src_.substr(start, pos_ - start)), line_};
    }
    if (c >= '0' && c <= '9') {
      size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] >= '0' && src_[pos_] <= '9') ++pos_;
      return {Token::kNumber, std::string(src_.substr(start, pos_ - start)), line_};
    }
    if (c == '"') {
      size_t start = ++pos_;
      while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') ++pos_;
      if (pos_ >= src_.size() || src_[pos_] != '"') fail("unterminated string literal", line_);
      std::string s(src_.substr(start, pos_ - start));
      ++pos_;
      return {Token::kString, std::move(s), line_};
    }
    ++pos_;
    return {Token::kPunct, std::string(1, c), line_};
  }

  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
  static bool is_ident_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  }
  static bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  Token tok_;
  bool have_ = false;
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct AstField {
  bool repeated = false;
  std::string type;  // scalar keyword or message name
  std::string name;
  uint32_t number = 0;
  int line = 0;
};

struct AstMessage {
  std::string name;
  std::vector<AstField> fields;
  std::vector<AstMessage> nested;
  int line = 0;
};

struct ScalarInfo {
  FieldKind kind;
  uint32_t size;
  uint32_t pb_flags;  // kPbZigzag / kPbFixed
};

const std::map<std::string, ScalarInfo, std::less<>>& scalar_types() {
  static const std::map<std::string, ScalarInfo, std::less<>> kTypes = {
      {"int32", {FieldKind::kInt, 4, 0}},
      {"int64", {FieldKind::kInt, 8, 0}},
      {"sint32", {FieldKind::kInt, 4, pbio::kPbZigzag}},
      {"sint64", {FieldKind::kInt, 8, pbio::kPbZigzag}},
      {"sfixed32", {FieldKind::kInt, 4, pbio::kPbFixed}},
      {"sfixed64", {FieldKind::kInt, 8, pbio::kPbFixed}},
      {"uint32", {FieldKind::kUInt, 4, 0}},
      {"uint64", {FieldKind::kUInt, 8, 0}},
      {"fixed32", {FieldKind::kUInt, 4, pbio::kPbFixed}},
      {"fixed64", {FieldKind::kUInt, 8, pbio::kPbFixed}},
      {"bool", {FieldKind::kUInt, 1, 0}},
      {"float", {FieldKind::kFloat, 4, 0}},
      {"double", {FieldKind::kFloat, 8, 0}},
      {"string", {FieldKind::kString, 8, 0}},
      {"bytes", {FieldKind::kString, 8, 0}},
  };
  return kTypes;
}

// Constructs outside the subset, named explicitly so the error says what
// was recognized-but-unsupported rather than "expected type".
bool is_unsupported_keyword(std::string_view w) {
  return w == "enum" || w == "oneof" || w == "map" || w == "extend" || w == "extensions" ||
         w == "group" || w == "import" || w == "service" || w == "option" || w == "reserved" ||
         w == "optional" || w == "required";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  std::vector<AstMessage> parse_file() {
    std::vector<AstMessage> messages;
    // Optional leading `syntax = "proto3";`
    if (lex_.peek().kind == Token::kIdent && lex_.peek().text == "syntax") {
      Token t = lex_.next();
      expect_punct("=");
      Token s = lex_.next();
      if (s.kind != Token::kString) lex_.fail("expected string after syntax =", s.line);
      if (s.text != "proto3") {
        lex_.fail("unsupported syntax \"" + s.text + "\" (only proto3)", t.line);
      }
      expect_punct(";");
    }
    for (;;) {
      Token t = lex_.peek();
      if (t.kind == Token::kEnd) break;
      if (t.kind == Token::kIdent && t.text == "package") {
        lex_.next();
        // Accept dotted identifiers, ignore the value.
        for (;;) {
          Token p = lex_.next();
          if (p.kind == Token::kPunct && p.text == ";") break;
          if (p.kind == Token::kEnd) lex_.fail("unterminated package statement", t.line);
        }
        continue;
      }
      if (t.kind == Token::kIdent && t.text == "message") {
        messages.push_back(parse_message());
        continue;
      }
      if (t.kind == Token::kIdent && is_unsupported_keyword(t.text)) {
        lex_.fail("'" + t.text + "' is outside the supported proto subset", t.line);
      }
      lex_.fail("expected 'message', got '" + t.text + "'", t.line);
    }
    if (messages.empty()) lex_.fail("no message definitions found", 1);
    return messages;
  }

 private:
  AstMessage parse_message() {
    Token kw = lex_.next();  // 'message'
    Token name = lex_.next();
    if (name.kind != Token::kIdent) lex_.fail("expected message name", name.line);
    expect_punct("{");
    AstMessage msg;
    msg.name = name.text;
    msg.line = kw.line;
    std::set<uint32_t> numbers;
    std::set<std::string> names;
    for (;;) {
      Token t = lex_.peek();
      if (t.kind == Token::kPunct && t.text == "}") {
        lex_.next();
        break;
      }
      if (t.kind == Token::kEnd) lex_.fail("unterminated message '" + msg.name + "'", msg.line);
      if (t.kind == Token::kIdent && t.text == "message") {
        msg.nested.push_back(parse_message());
        continue;
      }
      if (t.kind == Token::kIdent && is_unsupported_keyword(t.text)) {
        lex_.fail("'" + t.text + "' is outside the supported proto subset", t.line);
      }
      AstField f = parse_field();
      if (!numbers.insert(f.number).second) {
        lex_.fail("duplicate field number " + std::to_string(f.number) + " in message '" +
                      msg.name + "'",
                  f.line);
      }
      if (!names.insert(f.name).second) {
        lex_.fail("duplicate field name '" + f.name + "' in message '" + msg.name + "'", f.line);
      }
      msg.fields.push_back(std::move(f));
    }
    return msg;
  }

  AstField parse_field() {
    AstField f;
    Token t = lex_.next();
    f.line = t.line;
    if (t.kind == Token::kIdent && t.text == "repeated") {
      f.repeated = true;
      t = lex_.next();
    }
    if (t.kind != Token::kIdent) lex_.fail("expected field type", t.line);
    f.type = t.text;
    Token name = lex_.next();
    if (name.kind != Token::kIdent) lex_.fail("expected field name", name.line);
    f.name = name.text;
    expect_punct("=");
    Token num = lex_.next();
    if (num.kind != Token::kNumber) lex_.fail("expected field number", num.line);
    unsigned long long v = 0;
    for (char c : num.text) {
      v = v * 10 + static_cast<unsigned long long>(c - '0');
      if (v > pbio::kPbMaxFieldNumber) break;
    }
    if (v == 0 || v > pbio::kPbMaxFieldNumber) {
      lex_.fail("field number " + num.text + " out of range 1.." +
                    std::to_string(pbio::kPbMaxFieldNumber),
                num.line);
    }
    if (v >= 19000 && v <= 19999) {
      lex_.fail("field number " + num.text + " is in the reserved range 19000-19999", num.line);
    }
    f.number = static_cast<uint32_t>(v);
    expect_punct(";");
    return f;
  }

  void expect_punct(const std::string& p) {
    Token t = lex_.next();
    if (t.kind != Token::kPunct || t.text != p) {
      lex_.fail("expected '" + p + "', got '" + t.text + "'", t.line);
    }
  }

  Lexer lex_;
};

// ---------------------------------------------------------------------------
// AST -> FormatDescriptor. Message references resolve lexically: the
// current message's nested definitions shadow the enclosing scopes, which
// shadow earlier top-level messages. Recursion is rejected (inline structs
// would be infinitely sized).
// ---------------------------------------------------------------------------

struct Scope {
  const std::vector<AstMessage>* messages;
  const Scope* parent;
};

class Builder {
 public:
  FormatPtr build_message(const AstMessage& msg, const Scope& enclosing) {
    if (!path_.insert(msg.name).second) {
      throw FormatError("recursive message type '" + msg.name +
                        "' cannot map to an inline struct");
    }
    if (path_.size() > FormatDescriptor::kMaxNesting) {
      throw FormatError("message nesting exceeds the supported depth (" +
                        std::to_string(FormatDescriptor::kMaxNesting) + ")");
    }
    Scope scope{&msg.nested, &enclosing};
    FormatBuilder b(msg.name);
    for (const AstField& f : msg.fields) {
      auto it = scalar_types().find(f.type);
      if (it != scalar_types().end()) {
        add_scalar(b, f, it->second);
      } else {
        const AstMessage* sub = resolve(f.type, &scope);
        if (sub == nullptr) {
          throw FormatError("proto parse error (line " + std::to_string(f.line) +
                            "): unknown type '" + f.type + "' for field '" + f.name + "'");
        }
        FormatPtr sub_fmt = build_message(*sub, scope);
        if (f.repeated) {
          b.add_uint(f.name + "_count", 4);
          b.add_dyn_array(f.name, sub_fmt, f.name + "_count");
        } else {
          b.add_struct(f.name, sub_fmt);
        }
        b.with_pb_field(f.number);
      }
    }
    path_.erase(msg.name);
    return b.build();
  }

 private:
  static void add_scalar(FormatBuilder& b, const AstField& f, const ScalarInfo& si) {
    if (f.repeated) {
      b.add_uint(f.name + "_count", 4);
      b.add_dyn_array(f.name, si.kind, si.kind == FieldKind::kString ? 8 : si.size,
                      f.name + "_count");
      b.with_pb_field(f.number | si.pb_flags);
      return;
    }
    switch (si.kind) {
      case FieldKind::kInt:
        b.add_int(f.name, si.size);
        break;
      case FieldKind::kUInt:
        b.add_uint(f.name, si.size);
        break;
      case FieldKind::kFloat:
        b.add_float(f.name, si.size);
        break;
      case FieldKind::kString:
        b.add_string(f.name);
        break;
      default:
        throw FormatError("unreachable scalar kind");
    }
    b.with_pb_field(f.number | si.pb_flags);
  }

  static const AstMessage* resolve(const std::string& type, const Scope* scope) {
    for (; scope != nullptr; scope = scope->parent) {
      for (const AstMessage& m : *scope->messages) {
        if (m.name == type) return &m;
      }
    }
    return nullptr;
  }

  std::set<std::string> path_;  // messages on the current build stack
};

}  // namespace

std::vector<FormatPtr> parse_proto(std::string_view source) {
  Parser p(source);
  std::vector<AstMessage> ast = p.parse_file();
  // Top-level scope: all top-level messages see each other (order-free
  // references between siblings, as in real proto files).
  Scope file_scope{&ast, nullptr};
  std::vector<FormatPtr> out;
  out.reserve(ast.size());
  for (const AstMessage& m : ast) {
    Builder b;
    out.push_back(b.build_message(m, file_scope));
  }
  return out;
}

FormatPtr parse_proto_message(std::string_view source, std::string_view message_name) {
  for (FormatPtr& fmt : parse_proto(source)) {
    if (fmt->name() == message_name) return std::move(fmt);
  }
  throw FormatError("proto source defines no top-level message '" + std::string(message_name) +
                    "'");
}

// ---------------------------------------------------------------------------
// Native-format annotation
// ---------------------------------------------------------------------------

namespace {

bool is_length_field_of_some_array(const FormatDescriptor& fmt, const std::string& name) {
  for (const auto& fd : fmt.fields()) {
    if (fd.kind == FieldKind::kDynArray && fd.length_field == name) return true;
  }
  return false;
}

}  // namespace

FormatPtr annotate_field_numbers(const FormatDescriptor& fmt) {
  FormatBuilder b(fmt.name(), fmt.struct_size());
  // Numbers already claimed explicitly are off-limits to auto-assignment:
  // without this, an explicit pb=2 followed by an unnumbered field would
  // hand that field 2 as well, and the format would then be rejected as a
  // duplicate by Encode/DecodePlan.
  std::set<uint32_t> taken;
  for (const auto& fd : fmt.fields()) {
    if (fd.pb_field != 0 && !is_length_field_of_some_array(fmt, fd.name)) {
      taken.insert(fd.pb_number());
    }
  }
  uint32_t next = 1;
  for (const auto& fd : fmt.fields()) {
    FieldDescriptor copy = fd;
    if (copy.element_format) {
      copy.element_format = annotate_field_numbers(*copy.element_format);
    }
    bool implied = is_length_field_of_some_array(fmt, fd.name);
    if (implied) {
      copy.pb_field = 0;
    } else if (fd.pb_field == 0) {
      while (taken.count(next) != 0) ++next;
      copy.pb_field = next;
      ++next;
    }
    // Rebuild through the bound-mode builder to preserve the original
    // offsets and struct size: records of `fmt` must remain valid records
    // of the annotated format.
    switch (copy.kind) {
      case FieldKind::kInt:
        b.add_int(copy.name, copy.size, copy.offset);
        break;
      case FieldKind::kUInt:
        b.add_uint(copy.name, copy.size, copy.offset);
        break;
      case FieldKind::kFloat:
        b.add_float(copy.name, copy.size, copy.offset);
        break;
      case FieldKind::kChar:
        b.add_char(copy.name, copy.offset);
        break;
      case FieldKind::kEnum:
        b.add_enum(copy.name, copy.enumerators, copy.offset);
        break;
      case FieldKind::kString:
        b.add_string(copy.name, copy.offset);
        break;
      case FieldKind::kStruct:
        b.add_struct(copy.name, copy.element_format, copy.offset);
        break;
      case FieldKind::kStaticArray:
        throw FormatError("field '" + copy.name +
                          "' is a static array, which has no protobuf mapping");
      case FieldKind::kDynArray:
        if (copy.element_format) {
          b.add_dyn_array(copy.name, copy.element_format, copy.length_field, copy.offset);
        } else {
          b.add_dyn_array(copy.name, copy.element_kind, copy.element_size, copy.length_field,
                          copy.offset);
        }
        break;
    }
    if (copy.default_int) b.with_default(*copy.default_int);
    if (copy.default_float) b.with_default(*copy.default_float);
    if (copy.default_string) b.with_default(*copy.default_string);
    if (copy.importance != 1) b.with_importance(copy.importance);
    if (copy.pb_field != 0) b.with_pb_field(copy.pb_field);
  }
  return b.build();
}

bool pbuf_encodable(const FormatDescriptor& fmt, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  std::set<uint32_t> numbers;
  for (const auto& fd : fmt.fields()) {
    bool implied = is_length_field_of_some_array(fmt, fd.name);
    if (implied) {
      if (fd.pb_field != 0) {
        return fail("length field '" + fd.name + "' must not carry a pb number");
      }
      continue;
    }
    if (fd.pb_field == 0) return fail("field '" + fd.name + "' has no pb number");
    if (!numbers.insert(fd.pb_number()).second) {
      return fail("duplicate pb number " + std::to_string(fd.pb_number()) + " on '" + fd.name +
                  "'");
    }
    if (fd.kind == FieldKind::kStaticArray) {
      return fail("field '" + fd.name + "' is a static array, which has no protobuf mapping");
    }
    if (fd.kind == FieldKind::kFloat && (fd.pb_field & pbio::kPbZigzag) != 0) {
      return fail("float field '" + fd.name + "' cannot be zigzag-encoded");
    }
    if (fd.element_format && !pbuf_encodable(*fd.element_format, why)) {
      if (why != nullptr) *why = "in '" + fd.name + "': " + *why;
      return false;
    }
    if (fd.kind == FieldKind::kDynArray && !fd.element_format &&
        fd.element_kind == FieldKind::kChar) {
      return fail("repeated char field '" + fd.name + "' has no protobuf mapping");
    }
  }
  return true;
}

}  // namespace morph::pbuf
