#include "fmtsvc/resolver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace morph::fmtsvc {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

uint64_t now_ms() { return obs::monotonic_ns() / 1'000'000; }

/// +/-50% jitter: uniform in [ms/2, 3*ms/2]. Per-thread PRNG so concurrent
/// fetches never contend (and never share a deterministic stream).
uint64_t jittered(uint64_t ms) {
  if (ms == 0) return 0;
  thread_local Rng rng(obs::monotonic_ns() ^ (0x9e3779b97f4a7c15ull * obs::thread_stripe()));
  return ms / 2 + rng.next_below(ms + 1);
}
}  // namespace

/// Internal atomics plus their registry mirrors. The resolve_total{result=}
/// family partitions resolves_total: every resolve() lands in exactly one
/// result bucket (joining another thread's flight counts as "stampede"),
/// which is the conservation law `morph-stat --check` asserts.
struct FormatResolver::Counters {
  std::atomic<uint64_t> resolves{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> negative_hits{0};
  std::atomic<uint64_t> fetched{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> lint_rejected{0};
  std::atomic<uint64_t> expired{0};
  std::atomic<uint64_t> evicted{0};
  std::atomic<uint64_t> stampede_joins{0};
  std::atomic<uint64_t> rpcs{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> published{0};

  obs::Counter& m_resolves = obs::metrics().counter("morph_fmtsvc_client_resolves_total");
  obs::Counter& m_cached =
      obs::metrics().counter("morph_fmtsvc_client_resolve_total{result=\"cached\"}");
  obs::Counter& m_negative =
      obs::metrics().counter("morph_fmtsvc_client_resolve_total{result=\"negative\"}");
  obs::Counter& m_fetched =
      obs::metrics().counter("morph_fmtsvc_client_resolve_total{result=\"fetched\"}");
  obs::Counter& m_failed =
      obs::metrics().counter("morph_fmtsvc_client_resolve_total{result=\"failed\"}");
  obs::Counter& m_lint_rejected =
      obs::metrics().counter("morph_fmtsvc_client_resolve_total{result=\"lint_rejected\"}");
  obs::Counter& m_stampede =
      obs::metrics().counter("morph_fmtsvc_client_resolve_total{result=\"stampede\"}");
  obs::Counter& m_expired =
      obs::metrics().counter("morph_fmtsvc_client_cache_evictions_total{reason=\"ttl\"}");
  obs::Counter& m_evicted =
      obs::metrics().counter("morph_fmtsvc_client_cache_evictions_total{reason=\"capacity\"}");
  obs::Counter& m_rpcs = obs::metrics().counter("morph_fmtsvc_client_rpcs_total");
  obs::Counter& m_retries = obs::metrics().counter("morph_fmtsvc_client_retries_total");
  obs::Counter& m_published = obs::metrics().counter("morph_fmtsvc_client_published_total");
  obs::Histogram& fetch_ns = obs::metrics().histogram("morph_fmtsvc_client_fetch_ns");
};

FormatResolver::FormatResolver(ResolverOptions options)
    : options_(std::move(options)), counters_(std::make_unique<Counters>()) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.cache_capacity < 1) options_.cache_capacity = 1;
}

FormatResolver::~FormatResolver() = default;

std::optional<core::ResolvedFormat> FormatResolver::resolve(uint64_t fingerprint) {
  counters_->resolves.fetch_add(1, kRelaxed);
  counters_->m_resolves.inc();

  bool negative = false;
  if (auto hit = cache_lookup(fingerprint, negative)) {
    counters_->cache_hits.fetch_add(1, kRelaxed);
    counters_->m_cached.inc();
    return hit;
  }
  if (negative) {
    counters_->negative_hits.fetch_add(1, kRelaxed);
    counters_->m_negative.inc();
    return std::nullopt;
  }

  // Single-flight: the first thread to miss becomes the fetcher; everyone
  // else blocks on its Flight and shares the result.
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(fingerprint);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      flights_.emplace(fingerprint, flight);
      owner = true;
    }
  }
  if (!owner) {
    counters_->stampede_joins.fetch_add(1, kRelaxed);
    counters_->m_stampede.inc();
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    return flight->result;
  }

  std::optional<core::ResolvedFormat> result = fetch_with_retries(fingerprint);
  cache_store(fingerprint, result);
  {
    // Unpublish the flight only after the cache holds the answer: a thread
    // arriving in between either joins the flight or hits the fresh entry.
    std::lock_guard<std::mutex> lock(flights_mutex_);
    flights_.erase(fingerprint);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
  return result;
}

size_t FormatResolver::prefetch(const std::vector<uint64_t>& fingerprints) {
  size_t resolved = 0;
  for (size_t begin = 0; begin < fingerprints.size(); begin += kMaxEntriesPerRequest) {
    Request req;
    req.op = Op::kFetchMulti;
    size_t end = std::min(fingerprints.size(), begin + kMaxEntriesPerRequest);
    req.fingerprints.assign(fingerprints.begin() + static_cast<ptrdiff_t>(begin),
                            fingerprints.begin() + static_cast<ptrdiff_t>(end));
    Reply rep;
    try {
      rep = rpc(req);
    } catch (const Error& e) {
      MORPH_LOG_WARN("fmtsvc") << "prefetch failed: " << e.what();
      return resolved;
    }
    for (ReplyItem& item : rep.items) {
      std::optional<core::ResolvedFormat> value;
      if (item.found) value = admit(std::move(item.entry));
      if (value) ++resolved;
      cache_store(item.fingerprint, std::move(value));
    }
  }
  return resolved;
}

bool FormatResolver::publish(const pbio::FormatPtr& fmt,
                             const std::vector<core::TransformSpec>& transforms) {
  Request req;
  req.op = Op::kRegister;
  req.entries.push_back(FormatEntry{fmt, transforms});
  try {
    Reply rep = rpc(req);
    if (rep.status != Status::kOk || rep.accepted == 0) {
      MORPH_LOG_WARN("fmtsvc") << "publish of '" << fmt->name()
                               << "' refused: " << status_name(rep.status);
      return false;
    }
    counters_->published.fetch_add(1, kRelaxed);
    counters_->m_published.inc();
    return true;
  } catch (const Error& e) {
    MORPH_LOG_WARN("fmtsvc") << "publish of '" << fmt->name() << "' failed: " << e.what();
    return false;
  }
}

std::vector<FormatEntry> FormatResolver::list() {
  Request req;
  req.op = Op::kList;
  Reply rep = rpc(req);  // propagate Error: list() is a diagnostic call
  std::vector<FormatEntry> out;
  out.reserve(rep.items.size());
  for (ReplyItem& item : rep.items) {
    if (item.found) out.push_back(std::move(item.entry));
  }
  return out;
}

void FormatResolver::flush_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
  lru_.clear();
}

ResolverStats FormatResolver::stats() const {
  ResolverStats s;
  s.resolves = counters_->resolves.load(kRelaxed);
  s.cache_hits = counters_->cache_hits.load(kRelaxed);
  s.negative_hits = counters_->negative_hits.load(kRelaxed);
  s.fetched = counters_->fetched.load(kRelaxed);
  s.failed = counters_->failed.load(kRelaxed);
  s.lint_rejected = counters_->lint_rejected.load(kRelaxed);
  s.expired = counters_->expired.load(kRelaxed);
  s.evicted = counters_->evicted.load(kRelaxed);
  s.stampede_joins = counters_->stampede_joins.load(kRelaxed);
  s.rpcs = counters_->rpcs.load(kRelaxed);
  s.retries = counters_->retries.load(kRelaxed);
  s.published = counters_->published.load(kRelaxed);
  return s;
}

std::optional<core::ResolvedFormat> FormatResolver::cache_lookup(uint64_t fingerprint,
                                                                 bool& negative) {
  negative = false;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(fingerprint);
  if (it == cache_.end()) return std::nullopt;
  if (now_ms() >= it->second.expires_at_ms) {
    counters_->expired.fetch_add(1, kRelaxed);
    counters_->m_expired.inc();
    lru_.erase(it->second.lru);
    cache_.erase(it);
    return std::nullopt;
  }
  cache_touch(fingerprint, it->second);
  if (it->second.negative) {
    negative = true;
    return std::nullopt;
  }
  return it->second.value;
}

void FormatResolver::cache_store(uint64_t fingerprint,
                                 std::optional<core::ResolvedFormat> value) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(fingerprint);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru);
    cache_.erase(it);
  }
  while (cache_.size() >= options_.cache_capacity && !lru_.empty()) {
    counters_->evicted.fetch_add(1, kRelaxed);
    counters_->m_evicted.inc();
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  CacheEntry entry;
  entry.negative = !value.has_value();
  if (value) entry.value = std::move(*value);
  entry.expires_at_ms =
      now_ms() + (entry.negative ? options_.negative_ttl_ms : options_.ttl_ms);
  lru_.push_front(fingerprint);
  entry.lru = lru_.begin();
  cache_.emplace(fingerprint, std::move(entry));
}

void FormatResolver::cache_touch(uint64_t fingerprint, CacheEntry& entry) {
  lru_.erase(entry.lru);
  lru_.push_front(fingerprint);
  entry.lru = lru_.begin();
}

std::optional<core::ResolvedFormat> FormatResolver::fetch_with_retries(uint64_t fingerprint) {
  const uint64_t deadline = now_ms() + options_.deadline_ms;
  uint64_t backoff = options_.base_backoff_ms;

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      counters_->retries.fetch_add(1, kRelaxed);
      counters_->m_retries.inc();
      obs::flight_record(obs::FlightKind::kResolverRetry, obs::current_trace().trace_id,
                         "fmtsvc: fetch of fingerprint " + std::to_string(fingerprint) +
                             " retrying (attempt " + std::to_string(attempt + 1) + "/" +
                             std::to_string(options_.max_attempts) + ", backoff " +
                             std::to_string(backoff) + " ms)");
      uint64_t now = now_ms();
      if (now >= deadline) break;
      uint64_t sleep_ms = std::min(jittered(backoff), deadline - now);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff = std::min(backoff * 2, options_.max_backoff_ms);
      if (now_ms() >= deadline) break;
    }
    Request req;
    req.op = Op::kFetch;
    req.fingerprints.push_back(fingerprint);
    try {
      const uint64_t t0 = obs::monotonic_ns();
      Reply rep = rpc(req);
      counters_->fetch_ns.record(obs::monotonic_ns() - t0);
      if (rep.status == Status::kOverloaded) {
        throw TransportError("fmtsvc: service overloaded");  // retryable
      }
      if (!rep.items.empty() && rep.items.front().found) {
        if (auto value = admit(std::move(rep.items.front().entry))) {
          counters_->fetched.fetch_add(1, kRelaxed);
          counters_->m_fetched.inc();
          return value;
        }
        counters_->lint_rejected.fetch_add(1, kRelaxed);
        counters_->m_lint_rejected.inc();
        return std::nullopt;
      }
      // Authoritative not-found: the service answered; retrying now would
      // only hammer it. The negative TTL owns the retry cadence.
      counters_->failed.fetch_add(1, kRelaxed);
      counters_->m_failed.inc();
      return std::nullopt;
    } catch (const Error& e) {
      MORPH_LOG_WARN("fmtsvc") << "fetch of " << fingerprint << " attempt " << (attempt + 1)
                               << "/" << options_.max_attempts << " failed: " << e.what();
    }
  }
  counters_->failed.fetch_add(1, kRelaxed);
  counters_->m_failed.inc();
  return std::nullopt;
}

Reply FormatResolver::rpc(Request& req) {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  counters_->rpcs.fetch_add(1, kRelaxed);
  counters_->m_rpcs.inc();
  try {
    if (link_ == nullptr) {
      link_ = transport::TcpLink::connect(options_.host, options_.port);
    }
    req.request_id = next_request_id_++;

    ByteBuffer payload;
    req.serialize(payload);
    ByteBuffer frame;
    transport::write_frame(frame, transport::FrameType::kFmtsvcRequest, payload.data(),
                           payload.size(), obs::current_trace().trace_id);
    link_->send(frame);

    // The assembler is per-RPC on purpose: exactly one request is in flight
    // per connection, and every abnormal exit below drops the link, so a
    // fresh RPC never inherits half a frame or a stale late reply.
    std::optional<Reply> got;
    transport::FrameAssembler assembler;
    link_->set_on_data([&](const uint8_t* data, size_t size) {
      assembler.feed(data, size, [&](transport::Frame& f) {
        if (f.type != transport::FrameType::kFmtsvcReply) {
          throw TransportError("fmtsvc: unexpected frame type from service");
        }
        ByteReader r(f.payload.data(), f.payload.size());
        Reply rep = Reply::deserialize(r);
        if (rep.request_id == req.request_id) got = std::move(rep);
        // A mismatched id is a stale reply from a timed-out predecessor on
        // a link we failed to drop; ignoring it would desynchronize —
        // impossible by construction, but cheap to keep honest:
        else throw TransportError("fmtsvc: reply id mismatch");
      });
    });
    const uint64_t io_deadline = now_ms() + static_cast<uint64_t>(options_.io_timeout_ms);
    while (!got) {
      uint64_t now = now_ms();
      if (now >= io_deadline) throw TransportError("fmtsvc: rpc timed out");
      int slice = static_cast<int>(std::min<uint64_t>(io_deadline - now, 50));
      if (!link_->pump(slice)) throw TransportError("fmtsvc: service closed connection");
    }
    link_->set_on_data(nullptr);
    return std::move(*got);
  } catch (...) {
    link_.reset();  // next attempt redials
    throw;
  }
}

std::optional<core::ResolvedFormat> FormatResolver::admit(FormatEntry entry) {
  if (options_.lint != core::LintPolicy::kOff) {
    core::LintReport rep = core::lint_resolved(*entry.format, entry.transforms);
    for (const auto& f : rep.findings) {
      if (f.severity >= core::LintSeverity::kWarning) {
        MORPH_LOG_WARN("fmtsvc") << "fetched '" << entry.format->name()
                                 << "': " << f.to_string();
      }
    }
    if (options_.lint == core::LintPolicy::kEnforce && !rep.ok()) {
      MORPH_LOG_WARN("fmtsvc") << "rejecting fetched '" << entry.format->name()
                               << "' under lint enforcement";
      return std::nullopt;
    }
  }
  return core::ResolvedFormat{std::move(entry.format), std::move(entry.transforms)};
}

}  // namespace morph::fmtsvc
