// Client-side format resolution against a FormatService.
//
// A FormatResolver is the process-wide bridge between receivers and the
// out-of-band format service. It implements core::FormatSource, so a
// Receiver plugs it in through ReceiverOptions::format_source and fetches
// the definition of an unseen fingerprint on first contact.
//
// Layers, hot to cold:
//   * TTL'd LRU cache: positive entries (format + transforms) live for
//     ttl_ms, negative entries ("the service does not know this
//     fingerprint" / "the service is unreachable") for negative_ttl_ms —
//     a stream of messages in an unknown format costs one RPC per
//     negative-TTL window, not one per message.
//   * Single-flight: N threads missing the same fingerprint concurrently
//     produce ONE fetch; the rest block on the flight and share its result.
//   * Retries: each fetch gets max_attempts tries under an overall
//     deadline_ms, with exponential backoff and +/-50% jitter between
//     attempts; a dead connection is dropped and redialed on the next try.
//
// publish() is the writer side: REGISTER a format (+ attached transforms)
// with the service, as MessagePort's meta-publisher hook or explicitly.
//
// Thread safety: every public method may be called from any thread. The
// cache and flight table use one mutex each; the connection is serialized
// by its own mutex (one RPC in flight per resolver — fetches are cold-path
// by design, and FETCH_MULTI batches the warm-up case).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/format_source.hpp"
#include "core/lint.hpp"
#include "fmtsvc/protocol.hpp"
#include "transport/framing.hpp"
#include "transport/tcp.hpp"

namespace morph::fmtsvc {

struct ResolverOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  size_t cache_capacity = 4096;    // LRU entries (positive + negative)
  uint64_t ttl_ms = 300'000;       // positive-entry lifetime
  uint64_t negative_ttl_ms = 2'000;

  int max_attempts = 3;            // tries per fetch
  uint64_t base_backoff_ms = 10;   // doubles per retry, +/-50% jitter
  uint64_t max_backoff_ms = 1'000;
  uint64_t deadline_ms = 2'000;    // overall budget per resolve()
  int io_timeout_ms = 500;         // per-attempt socket wait

  /// Audit fetched descriptors before they are handed to a receiver
  /// (mirrors the receiver's VerifyPolicy for transform code). kEnforce
  /// treats a descriptor with error-severity findings like a not-found.
  core::LintPolicy lint = core::LintPolicy::kWarn;
};

/// Point-in-time counter snapshot (see the matching morph_fmtsvc_client_*
/// registry metrics). resolves == cache_hits + negative_hits + fetched +
/// failed + lint_rejected + stampede_joins once the resolver is quiescent —
/// every resolve() lands in exactly one bucket, the conservation law
/// `morph-stat --check` asserts.
struct ResolverStats {
  uint64_t resolves = 0;       // resolve() calls
  uint64_t cache_hits = 0;     // served from a fresh positive entry
  uint64_t negative_hits = 0;  // served from a fresh negative entry
  uint64_t fetched = 0;        // RPC succeeded and returned the format
  uint64_t failed = 0;         // RPC exhausted retries/deadline or not-found
  uint64_t lint_rejected = 0;  // fetched but refused under LintPolicy::kEnforce
  uint64_t expired = 0;        // cache entries evicted by TTL
  uint64_t evicted = 0;        // cache entries evicted by LRU capacity
  uint64_t stampede_joins = 0; // resolve() calls that joined another flight
  uint64_t rpcs = 0;           // RPC attempts, all ops (fetch/prefetch/publish/list)
  uint64_t retries = 0;        // attempts after the first
  uint64_t published = 0;      // formats registered via publish()
};

class FormatResolver final : public core::FormatSource {
 public:
  explicit FormatResolver(ResolverOptions options);
  ~FormatResolver() override;

  FormatResolver(const FormatResolver&) = delete;
  FormatResolver& operator=(const FormatResolver&) = delete;

  /// Resolve one fingerprint (core::FormatSource). Blocking: worst case
  /// ~deadline_ms when the service is down and no negative entry exists.
  std::optional<core::ResolvedFormat> resolve(uint64_t fingerprint) override;

  /// Warm the cache for a batch of fingerprints with one FETCH_MULTI RPC.
  /// Unknown fingerprints get negative entries. Returns how many resolved.
  size_t prefetch(const std::vector<uint64_t>& fingerprints);

  /// REGISTER `fmt` (+ its transforms) with the service. Returns false when
  /// the service is unreachable or refused the entry — the caller's cue to
  /// fall back to inline meta-data frames.
  bool publish(const pbio::FormatPtr& fmt,
               const std::vector<core::TransformSpec>& transforms = {});

  /// Everything the service currently stores (one LIST RPC, no caching).
  std::vector<FormatEntry> list();

  /// Drop every cached entry (tests and operational cache-busting).
  void flush_cache();

  ResolverStats stats() const;
  const ResolverOptions& options() const { return options_; }

 private:
  struct CacheEntry {
    bool negative = false;
    core::ResolvedFormat value;        // valid when !negative
    uint64_t expires_at_ms = 0;
    std::list<uint64_t>::iterator lru; // position in lru_ (most recent front)
  };

  /// One in-flight fetch; latecomers block on the mutex/cv pair.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::optional<core::ResolvedFormat> result;
  };

  std::optional<core::ResolvedFormat> cache_lookup(uint64_t fingerprint, bool& negative);
  void cache_store(uint64_t fingerprint, std::optional<core::ResolvedFormat> value);
  void cache_touch(uint64_t fingerprint, CacheEntry& entry);

  /// The retry loop around one FETCH. Returns nullopt on miss or failure.
  std::optional<core::ResolvedFormat> fetch_with_retries(uint64_t fingerprint);

  /// One request/reply RPC over the (lazily dialed) connection; assigns the
  /// request id. Throws TransportError/DecodeError on any failure (the
  /// connection is dropped first, so the next attempt redials); callers
  /// retry or report.
  Reply rpc(Request& req);

  /// Accept a fetched entry: lint per policy; nullopt when rejected.
  std::optional<core::ResolvedFormat> admit(FormatEntry entry);

  ResolverOptions options_;

  std::mutex cache_mutex_;
  std::unordered_map<uint64_t, CacheEntry> cache_;
  std::list<uint64_t> lru_;  // front = most recently used

  std::mutex flights_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<Flight>> flights_;

  std::mutex conn_mutex_;
  std::unique_ptr<transport::TcpLink> link_;
  uint64_t next_request_id_ = 1;

  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace morph::fmtsvc
