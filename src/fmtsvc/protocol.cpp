#include "fmtsvc/protocol.hpp"

#include "common/error.hpp"

namespace morph::fmtsvc {

namespace {

uint8_t read_op(ByteReader& in, const char* what) {
  uint8_t op = in.read_u8();
  if (op < static_cast<uint8_t>(Op::kRegister) || op > static_cast<uint8_t>(Op::kList)) {
    throw DecodeError(std::string("fmtsvc: bad op in ") + what);
  }
  return op;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kRegister: return "register";
    case Op::kFetch: return "fetch";
    case Op::kFetchMulti: return "fetch_multi";
    case Op::kList: return "list";
  }
  return "?";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kRejected: return "rejected";
    case Status::kOverloaded: return "overloaded";
  }
  return "?";
}

void FormatEntry::serialize(ByteBuffer& out) const {
  if (!format) throw Error("fmtsvc: cannot serialize null format entry");
  if (transforms.size() > kMaxTransformsPerEntry) {
    throw Error("fmtsvc: too many transforms on one entry");
  }
  format->serialize(out);
  out.append_u16(static_cast<uint16_t>(transforms.size()));
  for (const auto& t : transforms) t.serialize(out);
}

FormatEntry FormatEntry::deserialize(ByteReader& in) {
  FormatEntry e;
  e.format = pbio::FormatDescriptor::deserialize(in);
  uint16_t n = in.read_u16();
  if (n > kMaxTransformsPerEntry) throw DecodeError("fmtsvc: too many transforms on one entry");
  e.transforms.reserve(n);
  for (uint16_t i = 0; i < n; ++i) e.transforms.push_back(core::TransformSpec::deserialize(in));
  return e;
}

void Request::serialize(ByteBuffer& out) const {
  out.append_u8(static_cast<uint8_t>(op));
  out.append_u64(request_id);
  switch (op) {
    case Op::kRegister: {
      if (entries.empty() || entries.size() > kMaxEntriesPerRequest) {
        throw Error("fmtsvc: bad register entry count");
      }
      out.append_u16(static_cast<uint16_t>(entries.size()));
      for (const auto& e : entries) e.serialize(out);
      break;
    }
    case Op::kFetch: {
      if (fingerprints.size() != 1) throw Error("fmtsvc: fetch wants exactly one fingerprint");
      out.append_u64(fingerprints.front());
      break;
    }
    case Op::kFetchMulti: {
      if (fingerprints.empty() || fingerprints.size() > kMaxEntriesPerRequest) {
        throw Error("fmtsvc: bad fetch_multi fingerprint count");
      }
      out.append_u16(static_cast<uint16_t>(fingerprints.size()));
      for (uint64_t fp : fingerprints) out.append_u64(fp);
      break;
    }
    case Op::kList:
      break;
  }
}

Request Request::deserialize(ByteReader& in) {
  Request r;
  r.op = static_cast<Op>(read_op(in, "request"));
  r.request_id = in.read_u64();
  switch (r.op) {
    case Op::kRegister: {
      uint16_t n = in.read_u16();
      if (n == 0 || n > kMaxEntriesPerRequest) throw DecodeError("fmtsvc: bad register count");
      r.entries.reserve(n);
      for (uint16_t i = 0; i < n; ++i) r.entries.push_back(FormatEntry::deserialize(in));
      break;
    }
    case Op::kFetch:
      r.fingerprints.push_back(in.read_u64());
      break;
    case Op::kFetchMulti: {
      uint16_t n = in.read_u16();
      if (n == 0 || n > kMaxEntriesPerRequest) throw DecodeError("fmtsvc: bad fetch_multi count");
      r.fingerprints.reserve(n);
      for (uint16_t i = 0; i < n; ++i) r.fingerprints.push_back(in.read_u64());
      break;
    }
    case Op::kList:
      break;
  }
  if (!in.at_end()) throw DecodeError("fmtsvc: trailing bytes after request");
  return r;
}

void Reply::serialize(ByteBuffer& out) const {
  out.append_u8(static_cast<uint8_t>(op));
  out.append_u64(request_id);
  out.append_u8(static_cast<uint8_t>(status));
  if (op == Op::kRegister) {
    out.append_u32(accepted);
    return;
  }
  if (items.size() > kMaxEntriesPerRequest) throw Error("fmtsvc: too many reply items");
  out.append_u16(static_cast<uint16_t>(items.size()));
  for (const auto& item : items) {
    out.append_u64(item.fingerprint);
    out.append_u8(item.found ? 1 : 0);
    if (item.found) item.entry.serialize(out);
  }
}

Reply Reply::deserialize(ByteReader& in) {
  Reply r;
  r.op = static_cast<Op>(read_op(in, "reply"));
  r.request_id = in.read_u64();
  uint8_t status = in.read_u8();
  if (status > static_cast<uint8_t>(Status::kOverloaded)) {
    throw DecodeError("fmtsvc: bad reply status");
  }
  r.status = static_cast<Status>(status);
  if (r.op == Op::kRegister) {
    r.accepted = in.read_u32();
  } else {
    uint16_t n = in.read_u16();
    if (n > kMaxEntriesPerRequest) throw DecodeError("fmtsvc: too many reply items");
    r.items.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      ReplyItem item;
      item.fingerprint = in.read_u64();
      uint8_t found = in.read_u8();
      if (found > 1) throw DecodeError("fmtsvc: bad reply found flag");
      item.found = found != 0;
      if (item.found) item.entry = FormatEntry::deserialize(in);
      r.items.push_back(std::move(item));
    }
  }
  if (!in.at_end()) throw DecodeError("fmtsvc: trailing bytes after reply");
  return r;
}

}  // namespace morph::fmtsvc
