#include "fmtsvc/store.hpp"

#include <unistd.h>

#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace morph::fmtsvc {

FormatStore::~FormatStore() {
  MutexLock lock(spill_mutex_);
  if (spill_ != nullptr) std::fclose(spill_);
}

bool FormatStore::put(const FormatEntry& entry) {
  if (!entry.format) throw Error("fmtsvc: cannot store null format");
  uint64_t fp = entry.format->fingerprint();
  Shard& shard = shard_for(fp);
  if (shard.formats.by_fingerprint(fp) != nullptr) {
    // Idempotent re-registration; register_format below would dedup too,
    // but checking first keeps the transform map first-writer-wins.
    shard.formats.register_format(entry.format);  // throws on a collision
    return false;
  }
  {
    WriterLock lock(shard.tmutex);
    shard.transforms[fp] = entry.transforms;
  }
  // Publish the format last: a concurrent get() that sees the format also
  // sees its transforms (the registry store is a release, by_fingerprint an
  // acquire).
  shard.formats.register_format(entry.format);
  spill_append(entry);
  return true;
}

std::optional<FormatEntry> FormatStore::get(uint64_t fingerprint) const {
  const Shard& shard = shard_for(fingerprint);
  pbio::FormatPtr fmt = shard.formats.by_fingerprint(fingerprint);
  if (fmt == nullptr) return std::nullopt;
  FormatEntry e;
  e.format = std::move(fmt);
  {
    ReaderLock lock(shard.tmutex);
    auto it = shard.transforms.find(fingerprint);
    if (it != shard.transforms.end()) e.transforms = it->second;
  }
  return e;
}

std::vector<FormatEntry> FormatStore::list() const {
  std::vector<FormatEntry> out;
  for (const Shard& shard : shards_) {
    for (pbio::FormatPtr& fmt : shard.formats.all()) {
      FormatEntry e;
      e.format = std::move(fmt);
      {
        ReaderLock lock(shard.tmutex);
        auto it = shard.transforms.find(e.format->fingerprint());
        if (it != shard.transforms.end()) e.transforms = it->second;
      }
      out.push_back(std::move(e));
    }
  }
  return out;
}

size_t FormatStore::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) n += shard.formats.size();
  return n;
}

size_t FormatStore::attach_spill(const std::string& path) {
  MutexLock lock(spill_mutex_);
  if (spill_ != nullptr) throw Error("fmtsvc: spill already attached");

  size_t replayed = 0;
  long valid_end = 0;   // last whole-record boundary; the file is cut back
  bool damaged = false; // here so post-crash appends stay replayable
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    std::vector<uint8_t> blob;
    for (;;) {
      uint32_t len = 0;
      if (std::fread(&len, sizeof len, 1, in) != 1) break;  // clean EOF
      if (len == 0 || len > (64u << 20)) {
        MORPH_LOG_WARN("fmtsvc") << "spill '" << path << "': bad record length " << len
                                 << ", truncating tail";
        damaged = true;
        break;
      }
      blob.resize(len);
      if (std::fread(blob.data(), 1, len, in) != len) {
        MORPH_LOG_WARN("fmtsvc") << "spill '" << path << "': truncated record, truncating tail";
        damaged = true;
        break;
      }
      valid_end = std::ftell(in);
      try {
        ByteReader r(blob.data(), blob.size());
        FormatEntry e = FormatEntry::deserialize(r);
        uint64_t fp = e.format->fingerprint();
        Shard& shard = shard_for(fp);
        if (shard.formats.by_fingerprint(fp) == nullptr) {
          {
            WriterLock tl(shard.tmutex);
            shard.transforms[fp] = std::move(e.transforms);
          }
          shard.formats.register_format(e.format);
          ++replayed;
        }
      } catch (const Error& e) {
        MORPH_LOG_WARN("fmtsvc") << "spill '" << path << "': skipping bad record: " << e.what();
      }
    }
    std::fclose(in);
    if (damaged && ::truncate(path.c_str(), valid_end) != 0) {
      throw Error("fmtsvc: cannot truncate damaged spill '" + path + "'");
    }
  }

  spill_ = std::fopen(path.c_str(), "ab");
  if (spill_ == nullptr) throw Error("fmtsvc: cannot open spill '" + path + "' for append");
  return replayed;
}

void FormatStore::spill_append(const FormatEntry& entry) {
  MutexLock lock(spill_mutex_);
  if (spill_ == nullptr) return;
  ByteBuffer blob;
  entry.serialize(blob);
  uint32_t len = static_cast<uint32_t>(blob.size());
  if (std::fwrite(&len, sizeof len, 1, spill_) != 1 ||
      std::fwrite(blob.data(), 1, blob.size(), spill_) != blob.size()) {
    MORPH_LOG_WARN("fmtsvc") << "spill append failed; durability degraded";
  }
  std::fflush(spill_);
}

}  // namespace morph::fmtsvc
