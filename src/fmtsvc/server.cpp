#include "fmtsvc/server.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/framing.hpp"

namespace morph::fmtsvc {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

/// Process-wide service metrics (one registry entry per op/status, shared
/// by every FormatService instance; per-instance numbers via stats()).
struct SvcMetrics {
  obs::Counter& req_register =
      obs::metrics().counter("morph_fmtsvc_requests_total{op=\"register\"}");
  obs::Counter& req_fetch = obs::metrics().counter("morph_fmtsvc_requests_total{op=\"fetch\"}");
  obs::Counter& req_fetch_multi =
      obs::metrics().counter("morph_fmtsvc_requests_total{op=\"fetch_multi\"}");
  obs::Counter& req_list = obs::metrics().counter("morph_fmtsvc_requests_total{op=\"list\"}");
  obs::Counter& not_found = obs::metrics().counter("morph_fmtsvc_server_not_found_total");
  obs::Counter& lint_rejected =
      obs::metrics().counter("morph_fmtsvc_server_lint_rejected_total");
  obs::Counter& audit_rejected =
      obs::metrics().counter("morph_fmtsvc_server_audit_rejected_total");
  obs::Counter& audit_warned =
      obs::metrics().counter("morph_fmtsvc_server_audit_warned_total");
  obs::Counter& bad_frames = obs::metrics().counter("morph_fmtsvc_server_bad_frames_total");
  obs::Gauge& store_formats = obs::metrics().gauge("morph_fmtsvc_store_formats");
  obs::Gauge& live_conns = obs::metrics().gauge("morph_fmtsvc_server_connections");
  obs::Histogram& handle_ns = obs::metrics().histogram("morph_span_ns{span=\"fmtsvc.handle\"}");
};

SvcMetrics& svc() {
  static SvcMetrics& m = *new SvcMetrics();  // leaked: outlives static dtors
  return m;
}
}  // namespace

struct FormatService::Conn {
  std::unique_ptr<transport::TcpLink> link;
  std::thread thread;
  std::atomic<bool> done{false};
};

FormatService::FormatService(FormatStore& store, ServiceOptions options)
    : store_(store), options_(options), listener_(options.port) {
  if (options_.transport == transport::TransportMode::kReactor) {
    transport::ReactorOptions ropts;
    ropts.loops = options_.loops;
    ropts.idle_timeout_ms = options_.idle_timeout_ms;
    ropts.max_connections = options_.max_connections;
    reactor_ = std::make_unique<transport::ReactorServer>(
        listener_, ropts,
        [this](transport::AsyncTcpLink& link) {
          counters_.connections.fetch_add(1, kRelaxed);
          svc().live_conns.add(1);
          serve_reactor_conn(link);
        },
        [](transport::AsyncTcpLink&) { svc().live_conns.add(-1); });
  } else {
    acceptor_ = std::thread([this] { accept_loop(); });
  }
}

FormatService::~FormatService() {
  stop_.store(true, kRelaxed);
  reactor_.reset();  // stops the reactor's acceptor and loops, closes conns
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  // Handlers poll in <=100ms slices and re-check stop_, so joining suffices;
  // closing their links from here would race the handler's own use of them.
  for (auto& conn : conns_) conn->thread.join();
  conns_.clear();
}

ServiceStats FormatService::stats() const {
  ServiceStats s;
  s.connections = counters_.connections.load(kRelaxed);
  s.requests = counters_.requests.load(kRelaxed);
  s.registered = counters_.registered.load(kRelaxed);
  s.lint_rejected = counters_.lint_rejected.load(kRelaxed);
  s.audit_rejected = counters_.audit_rejected.load(kRelaxed);
  s.audit_warned = counters_.audit_warned.load(kRelaxed);
  s.not_found = counters_.not_found.load(kRelaxed);
  s.bad_frames = counters_.bad_frames.load(kRelaxed);
  return s;
}

void FormatService::reap_finished() {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) {
    if (!c->done.load(kRelaxed)) return false;
    c->thread.join();
    return true;
  });
}

void FormatService::accept_loop() {
  while (!stop_.load(kRelaxed)) {
    std::unique_ptr<transport::TcpLink> link;
    try {
      link = listener_.accept(100);
    } catch (const Error& e) {
      MORPH_LOG_WARN("fmtsvc") << "accept failed: " << e.what();
      continue;
    }
    if (link == nullptr) continue;
    reap_finished();
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (conns_.size() >= options_.max_connections) {
      MORPH_LOG_WARN("fmtsvc") << "connection limit reached, refusing client";
      continue;  // link closes on scope exit; client sees EOF
    }
    counters_.connections.fetch_add(1, kRelaxed);
    auto conn = std::make_unique<Conn>();
    conn->link = std::move(link);
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      svc().live_conns.add(1);
      serve_conn(*raw);
      svc().live_conns.add(-1);
      raw->done.store(true, kRelaxed);
    });
    conns_.push_back(std::move(conn));
  }
}

void FormatService::serve_conn(Conn& conn) {
  transport::FrameAssembler assembler;
  conn.link->set_on_data([&](const uint8_t* data, size_t size) {
    assembler.feed(data, size, [&](transport::Frame& frame) {
      if (frame.type != transport::FrameType::kFmtsvcRequest) {
        throw TransportError("fmtsvc: unexpected frame type on service connection");
      }
      // Adopt the client's trace id so server-side spans correlate with the
      // resolver's fetch spans across the wire.
      obs::TraceScope trace_scope(obs::TraceContext{frame.trace_id});
      obs::TraceSpan span("fmtsvc.handle", &svc().handle_ns);
      ByteReader r(frame.payload.data(), frame.payload.size());
      Reply reply = handle(Request::deserialize(r));
      ByteBuffer payload;
      reply.serialize(payload);
      ByteBuffer out;
      transport::write_frame(out, transport::FrameType::kFmtsvcReply, payload.data(),
                             payload.size(), frame.trace_id);
      conn.link->send(out);
    });
  });
  try {
    while (!stop_.load(kRelaxed) && conn.link->pump(100)) {
    }
  } catch (const Error& e) {
    // Malformed frame or request, or the peer vanished mid-write: this
    // connection is done, the service keeps running.
    counters_.bad_frames.fetch_add(1, kRelaxed);
    svc().bad_frames.inc();
    MORPH_LOG_WARN("fmtsvc") << "connection dropped: " << e.what();
  }
  conn.link->close();
}

void FormatService::serve_reactor_conn(transport::AsyncTcpLink& link) {
  // Per-connection protocol state lives in the link's user slot and dies on
  // the owning loop's thread at close. handle() is already thread-safe
  // (sharded store, atomic counters), so loops never coordinate.
  auto assembler = std::make_shared<transport::FrameAssembler>();
  link.set_user(assembler);
  transport::AsyncTcpLink* l = &link;
  link.set_on_data([this, l, a = assembler.get()](const uint8_t* data, size_t size) {
    try {
      a->feed(data, size, [this, l](transport::Frame& frame) {
        if (frame.type != transport::FrameType::kFmtsvcRequest) {
          throw TransportError("fmtsvc: unexpected frame type on service connection");
        }
        obs::TraceScope trace_scope(obs::TraceContext{frame.trace_id});
        obs::TraceSpan span("fmtsvc.handle", &svc().handle_ns);
        ByteReader r(frame.payload.data(), frame.payload.size());
        Reply reply = handle(Request::deserialize(r));
        ByteBuffer payload;
        reply.serialize(payload);
        ByteBuffer out;
        transport::write_frame(out, transport::FrameType::kFmtsvcReply, payload.data(),
                               payload.size(), frame.trace_id);
        l->send(out);
      });
    } catch (const Error& e) {
      // Same containment as the threaded path: a malformed frame costs its
      // own connection and a counter bump, never the service.
      counters_.bad_frames.fetch_add(1, kRelaxed);
      svc().bad_frames.inc();
      MORPH_LOG_WARN("fmtsvc") << "connection dropped: " << e.what();
      l->close();
    }
  });
}

Reply FormatService::handle(const Request& req) {
  counters_.requests.fetch_add(1, kRelaxed);
  Reply reply;
  reply.op = req.op;
  reply.request_id = req.request_id;

  switch (req.op) {
    case Op::kRegister: {
      svc().req_register.inc();
      for (const auto& entry : req.entries) {
        if (options_.lint != core::LintPolicy::kOff) {
          core::LintReport rep = core::lint_resolved(*entry.format, entry.transforms);
          for (const auto& f : rep.findings) {
            if (f.severity >= core::LintSeverity::kWarning) {
              MORPH_LOG_WARN("fmtsvc")
                  << "register '" << entry.format->name() << "': " << f.to_string();
            }
          }
          if (options_.lint == core::LintPolicy::kEnforce && !rep.ok()) {
            counters_.lint_rejected.fetch_add(1, kRelaxed);
            svc().lint_rejected.inc();
            reply.status = Status::kRejected;
            continue;  // reject this entry, keep processing the rest
          }
        }
        if (options_.audit != analysis::AuditPolicy::kOff && entry.format != nullptr) {
          // Audit the candidate against the current store contents plus the
          // declared live readers. REGISTERs are control-plane rare, so
          // rebuilding the universe per entry is fine — and it guarantees
          // the gate sees entries accepted earlier in this same request.
          analysis::AuditUniverse universe;
          for (const FormatEntry& stored : store_.list()) {
            universe.add(stored.format, stored.transforms);
          }
          for (uint64_t fp : options_.live_readers) universe.declare_live(fp);
          auto findings = analysis::audit_candidate(universe, entry.format, entry.transforms);
          bool breaking = false;
          for (const auto& f : findings) {
            if (f.severity >= core::LintSeverity::kWarning) {
              MORPH_LOG_WARN("fmtsvc")
                  << "register '" << entry.format->name() << "': " << f.to_string();
            }
            breaking = breaking || f.severity == core::LintSeverity::kError;
          }
          if (breaking) {
            if (options_.audit == analysis::AuditPolicy::kEnforce) {
              counters_.audit_rejected.fetch_add(1, kRelaxed);
              svc().audit_rejected.inc();
              reply.status = Status::kRejected;
              continue;
            }
            counters_.audit_warned.fetch_add(1, kRelaxed);
            svc().audit_warned.inc();
          }
        }
        if (store_.put(entry)) counters_.registered.fetch_add(1, kRelaxed);
        ++reply.accepted;
      }
      svc().store_formats.set(static_cast<double>(store_.size()));
      break;
    }
    case Op::kFetch:
    case Op::kFetchMulti: {
      (req.op == Op::kFetch ? svc().req_fetch : svc().req_fetch_multi).inc();
      for (uint64_t fp : req.fingerprints) {
        ReplyItem item;
        item.fingerprint = fp;
        if (auto entry = store_.get(fp)) {
          item.found = true;
          item.entry = std::move(*entry);
        } else {
          counters_.not_found.fetch_add(1, kRelaxed);
          svc().not_found.inc();
          if (req.op == Op::kFetch) reply.status = Status::kNotFound;
        }
        reply.items.push_back(std::move(item));
      }
      break;
    }
    case Op::kList: {
      svc().req_list.inc();
      for (FormatEntry& entry : store_.list()) {
        if (reply.items.size() >= kMaxEntriesPerRequest) break;  // protocol cap
        ReplyItem item;
        item.fingerprint = entry.format->fingerprint();
        item.found = true;
        item.entry = std::move(entry);
        reply.items.push_back(std::move(item));
      }
      break;
    }
  }
  return reply;
}

}  // namespace morph::fmtsvc
