// Format-service wire protocol: the request/reply payloads carried in
// FrameType::kFmtsvcRequest / kFmtsvcReply frames.
//
// The service implements PBIO's third-party format server: writers REGISTER
// format descriptors (plus the transform specs they associate with them),
// readers FETCH them by 64-bit identity fingerprint when a data frame
// references a format they have never seen. All payloads are little-endian
// and bounds-checked through ByteReader, so a truncated or hostile frame
// throws DecodeError before any oversized allocation (entry counts are
// capped; the frame layer separately caps total size at kMaxFrameBytes).
//
// Request payload:
//   [u8 op][u64 request_id][op-specific body]
//     kRegister    [u16 count] count x FormatEntry
//     kFetch       [u64 fingerprint]
//     kFetchMulti  [u16 count] count x [u64 fingerprint]
//     kList        (empty)
// Reply payload:
//   [u8 op][u64 request_id][u8 status][op-specific body]
//     kRegister    [u32 accepted]
//     kFetch/kFetchMulti/kList
//                  [u16 count] count x [u64 fingerprint][u8 found]
//                              [FormatEntry if found]
//
// FormatEntry: [serialized FormatDescriptor][u16 n] n x serialized
// TransformSpec. Requests and replies echo the id so a client can pipeline
// and match replies out of order; the trace id travels in the frame header.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "core/transform.hpp"
#include "pbio/format.hpp"

namespace morph::fmtsvc {

enum class Op : uint8_t {
  kRegister = 1,
  kFetch = 2,
  kFetchMulti = 3,
  kList = 4,
};

enum class Status : uint8_t {
  kOk = 0,
  kNotFound = 1,   // kFetch only: the one requested fingerprint is unknown
  kRejected = 2,   // kRegister under LintPolicy::kEnforce: lint errors
  kOverloaded = 3, // server refused the request (shedding load)
};

const char* op_name(Op op);
const char* status_name(Status s);

/// Caps on repeated elements, enforced by both serializer and parser. Far
/// above any real use; they exist so a hostile count can never drive an
/// allocation bigger than the frame that carried it.
constexpr size_t kMaxEntriesPerRequest = 1024;
constexpr size_t kMaxTransformsPerEntry = 64;

/// One format plus the transform specs its writer attached to it.
struct FormatEntry {
  pbio::FormatPtr format;
  std::vector<core::TransformSpec> transforms;

  void serialize(ByteBuffer& out) const;
  static FormatEntry deserialize(ByteReader& in);
};

struct Request {
  Op op = Op::kFetch;
  uint64_t request_id = 0;
  std::vector<FormatEntry> entries;       // kRegister
  std::vector<uint64_t> fingerprints;     // kFetch (exactly 1) / kFetchMulti

  void serialize(ByteBuffer& out) const;
  static Request deserialize(ByteReader& in);
};

struct ReplyItem {
  uint64_t fingerprint = 0;
  bool found = false;
  FormatEntry entry;  // valid only when found
};

struct Reply {
  Op op = Op::kFetch;
  uint64_t request_id = 0;
  Status status = Status::kOk;
  uint32_t accepted = 0;         // kRegister
  std::vector<ReplyItem> items;  // fetch/list ops

  void serialize(ByteBuffer& out) const;
  static Reply deserialize(ByteReader& in);
};

}  // namespace morph::fmtsvc
