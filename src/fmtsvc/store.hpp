// Server-side format store: the catalog a FormatService serves from.
//
// Sharded by fingerprint; each shard is a FormatRegistry (reusing its
// copy-on-write snapshots, so fetches are lock-free no matter how many
// client threads hammer the store) plus a small shared-mutex-guarded map
// for the transform specs attached to each format.
//
// Restart durability is an optional append-only spill file: every accepted
// entry is appended as one length-prefixed record, and attach_spill()
// replays existing records before the service starts answering. The spill
// is an operational convenience, not a database — a truncated tail (crash
// mid-append) is detected and cut back to the last whole record, so later
// appends stay replayable; compaction is simply rewriting the file from a
// dump.
#pragma once

#include <array>
#include <cstdio>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "fmtsvc/protocol.hpp"
#include "pbio/registry.hpp"

namespace morph::fmtsvc {

class FormatStore {
 public:
  FormatStore() = default;
  ~FormatStore();

  FormatStore(const FormatStore&) = delete;
  FormatStore& operator=(const FormatStore&) = delete;

  /// Insert one entry. Returns true when the format was new (its transforms
  /// are adopted), false when the fingerprint was already present (the
  /// store keeps the first registration; re-registering an identical format
  /// is the idempotent common case, and FormatRegistry throws on a genuine
  /// fingerprint collision). New entries are appended to the spill when one
  /// is attached.
  bool put(const FormatEntry& entry);

  /// Fetch by fingerprint. Lock-free on the format itself.
  std::optional<FormatEntry> get(uint64_t fingerprint) const;

  /// Every stored entry, in unspecified order.
  std::vector<FormatEntry> list() const;

  size_t size() const;

  /// Open (creating if absent) an append-only spill file, replay any
  /// records already in it, and append every future put(). Throws Error on
  /// an unopenable path. Call before the store is shared with a service.
  /// Returns the number of entries replayed.
  size_t attach_spill(const std::string& path);

 private:
  static constexpr size_t kShards = 16;  // power of two

  struct Shard {
    pbio::FormatRegistry formats;
    mutable SharedMutex tmutex;
    std::unordered_map<uint64_t, std::vector<core::TransformSpec>> transforms
        MORPH_GUARDED_BY(tmutex);
  };

  Shard& shard_for(uint64_t fp) { return shards_[(fp ^ (fp >> 32)) & (kShards - 1)]; }
  const Shard& shard_for(uint64_t fp) const {
    return shards_[(fp ^ (fp >> 32)) & (kShards - 1)];
  }

  void spill_append(const FormatEntry& entry);

  std::array<Shard, kShards> shards_;
  Mutex spill_mutex_;  // serializes appends and guards spill_
  std::FILE* spill_ MORPH_GUARDED_BY(spill_mutex_) = nullptr;
};

}  // namespace morph::fmtsvc
