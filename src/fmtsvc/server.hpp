// Networked format-metadata service: the paper's third-party format server.
//
// Accepts TCP connections on loopback (TcpListener binds 127.0.0.1) and
// answers fmtsvc protocol requests against a FormatStore. One acceptor
// thread plus one thread per live connection: connections are long-lived
// (a resolver keeps one open and pipelines fetches over it) and few — the
// per-process resolvers of the attached applications, not the data plane.
//
// Failure containment: a malformed frame or request kills only its own
// connection; the acceptor and every other connection keep serving. Lint
// policy mirrors the receiver's VerifyPolicy: under kEnforce a REGISTER
// whose descriptor has error-severity lint findings is answered with
// Status::kRejected (counted in morph_fmtsvc_server_lint_rejected_total)
// and nothing enters the store.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/lint.hpp"
#include "fmtsvc/store.hpp"
#include "transport/tcp.hpp"

namespace morph::fmtsvc {

struct ServiceOptions {
  uint16_t port = 0;  // 0 picks an ephemeral port; read back with port()
  core::LintPolicy lint = core::LintPolicy::kWarn;
  /// Maximum simultaneous connections; further accepts are closed
  /// immediately (the client sees EOF and retries per its backoff).
  size_t max_connections = 64;
};

struct ServiceStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t registered = 0;      // formats accepted into the store
  uint64_t lint_rejected = 0;   // REGISTER entries refused under kEnforce
  uint64_t not_found = 0;       // FETCH fingerprints the store lacked
  uint64_t bad_frames = 0;      // connections killed by malformed input
};

class FormatService {
 public:
  /// Start serving `store` (which must outlive the service) immediately.
  explicit FormatService(FormatStore& store, ServiceOptions options = {});
  ~FormatService();

  FormatService(const FormatService&) = delete;
  FormatService& operator=(const FormatService&) = delete;

  uint16_t port() const { return listener_.port(); }
  ServiceStats stats() const;

 private:
  struct Conn;

  void accept_loop();
  void serve_conn(Conn& conn);
  Reply handle(const Request& req);
  void reap_finished();

  FormatStore& store_;
  ServiceOptions options_;
  transport::TcpListener listener_;
  std::atomic<bool> stop_{false};

  struct Counters {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> registered{0};
    std::atomic<uint64_t> lint_rejected{0};
    std::atomic<uint64_t> not_found{0};
    std::atomic<uint64_t> bad_frames{0};
  };
  mutable Counters counters_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread acceptor_;  // initialized last: serving starts after members
};

}  // namespace morph::fmtsvc
