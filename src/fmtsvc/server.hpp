// Networked format-metadata service: the paper's third-party format server.
//
// Accepts TCP connections on loopback (TcpListener binds 127.0.0.1) and
// answers fmtsvc protocol requests against a FormatStore. One acceptor
// thread plus one thread per live connection: connections are long-lived
// (a resolver keeps one open and pipelines fetches over it) and few — the
// per-process resolvers of the attached applications, not the data plane.
//
// Failure containment: a malformed frame or request kills only its own
// connection; the acceptor and every other connection keep serving. Lint
// policy mirrors the receiver's VerifyPolicy: under kEnforce a REGISTER
// whose descriptor has error-severity lint findings is answered with
// Status::kRejected (counted in morph_fmtsvc_server_lint_rejected_total)
// and nothing enters the store.
//
// Beyond the per-entry lint, the service can run the fleet-wide evolution
// audit (analysis/audit.hpp) on every REGISTER: the candidate revision is
// checked against everything already in the store plus the declared live
// readers. Under AuditPolicy::kEnforce a revision that would strand a live
// peer — or reach one only through a lossy chain — is rejected before it
// enters the store; under kWarn it is accepted but counted and logged.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/audit.hpp"
#include "core/lint.hpp"
#include "fmtsvc/store.hpp"
#include "transport/reactor.hpp"
#include "transport/tcp.hpp"

namespace morph::fmtsvc {

struct ServiceOptions {
  uint16_t port = 0;  // 0 picks an ephemeral port; read back with port()
  core::LintPolicy lint = core::LintPolicy::kWarn;
  /// Evolution-audit gate on REGISTER (see analysis/audit.hpp). Off by
  /// default: the audit only bites when the operator declares live readers.
  analysis::AuditPolicy audit = analysis::AuditPolicy::kOff;
  /// Fingerprints of revisions deployed peers still read, fed to the audit
  /// as AuditUniverse::declare_live.
  std::vector<uint64_t> live_readers;
  /// Maximum simultaneous connections; further accepts are closed
  /// immediately (the client sees EOF and retries per its backoff).
  size_t max_connections = 64;
  /// Serving engine. kThreaded (one thread per connection) is the legacy
  /// differential oracle; kReactor multiplexes every connection over epoll
  /// event loops and scales to tens of thousands of resolvers. The default
  /// follows MORPH_TRANSPORT so CI can re-run whole suites in either mode.
  transport::TransportMode transport = transport::default_transport_mode();
  /// Reactor-mode event loops (ignored under kThreaded).
  int loops = 1;
  /// Reactor-mode idle-connection timeout, 0 = never (ignored under
  /// kThreaded: blocking per-connection threads reap only on disconnect).
  uint32_t idle_timeout_ms = 0;
};

struct ServiceStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t registered = 0;      // formats accepted into the store
  uint64_t lint_rejected = 0;   // REGISTER entries refused under kEnforce
  uint64_t audit_rejected = 0;  // REGISTER entries refused by the audit gate
  uint64_t audit_warned = 0;    // entries with breaking audits under kWarn
  uint64_t not_found = 0;       // FETCH fingerprints the store lacked
  uint64_t bad_frames = 0;      // connections killed by malformed input
};

class FormatService {
 public:
  /// Start serving `store` (which must outlive the service) immediately.
  explicit FormatService(FormatStore& store, ServiceOptions options = {});
  ~FormatService();

  FormatService(const FormatService&) = delete;
  FormatService& operator=(const FormatService&) = delete;

  uint16_t port() const { return listener_.port(); }
  ServiceStats stats() const;

 private:
  struct Conn;

  void accept_loop();
  void serve_conn(Conn& conn);
  void serve_reactor_conn(transport::AsyncTcpLink& link);
  Reply handle(const Request& req);
  void reap_finished();

  FormatStore& store_;
  ServiceOptions options_;
  transport::TcpListener listener_;
  std::atomic<bool> stop_{false};

  struct Counters {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> registered{0};
    std::atomic<uint64_t> lint_rejected{0};
    std::atomic<uint64_t> audit_rejected{0};
    std::atomic<uint64_t> audit_warned{0};
    std::atomic<uint64_t> not_found{0};
    std::atomic<uint64_t> bad_frames{0};
  };
  mutable Counters counters_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  // Exactly one of these serves, per options_.transport. Both are
  // initialized last: serving starts after every other member exists.
  std::unique_ptr<transport::ReactorServer> reactor_;
  std::thread acceptor_;  // threaded mode only
};

}  // namespace morph::fmtsvc
