#include "obs/json.hpp"

#include <cmath>
#include <cstdlib>

namespace morph::obs {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("not a number");
  return num_;
}

uint64_t JsonValue::as_u64() const {
  double d = as_number();
  if (d < 0) throw JsonError("negative where unsigned expected");
  return static_cast<uint64_t>(std::llround(d));
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw JsonError("not an array");
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw JsonError("not an object");
  return obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonError("missing key '" + key + "'");
  return *v;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) throw JsonError("trailing characters at offset " + std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) throw JsonError("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw JsonError(std::string("expected '") + c + "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.str_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) throw JsonError("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) throw JsonError("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) throw JsonError("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw JsonError("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else throw JsonError("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not emitted by our
          // writer and are rejected here).
          if (cp >= 0xD800 && cp <= 0xDFFF) throw JsonError("surrogate \\u escape unsupported");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: throw JsonError("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw JsonError("expected value at offset " + std::to_string(pos_));
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    char* end = nullptr;
    std::string num = s_.substr(start, pos_ - start);
    v.num_ = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') throw JsonError("bad number '" + num + "'");
    if (!std::isfinite(v.num_)) throw JsonError("non-finite number '" + num + "'");
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

JsonValue json_parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace morph::obs
