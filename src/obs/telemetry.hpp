// morph-telemetry-v1: the payload schema carried by kTelemetry (type 7)
// frames between span exporters and the telemetry collector.
//
// The payload's first byte selects the operation:
//
//   1  kSpanBatch    exporter -> collector, one batch of finished spans
//                    plus the sending process's conservation counters
//   2  kDumpRequest  client -> collector, ask for the stitched-state JSON
//   3  kDumpReply    collector -> client, UTF-8 JSON document
//
// kSpanBatch layout after the op byte (little-endian, strings u32-length-
// prefixed as everywhere else on this wire):
//
//   string process          sender identity (obs::process_name())
//   u64    exported_total   cumulative spans exported incl. this batch
//   u64    dropped_total    cumulative ring drops at the sender
//   u64    morphs_total     cumulative morphs the sender's counters report
//   u32    span_count       <= kMaxSpansPerBatch
//   repeated span_count times:
//     string name, string detail,
//     u64 trace_id, u64 span_id, u64 parent_id, u64 start_ns, u64 dur_ns,
//     u32 thread
//
// The conservation triple lets the collector prove it lost nothing in
// transit: ingested spans per process must equal exported_total, and the
// attribution table must account for morphs_total (see stitch.hpp).
//
// This header is transport-free: encode/decode only. Shipping frames is
// transport/telemetry_endpoint.hpp's job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "obs/trace.hpp"

namespace morph::obs {

enum class TelemetryOp : uint8_t {
  kSpanBatch = 1,
  kDumpRequest = 2,
  kDumpReply = 3,
};

/// Hostile-input cap: a batch claiming more spans than this is rejected
/// before any allocation happens (the count field is one u32; trusting it
/// would let a 13-byte frame reserve gigabytes).
constexpr uint32_t kMaxSpansPerBatch = 4096;

struct SpanBatch {
  std::string process;
  uint64_t exported_total = 0;
  uint64_t dropped_total = 0;
  uint64_t morphs_total = 0;
  std::vector<SpanRecord> spans;
};

/// Encode `batch` as a kSpanBatch payload (op byte included).
std::vector<uint8_t> encode_span_batch(const SpanBatch& batch);

/// Decode a kSpanBatch payload (op byte included). Throws DecodeError on
/// truncation, a wrong op byte, or a span count above kMaxSpansPerBatch.
SpanBatch decode_span_batch(const uint8_t* data, size_t size);

/// One-byte kDumpRequest payload.
std::vector<uint8_t> encode_dump_request();

/// Wrap a JSON document as a kDumpReply payload.
std::vector<uint8_t> encode_dump_reply(const std::string& json);

/// Unwrap a kDumpReply payload. Throws DecodeError on a wrong op byte.
std::string decode_dump_reply(const uint8_t* data, size_t size);

/// Peek the op byte (0 when empty).
uint8_t telemetry_op(const uint8_t* data, size_t size);

}  // namespace morph::obs
