// Trace stitching: turn span batches from many processes into end-to-end
// traces and a per-(process, format) morph-cost attribution table.
//
// The stitcher is the collector's brain and deliberately transport-free:
// feed it decoded SpanBatches (obs/telemetry.hpp) from any number of
// processes and ask for the stitched state as morph-telemetry-v1 JSON.
//
// Stitching model:
//   - spans with the same trace id belong to one end-to-end trace, however
//     many processes contributed them (the id rides the 0x80 frame header
//     between peers);
//   - within one process spans form a tree via span_id/parent_id, and the
//     critical path is the most expensive root-to-leaf chain;
//   - across processes only the trace id is comparable — monotonic clocks
//     are per-process, so cross-process ordering is by linkage, never by
//     timestamp.
//
// Conservation: every batch carries the sender's cumulative exported /
// dropped / morph counters. check() cross-checks them against what was
// actually ingested and attributed, so "the trace looks fine" can be
// distinguished from "half the spans never arrived".
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace morph::obs {

/// Per-process conservation bookkeeping (cumulative counters are
/// max-merged across batches; spans_ingested counts what arrived).
struct ProcessRecord {
  uint64_t batches = 0;
  uint64_t spans_ingested = 0;
  uint64_t exported_total = 0;
  uint64_t dropped_total = 0;
  uint64_t morphs_total = 0;
};

/// One row of the morph-cost attribution table: where in the fleet each
/// (process, format) pair spends its morph time.
struct AttributionRow {
  std::string process;
  std::string format;  // the morph span's detail tag; "" = untagged
  uint64_t morphs = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};

/// A span plus the process that contributed it.
struct StitchedSpan {
  std::string process;
  SpanRecord span;
};

/// One hop of a critical path.
struct PathStep {
  std::string process;
  std::string name;
  std::string detail;
  uint64_t dur_ns = 0;
  uint64_t self_ns = 0;  // dur minus direct children
};

/// Retention caps: traces beyond the cap are dropped whole, spans beyond
/// the per-trace cap are dropped individually; both are counted and
/// reported (never silent).
constexpr size_t kMaxTracesRetained = 1024;
constexpr size_t kMaxSpansPerTrace = 512;

class TraceStitcher {
 public:
  /// Merge one batch. Thread-safe (the collector ingests from per-
  /// connection threads).
  void ingest(const SpanBatch& batch);

  /// Spans of one trace, in ingest order. Empty when unknown.
  std::vector<StitchedSpan> trace(uint64_t trace_id) const;

  /// All trace ids currently retained, ascending.
  std::vector<uint64_t> trace_ids() const;

  /// Critical path of one trace: per contributing process, the most
  /// expensive root-to-leaf span chain (processes ordered by name —
  /// cross-process clocks are not comparable).
  std::vector<PathStep> critical_path(uint64_t trace_id) const;

  /// Attribution table over spans named "*.morph", sorted by (process,
  /// format).
  std::vector<AttributionRow> attribution() const;

  /// Per-process conservation records, sorted by process name.
  std::vector<std::pair<std::string, ProcessRecord>> processes() const;

  /// Conservation violations (empty = everything accounts):
  ///   - ingested != exported_total for some process (spans lost in
  ///     transit or collector started late);
  ///   - attributed morph spans != morphs_total when the sender reports
  ///     zero ring drops (with drops, attributed <= morphs_total).
  std::vector<std::string> check() const;

  /// Full stitched state as a morph-telemetry-v1 JSON document.
  std::string to_json() const;

  uint64_t traces_dropped() const;
  uint64_t spans_overflowed() const;

 private:
  struct Trace {
    std::vector<StitchedSpan> spans;
  };

  std::vector<PathStep> critical_path_locked(const Trace& t) const;

  mutable std::mutex mutex_;
  std::map<std::string, ProcessRecord> processes_;
  std::map<uint64_t, Trace> traces_;
  uint64_t traces_dropped_ = 0;
  uint64_t spans_overflowed_ = 0;
};

}  // namespace morph::obs
