// Trace spans for correlating one message's journey across processes.
//
// A TraceContext carries a 64-bit trace id. The transport layer writes the
// id into an optional framing header (see transport/framing.hpp), so a
// message relayed sender -> broker -> receiver keeps one id end to end;
// each hop installs the id on its thread with a TraceScope and wraps its
// work in TraceSpan RAII timers. Finished spans land in a bounded global
// ring plus (optionally) a latency histogram named after the span.
//
// Tracing is off by default: TraceSpan then costs one relaxed load and
// records only into its histogram (if given), never the ring. Enable with
// set_tracing(true) or MORPH_TRACE=1 in the environment.
//
// Thread safety: the current context is thread-local; the span ring is a
// small mutex-guarded buffer touched only when tracing is enabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace morph::obs {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not traced
  explicit operator bool() const { return trace_id != 0; }
};

/// The calling thread's active context ({0} when none).
TraceContext current_trace();

/// Fresh non-zero id (splitmix64 over a process-unique seed + counter).
uint64_t new_trace_id();

/// Global tracing switch. Initialized from MORPH_TRACE (any value other
/// than empty/"0" enables) at first query; set_tracing overrides.
bool tracing_enabled();
void set_tracing(bool enabled);

/// RAII: install `ctx` as the thread's current context, restore the
/// previous one on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

/// One finished span.
struct SpanRecord {
  std::string name;
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;  // monotonic, since process start
  uint64_t dur_ns = 0;
  uint32_t thread = 0;  // thread_stripe() of the recording thread
};

/// RAII span timer. Duration always goes to `hist` when one is given; a
/// SpanRecord is appended to the ring only when tracing is enabled (the
/// span adopts the thread's current trace context at construction).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* hist = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t trace_id() const { return ctx_.trace_id; }

 private:
  const char* name_;
  Histogram* hist_;
  TraceContext ctx_;
  uint64_t start_ns_;
  bool ringed_;
};

/// Monotonic nanoseconds since process start (first call).
uint64_t monotonic_ns();

/// Copy of the span ring, oldest first. Bounded (kSpanRingCapacity).
constexpr size_t kSpanRingCapacity = 1024;
std::vector<SpanRecord> recent_spans();
void clear_spans();

}  // namespace morph::obs
