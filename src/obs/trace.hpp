// Trace spans for correlating one message's journey across processes.
//
// A TraceContext carries a 64-bit trace id. The transport layer writes the
// id into an optional framing header (see transport/framing.hpp), so a
// message relayed sender -> broker -> receiver keeps one id end to end;
// each hop installs the id on its thread with a TraceScope and wraps its
// work in TraceSpan RAII timers. Finished spans land in a bounded global
// ring plus (optionally) a latency histogram named after the span.
//
// Tracing is off by default: TraceSpan then costs one relaxed load and
// records only into its histogram (if given), never the ring. Enable with
// set_tracing(true) or MORPH_TRACE=1 in the environment.
//
// Thread safety: the current context is thread-local; the span ring is a
// small mutex-guarded buffer touched only when tracing is enabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace morph::obs {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not traced
  uint64_t span_id = 0;   // enclosing span on this thread (0 = root)
  explicit operator bool() const { return trace_id != 0; }
};

/// The calling thread's active context ({0} when none).
TraceContext current_trace();

/// Fresh non-zero id (splitmix64 over a process-unique seed + counter).
uint64_t new_trace_id();

/// Global tracing switch. Initialized from MORPH_TRACE (any value other
/// than empty/"0" enables) at first query; set_tracing overrides.
bool tracing_enabled();
void set_tracing(bool enabled);

/// RAII: install `ctx` as the thread's current context, restore the
/// previous one on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

/// One finished span. `span_id`/`parent_id` link spans into a tree within
/// one process (parent 0 = root); `detail` carries an optional free-form
/// attribution tag (the format name for morph spans). The first five
/// members predate the linkage fields, so existing aggregate initializers
/// keep working with ids defaulting to "unlinked root".
struct SpanRecord {
  std::string name;
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;  // monotonic, since process start
  uint64_t dur_ns = 0;
  uint32_t thread = 0;   // thread_stripe() of the recording thread
  uint64_t span_id = 0;  // 0 = recorded before span ids existed
  uint64_t parent_id = 0;
  std::string detail;
};

/// RAII span timer. Duration always goes to `hist` when one is given; a
/// SpanRecord is appended to the ring only when tracing is enabled (the
/// span adopts the thread's current trace context at construction).
///
/// When tracing is enabled the span also allocates a span id and installs
/// itself as the thread's current parent, so nested TraceSpans (and
/// record_span calls) link to it; the previous parent is restored on
/// destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* hist = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t trace_id() const { return ctx_.trace_id; }
  uint64_t span_id() const { return span_id_; }
  /// Attach a free-form attribution tag (format name, peer, ...) carried
  /// into the SpanRecord. No-op when the span is not being ringed.
  void set_detail(std::string detail);

 private:
  const char* name_;
  Histogram* hist_;
  TraceContext ctx_;  // context at construction (parent linkage)
  uint64_t start_ns_;
  uint64_t span_id_ = 0;
  std::string detail_;
  bool ringed_;
};

/// Monotonic nanoseconds since process start (first call).
uint64_t monotonic_ns();

/// Record an already-timed interval as a span (for paths that clock
/// themselves, e.g. the receiver's morph timing). Adopts the calling
/// thread's current trace context as parent; no-op when tracing is off.
void record_span(const char* name, const std::string& detail, uint64_t start_ns,
                 uint64_t dur_ns);

/// Copy of the span ring, oldest first. Bounded (kSpanRingCapacity); when
/// full the oldest span is dropped and morph_obs_spans_dropped_total is
/// bumped so saturation is visible instead of silent.
constexpr size_t kSpanRingCapacity = 1024;
std::vector<SpanRecord> recent_spans();
void clear_spans();

/// Move the ring's contents out (oldest first), leaving it empty. The
/// span exporter's drain primitive: spans handed out exactly once.
std::vector<SpanRecord> drain_spans();

/// Spans in the ring belonging to `trace_id`, oldest first. Used by the
/// flight recorder's tail sampling (keep full spans only for slow traces).
std::vector<SpanRecord> spans_for_trace(uint64_t trace_id);

/// Process identity attached to exported span batches. Defaults to
/// MORPH_PROCESS from the environment, else "pid-<pid>"; set_process_name
/// overrides (call before starting an exporter).
std::string process_name();
void set_process_name(const std::string& name);

}  // namespace morph::obs
