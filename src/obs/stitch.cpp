#include "obs/stitch.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <unordered_map>

namespace morph::obs {

namespace {

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_hex64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", v);
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

bool is_morph_span(const SpanRecord& s) {
  // "rx.morph", "fanout.morph", ...: the attribution table keys off the
  // ".morph" suffix so new morph sites join without touching the stitcher.
  const std::string suffix = ".morph";
  return s.name.size() > suffix.size() &&
         s.name.compare(s.name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void TraceStitcher::ingest(const SpanBatch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  ProcessRecord& rec = processes_[batch.process];
  rec.batches += 1;
  rec.spans_ingested += batch.spans.size();
  rec.exported_total = std::max(rec.exported_total, batch.exported_total);
  rec.dropped_total = std::max(rec.dropped_total, batch.dropped_total);
  rec.morphs_total = std::max(rec.morphs_total, batch.morphs_total);

  for (const auto& s : batch.spans) {
    if (s.trace_id == 0) continue;  // untraced spans have nothing to stitch
    auto it = traces_.find(s.trace_id);
    if (it == traces_.end()) {
      if (traces_.size() >= kMaxTracesRetained) {
        traces_dropped_ += 1;
        continue;
      }
      it = traces_.emplace(s.trace_id, Trace{}).first;
    }
    if (it->second.spans.size() >= kMaxSpansPerTrace) {
      spans_overflowed_ += 1;
      continue;
    }
    it->second.spans.push_back(StitchedSpan{batch.process, s});
  }
}

std::vector<StitchedSpan> TraceStitcher::trace(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) return {};
  return it->second.spans;
}

std::vector<uint64_t> TraceStitcher::trace_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> ids;
  ids.reserve(traces_.size());
  for (const auto& [id, t] : traces_) ids.push_back(id);
  return ids;
}

std::vector<PathStep> TraceStitcher::critical_path_locked(const Trace& t) const {
  // Group the trace's spans by process; processes are walked in name
  // order (clocks are per-process, so any cross-process ordering other
  // than linkage would be fiction).
  std::map<std::string, std::vector<const SpanRecord*>> by_process;
  for (const auto& s : t.spans) by_process[s.process].push_back(&s.span);

  std::vector<PathStep> path;
  for (const auto& [process, spans] : by_process) {
    std::unordered_map<uint64_t, const SpanRecord*> by_id;
    std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
    std::unordered_map<uint64_t, uint64_t> child_ns;  // parent -> sum of direct child dur
    for (const SpanRecord* s : spans) {
      if (s->span_id != 0) by_id.emplace(s->span_id, s);
    }
    for (const SpanRecord* s : spans) {
      if (s->parent_id != 0 && by_id.count(s->parent_id) != 0) {
        children[s->parent_id].push_back(s);
        child_ns[s->parent_id] += s->dur_ns;
      }
    }
    // Root = most expensive span whose parent is absent (0 or remote).
    const SpanRecord* root = nullptr;
    for (const SpanRecord* s : spans) {
      bool is_root = s->parent_id == 0 || by_id.count(s->parent_id) == 0;
      if (is_root && (root == nullptr || s->dur_ns > root->dur_ns)) root = s;
    }
    // Descend into the heaviest child at each level. The visited set
    // guards against hostile batches with parent cycles.
    std::set<uint64_t> visited;
    const SpanRecord* cur = root;
    while (cur != nullptr) {
      if (cur->span_id != 0 && !visited.insert(cur->span_id).second) break;
      PathStep step;
      step.process = process;
      step.name = cur->name;
      step.detail = cur->detail;
      step.dur_ns = cur->dur_ns;
      uint64_t kids = child_ns.count(cur->span_id) != 0 ? child_ns[cur->span_id] : 0;
      step.self_ns = cur->dur_ns > kids ? cur->dur_ns - kids : 0;
      path.push_back(std::move(step));
      const SpanRecord* next = nullptr;
      auto it = children.find(cur->span_id);
      if (it != children.end()) {
        for (const SpanRecord* c : it->second) {
          if (next == nullptr || c->dur_ns > next->dur_ns) next = c;
        }
      }
      cur = next;
    }
  }
  return path;
}

std::vector<PathStep> TraceStitcher::critical_path(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) return {};
  return critical_path_locked(it->second);
}

std::vector<AttributionRow> TraceStitcher::attribution() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::pair<std::string, std::string>, AttributionRow> rows;
  for (const auto& [id, t] : traces_) {
    for (const auto& s : t.spans) {
      if (!is_morph_span(s.span)) continue;
      AttributionRow& row = rows[{s.process, s.span.detail}];
      row.process = s.process;
      row.format = s.span.detail;
      row.morphs += 1;
      row.total_ns += s.span.dur_ns;
      row.max_ns = std::max(row.max_ns, s.span.dur_ns);
    }
  }
  std::vector<AttributionRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  return out;
}

std::vector<std::pair<std::string, ProcessRecord>> TraceStitcher::processes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {processes_.begin(), processes_.end()};
}

std::vector<std::string> TraceStitcher::check() const {
  std::vector<std::string> violations;
  // attribution() and processes() take the lock themselves; counting
  // attributed morphs per process needs the raw table.
  std::map<std::string, uint64_t> attributed;
  for (const auto& row : attribution()) attributed[row.process] += row.morphs;

  for (const auto& [name, rec] : processes()) {
    if (rec.spans_ingested != rec.exported_total) {
      violations.push_back("process '" + name + "': ingested " +
                           std::to_string(rec.spans_ingested) + " spans but sender exported " +
                           std::to_string(rec.exported_total) +
                           " (lost in transit or collector started late)");
    }
    uint64_t morph_spans = attributed.count(name) != 0 ? attributed[name] : 0;
    if (rec.dropped_total == 0) {
      if (rec.morphs_total != morph_spans) {
        violations.push_back("process '" + name + "': counters report " +
                             std::to_string(rec.morphs_total) + " morphs but " +
                             std::to_string(morph_spans) +
                             " morph spans were attributed (no ring drops reported)");
      }
    } else if (morph_spans > rec.morphs_total) {
      violations.push_back("process '" + name + "': " + std::to_string(morph_spans) +
                           " morph spans attributed exceed the " +
                           std::to_string(rec.morphs_total) + " morphs the counters report");
    }
  }
  return violations;
}

std::string TraceStitcher::to_json() const {
  // Assemble from the locked accessors; the document is a point-in-time
  // view, consistent enough for dumps (ingest between sections only adds).
  auto procs = processes();
  auto ids = trace_ids();
  auto attrib = attribution();
  auto violations = check();

  std::string out;
  out += "{\n  \"schema\": \"morph-telemetry-v1\",\n  \"processes\": {";
  bool first = true;
  for (const auto& [name, rec] : procs) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"batches\": ";
    append_u64(out, rec.batches);
    out += ", \"spans\": ";
    append_u64(out, rec.spans_ingested);
    out += ", \"exported\": ";
    append_u64(out, rec.exported_total);
    out += ", \"dropped\": ";
    append_u64(out, rec.dropped_total);
    out += ", \"morphs\": ";
    append_u64(out, rec.morphs_total);
    out += '}';
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"traces\": [";
  first = true;
  for (uint64_t id : ids) {
    auto spans = trace(id);
    auto path = critical_path(id);
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"trace\": ";
    append_hex64(out, id);
    out += ", \"span_count\": ";
    append_u64(out, spans.size());
    out += ",\n     \"spans\": [";
    bool sfirst = true;
    for (const auto& s : spans) {
      out += sfirst ? "\n      " : ",\n      ";
      sfirst = false;
      out += "{\"process\": ";
      append_json_string(out, s.process);
      out += ", \"name\": ";
      append_json_string(out, s.span.name);
      out += ", \"detail\": ";
      append_json_string(out, s.span.detail);
      out += ", \"span\": ";
      append_hex64(out, s.span.span_id);
      out += ", \"parent\": ";
      append_hex64(out, s.span.parent_id);
      out += ", \"start_ns\": ";
      append_u64(out, s.span.start_ns);
      out += ", \"dur_ns\": ";
      append_u64(out, s.span.dur_ns);
      out += '}';
    }
    out += sfirst ? "]" : "\n     ]";
    out += ",\n     \"critical_path\": [";
    bool pfirst = true;
    for (const auto& step : path) {
      out += pfirst ? "\n      " : ",\n      ";
      pfirst = false;
      out += "{\"process\": ";
      append_json_string(out, step.process);
      out += ", \"name\": ";
      append_json_string(out, step.name);
      out += ", \"detail\": ";
      append_json_string(out, step.detail);
      out += ", \"dur_ns\": ";
      append_u64(out, step.dur_ns);
      out += ", \"self_ns\": ";
      append_u64(out, step.self_ns);
      out += '}';
    }
    out += pfirst ? "]}" : "\n     ]}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"attribution\": [";
  first = true;
  for (const auto& row : attrib) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"process\": ";
    append_json_string(out, row.process);
    out += ", \"format\": ";
    append_json_string(out, row.format);
    out += ", \"morphs\": ";
    append_u64(out, row.morphs);
    out += ", \"total_ns\": ";
    append_u64(out, row.total_ns);
    out += ", \"max_ns\": ";
    append_u64(out, row.max_ns);
    out += '}';
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"stitch\": {\"traces_dropped\": ";
  append_u64(out, traces_dropped());
  out += ", \"spans_overflowed\": ";
  append_u64(out, spans_overflowed());
  out += "},\n";

  out += "  \"conservation\": {\"ok\": ";
  out += violations.empty() ? "true" : "false";
  out += ", \"violations\": [";
  first = true;
  for (const auto& v : violations) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, v);
  }
  out += first ? "]}" : "\n  ]}";
  out += "\n}\n";
  return out;
}

uint64_t TraceStitcher::traces_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_dropped_;
}

uint64_t TraceStitcher::spans_overflowed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_overflowed_;
}

}  // namespace morph::obs
