#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace morph::obs {

uint64_t Histogram::bucket_upper(size_t idx) {
  if (idx < (1u << kSubBits)) return idx;
  const size_t octave = idx >> kSubBits;
  const size_t sub = idx & ((1u << kSubBits) - 1);
  const int msb = static_cast<int>(octave) + static_cast<int>(kSubBits) - 1;
  const uint64_t lower = (1ull << msb) | (static_cast<uint64_t>(sub) << (msb - kSubBits));
  return lower + (1ull << (msb - kSubBits)) - 1;
}

uint64_t Histogram::bucket_mid(size_t idx) {
  if (idx < (1u << kSubBits)) return idx;  // exact buckets
  const size_t octave = idx >> kSubBits;
  const int msb = static_cast<int>(octave) + static_cast<int>(kSubBits) - 1;
  const uint64_t width = 1ull << (msb - kSubBits);
  return bucket_upper(idx) - width / 2;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  uint64_t counts[kBuckets] = {};
  for (size_t st = 0; st < kStripes; ++st) {
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] += stripes_[st].buckets[i].load(std::memory_order_relaxed);
    }
    s.sum += stripes_[st].sum.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    s.count += counts[i];
    s.buckets.emplace_back(bucket_upper(i), counts[i]);
  }
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target = std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cum = 0;
  for (const auto& [upper, n] : buckets) {
    cum += n;
    if (cum >= target) return Histogram::bucket_mid(Histogram::bucket_index(upper));
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::shared_lock lock(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) s.histograms.emplace_back(name, h->snapshot());
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked: outlives all users
  return *reg;
}

MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace morph::obs
