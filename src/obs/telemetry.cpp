#include "obs/telemetry.hpp"

#include "common/error.hpp"

namespace morph::obs {

std::vector<uint8_t> encode_span_batch(const SpanBatch& batch) {
  ByteBuffer buf;
  buf.append_u8(static_cast<uint8_t>(TelemetryOp::kSpanBatch));
  buf.append_string(batch.process);
  buf.append_u64(batch.exported_total);
  buf.append_u64(batch.dropped_total);
  buf.append_u64(batch.morphs_total);
  buf.append_u32(static_cast<uint32_t>(batch.spans.size()));
  for (const auto& s : batch.spans) {
    buf.append_string(s.name);
    buf.append_string(s.detail);
    buf.append_u64(s.trace_id);
    buf.append_u64(s.span_id);
    buf.append_u64(s.parent_id);
    buf.append_u64(s.start_ns);
    buf.append_u64(s.dur_ns);
    buf.append_u32(s.thread);
  }
  return buf.take();
}

SpanBatch decode_span_batch(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  uint8_t op = r.read_u8();
  if (op != static_cast<uint8_t>(TelemetryOp::kSpanBatch)) {
    throw DecodeError("telemetry: expected span-batch op 1, got " + std::to_string(op));
  }
  SpanBatch batch;
  batch.process = r.read_string();
  batch.exported_total = r.read_u64();
  batch.dropped_total = r.read_u64();
  batch.morphs_total = r.read_u64();
  uint32_t count = r.read_u32();
  if (count > kMaxSpansPerBatch) {
    throw DecodeError("telemetry: span batch claims " + std::to_string(count) +
                      " spans (cap " + std::to_string(kMaxSpansPerBatch) + ")");
  }
  batch.spans.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SpanRecord s;
    s.name = r.read_string();
    s.detail = r.read_string();
    s.trace_id = r.read_u64();
    s.span_id = r.read_u64();
    s.parent_id = r.read_u64();
    s.start_ns = r.read_u64();
    s.dur_ns = r.read_u64();
    s.thread = r.read_u32();
    batch.spans.push_back(std::move(s));
  }
  if (!r.at_end()) {
    throw DecodeError("telemetry: trailing bytes after span batch");
  }
  return batch;
}

std::vector<uint8_t> encode_dump_request() {
  return {static_cast<uint8_t>(TelemetryOp::kDumpRequest)};
}

std::vector<uint8_t> encode_dump_reply(const std::string& json) {
  ByteBuffer buf;
  buf.append_u8(static_cast<uint8_t>(TelemetryOp::kDumpReply));
  buf.append_string(json);
  return buf.take();
}

std::string decode_dump_reply(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  uint8_t op = r.read_u8();
  if (op != static_cast<uint8_t>(TelemetryOp::kDumpReply)) {
    throw DecodeError("telemetry: expected dump-reply op 3, got " + std::to_string(op));
  }
  return r.read_string();
}

uint8_t telemetry_op(const uint8_t* data, size_t size) {
  return size == 0 ? 0 : data[0];
}

}  // namespace morph::obs
