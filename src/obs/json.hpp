// Minimal JSON reader for the metrics snapshot schema (obs/export.hpp).
//
// This is deliberately a small, strict subset-of-JSON parser: objects,
// arrays, strings (with the escapes our writer emits plus \uXXXX for BMP
// code points), numbers, booleans, null. It exists so tools/morph-stat and
// the bench smoke checker can read snapshots without an external
// dependency; it is not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace morph::obs {

class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error("json error: " + what) {}
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors; throw JsonError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  uint64_t as_u64() const;  // number, rounded; throws when negative
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent (throws when not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws when absent.
  const JsonValue& at(const std::string& key) const;

  static JsonValue make_null() { return JsonValue(); }

 private:
  friend JsonValue json_parse(const std::string&);
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parse a complete document; trailing non-whitespace is an error.
JsonValue json_parse(const std::string& text);

}  // namespace morph::obs
