#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace morph::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// JSON string escape (quotes, backslash, control characters).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Emit a `# TYPE` header the first time a base name appears.
void maybe_type_line(std::string& out, std::string& last_base, const std::string& base,
                     const char* type) {
  if (base == last_base) return;
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

/// `base_suffix{labels,extra}` or `base_suffix{extra}` or plain.
void append_series(std::string& out, const std::string& base, const char* suffix,
                   const std::string& labels, const std::string& extra) {
  out += base;
  out += suffix;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  out += ' ';
}

}  // namespace

std::pair<std::string, std::string> split_metric_name(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  size_t end = name.rfind('}');
  if (end == std::string::npos || end <= brace) return {name.substr(0, brace), ""};
  return {name.substr(0, brace), name.substr(brace + 1, end - brace - 1)};
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;

  for (const auto& [name, value] : snapshot.counters) {
    auto [base, labels] = split_metric_name(name);
    maybe_type_line(out, last_base, base, "counter");
    append_series(out, base, "", labels, "");
    append_u64(out, value);
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    auto [base, labels] = split_metric_name(name);
    maybe_type_line(out, last_base, base, "gauge");
    append_series(out, base, "", labels, "");
    append_double(out, value);
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, h] : snapshot.histograms) {
    auto [base, labels] = split_metric_name(name);
    maybe_type_line(out, last_base, base, "histogram");
    uint64_t cum = 0;
    for (const auto& [upper, count] : h.buckets) {
      cum += count;
      std::string le = "le=\"";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRIu64, upper);
      le += buf;
      le += '"';
      append_series(out, base, "_bucket", labels, le);
      append_u64(out, cum);
      out += '\n';
    }
    append_series(out, base, "_bucket", labels, "le=\"+Inf\"");
    append_u64(out, h.count);
    out += '\n';
    append_series(out, base, "_sum", labels, "");
    append_u64(out, h.sum);
    out += '\n';
    append_series(out, base, "_count", labels, "");
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, const std::vector<SpanRecord>& spans) {
  std::string out;
  out += "{\n  \"schema\": \"morph-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_u64(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_double(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"max\": ";
    append_u64(out, h.max);
    out += ", \"p50\": ";
    append_u64(out, h.percentile(0.50));
    out += ", \"p90\": ";
    append_u64(out, h.percentile(0.90));
    out += ", \"p99\": ";
    append_u64(out, h.percentile(0.99));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [upper, count] : h.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += '[';
      append_u64(out, upper);
      out += ", ";
      append_u64(out, count);
      out += ']';
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";

  if (!spans.empty()) {
    out += ",\n  \"spans\": [";
    first = true;
    for (const auto& s : spans) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"name\": ";
      append_json_string(out, s.name);
      out += ", \"trace\": ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", s.trace_id);
      out += buf;
      out += ", \"start_ns\": ";
      append_u64(out, s.start_ns);
      out += ", \"dur_ns\": ";
      append_u64(out, s.dur_ns);
      out += ", \"thread\": ";
      append_u64(out, s.thread);
      out += '}';
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

}  // namespace morph::obs
