#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace morph::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// JSON string escape (quotes, backslash, control characters).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Emit a `# TYPE` header the first time a base name appears.
void maybe_type_line(std::string& out, std::string& last_base, const std::string& base,
                     const char* type) {
  if (base == last_base) return;
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

/// `base_suffix{labels,extra}` or `base_suffix{extra}` or plain. `labels`
/// must already be escaped (append_series is called per bucket; escaping
/// once per metric keeps the hot rendering loop cheap).
void append_series(std::string& out, const std::string& base, const char* suffix,
                   const std::string& labels, const std::string& extra) {
  out += base;
  out += suffix;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  out += ' ';
}

/// True when `s` continues at `at` with `ident="` — i.e. a new label
/// assignment starts there. Used to find the real closing quote of a raw
/// (unescaped) label value.
bool label_starts_at(const std::string& s, size_t at) {
  size_t i = at;
  if (i >= s.size()) return false;
  auto ident_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_';
  };
  if (!ident_char(s[i])) return false;
  while (i < s.size() && ident_char(s[i])) ++i;
  return i + 1 < s.size() && s[i] == '=' && s[i + 1] == '"';
}

void append_escaped_label_value(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::pair<std::string, std::string> split_metric_name(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  size_t end = name.rfind('}');
  if (end == std::string::npos || end <= brace) return {name.substr(0, brace), ""};
  return {name.substr(0, brace), name.substr(brace + 1, end - brace - 1)};
}

std::string escape_label_values(const std::string& labels) {
  // Baked label strings store values raw, so a value may itself contain
  // quotes or commas. The closing quote of a value is the `"` followed by
  // end-of-string or `,` + the start of another `ident="` assignment —
  // unambiguous because label names can't contain quotes.
  std::string out;
  size_t i = 0;
  while (i < labels.size()) {
    size_t eq = labels.find("=\"", i);
    if (eq == std::string::npos) {
      out.append(labels, i, std::string::npos);  // malformed tail: pass through
      break;
    }
    out.append(labels, i, eq + 2 - i);  // name=" verbatim
    size_t vstart = eq + 2;
    size_t vend = vstart;
    while (vend < labels.size()) {
      if (labels[vend] == '"' &&
          (vend + 1 == labels.size() ||
           (labels[vend + 1] == ',' && label_starts_at(labels, vend + 2)))) {
        break;
      }
      ++vend;
    }
    append_escaped_label_value(out, labels.substr(vstart, vend - vstart));
    if (vend < labels.size()) {
      out += '"';
      ++vend;
      if (vend < labels.size()) {
        out += ',';  // separator before the next assignment
        ++vend;
      }
    }
    i = vend;
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;

  for (const auto& [name, value] : snapshot.counters) {
    auto [base, raw] = split_metric_name(name);
    std::string labels = escape_label_values(raw);
    maybe_type_line(out, last_base, base, "counter");
    append_series(out, base, "", labels, "");
    append_u64(out, value);
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    auto [base, raw] = split_metric_name(name);
    std::string labels = escape_label_values(raw);
    maybe_type_line(out, last_base, base, "gauge");
    append_series(out, base, "", labels, "");
    append_double(out, value);
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, h] : snapshot.histograms) {
    auto [base, raw] = split_metric_name(name);
    std::string labels = escape_label_values(raw);
    maybe_type_line(out, last_base, base, "histogram");
    uint64_t cum = 0;
    for (const auto& [upper, count] : h.buckets) {
      cum += count;
      std::string le = "le=\"";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRIu64, upper);
      le += buf;
      le += '"';
      append_series(out, base, "_bucket", labels, le);
      append_u64(out, cum);
      out += '\n';
    }
    append_series(out, base, "_bucket", labels, "le=\"+Inf\"");
    append_u64(out, h.count);
    out += '\n';
    append_series(out, base, "_sum", labels, "");
    append_u64(out, h.sum);
    out += '\n';
    append_series(out, base, "_count", labels, "");
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

namespace {

void append_span_json(std::string& out, const SpanRecord& s) {
  out += "{\"name\": ";
  append_json_string(out, s.name);
  char buf[32];
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", s.trace_id);
  out += ", \"trace\": ";
  out += buf;
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", s.span_id);
  out += ", \"span\": ";
  out += buf;
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", s.parent_id);
  out += ", \"parent\": ";
  out += buf;
  out += ", \"detail\": ";
  append_json_string(out, s.detail);
  out += ", \"start_ns\": ";
  append_u64(out, s.start_ns);
  out += ", \"dur_ns\": ";
  append_u64(out, s.dur_ns);
  out += ", \"thread\": ";
  append_u64(out, s.thread);
  out += '}';
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot, const std::vector<SpanRecord>& spans,
                    const std::vector<FlightEvent>& flight) {
  std::string out;
  out += "{\n  \"schema\": \"morph-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_u64(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_double(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"max\": ";
    append_u64(out, h.max);
    out += ", \"p50\": ";
    append_u64(out, h.percentile(0.50));
    out += ", \"p90\": ";
    append_u64(out, h.percentile(0.90));
    out += ", \"p99\": ";
    append_u64(out, h.percentile(0.99));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [upper, count] : h.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += '[';
      append_u64(out, upper);
      out += ", ";
      append_u64(out, count);
      out += ']';
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";

  if (!spans.empty()) {
    out += ",\n  \"spans\": [";
    first = true;
    for (const auto& s : spans) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      append_span_json(out, s);
    }
    out += "\n  ]";
  }
  if (!flight.empty()) {
    out += ",\n  \"flight\": [";
    first = true;
    for (const auto& e : flight) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"ts_ns\": ";
      append_u64(out, e.ts_ns);
      out += ", \"kind\": ";
      append_json_string(out, flight_kind_name(e.kind));
      out += ", \"trace\": ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", e.trace_id);
      out += buf;
      out += ", \"detail\": ";
      append_json_string(out, e.detail);
      out += ", \"spans\": [";
      bool sfirst = true;
      for (const auto& s : e.spans) {
        if (!sfirst) out += ", ";
        sfirst = false;
        append_span_json(out, s);
      }
      out += "]}";
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

}  // namespace morph::obs
