// Exporters: render a MetricsSnapshot (and optionally the span ring) as
// Prometheus text exposition format or as a stable JSON document.
//
// JSON schema ("morph-metrics-v1", consumed by tools/morph-stat and the
// bench smoke checker):
//
//   {
//     "schema": "morph-metrics-v1",
//     "counters":   {"name": 123, ...},
//     "gauges":     {"name": 1.5, ...},
//     "histograms": {"name": {"count": n, "sum": s, "max": m,
//                             "p50": a, "p90": b, "p99": c,
//                             "buckets": [[upper, count], ...]}, ...},
//     "spans":      [{"name": "...", "trace": "0x...", "start_ns": t,
//                     "dur_ns": d, "thread": i}, ...]
//   }
//
// Metric names may bake Prometheus labels in (`x{k="v"}`); the Prometheus
// renderer splits them so histogram series get a merged label set
// (`x_bucket{k="v",le="..."}`).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace morph::obs {

/// Prometheus text exposition (version 0.0.4). Histograms emit only their
/// non-empty cumulative buckets plus "+Inf".
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Stable JSON document (schema above). Spans are included only when
/// `spans` is non-empty.
std::string to_json(const MetricsSnapshot& snapshot,
                    const std::vector<SpanRecord>& spans = {});

/// Split a metric name into (base, labels-without-braces); labels is empty
/// when the name carries none.
std::pair<std::string, std::string> split_metric_name(const std::string& name);

}  // namespace morph::obs
