// Exporters: render a MetricsSnapshot (and optionally the span ring) as
// Prometheus text exposition format or as a stable JSON document.
//
// JSON schema ("morph-metrics-v1", consumed by tools/morph-stat and the
// bench smoke checker):
//
//   {
//     "schema": "morph-metrics-v1",
//     "counters":   {"name": 123, ...},
//     "gauges":     {"name": 1.5, ...},
//     "histograms": {"name": {"count": n, "sum": s, "max": m,
//                             "p50": a, "p90": b, "p99": c,
//                             "buckets": [[upper, count], ...]}, ...},
//     "spans":      [{"name": "...", "trace": "0x...", "span": "0x...",
//                     "parent": "0x...", "detail": "...", "start_ns": t,
//                     "dur_ns": d, "thread": i}, ...],
//     "flight":     [{"ts_ns": t, "kind": "...", "trace": "0x...",
//                     "detail": "...", "spans": [...]}, ...]
//   }
//
// Metric names may bake Prometheus labels in (`x{k="v"}`); the Prometheus
// renderer splits them so histogram series get a merged label set
// (`x_bucket{k="v",le="..."}`). Label values are stored raw in the name
// and escaped at render time per each format's rules.
#pragma once

#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace morph::obs {

/// Prometheus text exposition (version 0.0.4). Histograms emit only their
/// non-empty cumulative buckets plus "+Inf". Label values are escaped per
/// the text format (backslash, double-quote, line-feed).
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Stable JSON document (schema above). Spans and flight events are
/// included only when non-empty.
std::string to_json(const MetricsSnapshot& snapshot,
                    const std::vector<SpanRecord>& spans = {},
                    const std::vector<FlightEvent>& flight = {});

/// Split a metric name into (base, labels-without-braces); labels is empty
/// when the name carries none.
std::pair<std::string, std::string> split_metric_name(const std::string& name);

/// Re-emit a baked label string (`k="v",k2="v2"`) with each value escaped
/// per the Prometheus 0.0.4 text format. Values are stored raw, so a
/// format named `a"b` or `a\nb` round-trips instead of corrupting the
/// exposition. Exposed for the exporter tests.
std::string escape_label_values(const std::string& labels);

}  // namespace morph::obs
