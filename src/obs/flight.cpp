#include "obs/flight.hpp"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>

#include "obs/metrics.hpp"

namespace morph::obs {

namespace {

constexpr uint64_t kDefaultSlowNs = 1'000'000;  // 1ms

struct FlightRing {
  std::mutex mutex;
  std::deque<FlightEvent> events;
  // Per-kind totals, resolved once (registry metrics live forever). The
  // ring forgets, the counters do not.
  Counter& rejects = metrics().counter("morph_flight_events_total{kind=\"reject\"}");
  Counter& retries = metrics().counter("morph_flight_events_total{kind=\"resolver_retry\"}");
  Counter& fallbacks = metrics().counter("morph_flight_events_total{kind=\"fanout_fallback\"}");
  Counter& slow = metrics().counter("morph_flight_events_total{kind=\"slow_morph\"}");

  Counter& for_kind(FlightKind kind) {
    switch (kind) {
      case FlightKind::kReject: return rejects;
      case FlightKind::kResolverRetry: return retries;
      case FlightKind::kFanoutFallback: return fallbacks;
      case FlightKind::kSlowMorph: return slow;
    }
    return rejects;
  }
};

FlightRing& ring() {
  static FlightRing* r = new FlightRing();  // leaked: outlives all users
  return *r;
}

std::atomic<int64_t> g_slow_ns{-1};  // -1 = not yet read from the environment

/// Format one event into `buf` (no allocation; usable from the signal
/// handler). Returns bytes written.
size_t format_event(char* buf, size_t cap, const FlightEvent& e) {
  int n = std::snprintf(buf, cap,
                        "[%12.6fs] %-16s trace=%016llx  %s (%zu span%s)\n",
                        static_cast<double>(e.ts_ns) / 1e9, flight_kind_name(e.kind),
                        static_cast<unsigned long long>(e.trace_id), e.detail.c_str(),
                        e.spans.size(), e.spans.size() == 1 ? "" : "s");
  if (n < 0) return 0;
  return static_cast<size_t>(n) < cap ? static_cast<size_t>(n) : cap - 1;
}

extern "C" void flight_signal_handler(int sig) {
  char buf[512];
  int n = std::snprintf(buf, sizeof buf,
                        "\n== morph flight recorder (signal %d) ==\n", sig);
  if (n > 0) {
    ssize_t ignored = write(STDERR_FILENO, buf, static_cast<size_t>(n));
    (void)ignored;
  }
  FlightRing& r = ring();
  // try_lock: if the crashing thread held the ring we skip the dump
  // rather than deadlock inside a signal handler.
  if (r.mutex.try_lock()) {
    for (const auto& e : r.events) {
      size_t len = format_event(buf, sizeof buf, e);
      if (len > 0) {
        ssize_t ignored = write(STDERR_FILENO, buf, len);
        (void)ignored;
      }
    }
    r.mutex.unlock();
  } else {
    static const char busy[] = "(flight ring busy; dump skipped)\n";
    ssize_t ignored = write(STDERR_FILENO, busy, sizeof busy - 1);
    (void)ignored;
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kReject: return "reject";
    case FlightKind::kResolverRetry: return "resolver_retry";
    case FlightKind::kFanoutFallback: return "fanout_fallback";
    case FlightKind::kSlowMorph: return "slow_morph";
  }
  return "unknown";
}

void flight_record(FlightKind kind, uint64_t trace_id, std::string detail) {
  FlightEvent e;
  e.ts_ns = monotonic_ns();
  e.kind = kind;
  e.trace_id = trace_id;
  e.detail = std::move(detail);
  if (kind == FlightKind::kSlowMorph) {
    // Tail sample: this trace just proved interesting, so keep its spans.
    e.spans = spans_for_trace(trace_id);
  }
  FlightRing& r = ring();
  r.for_kind(kind).inc();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.events.size() >= kFlightRingCapacity) r.events.pop_front();
  r.events.push_back(std::move(e));
}

uint64_t flight_slow_ns() {
  int64_t v = g_slow_ns.load(std::memory_order_relaxed);
  if (v < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("MORPH_FLIGHT_SLOW_NS");
    v = static_cast<int64_t>(kDefaultSlowNs);
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') v = static_cast<int64_t>(parsed);
    }
    g_slow_ns.store(v, std::memory_order_relaxed);
  }
  return static_cast<uint64_t>(v);
}

void set_flight_slow_ns(uint64_t ns) {
  g_slow_ns.store(static_cast<int64_t>(ns), std::memory_order_relaxed);
}

std::vector<FlightEvent> flight_events() {
  FlightRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  return {r.events.begin(), r.events.end()};
}

void clear_flight_events() {
  FlightRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.events.clear();
}

std::string flight_dump_text() {
  std::string out;
  char buf[512];
  for (const auto& e : flight_events()) {
    size_t len = format_event(buf, sizeof buf, e);
    out.append(buf, len);
    for (const auto& s : e.spans) {
      int n = std::snprintf(buf, sizeof buf, "    %-24s %10llu ns  %s\n", s.name.c_str(),
                            static_cast<unsigned long long>(s.dur_ns), s.detail.c_str());
      if (n > 0) out.append(buf, static_cast<size_t>(n) < sizeof buf ? static_cast<size_t>(n)
                                                                     : sizeof buf - 1);
    }
  }
  return out;
}

void install_flight_signal_dump() {
  std::signal(SIGSEGV, flight_signal_handler);
  std::signal(SIGABRT, flight_signal_handler);
  std::signal(SIGBUS, flight_signal_handler);
}

}  // namespace morph::obs
