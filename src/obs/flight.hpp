// Always-on flight recorder: a small bounded ring of notable events
// (rejects, resolver retries, fan-out fallbacks, morphs slower than a
// threshold) that survives until someone asks for it — `morph-stat
// --flight` over the stats endpoint, the telemetry dump, or a fatal
// signal.
//
// Unlike trace spans the recorder does not wait for MORPH_TRACE: the whole
// point is that the evidence for a production incident already exists when
// the operator shows up. The hot-path cost when nothing notable happens is
// a single relaxed load (the slow-morph threshold compare); recording an
// event takes the ring mutex, but notable events are rare by definition.
//
// Tail sampling: slow-morph events snapshot the span ring's records for
// their trace id, so full span detail is kept only for traces that proved
// slow (and only when tracing was on to populate the ring).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace morph::obs {

enum class FlightKind : uint8_t {
  kReject = 1,         // receiver rejected a message
  kResolverRetry = 2,  // fmtsvc fetch retried (connect/rpc failure + backoff)
  kFanoutFallback = 3, // grouped fan-out fell back to per-sink morphing
  kSlowMorph = 4,      // a morph exceeded flight_slow_ns()
};

const char* flight_kind_name(FlightKind kind);

struct FlightEvent {
  uint64_t ts_ns = 0;  // monotonic_ns() at record time
  FlightKind kind = FlightKind::kReject;
  uint64_t trace_id = 0;
  std::string detail;
  // Tail sample: same-trace spans captured at record time (kSlowMorph
  // only, empty otherwise or when tracing is off).
  std::vector<SpanRecord> spans;
};

/// Ring capacity; oldest events are evicted (the per-kind counters
/// morph_flight_events_total{kind=...} keep the totals honest).
constexpr size_t kFlightRingCapacity = 256;

/// Record one event. `trace_id` 0 means "not correlated"; pass
/// current_trace().trace_id where a context exists.
void flight_record(FlightKind kind, uint64_t trace_id, std::string detail);

/// Slow-morph threshold in nanoseconds, from MORPH_FLIGHT_SLOW_NS (default
/// 1ms). Reading is one relaxed load; set_flight_slow_ns overrides.
uint64_t flight_slow_ns();
void set_flight_slow_ns(uint64_t ns);

/// Copy of the ring, oldest first.
std::vector<FlightEvent> flight_events();
void clear_flight_events();

/// Render the ring as a human-readable multi-line dump (one event per
/// line, spans indented under their event).
std::string flight_dump_text();

/// Install SIGSEGV/SIGABRT/SIGBUS handlers that best-effort write the
/// flight ring to stderr before re-raising with the default disposition.
/// Async-signal-safety is best effort: the dump try-locks the ring and
/// gives up rather than deadlock, and formats with write(2) only.
void install_flight_signal_dump();

}  // namespace morph::obs
