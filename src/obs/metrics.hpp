// Lock-light metrics for the morphing pipeline.
//
// Three metric kinds, all safe to record from any thread with nothing
// heavier than a relaxed atomic add on the hot path:
//
//   Counter    monotone u64, striped across cache lines so concurrent
//              writers never share a line;
//   Gauge      a double that can move both ways (queue depth, code bytes);
//   Histogram  log-linear buckets (exact 0..15, then 16 sub-buckets per
//              power of two, ~6% worst-case relative error) with p50/p90/
//              p99/max extraction from a scrape-time snapshot. Recording is
//              one relaxed add into a per-thread-stripe bucket array.
//
// A MetricsRegistry owns metrics by name. Names follow the Prometheus
// convention and may bake labels in (`morph_rx_decode_ns{fmt="X"}`); the
// exporters (obs/export.hpp) understand that shape. Metrics are never
// removed, so a reference obtained once stays valid for the registry's
// lifetime — hot paths look a metric up once and keep the pointer.
//
// Scraping (snapshot()) runs concurrently with recording: it sums the
// stripes with relaxed loads. A snapshot is a plain-data point-in-time
// view, exact for quiescent metrics and within one in-flight update
// otherwise. The TSan suite runs writers against scrapers to keep this
// honest.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace morph::obs {

/// Stable per-thread stripe index (round-robin at first use per thread).
inline uint32_t thread_stripe() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

/// Monotone counter, striped to keep concurrent writers off each other's
/// cache lines. value() is a relaxed sum over the stripes.
class Counter {
 public:
  void add(uint64_t delta) {
    stripes_[thread_stripe() & (kStripes - 1)].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  uint64_t value() const {
    uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// A double-valued gauge (atomic<double> is lock-free on every target we
/// build for; add() is a CAS loop, fine for the rare writers gauges have).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time view of one histogram. `buckets` holds only non-empty
/// buckets as (inclusive upper bound, count), ascending.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  /// Estimated value at quantile q in [0,1]: the representative (midpoint)
  /// of the bucket containing the q-th sample. Monotone in q; 0 when empty.
  uint64_t percentile(double q) const;
};

/// Log-linear latency histogram. Values are clamped to [0, 2^40) (about
/// 18 minutes in nanoseconds); buckets 0..15 are exact, after that each
/// power of two splits into 16 linear sub-buckets.
class Histogram {
 public:
  static constexpr uint64_t kMaxValue = (1ull << 40) - 1;
  static constexpr size_t kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr size_t kBuckets = (40 - kSubBits + 1) << kSubBits;  // 592

  static size_t bucket_index(uint64_t v) {
    if (v < (1u << kSubBits)) return static_cast<size_t>(v);
    if (v > kMaxValue) v = kMaxValue;
    const int msb = 63 - std::countl_zero(v);
    return ((static_cast<size_t>(msb) - kSubBits + 1) << kSubBits) +
           ((v >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
  }

  /// Inclusive upper bound of bucket `idx`.
  static uint64_t bucket_upper(size_t idx);
  /// Representative (midpoint) value of bucket `idx`.
  static uint64_t bucket_mid(size_t idx);

  void record(uint64_t v) {
    const size_t stripe = thread_stripe() & (kStripes - 1);
    stripes_[stripe].buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    stripes_[stripe].sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;

 private:
  static constexpr size_t kStripes = 4;
  struct Stripe {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> sum{0};
  };
  // Heap-allocated so an unrecorded histogram costs pointer-sized registry
  // space but the stripes are still plain arrays of relaxed atomics.
  std::unique_ptr<Stripe[]> stripes_ = std::make_unique<Stripe[]>(kStripes);
  std::atomic<uint64_t> max_{0};
};

/// Everything the registry knew at one instant, sorted by name (stable
/// output for exporters and snapshot diffing).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named metric store. Lookup takes a short lock; returned references stay
/// valid forever (metrics are never erased). Use `global()` for the
/// process-wide registry every built-in instrumentation point records to;
/// tests may instantiate private registries.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  static MetricsRegistry& global();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
MetricsRegistry& metrics();

}  // namespace morph::obs
