#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>

namespace morph::obs {

namespace {

thread_local TraceContext t_context;

std::atomic<int> g_tracing{-1};  // -1 = not yet read from the environment

struct SpanRing {
  std::mutex mutex;
  std::deque<SpanRecord> spans;
};

SpanRing& ring() {
  static SpanRing* r = new SpanRing();  // leaked: outlives all users
  return *r;
}

}  // namespace

uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

TraceContext current_trace() { return t_context; }

uint64_t new_trace_id() {
  // splitmix64 over a process-unique seed: ids are unique within a process
  // and overwhelmingly unlikely to collide across peers.
  static std::atomic<uint64_t> state{[] {
    auto wall = static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    return wall ^ 0x9e3779b97f4a7c15ull;
  }()};
  uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "untraced"
}

bool tracing_enabled() {
  int v = g_tracing.load(std::memory_order_relaxed);
  if (v < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("MORPH_TRACE");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    g_tracing.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_tracing(bool enabled) { g_tracing.store(enabled ? 1 : 0, std::memory_order_relaxed); }

TraceScope::TraceScope(TraceContext ctx) : prev_(t_context) { t_context = ctx; }
TraceScope::~TraceScope() { t_context = prev_; }

TraceSpan::TraceSpan(const char* name, Histogram* hist)
    : name_(name), hist_(hist), ctx_(t_context), start_ns_(monotonic_ns()),
      ringed_(tracing_enabled()) {}

TraceSpan::~TraceSpan() {
  const uint64_t dur = monotonic_ns() - start_ns_;
  if (hist_ != nullptr) hist_->record(dur);
  if (!ringed_) return;
  SpanRecord rec;
  rec.name = name_;
  rec.trace_id = ctx_.trace_id;
  rec.start_ns = start_ns_;
  rec.dur_ns = dur;
  rec.thread = thread_stripe();
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.spans.size() >= kSpanRingCapacity) r.spans.pop_front();
  r.spans.push_back(std::move(rec));
}

std::vector<SpanRecord> recent_spans() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  return {r.spans.begin(), r.spans.end()};
}

void clear_spans() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.spans.clear();
}

}  // namespace morph::obs
