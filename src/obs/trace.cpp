#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <deque>
#include <iterator>
#include <mutex>

namespace morph::obs {

namespace {

thread_local TraceContext t_context;

std::atomic<int> g_tracing{-1};  // -1 = not yet read from the environment

struct SpanRing {
  std::mutex mutex;
  std::deque<SpanRecord> spans;
  // Resolved once; registry metrics are never erased so the reference is
  // valid forever. Counts spans evicted by the bounded ring (satellite of
  // the telemetry plane: saturation used to be silent).
  Counter& dropped = metrics().counter("morph_obs_spans_dropped_total");
};

SpanRing& ring() {
  static SpanRing* r = new SpanRing();  // leaked: outlives all users
  return *r;
}

/// Append under the ring lock, evicting (and counting) the oldest when
/// full.
void push_span(SpanRecord rec) {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.spans.size() >= kSpanRingCapacity) {
    r.spans.pop_front();
    r.dropped.inc();
  }
  r.spans.push_back(std::move(rec));
}

/// Fresh non-zero span id; same generator family as new_trace_id but a
/// separate stream so span ids never shadow trace ids.
uint64_t new_span_id() {
  static std::atomic<uint64_t> state{0x6a09e667f3bcc909ull};
  uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

std::mutex g_process_name_mutex;
std::string* g_process_name = nullptr;  // leaked: outlives all users

}  // namespace

uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

TraceContext current_trace() { return t_context; }

uint64_t new_trace_id() {
  // splitmix64 over a process-unique seed: ids are unique within a process
  // and overwhelmingly unlikely to collide across peers.
  static std::atomic<uint64_t> state{[] {
    auto wall = static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    return wall ^ 0x9e3779b97f4a7c15ull;
  }()};
  uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "untraced"
}

bool tracing_enabled() {
  int v = g_tracing.load(std::memory_order_relaxed);
  if (v < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("MORPH_TRACE");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    g_tracing.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_tracing(bool enabled) { g_tracing.store(enabled ? 1 : 0, std::memory_order_relaxed); }

TraceScope::TraceScope(TraceContext ctx) : prev_(t_context) { t_context = ctx; }
TraceScope::~TraceScope() { t_context = prev_; }

TraceSpan::TraceSpan(const char* name, Histogram* hist)
    : name_(name), hist_(hist), ctx_(t_context), start_ns_(monotonic_ns()),
      ringed_(tracing_enabled()) {
  if (ringed_) {
    // Become the thread's current parent so nested spans link to us.
    span_id_ = new_span_id();
    t_context.span_id = span_id_;
  }
}

TraceSpan::~TraceSpan() {
  const uint64_t dur = monotonic_ns() - start_ns_;
  if (hist_ != nullptr) hist_->record(dur);
  if (!ringed_) return;
  t_context.span_id = ctx_.span_id;  // restore previous parent
  SpanRecord rec;
  rec.name = name_;
  rec.trace_id = ctx_.trace_id;
  rec.start_ns = start_ns_;
  rec.dur_ns = dur;
  rec.thread = thread_stripe();
  rec.span_id = span_id_;
  rec.parent_id = ctx_.span_id;
  rec.detail = std::move(detail_);
  push_span(std::move(rec));
}

void TraceSpan::set_detail(std::string detail) {
  if (ringed_) detail_ = std::move(detail);
}

void record_span(const char* name, const std::string& detail, uint64_t start_ns,
                 uint64_t dur_ns) {
  if (!tracing_enabled()) return;
  SpanRecord rec;
  rec.name = name;
  rec.trace_id = t_context.trace_id;
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.thread = thread_stripe();
  rec.span_id = new_span_id();
  rec.parent_id = t_context.span_id;
  rec.detail = detail;
  push_span(std::move(rec));
}

std::vector<SpanRecord> recent_spans() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  return {r.spans.begin(), r.spans.end()};
}

void clear_spans() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.spans.clear();
}

std::vector<SpanRecord> drain_spans() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SpanRecord> out(std::make_move_iterator(r.spans.begin()),
                              std::make_move_iterator(r.spans.end()));
  r.spans.clear();
  return out;
}

std::vector<SpanRecord> spans_for_trace(uint64_t trace_id) {
  std::vector<SpanRecord> out;
  if (trace_id == 0) return out;
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& s : r.spans) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::string process_name() {
  std::lock_guard<std::mutex> lock(g_process_name_mutex);
  if (g_process_name == nullptr) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("MORPH_PROCESS");
    if (env != nullptr && env[0] != '\0') {
      g_process_name = new std::string(env);
    } else {
      g_process_name = new std::string("pid-" + std::to_string(getpid()));
    }
  }
  return *g_process_name;
}

void set_process_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_process_name_mutex);
  delete g_process_name;
  g_process_name = new std::string(name);
}

}  // namespace morph::obs
