// Umbrella header: everything a downstream application needs to use
// Message Morphing.
//
//   #include <morph.hpp>
//
//   pbio::FormatBuilder / build_format   declare formats
//   pbio::Encoder / Decoder              wire encode / decode
//   ecode::Transform                     compile transformation code
//   core::TransformSpec / Receiver       Algorithm 2 morphing pipeline
//   transport::MessagePort / TcpLink     framed links + out-of-band meta-data
//   echo::EchoProcess                    the pub/sub middleware
//
// Individual headers remain usable for finer-grained includes.
#pragma once

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compat.hpp"
#include "core/match.hpp"
#include "core/receiver.hpp"
#include "core/reconcile.hpp"
#include "core/transform.hpp"
#include "ecode/ecode.hpp"
#include "echo/messages.hpp"
#include "echo/process.hpp"
#include "pbio/decode.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/encode.hpp"
#include "pbio/format.hpp"
#include "pbio/iofield.hpp"
#include "pbio/randgen.hpp"
#include "pbio/record.hpp"
#include "pbio/registry.hpp"
#include "transport/framing.hpp"
#include "transport/link.hpp"
#include "transport/port.hpp"
#include "transport/tcp.hpp"
#include "xmlx/xml.hpp"
#include "xmlx/xml_bind.hpp"
#include "xmlx/xpath.hpp"
#include "xmlx/xslt.hpp"
