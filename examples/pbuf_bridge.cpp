// Protobuf interop over real TCP sockets — the cross-version scenario.
//
// A publisher from another serialization ecosystem ships protobuf frames
// of a v1 schema imported from .proto source; a native subscriber reads
// the evolved v2 struct. One declared retro-transform bridges the
// versions — exactly as between two native peers — and the pbuf bridge
// handles the wire format at the connection edge. Neither side contains
// any bridging code.
//
// Build & run:  ./examples/pbuf_bridge
#include <cstdint>
#include <cstdio>
#include <thread>

#include "core/receiver.hpp"
#include "pbio/record.hpp"
#include "pbuf/schema.hpp"
#include "transport/port.hpp"
#include "transport/tcp.hpp"

using namespace morph;

namespace {

// The publisher's schema, as its ecosystem defines it.
constexpr const char* kSensorProto = R"proto(
syntax = "proto3";
message Sensor {
  int32 station = 1;
  double value = 2;
}
)proto";

// The subscriber's evolved native struct (adds `flags`).
struct SensorV2 {
  int32_t station;
  int32_t flags;
  double value;
};

pbio::FormatPtr sensor_v2_format() {
  return pbio::FormatBuilder("Sensor", sizeof(SensorV2))
      .add_int("station", 4, offsetof(SensorV2, station))
      .add_int("flags", 4, offsetof(SensorV2, flags))
      .add_float("value", 8, offsetof(SensorV2, value))
      .build();
}

}  // namespace

int main() {
  auto v1 = pbuf::parse_proto_message(kSensorProto, "Sensor");
  std::printf("imported proto schema: %s", v1->to_string().c_str());

  transport::TcpListener listener(0);
  std::printf("subscriber listening on 127.0.0.1:%u\n", listener.port());

  std::thread publisher([port = listener.port(), v1] {
    auto link = transport::TcpLink::connect("127.0.0.1", port);
    transport::MessagePort tx(*link, nullptr);

    // The version bridge, declared once. It rides to the peer as ordinary
    // transform meta-data.
    core::TransformSpec spec;
    spec.src = v1;
    spec.dst = sensor_v2_format();
    spec.code = "old.station = new.station; old.value = new.value; old.flags = 1;";
    tx.declare_transform(spec);

    // Wait for the subscriber's "@enc pbuf" opt-in, then publish.
    while (!tx.peer_accepts_pbuf()) {
      if (!link->pump(5000)) return;
    }
    RecordArena arena;
    void* rec = pbio::alloc_record(*v1, arena);
    pbio::RecordRef r(rec, v1);
    r.set_int("station", 42);
    r.set_float("value", 2.75);
    tx.send_record(v1, rec);
    std::printf("[publisher] sent station=42 value=2.75 (%llu pbuf frames on the wire)\n",
                static_cast<unsigned long long>(tx.stats().pbuf_sent));
  });

  auto conn = listener.accept(5000);
  if (!conn) {
    std::printf("accept timed out\n");
    publisher.join();
    return 1;
  }

  bool done = false;
  core::Receiver rx;
  rx.register_handler(sensor_v2_format(), [&](const core::Delivery& d) {
    const auto* rec = static_cast<const SensorV2*>(d.record);
    std::printf("[subscriber] %s: station=%d flags=%d value=%.2f\n",
                core::outcome_name(d.outcome), rec->station, rec->flags, rec->value);
    done = true;
  });
  transport::MessagePort rx_port(*conn, &rx);
  rx_port.announce_pbuf();

  while (!done) {
    if (!conn->pump(5000)) {
      std::printf("wire died before delivery\n");
      publisher.join();
      return 1;
    }
  }
  publisher.join();
  std::printf("[subscriber] received %llu pbuf frames, %llu rejects\n",
              static_cast<unsigned long long>(rx_port.stats().pbuf_received),
              static_cast<unsigned long long>(rx_port.stats().pbuf_rejects));
  return 0;
}
