// Distributed morphing over real TCP sockets.
//
// Forks a sender thread that connects to a listener, ships the v2.0
// ChannelOpenResponse (with the Figure 5 transform as out-of-band
// meta-data), and a v1.0-only receiver that morphs it on arrival.
//
// Build & run:  ./examples/tcp_morph
#include <cstdio>
#include <thread>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "echo/messages.hpp"
#include "transport/port.hpp"
#include "transport/tcp.hpp"

using namespace morph;

int main() {
  transport::TcpListener listener(0);
  std::printf("receiver listening on 127.0.0.1:%u\n", listener.port());

  std::thread sender([port = listener.port()] {
    auto link = transport::TcpLink::connect("127.0.0.1", port);
    transport::MessagePort tx(*link, nullptr);
    tx.declare_transform(echo::response_v2_to_v1_spec());

    Rng rng(2026);
    RecordArena arena;
    echo::ResponseWorkload w;
    w.members = 3;
    auto* msg = echo::make_response_v2(w, rng, arena);
    tx.send_record(echo::channel_open_response_v2_format(), msg);
    std::printf("[sender] sent v2.0 response with %d members (+ %llu meta frames)\n",
                msg->member_count,
                static_cast<unsigned long long>(tx.stats().meta_frames_sent));
  });

  auto conn = listener.accept(5000);
  if (!conn) {
    std::printf("accept timed out\n");
    sender.join();
    return 1;
  }

  bool done = false;
  core::Receiver rx;
  rx.register_handler(echo::channel_open_response_v1_format(), [&](const core::Delivery& d) {
    const auto* rec = static_cast<const echo::ChannelOpenResponseV1*>(d.record);
    std::printf("[receiver] %s: channel '%s', %d members / %d sources / %d sinks\n",
                core::outcome_name(d.outcome), rec->channel, rec->member_count, rec->src_count,
                rec->sink_count);
    for (int i = 0; i < rec->member_count; ++i) {
      std::printf("           member %d: %s\n", rec->member_list[i].id,
                  rec->member_list[i].info);
    }
    done = true;
  });
  transport::MessagePort rx_port(*conn, &rx);

  while (!done && conn->pump(2000)) {
  }
  sender.join();
  std::printf("[receiver] morphed across a real socket: %llu transform(s) compiled\n",
              static_cast<unsigned long long>(rx.stats().transforms_compiled));
  return done ? 0 : 1;
}
