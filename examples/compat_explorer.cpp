// Compatibility-space explorer (§3.1).
//
// Builds a family of protocol revisions, registers a reader for one of
// them, and shows — via diff / Mismatch Ratio / MaxMatch — which revisions
// the reader can interoperate with, first without and then with the
// retro-transform chain. This is the paper's "expanding the compatibility
// space" argument made executable.
//
// Build & run:  ./examples/compat_explorer
#include <cstdio>

#include "core/compat.hpp"
#include "core/match.hpp"
#include "echo/messages.hpp"
#include "pbio/format.hpp"

using namespace morph;
using pbio::FormatBuilder;
using pbio::FormatPtr;

namespace {

FormatPtr rev0() {
  return FormatBuilder("Telemetry")
      .add_int("seq", 4)
      .add_float("value", 8)
      .build();
}

FormatPtr rev1() {  // adds a unit string
  return FormatBuilder("Telemetry")
      .add_int("seq", 4)
      .add_float("value", 8)
      .add_string("unit")
      .build();
}

FormatPtr rev2() {  // widens seq, adds quality + a nested source descriptor
  auto src = FormatBuilder("SourceInfo").add_string("host").add_int("pid", 4).build();
  return FormatBuilder("Telemetry")
      .add_int("seq", 8)
      .add_float("value", 8)
      .add_string("unit")
      .add_int("quality", 4)
      .add_struct("source", src)
      .build();
}

core::TransformSpec down(FormatPtr from, FormatPtr to, const std::string& code) {
  core::TransformSpec s;
  s.src = std::move(from);
  s.dst = std::move(to);
  s.code = code;
  return s;
}

}  // namespace

int main() {
  auto r0 = rev0();
  auto r1 = rev1();
  auto r2 = rev2();

  std::printf("== the format family ==\n");
  for (const auto& f : {r0, r1, r2}) std::printf("%s\n", f->to_string().c_str());

  std::printf("== pairwise diff / Mismatch Ratio ==\n");
  const char* names[] = {"rev0", "rev1", "rev2"};
  FormatPtr fmts[] = {r0, r1, r2};
  std::printf("%8s", "");
  for (const char* n : names) std::printf("  %14s", n);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%8s", names[i]);
    for (int j = 0; j < 3; ++j) {
      std::printf("    d=%2u Mr=%.2f", core::diff(*fmts[i], *fmts[j]),
                  core::mismatch_ratio(*fmts[i], *fmts[j]));
    }
    std::printf("\n");
  }

  // An old reader that only understands rev0.
  std::vector<FormatPtr> readers = {r0};
  std::vector<FormatPtr> incoming = {r0, r1, r2};

  std::printf("\n== compatibility space WITHOUT transforms ==\n");
  core::TransformCatalog none;
  std::printf("%s", core::render_compatibility_report(
                        core::analyze_compatibility(incoming, readers, none))
                        .c_str());

  std::printf("\n== compatibility space WITH the retro-transform chain ==\n");
  core::TransformCatalog chain;
  chain.add(down(r2, r1, R"(
      old.seq = new.seq;
      old.value = new.value;
      old.unit = new.unit;
  )"));
  chain.add(down(r1, r0, R"(
      old.seq = new.seq;
      old.value = new.value;
  )"));
  std::printf("%s", core::render_compatibility_report(
                        core::analyze_compatibility(incoming, readers, chain))
                        .c_str());

  std::printf("\nrev2 reaches the rev0 reader through a 2-hop chain (Figure 1); tightening\n"
              "DIFF_THRESHOLD to 0 would be the paper's perfect-matches-only mode.\n");

  std::printf("\n== and the paper's own example ==\n");
  core::TransformCatalog echo_cat;
  echo_cat.add(echo::response_v2_to_v1_spec());
  std::printf("%s", core::render_compatibility_report(
                        core::analyze_compatibility(
                            {echo::channel_open_response_v2_format()},
                            {echo::channel_open_response_v1_format()}, echo_cat))
                        .c_str());
  return 0;
}
