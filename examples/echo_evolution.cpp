// The paper's §4.1 case study, end to end: an ECho pub/sub deployment where
// the channel creator runs ECho v2.0 (compact ChannelOpenResponse) while
// old v1.0 subscribers are still in the field. The v2.0 format ships with
// the Figure 5 retro-transform; old subscribers morph it on arrival with no
// change to their code and no version negotiation.
//
// Build & run:  ./examples/echo_evolution
#include <cstdio>

#include "echo/process.hpp"
#include "pbio/record.hpp"

using namespace morph;
using echo::EchoDomain;
using echo::EchoProcess;
using echo::EchoVersion;

namespace {

void dump_members(const EchoProcess& p, const char* channel) {
  std::printf("  %s sees members of '%s':\n", p.contact().c_str(), channel);
  for (const auto& m : p.members(channel)) {
    std::printf("    #%d %-12s %s%s\n", m.id, m.contact.c_str(), m.is_source ? "source " : "",
                m.is_sink ? "sink" : "");
  }
}

}  // namespace

int main() {
  EchoDomain domain;

  // The upgraded creator and a mixed population of subscribers.
  auto& creator = domain.spawn("creator", EchoVersion::kV2);
  auto& legacy_viz = domain.spawn("legacy-viz", EchoVersion::kV1);   // old binary!
  auto& new_sensor = domain.spawn("new-sensor", EchoVersion::kV2);
  auto& legacy_log = domain.spawn("legacy-log", EchoVersion::kV1);   // old binary!

  domain.connect(creator, legacy_viz);
  domain.connect(creator, new_sensor);
  domain.connect(creator, legacy_log);
  domain.connect(new_sensor, legacy_viz);
  domain.connect(new_sensor, legacy_log);
  domain.pump();

  std::printf("== channel bootstrap ==\n");
  creator.create_channel("telemetry");
  legacy_viz.open_channel("telemetry", "creator", /*source=*/false, /*sink=*/true);
  new_sensor.open_channel("telemetry", "creator", /*source=*/true, /*sink=*/false);
  legacy_log.open_channel("telemetry", "creator", /*source=*/false, /*sink=*/true);
  domain.pump();

  dump_members(legacy_viz, "telemetry");
  dump_members(new_sensor, "telemetry");

  std::printf("\n== who morphs? ==\n");
  for (const EchoProcess* p : {&legacy_viz, &new_sensor, &legacy_log}) {
    auto t = p->receiver_totals();
    std::printf("  %-12s (v%s): %llu responses, %llu morphed, %llu exact\n",
                p->contact().c_str(), p->version() == EchoVersion::kV2 ? "2.0" : "1.0",
                static_cast<unsigned long long>(p->stats().responses_received),
                static_cast<unsigned long long>(t.morphed),
                static_cast<unsigned long long>(t.exact));
  }

  // Events still flow between everyone.
  std::printf("\n== event delivery ==\n");
  struct Sample {
    int32_t seq;
    double value;
  };
  auto sample_fmt = pbio::FormatBuilder("Sample", sizeof(Sample))
                        .add_int("seq", 4, offsetof(Sample, seq))
                        .add_float("value", 8, offsetof(Sample, value))
                        .build();
  for (EchoProcess* sink : {&legacy_viz, &legacy_log}) {
    sink->on_event("telemetry", sample_fmt, [sink](const echo::Event& ev) {
      pbio::RecordRef r(ev.delivery->record, ev.delivery->format);
      std::printf("  %s got sample seq=%lld value=%.2f\n", sink->contact().c_str(),
                  static_cast<long long>(r.get_int("seq")), r.get_float("value"));
    });
  }

  RecordArena arena;
  Sample s{1, 20.25};
  size_t fanout = new_sensor.publish("telemetry", sample_fmt, &s);
  domain.pump();
  std::printf("  published to %zu sinks\n", fanout);

  std::printf("\nno subscriber was modified, no protocol was negotiated; the Figure 5\n"
              "transform was compiled on demand at each old receiver.\n");
  return 0;
}
